//! Microsecond clock for the serve path: wall time in production,
//! simulated time in tests.
//!
//! Deadline enforcement needs "how long did this query take", but a test
//! that asserts shedding behaviour cannot depend on how fast the CI host
//! happens to be. Mirroring the crawler's `SimClock` (an atomic tick
//! counter the simulation advances explicitly), [`ServeClock`] has two
//! modes behind one `now_us`/`advance_us` interface: *wall* mode reads a
//! monotonic `Instant`, *simulated* mode reads an atomic the engine
//! advances by each query's nominal cost — so a deadline of 500µs
//! deterministically rejects the 1000µs-class queries and admits the
//! 10µs-class ones, on any machine, every run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic microsecond clock, wall or simulated.
#[derive(Debug)]
pub struct ServeClock {
    origin: Instant,
    simulated_us: Option<AtomicU64>,
}

impl ServeClock {
    /// A wall clock anchored at creation time.
    pub fn wall() -> Self {
        Self { origin: Instant::now(), simulated_us: None }
    }

    /// A simulated clock starting at 0µs; only [`ServeClock::advance_us`]
    /// moves it.
    pub fn simulated() -> Self {
        Self { origin: Instant::now(), simulated_us: Some(AtomicU64::new(0)) }
    }

    /// Whether this clock only moves when advanced explicitly.
    pub fn is_simulated(&self) -> bool {
        self.simulated_us.is_some()
    }

    /// Microseconds since the clock's origin.
    pub fn now_us(&self) -> u64 {
        match &self.simulated_us {
            Some(t) => t.load(Ordering::Acquire),
            None => self.origin.elapsed().as_micros() as u64,
        }
    }

    /// Advances a simulated clock by `us` and returns the new reading.
    /// On a wall clock this is a no-op returning the current reading —
    /// real time cannot be pushed forward.
    pub fn advance_us(&self, us: u64) -> u64 {
        match &self.simulated_us {
            Some(t) => t.fetch_add(us, Ordering::AcqRel) + us,
            None => self.now_us(),
        }
    }
}

impl Default for ServeClock {
    fn default() -> Self {
        Self::wall()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_clock_only_moves_when_advanced() {
        let c = ServeClock::simulated();
        assert!(c.is_simulated());
        assert_eq!(c.now_us(), 0);
        assert_eq!(c.now_us(), 0, "time must not pass on its own");
        assert_eq!(c.advance_us(250), 250);
        assert_eq!(c.now_us(), 250);
        assert_eq!(c.advance_us(0), 250);
    }

    #[test]
    fn wall_clock_is_monotone_and_ignores_advance() {
        let c = ServeClock::wall();
        assert!(!c.is_simulated());
        let a = c.now_us();
        let after_advance = c.advance_us(1_000_000_000);
        let b = c.now_us();
        assert!(b >= a);
        assert!(after_advance < 1_000_000_000, "advance must not move wall time");
    }
}
