//! The immutable analysed snapshot the query engine serves from.
//!
//! The batch pipeline's outputs — graph, public profile attributes,
//! PageRank, degree rankings, per-country leaderboards — are frozen into
//! one [`AnalysedSnapshot`] at build time so every online query is a
//! lookup or a short traversal, never a full recomputation. Snapshots
//! round-trip through a directory (`meta.json` + `snapshot.bin`) so an
//! operator can build one offline with `gplus snapshot` and serve it (or
//! hot-swap to a newer one) with `gplus serve`.
//!
//! The payload is a [`gplus_graph::binfmt`] container, not JSON: the
//! graph is embedded via [`gplus_graph::io::graph_sections`] and the
//! serving attributes (names, countries, reciprocal flags, leaderboards)
//! occupy snapshot-owned sections below id `0x10`. At paper scale a JSON
//! parse of a multi-gigabyte snapshot dominated load time; the binary
//! payload is opened through one `mmap`, hashed once for the sidecar
//! checksum, and decoded with fixed-width reads.
//!
//! The snapshot also implements [`Dataset`], which lets the serving path
//! reuse the batch extensions (friend recommendation, rankings) verbatim
//! instead of forking their logic.

use gplus_core::Dataset;
use gplus_geo::{Country, LatLon};
use gplus_graph::binfmt::{
    bytes_of_u64s, u64s_from_bytes, BinError, BinFile, BinWriter, ByteSlice,
};
use gplus_graph::io as graph_io;
use gplus_graph::pagerank::{pagerank, PageRankParams};
use gplus_graph::{CsrGraph, NodeId};
use gplus_profiles::{Attribute, Gender, Occupation, RelationshipStatus};
use gplus_service::query::MAX_TOP_K;
use gplus_synth::SynthNetwork;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;

/// On-disk format version; bumped on any incompatible layout change.
/// Version 2 added the `payload_fnv1a` checksum to [`SnapshotMeta`];
/// version 3 replaced the JSON payload with the `snapshot.bin` binary
/// container (the version is stored both in `meta.json` and in the
/// container header, and both are checked).
pub const SNAPSHOT_FORMAT_VERSION: u32 = 3;

/// File name of the binary snapshot payload inside a snapshot directory.
pub const PAYLOAD_FILE: &str = "snapshot.bin";

/// Section ids owned by the snapshot payload. Ids `0x10` and above belong
/// to the embedded graph ([`gplus_graph::io::sec`]).
mod sec {
    /// `[seed]` as one `u64`.
    pub const SNAP_META: u32 = 0x01;
    /// Byte offsets into [`NAME_BLOB`] (`u64` array, `n + 1` entries).
    pub const NAME_OFFSETS: u32 = 0x02;
    /// UTF-8 concatenation of all display names.
    pub const NAME_BLOB: u32 = 0x03;
    /// One byte per node: `0` = withheld, else `1 +` the country's index
    /// in [`gplus_geo::Country::all`] order.
    pub const COUNTRIES: u32 = 0x04;
    /// Reciprocal flags as a bitset, LSB-first within each byte.
    pub const RECIPROCAL: u32 = 0x05;
    /// Global and per-country leaderboards, fixed-width records.
    pub const RANKINGS: u32 = 0x06;
}

/// FNV-1a over a byte slice — the snapshot payload checksum. Not
/// cryptographic; it detects the failure modes a serving host actually
/// meets (torn writes, bit rot, truncation, hand edits), costs one pass,
/// and needs no dependency. The same digest keyed the workload replay
/// log before this module promoted it to an integrity primitive.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One entry of a precomputed ranking (internal node id + score).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedNode {
    /// Internal CSR node id.
    pub node: NodeId,
    /// Metric value (PageRank score or degree).
    pub score: f64,
}

/// Precomputed leaderboards for the users located in one country.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountryRankings {
    /// The country (serialized by ISO code via its own serde impl).
    pub country: Country,
    /// Top users by PageRank, best first.
    pub pagerank: Vec<RankedNode>,
    /// Top users by in-degree, best first.
    pub in_degree: Vec<RankedNode>,
    /// Top users by out-degree, best first.
    pub out_degree: Vec<RankedNode>,
}

/// An immutable, fully analysed snapshot of the social graph.
///
/// Everything a serving query touches is materialized here; the struct is
/// plain data (serde round-trips it losslessly) and is only ever shared
/// behind an `Arc` by the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysedSnapshot {
    /// Seed of the generator run this snapshot froze (snapshot identity).
    pub seed: u64,
    /// The social graph.
    pub graph: CsrGraph,
    /// Display name per node.
    pub names: Vec<String>,
    /// Publicly shared country per node (`None` when withheld).
    pub countries: Vec<Option<Country>>,
    /// Whether the node has at least one reciprocated followee.
    pub reciprocal: Vec<bool>,
    /// Global top list by PageRank (length capped at [`MAX_TOP_K`]).
    pub pagerank_top: Vec<RankedNode>,
    /// Global top list by in-degree.
    pub in_degree_top: Vec<RankedNode>,
    /// Global top list by out-degree.
    pub out_degree_top: Vec<RankedNode>,
    /// Per-country leaderboards, sorted by country for determinism.
    pub country_top: Vec<CountryRankings>,
}

/// Sidecar identity record written next to the snapshot payload, small
/// enough to inspect without loading the graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotMeta {
    /// See [`SNAPSHOT_FORMAT_VERSION`].
    pub format_version: u32,
    /// Generator seed.
    pub seed: u64,
    /// Node count (consistency check against the payload).
    pub nodes: u64,
    /// Edge count (consistency check against the payload).
    pub edges: u64,
    /// [`fnv1a`] digest of the exact `snapshot.bin` bytes. Verified on
    /// load *before* the payload is parsed, so corruption surfaces as a
    /// checksum mismatch with offsets intact rather than as whatever
    /// decode error the flipped byte happens to produce. (The container's
    /// per-section checksums would also catch it, but the whole-file
    /// digest additionally covers the header and section table.)
    pub payload_fnv1a: u64,
}

/// Why a snapshot could not be read or written. Every failure a serving
/// host can meet on the load path has a distinct shape so the swap guard
/// (and operators reading logs) can tell bit rot from version skew from
/// a half-written deploy.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure other than a missing file.
    Io(std::io::Error),
    /// A required snapshot file does not exist (interrupted deploy, wrong
    /// directory).
    Missing {
        /// File name relative to the snapshot directory.
        file: String,
    },
    /// The payload bytes do not hash to the digest recorded in
    /// `meta.json` — corruption or a torn write.
    Checksum {
        /// File whose bytes were hashed.
        file: String,
        /// Digest recorded in `meta.json`.
        expected: u64,
        /// Digest of the bytes actually on disk.
        actual: u64,
    },
    /// The snapshot was written by an incompatible format version.
    VersionSkew {
        /// Version recorded in `meta.json`.
        found: u32,
        /// Version this build reads.
        supported: u32,
    },
    /// A file did not decode as its expected shape (`meta.json` as JSON,
    /// `snapshot.bin` as a well-formed binary container).
    Malformed(String),
    /// The payload parsed but violates a structural invariant (vector
    /// lengths, leaderboard ids out of range, non-finite scores, meta
    /// identity mismatch) — serving it would produce wrong answers.
    Semantic(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::Missing { file } => write!(f, "snapshot file missing: {file}"),
            SnapshotError::Checksum { file, expected, actual } => write!(
                f,
                "snapshot checksum mismatch in {file}: meta records {expected:#018x}, \
                 bytes hash to {actual:#018x}"
            ),
            SnapshotError::VersionSkew { found, supported } => write!(
                f,
                "snapshot format version skew: found {found}, this build reads {supported}"
            ),
            SnapshotError::Malformed(m) => write!(f, "snapshot malformed: {m}"),
            SnapshotError::Semantic(m) => write!(f, "snapshot semantically invalid: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Number of elements the sorted slices `a` and `b` share (the
/// two-pointer merge step; both inputs must be ascending, as CSR
/// neighbour slices are).
pub fn sorted_intersection_count(a: &[NodeId], b: &[NodeId]) -> u64 {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Descending-score ordering, ties by node id — the same contract as
/// [`PageRank::top`].
///
/// total_cmp, not partial_cmp: a NaN score (e.g. a poisoned PageRank
/// run) must sort deterministically instead of panicking the
/// leaderboard builder mid-snapshot-build; under IEEE total order a
/// positive NaN ranks above +inf and a negative NaN below -inf, and
/// every rerun places it identically.
fn rank_order(a: &RankedNode, b: &RankedNode) -> std::cmp::Ordering {
    b.score.total_cmp(&a.score).then(a.node.cmp(&b.node))
}

/// Top-`k` nodes from `score(node)`, descending, ties by node id. Only
/// nodes for which `include` holds participate (used for per-country
/// restriction).
///
/// Chunk-parallel: each fixed-size node chunk selects its local top-`k`
/// concurrently, then the candidates are merged with one final sort.
/// Because `(score desc, node asc)` is a *total* order with unique node
/// ids, the global top-`k` is a unique set that every chunk partition
/// yields identically — the merge order (chunk-index order here) cannot
/// change the result, so the leaderboard is byte-identical at any
/// `RAYON_NUM_THREADS`.
fn top_by<F, G>(g: &CsrGraph, k: usize, include: G, score: F) -> Vec<RankedNode>
where
    F: Fn(NodeId) -> f64 + Sync,
    G: Fn(NodeId) -> bool + Sync,
{
    let n = g.node_count();
    let locals: Vec<Vec<RankedNode>> = (0..n.div_ceil(TOP_CHUNK))
        .into_par_iter()
        .map(|ci| {
            let lo = ci * TOP_CHUNK;
            let hi = usize::min(n, lo + TOP_CHUNK);
            let mut ranked: Vec<RankedNode> = (lo..hi)
                .map(|u| u as NodeId)
                .filter(|&u| include(u))
                .map(|u| RankedNode { node: u, score: score(u) })
                .collect();
            ranked.sort_by(rank_order);
            ranked.truncate(k);
            ranked
        })
        .collect();
    let mut ranked: Vec<RankedNode> = locals.concat();
    ranked.sort_by(rank_order);
    ranked.truncate(k);
    ranked
}

/// Fixed node-chunk size for the parallel leaderboard scan. Like
/// `gplus_graph::par::NODE_CHUNK` it must not depend on the thread count;
/// it is larger because each chunk retains up to `k = 1000` candidates
/// and the merge cost scales with `chunks * k`.
const TOP_CHUNK: usize = 65_536;

/// The payload byte for an optional country: `0` for withheld, else
/// `1 +` the index in [`Country::all`] order. That order is part of the
/// on-disk format; reordering the enum requires a format-version bump.
fn country_to_u8(c: Option<Country>) -> u8 {
    match c {
        None => 0,
        Some(c) => {
            let idx = Country::all().position(|x| x == c).expect("all() covers every variant");
            u8::try_from(idx + 1).expect("far fewer than 255 countries")
        }
    }
}

/// Inverse of [`country_to_u8`]; rejects bytes outside the encoded range.
fn country_from_u8(b: u8) -> Result<Option<Country>, SnapshotError> {
    if b == 0 {
        return Ok(None);
    }
    Country::all()
        .nth(usize::from(b) - 1)
        .map(Some)
        .ok_or_else(|| SnapshotError::Malformed(format!("{PAYLOAD_FILE}: country byte {b}")))
}

/// Maps a container-level decode failure to the snapshot error taxonomy.
/// Everything the binary reader rejects — bad magic, truncation, a
/// section checksum, a malformed array — is [`SnapshotError::Malformed`]
/// here: the whole-file digest already passed, so the bytes are what the
/// writer produced and the problem is their *shape*, not bit rot.
fn malformed(e: BinError) -> SnapshotError {
    SnapshotError::Malformed(format!("{PAYLOAD_FILE}: {e}"))
}

/// Bounds-checked little-endian reader over the rankings section.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).filter(|&end| end <= self.bytes.len()).ok_or_else(
            || SnapshotError::Malformed(format!("{PAYLOAD_FILE}: rankings section cut short")),
        )?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

/// Appends one ranked list as `u32 len` then `(u32 node, u64 score bits)`
/// records, all little-endian. `f64::to_bits` keeps the round trip
/// bit-exact — scores compare equal after a save/load cycle.
fn put_ranked(buf: &mut Vec<u8>, list: &[RankedNode]) {
    buf.extend_from_slice(
        &u32::try_from(list.len()).expect("leaderboard fits u32").to_le_bytes(),
    );
    for e in list {
        buf.extend_from_slice(&e.node.to_le_bytes());
        buf.extend_from_slice(&e.score.to_bits().to_le_bytes());
    }
}

/// Reads one ranked list written by [`put_ranked`].
fn get_ranked(cur: &mut Cursor<'_>) -> Result<Vec<RankedNode>, SnapshotError> {
    let len = cur.u32()? as usize;
    let mut out = Vec::with_capacity(len.min(MAX_TOP_K as usize));
    for _ in 0..len {
        let node = cur.u32()?;
        let score = f64::from_bits(cur.u64()?);
        out.push(RankedNode { node, score });
    }
    Ok(out)
}

impl AnalysedSnapshot {
    /// Runs the batch analyses over a generated network and freezes the
    /// results. This is the expensive offline step (`gplus snapshot`);
    /// serving never calls it.
    pub fn build(network: &SynthNetwork) -> Self {
        let _span = gplus_obs::global().span("serve.snapshot.build");
        let g = &network.graph;
        let n = g.node_count();
        let cap = MAX_TOP_K as usize;

        // elementwise per-node attributes, parallel over the node range
        // (indexed map, so the output order is the node order regardless
        // of schedule)
        let rows: Vec<(String, Option<Country>, bool)> = (0..n)
            .into_par_iter()
            .map(|u| {
                let u = u as NodeId;
                let profile = network.population.profile(u);
                (
                    profile.display_name(),
                    profile.public_country(),
                    sorted_intersection_count(g.out_neighbors(u), g.in_neighbors(u)) > 0,
                )
            })
            .collect();
        let mut names = Vec::with_capacity(n);
        let mut countries = Vec::with_capacity(n);
        let mut reciprocal = Vec::with_capacity(n);
        for (name, country, recip) in rows {
            names.push(name);
            countries.push(country);
            reciprocal.push(recip);
        }

        let pr = pagerank(g, &PageRankParams::default());
        let pagerank_top: Vec<RankedNode> =
            pr.top(cap).into_iter().map(|(node, score)| RankedNode { node, score }).collect();
        let in_degree_top = top_by(g, cap, |_| true, |u| g.in_degree(u) as f64);
        let out_degree_top = top_by(g, cap, |_| true, |u| g.out_degree(u) as f64);

        // per-country leaderboards for every country that occurs at all;
        // countries are independent, so they fan out in parallel on top
        // of the chunk-parallel scans (an indexed map keeps the sorted
        // country order in the output)
        let mut located: HashMap<Country, ()> = HashMap::new();
        for c in countries.iter().flatten() {
            located.insert(*c, ());
        }
        let mut present: Vec<Country> = located.into_keys().collect();
        present.sort();
        let country_top = present
            .into_par_iter()
            .map(|c| {
                let here = |u: NodeId| countries[u as usize] == Some(c);
                CountryRankings {
                    country: c,
                    pagerank: top_by(g, cap, here, |u| pr.scores[u as usize]),
                    in_degree: top_by(g, cap, here, |u| g.in_degree(u) as f64),
                    out_degree: top_by(g, cap, here, |u| g.out_degree(u) as f64),
                }
            })
            .collect();

        Self {
            seed: network.config.seed,
            graph: g.clone(),
            names,
            countries,
            reciprocal,
            pagerank_top,
            in_degree_top,
            out_degree_top,
            country_top,
        }
    }

    /// The identity record for this snapshot, including the payload
    /// checksum. Serializes the snapshot to hash it; `save` reuses the
    /// bytes instead of calling this twice.
    pub fn meta(&self) -> SnapshotMeta {
        self.meta_for_payload(&self.to_payload_bytes())
    }

    /// Serialises the snapshot into the `snapshot.bin` container bytes:
    /// the snapshot-owned sections (seed, names, countries, reciprocal
    /// bitset, leaderboards) followed by the embedded graph sections.
    pub fn to_payload_bytes(&self) -> Vec<u8> {
        let mut w = BinWriter::new(SNAPSHOT_FORMAT_VERSION);
        w.section(sec::SNAP_META, bytes_of_u64s(&[self.seed]));

        let mut name_offsets: Vec<u64> = Vec::with_capacity(self.names.len() + 1);
        let mut blob = Vec::new();
        name_offsets.push(0);
        for name in &self.names {
            blob.extend_from_slice(name.as_bytes());
            name_offsets.push(blob.len() as u64);
        }
        w.section(sec::NAME_OFFSETS, bytes_of_u64s(&name_offsets));
        w.section(sec::NAME_BLOB, blob);

        w.section(sec::COUNTRIES, self.countries.iter().map(|&c| country_to_u8(c)).collect());

        let mut bits = vec![0u8; self.reciprocal.len().div_ceil(8)];
        for (i, &r) in self.reciprocal.iter().enumerate() {
            if r {
                bits[i / 8] |= 1 << (i % 8);
            }
        }
        w.section(sec::RECIPROCAL, bits);

        let mut ranks = Vec::new();
        put_ranked(&mut ranks, &self.pagerank_top);
        put_ranked(&mut ranks, &self.in_degree_top);
        put_ranked(&mut ranks, &self.out_degree_top);
        ranks.extend_from_slice(
            &u32::try_from(self.country_top.len())
                .expect("country list fits u32")
                .to_le_bytes(),
        );
        for ranking in &self.country_top {
            ranks.push(country_to_u8(Some(ranking.country)));
            put_ranked(&mut ranks, &ranking.pagerank);
            put_ranked(&mut ranks, &ranking.in_degree);
            put_ranked(&mut ranks, &ranking.out_degree);
        }
        w.section(sec::RANKINGS, ranks);

        graph_io::graph_sections(&self.graph, &mut w);
        w.to_bytes()
    }

    /// Decodes a payload container whose whole-file digest has already
    /// been verified. Every structural surprise — wrong section shapes,
    /// offsets out of order, invalid UTF-8, trailing bytes — is a typed
    /// [`SnapshotError::Malformed`]; semantic validation happens in
    /// [`AnalysedSnapshot::load`] afterwards.
    pub fn from_payload_bytes(bytes: Vec<u8>) -> Result<Self, SnapshotError> {
        Self::from_payload_view(ByteSlice::from_vec(bytes))
    }

    fn from_payload_view(bytes: ByteSlice) -> Result<Self, SnapshotError> {
        let bin = BinFile::from_view(bytes, SNAPSHOT_FORMAT_VERSION).map_err(malformed)?;
        let graph = graph_io::graph_from_bin(&bin).map_err(malformed)?;
        let n = graph.node_count();

        let meta = u64s_from_bytes(&bin.section(sec::SNAP_META).map_err(malformed)?)
            .map_err(malformed)?;
        let &[seed] = meta.as_slice() else {
            return Err(SnapshotError::Malformed(format!(
                "{PAYLOAD_FILE}: snapshot meta has {} fields",
                meta.len()
            )));
        };

        let offsets = u64s_from_bytes(&bin.section(sec::NAME_OFFSETS).map_err(malformed)?)
            .map_err(malformed)?;
        let blob = bin.section(sec::NAME_BLOB).map_err(malformed)?;
        if offsets.len() != n + 1 || offsets.first() != Some(&0) {
            return Err(SnapshotError::Malformed(format!(
                "{PAYLOAD_FILE}: {} name offsets for {n} nodes",
                offsets.len()
            )));
        }
        let mut names = Vec::with_capacity(n);
        for w in offsets.windows(2) {
            let (start, end) = (w[0], w[1]);
            if start > end || end > blob.len() as u64 {
                return Err(SnapshotError::Malformed(format!(
                    "{PAYLOAD_FILE}: name offsets {start}..{end} exceed blob of {} bytes",
                    blob.len()
                )));
            }
            let slice = &blob[start as usize..end as usize];
            let name = std::str::from_utf8(slice).map_err(|e| {
                SnapshotError::Malformed(format!("{PAYLOAD_FILE}: name not UTF-8: {e}"))
            })?;
            names.push(name.to_string());
        }

        let country_bytes = bin.section(sec::COUNTRIES).map_err(malformed)?;
        if country_bytes.len() != n {
            return Err(SnapshotError::Malformed(format!(
                "{PAYLOAD_FILE}: {} country bytes for {n} nodes",
                country_bytes.len()
            )));
        }
        let countries =
            country_bytes.iter().map(|&b| country_from_u8(b)).collect::<Result<Vec<_>, _>>()?;

        let bitset = bin.section(sec::RECIPROCAL).map_err(malformed)?;
        if bitset.len() != n.div_ceil(8) {
            return Err(SnapshotError::Malformed(format!(
                "{PAYLOAD_FILE}: {} reciprocal bytes for {n} nodes",
                bitset.len()
            )));
        }
        let reciprocal: Vec<bool> =
            (0..n).map(|i| bitset[i / 8] & (1 << (i % 8)) != 0).collect();

        let ranks = bin.section(sec::RANKINGS).map_err(malformed)?;
        let mut cur = Cursor { bytes: &ranks, pos: 0 };
        let pagerank_top = get_ranked(&mut cur)?;
        let in_degree_top = get_ranked(&mut cur)?;
        let out_degree_top = get_ranked(&mut cur)?;
        let country_count = cur.u32()? as usize;
        let mut country_top = Vec::with_capacity(country_count.min(64));
        for _ in 0..country_count {
            let byte = cur.u8()?;
            let Some(country) = country_from_u8(byte)? else {
                return Err(SnapshotError::Malformed(format!(
                    "{PAYLOAD_FILE}: leaderboard for withheld country"
                )));
            };
            country_top.push(CountryRankings {
                country,
                pagerank: get_ranked(&mut cur)?,
                in_degree: get_ranked(&mut cur)?,
                out_degree: get_ranked(&mut cur)?,
            });
        }
        if cur.pos != ranks.len() {
            return Err(SnapshotError::Malformed(format!(
                "{PAYLOAD_FILE}: {} trailing bytes after rankings",
                ranks.len() - cur.pos
            )));
        }

        Ok(Self {
            seed,
            graph,
            names,
            countries,
            reciprocal,
            pagerank_top,
            in_degree_top,
            out_degree_top,
            country_top,
        })
    }

    fn meta_for_payload(&self, payload: &[u8]) -> SnapshotMeta {
        SnapshotMeta {
            format_version: SNAPSHOT_FORMAT_VERSION,
            seed: self.seed,
            nodes: self.graph.node_count() as u64,
            edges: self.graph.edge_count() as u64,
            payload_fnv1a: fnv1a(payload),
        }
    }

    /// Resolves a public user id to an internal node, rejecting ids
    /// outside the snapshot (including u64-scale ids that cannot index a
    /// CSR graph) instead of truncating them.
    pub fn node_of(&self, user: u64) -> Option<NodeId> {
        let node = NodeId::try_from(user).ok()?;
        ((node as usize) < self.graph.node_count()).then_some(node)
    }

    /// Writes `meta.json` and `snapshot.bin` into `dir` (created if
    /// missing) via write-temp-then-rename. Both files are staged as
    /// `.tmp` siblings first and renamed into place payload-before-meta,
    /// so a process killed at any instant leaves either the fully-old
    /// directory or one whose inconsistency `load` *detects* (checksum or
    /// identity mismatch against the old meta) — never a silently torn
    /// snapshot that serves wrong answers.
    pub fn save(&self, dir: &Path) -> Result<(), SnapshotError> {
        std::fs::create_dir_all(dir)?;
        let payload = self.to_payload_bytes();
        let meta = serde_json::to_string_pretty(&self.meta_for_payload(&payload))
            .map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        let payload_tmp = dir.join("snapshot.bin.tmp");
        let meta_tmp = dir.join("meta.json.tmp");
        std::fs::write(&payload_tmp, &payload)?;
        std::fs::write(&meta_tmp, meta)?;
        std::fs::rename(&payload_tmp, dir.join(PAYLOAD_FILE))?;
        std::fs::rename(&meta_tmp, dir.join("meta.json"))?;
        gplus_obs::global()
            .gauge(gplus_obs::names::MEM_SNAPSHOT_BYTES)
            .set(payload.len() as f64);
        Ok(())
    }

    /// Loads a snapshot directory, verifying — in order — that both files
    /// exist, the format version matches, the payload bytes hash to the
    /// digest `meta.json` records, the payload decodes, its structure is
    /// semantically valid ([`AnalysedSnapshot::validate`]), and its
    /// identity agrees with the meta record. A snapshot that fails any
    /// step must never reach the serving path.
    ///
    /// The payload is memory-mapped (on Unix), hashed in one pass over
    /// the mapping, and decoded in place — no heap copy of the container
    /// bytes is ever made.
    pub fn load(dir: &Path) -> Result<Self, SnapshotError> {
        let meta_bytes = read_snapshot_file(dir, "meta.json")?;
        let meta: SnapshotMeta = serde_json::from_slice(&meta_bytes)
            .map_err(|e| SnapshotError::Malformed(format!("meta.json: {e}")))?;
        if meta.format_version != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotError::VersionSkew {
                found: meta.format_version,
                supported: SNAPSHOT_FORMAT_VERSION,
            });
        }
        let payload = open_snapshot_payload(dir)?;
        let actual_digest = fnv1a(&payload);
        if actual_digest != meta.payload_fnv1a {
            return Err(SnapshotError::Checksum {
                file: PAYLOAD_FILE.to_string(),
                expected: meta.payload_fnv1a,
                actual: actual_digest,
            });
        }
        let snapshot = Self::from_payload_view(payload.clone())?;
        snapshot.validate()?;
        let actual = snapshot.meta_for_payload(&payload);
        if actual != meta {
            return Err(SnapshotError::Semantic(format!(
                "meta.json disagrees with payload: {meta:?} vs {actual:?}"
            )));
        }
        gplus_obs::global()
            .gauge(gplus_obs::names::MEM_SNAPSHOT_BYTES)
            .set(payload.len() as f64);
        Ok(snapshot)
    }

    /// Structural invariants a serving snapshot must satisfy. The
    /// checksum proves the bytes are what the builder wrote; this proves
    /// what the builder wrote is *servable* — every leaderboard entry
    /// indexes a real node with a non-NaN score, attribute vectors cover
    /// exactly the graph, and per-country lists are strictly sorted (the
    /// binary-search contract of country lookups).
    pub fn validate(&self) -> Result<(), SnapshotError> {
        let n = self.graph.node_count();
        if self.names.len() != n || self.countries.len() != n || self.reciprocal.len() != n {
            return Err(SnapshotError::Semantic(format!(
                "attribute vectors disagree with graph: {n} nodes vs {} names, {} countries, \
                 {} reciprocal flags",
                self.names.len(),
                self.countries.len(),
                self.reciprocal.len()
            )));
        }
        let check = |label: &str, list: &[RankedNode]| -> Result<(), SnapshotError> {
            for e in list {
                if (e.node as usize) >= n {
                    return Err(SnapshotError::Semantic(format!(
                        "{label} ranks node {} but the graph has {n} nodes",
                        e.node
                    )));
                }
                if e.score.is_nan() {
                    return Err(SnapshotError::Semantic(format!(
                        "{label} carries a NaN score for node {}",
                        e.node
                    )));
                }
            }
            Ok(())
        };
        check("pagerank_top", &self.pagerank_top)?;
        check("in_degree_top", &self.in_degree_top)?;
        check("out_degree_top", &self.out_degree_top)?;
        for w in self.country_top.windows(2) {
            if w[0].country >= w[1].country {
                return Err(SnapshotError::Semantic(format!(
                    "country_top not strictly sorted: {:?} then {:?}",
                    w[0].country, w[1].country
                )));
            }
        }
        for ranking in &self.country_top {
            let c = ranking.country;
            check(&format!("country_top[{c:?}].pagerank"), &ranking.pagerank)?;
            check(&format!("country_top[{c:?}].in_degree"), &ranking.in_degree)?;
            check(&format!("country_top[{c:?}].out_degree"), &ranking.out_degree)?;
        }
        Ok(())
    }
}

/// Reads one snapshot file, mapping "not found" to the typed
/// [`SnapshotError::Missing`] (an interrupted deploy looks exactly like
/// this) and every other io failure to [`SnapshotError::Io`].
fn read_snapshot_file(dir: &Path, name: &str) -> Result<Vec<u8>, SnapshotError> {
    std::fs::read(dir.join(name)).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            SnapshotError::Missing { file: name.to_string() }
        } else {
            SnapshotError::Io(e)
        }
    })
}

/// Opens (maps, on Unix) the binary payload with the same missing-file
/// mapping as [`read_snapshot_file`].
fn open_snapshot_payload(dir: &Path) -> Result<ByteSlice, SnapshotError> {
    ByteSlice::open(&dir.join(PAYLOAD_FILE)).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            SnapshotError::Missing { file: PAYLOAD_FILE.to_string() }
        } else {
            SnapshotError::Io(e)
        }
    })
}

/// The snapshot doubles as a [`Dataset`], so batch extensions (friend
/// recommendation in particular) run against it unchanged. Only the
/// attributes the serving layer materializes are exposed; everything else
/// reports "withheld", which the extensions already handle.
impl Dataset for AnalysedSnapshot {
    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn profile_known(&self, node: NodeId) -> bool {
        (node as usize) < self.names.len()
    }

    fn display_name(&self, node: NodeId) -> Option<String> {
        self.names.get(node as usize).cloned()
    }

    fn gender(&self, _node: NodeId) -> Option<Gender> {
        None
    }

    fn relationship(&self, _node: NodeId) -> Option<RelationshipStatus> {
        None
    }

    fn occupation(&self, _node: NodeId) -> Option<Occupation> {
        None
    }

    fn country(&self, node: NodeId) -> Option<Country> {
        self.countries.get(node as usize).copied().flatten()
    }

    fn location(&self, _node: NodeId) -> Option<LatLon> {
        None
    }

    fn fields_shared(&self, _node: NodeId) -> Option<u32> {
        None
    }

    fn fields_shared_excl_contact(&self, _node: NodeId) -> Option<u32> {
        None
    }

    fn is_tel_user(&self, _node: NodeId) -> Option<bool> {
        None
    }

    fn public_attribute_list(&self, _node: NodeId) -> Option<Vec<Attribute>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_synth::SynthConfig;

    fn small() -> AnalysedSnapshot {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(400, 7));
        AnalysedSnapshot::build(&net)
    }

    #[test]
    fn payload_bytes_identical_across_thread_counts() {
        // big enough that pagerank spans multiple fixed-size chunks
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(10_000, 7));
        let pool =
            |t: usize| rayon::ThreadPoolBuilder::new().num_threads(t).build().expect("pool");
        let reference = pool(1).install(|| AnalysedSnapshot::build(&net)).to_payload_bytes();
        for threads in [2usize, 8] {
            let bytes =
                pool(threads).install(|| AnalysedSnapshot::build(&net)).to_payload_bytes();
            assert!(bytes == reference, "payload differs at {threads} threads");
        }
        // repeated run at the same thread count
        let again = pool(2).install(|| AnalysedSnapshot::build(&net)).to_payload_bytes();
        assert!(again == reference, "payload differs across runs at 2 threads");
    }

    #[test]
    fn build_materializes_every_node() {
        let snap = small();
        let n = snap.graph.node_count();
        assert_eq!(snap.names.len(), n);
        assert_eq!(snap.countries.len(), n);
        assert_eq!(snap.reciprocal.len(), n);
        assert_eq!(snap.names[0], "Larry Page");
        assert!(!snap.pagerank_top.is_empty());
        assert_eq!(snap.in_degree_top.len(), n.min(MAX_TOP_K as usize));
    }

    #[test]
    fn rankings_are_descending_with_stable_ties() {
        let snap = small();
        for list in [&snap.pagerank_top, &snap.in_degree_top, &snap.out_degree_top] {
            for w in list.windows(2) {
                assert!(
                    w[0].score > w[1].score
                        || (w[0].score == w[1].score && w[0].node < w[1].node),
                    "ordering violated: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
        // degree lists carry the true degrees
        for e in snap.in_degree_top.iter().take(10) {
            assert_eq!(e.score, snap.graph.in_degree(e.node) as f64);
        }
    }

    #[test]
    fn country_lists_cover_exactly_located_users() {
        let snap = small();
        assert!(!snap.country_top.is_empty(), "some users share a country");
        for ranking in &snap.country_top {
            assert!(!ranking.in_degree.is_empty());
            for e in &ranking.in_degree {
                assert_eq!(snap.countries[e.node as usize], Some(ranking.country));
            }
            let located = snap
                .countries
                .iter()
                .filter(|c| **c == Some(ranking.country))
                .count()
                .min(MAX_TOP_K as usize);
            assert_eq!(ranking.in_degree.len(), located);
        }
        // sorted by country, no duplicates
        for w in snap.country_top.windows(2) {
            assert!(w[0].country < w[1].country);
        }
    }

    #[test]
    fn reciprocal_flags_match_graph_structure() {
        let snap = small();
        for u in snap.graph.nodes() {
            let expected =
                snap.graph.out_neighbors(u).iter().any(|&v| snap.graph.has_edge(v, u));
            assert_eq!(snap.reciprocal[u as usize], expected, "node {u}");
        }
    }

    #[test]
    fn node_of_rejects_out_of_range_ids() {
        let snap = small();
        assert_eq!(snap.node_of(0), Some(0));
        let n = snap.graph.node_count() as u64;
        assert_eq!(snap.node_of(n - 1), Some((n - 1) as NodeId));
        assert_eq!(snap.node_of(n), None);
        assert_eq!(snap.node_of(u64::MAX), None, "u64-scale ids must not truncate");
        assert_eq!(snap.node_of(u64::from(u32::MAX) + 1), None);
    }

    #[test]
    fn sorted_intersection_counts() {
        assert_eq!(sorted_intersection_count(&[], &[]), 0);
        assert_eq!(sorted_intersection_count(&[1, 2, 3], &[]), 0);
        assert_eq!(sorted_intersection_count(&[1, 3, 5], &[2, 4, 6]), 0);
        assert_eq!(sorted_intersection_count(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(sorted_intersection_count(&[5], &[5]), 1);
    }

    #[test]
    fn snapshot_round_trips_through_directory() {
        let snap = small();
        let dir = std::env::temp_dir().join("gplus-serve-snapshot-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        snap.save(&dir).unwrap();
        let back = AnalysedSnapshot::load(&dir).unwrap();
        assert_eq!(back, snap);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_meta_payload_mismatch() {
        let snap = small();
        let dir = std::env::temp_dir().join("gplus-serve-snapshot-mismatch");
        let _ = std::fs::remove_dir_all(&dir);
        snap.save(&dir).unwrap();
        let mut meta = snap.meta();
        meta.seed ^= 1;
        std::fs::write(dir.join("meta.json"), serde_json::to_string(&meta).unwrap()).unwrap();
        assert!(matches!(AnalysedSnapshot::load(&dir), Err(SnapshotError::Semantic(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_leaves_no_temp_files_behind() {
        let snap = small();
        let dir = std::env::temp_dir().join("gplus-serve-snapshot-no-tmp");
        let _ = std::fs::remove_dir_all(&dir);
        snap.save(&dir).unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert!(!names.iter().any(|f| f.ends_with(".tmp")), "temp files left: {names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_single_flipped_byte_with_checksum_error() {
        let snap = small();
        let dir = std::env::temp_dir().join("gplus-serve-snapshot-bitrot");
        let _ = std::fs::remove_dir_all(&dir);
        snap.save(&dir).unwrap();
        let path = dir.join(PAYLOAD_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40; // one flipped bit somewhere in the container
        std::fs::write(&path, &bytes).unwrap();
        match AnalysedSnapshot::load(&dir) {
            Err(SnapshotError::Checksum { file, expected, actual }) => {
                assert_eq!(file, "snapshot.bin");
                assert_ne!(expected, actual);
            }
            other => panic!("expected checksum error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_reports_missing_files_as_typed_errors() {
        let snap = small();
        let dir = std::env::temp_dir().join("gplus-serve-snapshot-missing");
        let _ = std::fs::remove_dir_all(&dir);
        snap.save(&dir).unwrap();
        std::fs::remove_file(dir.join(PAYLOAD_FILE)).unwrap();
        assert!(matches!(
            AnalysedSnapshot::load(&dir),
            Err(SnapshotError::Missing { file }) if file == "snapshot.bin"
        ));
        std::fs::remove_file(dir.join("meta.json")).unwrap();
        assert!(matches!(
            AnalysedSnapshot::load(&dir),
            Err(SnapshotError::Missing { file }) if file == "meta.json"
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_version_skew() {
        let snap = small();
        let dir = std::env::temp_dir().join("gplus-serve-snapshot-skew");
        let _ = std::fs::remove_dir_all(&dir);
        snap.save(&dir).unwrap();
        let mut meta = snap.meta();
        meta.format_version = SNAPSHOT_FORMAT_VERSION + 1;
        std::fs::write(dir.join("meta.json"), serde_json::to_string(&meta).unwrap()).unwrap();
        assert!(matches!(
            AnalysedSnapshot::load(&dir),
            Err(SnapshotError::VersionSkew { found, supported })
                if found == SNAPSHOT_FORMAT_VERSION + 1 && supported == SNAPSHOT_FORMAT_VERSION
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_rejects_out_of_range_leaderboard_ids() {
        let mut snap = small();
        snap.validate().unwrap();
        let n = snap.graph.node_count() as NodeId;
        snap.pagerank_top.push(RankedNode { node: n, score: 0.5 });
        assert!(matches!(snap.validate(), Err(SnapshotError::Semantic(_))));
    }

    #[test]
    fn validate_rejects_nan_scores_and_short_vectors() {
        let mut snap = small();
        snap.in_degree_top[0].score = f64::NAN;
        assert!(matches!(snap.validate(), Err(SnapshotError::Semantic(_))));
        let mut snap = small();
        snap.names.pop();
        assert!(matches!(snap.validate(), Err(SnapshotError::Semantic(_))));
    }

    #[test]
    fn top_by_tolerates_nan_scores() {
        // regression: partial_cmp(...).expect("finite scores") panicked the
        // leaderboard builder on the first NaN score; total_cmp must rank
        // deterministically instead
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(50, 7));
        let g = &net.graph;
        let ranked = top_by(g, 10, |_| true, |u| if u == 3 { f64::NAN } else { u as f64 });
        assert_eq!(ranked.len(), 10);
        // IEEE total order ranks positive NaN above every finite score, so
        // the poisoned node leads the descending list — deterministically
        assert_eq!(ranked[0].node, 3);
        assert!(ranked[0].score.is_nan());
        // rerun places every entry identically
        let again = top_by(g, 10, |_| true, |u| if u == 3 { f64::NAN } else { u as f64 });
        let ids: Vec<_> = ranked.iter().map(|e| e.node).collect();
        let ids_again: Vec<_> = again.iter().map(|e| e.node).collect();
        assert_eq!(ids, ids_again);
    }

    #[test]
    fn payload_bytes_round_trip_bit_exactly() {
        let snap = small();
        let bytes = snap.to_payload_bytes();
        let back = AnalysedSnapshot::from_payload_bytes(bytes.clone()).unwrap();
        assert_eq!(back, snap);
        // re-encoding is deterministic: same snapshot, same bytes
        assert_eq!(back.to_payload_bytes(), bytes);
    }

    #[test]
    fn country_byte_codec_round_trips_every_variant() {
        assert_eq!(country_from_u8(country_to_u8(None)).unwrap(), None);
        for c in Country::all() {
            let b = country_to_u8(Some(c));
            assert_ne!(b, 0);
            assert_eq!(country_from_u8(b).unwrap(), Some(c));
        }
        // bytes beyond the encoded range are rejected, not wrapped
        assert!(country_from_u8(22).is_err());
        assert!(country_from_u8(u8::MAX).is_err());
    }

    #[test]
    fn garbage_payload_is_malformed_not_a_panic() {
        assert!(matches!(
            AnalysedSnapshot::from_payload_bytes(b"not a container".to_vec()),
            Err(SnapshotError::Malformed(_))
        ));
        // a truncated rankings section must be a typed error too
        let snap = small();
        let mut w = gplus_graph::binfmt::BinWriter::new(SNAPSHOT_FORMAT_VERSION);
        w.section(sec::SNAP_META, bytes_of_u64s(&[snap.seed]));
        w.section(sec::NAME_OFFSETS, bytes_of_u64s(&vec![0u64; snap.names.len() + 1]));
        w.section(sec::NAME_BLOB, Vec::new());
        w.section(sec::COUNTRIES, vec![0u8; snap.countries.len()]);
        w.section(sec::RECIPROCAL, vec![0u8; snap.reciprocal.len().div_ceil(8)]);
        w.section(sec::RANKINGS, vec![9, 0, 0]); // cut mid-length-prefix
        graph_io::graph_sections(&snap.graph, &mut w);
        assert!(matches!(
            AnalysedSnapshot::from_payload_bytes(w.to_bytes()),
            Err(SnapshotError::Malformed(m)) if m.contains("rankings")
        ));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // canonical FNV-1a 64 test vectors
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn dataset_view_exposes_materialized_attributes() {
        let snap = small();
        assert!(snap.profile_known(0));
        assert_eq!(Dataset::display_name(&snap, 0), Some("Larry Page".to_string()));
        assert_eq!(Dataset::country(&snap, 0), snap.countries[0]);
        assert_eq!(Dataset::gender(&snap, 0), None);
        assert_eq!(snap.known_profile_count(), snap.graph.node_count());
    }
}
