//! The immutable analysed snapshot the query engine serves from.
//!
//! The batch pipeline's outputs — graph, public profile attributes,
//! PageRank, degree rankings, per-country leaderboards — are frozen into
//! one [`AnalysedSnapshot`] at build time so every online query is a
//! lookup or a short traversal, never a full recomputation. Snapshots
//! round-trip through a directory (`meta.json` + `snapshot.json`) so an
//! operator can build one offline with `gplus snapshot` and serve it (or
//! hot-swap to a newer one) with `gplus serve`.
//!
//! The snapshot also implements [`Dataset`], which lets the serving path
//! reuse the batch extensions (friend recommendation, rankings) verbatim
//! instead of forking their logic.

use gplus_core::Dataset;
use gplus_geo::{Country, LatLon};
use gplus_graph::pagerank::{pagerank, PageRankParams};
use gplus_graph::{CsrGraph, NodeId};
use gplus_profiles::{Attribute, Gender, Occupation, RelationshipStatus};
use gplus_service::query::MAX_TOP_K;
use gplus_synth::SynthNetwork;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;

/// On-disk format version; bumped on any incompatible layout change.
/// Version 2 added the `payload_fnv1a` checksum to [`SnapshotMeta`].
pub const SNAPSHOT_FORMAT_VERSION: u32 = 2;

/// FNV-1a over a byte slice — the snapshot payload checksum. Not
/// cryptographic; it detects the failure modes a serving host actually
/// meets (torn writes, bit rot, truncation, hand edits), costs one pass,
/// and needs no dependency. The same digest keyed the workload replay
/// log before this module promoted it to an integrity primitive.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One entry of a precomputed ranking (internal node id + score).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankedNode {
    /// Internal CSR node id.
    pub node: NodeId,
    /// Metric value (PageRank score or degree).
    pub score: f64,
}

/// Precomputed leaderboards for the users located in one country.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountryRankings {
    /// The country (serialized by ISO code via its own serde impl).
    pub country: Country,
    /// Top users by PageRank, best first.
    pub pagerank: Vec<RankedNode>,
    /// Top users by in-degree, best first.
    pub in_degree: Vec<RankedNode>,
    /// Top users by out-degree, best first.
    pub out_degree: Vec<RankedNode>,
}

/// An immutable, fully analysed snapshot of the social graph.
///
/// Everything a serving query touches is materialized here; the struct is
/// plain data (serde round-trips it losslessly) and is only ever shared
/// behind an `Arc` by the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysedSnapshot {
    /// Seed of the generator run this snapshot froze (snapshot identity).
    pub seed: u64,
    /// The social graph.
    pub graph: CsrGraph,
    /// Display name per node.
    pub names: Vec<String>,
    /// Publicly shared country per node (`None` when withheld).
    pub countries: Vec<Option<Country>>,
    /// Whether the node has at least one reciprocated followee.
    pub reciprocal: Vec<bool>,
    /// Global top list by PageRank (length capped at [`MAX_TOP_K`]).
    pub pagerank_top: Vec<RankedNode>,
    /// Global top list by in-degree.
    pub in_degree_top: Vec<RankedNode>,
    /// Global top list by out-degree.
    pub out_degree_top: Vec<RankedNode>,
    /// Per-country leaderboards, sorted by country for determinism.
    pub country_top: Vec<CountryRankings>,
}

/// Sidecar identity record written next to the snapshot payload, small
/// enough to inspect without loading the graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotMeta {
    /// See [`SNAPSHOT_FORMAT_VERSION`].
    pub format_version: u32,
    /// Generator seed.
    pub seed: u64,
    /// Node count (consistency check against the payload).
    pub nodes: u64,
    /// Edge count (consistency check against the payload).
    pub edges: u64,
    /// [`fnv1a`] digest of the exact `snapshot.json` bytes. Verified on
    /// load *before* the payload is parsed, so corruption surfaces as a
    /// checksum mismatch with offsets intact rather than as whatever
    /// serde error the flipped byte happens to produce.
    pub payload_fnv1a: u64,
}

/// Why a snapshot could not be read or written. Every failure a serving
/// host can meet on the load path has a distinct shape so the swap guard
/// (and operators reading logs) can tell bit rot from version skew from
/// a half-written deploy.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure other than a missing file.
    Io(std::io::Error),
    /// A required snapshot file does not exist (interrupted deploy, wrong
    /// directory).
    Missing {
        /// File name relative to the snapshot directory.
        file: String,
    },
    /// The payload bytes do not hash to the digest recorded in
    /// `meta.json` — corruption or a torn write.
    Checksum {
        /// File whose bytes were hashed.
        file: String,
        /// Digest recorded in `meta.json`.
        expected: u64,
        /// Digest of the bytes actually on disk.
        actual: u64,
    },
    /// The snapshot was written by an incompatible format version.
    VersionSkew {
        /// Version recorded in `meta.json`.
        found: u32,
        /// Version this build reads.
        supported: u32,
    },
    /// A file did not parse as the expected JSON shape.
    Malformed(String),
    /// The payload parsed but violates a structural invariant (vector
    /// lengths, leaderboard ids out of range, non-finite scores, meta
    /// identity mismatch) — serving it would produce wrong answers.
    Semantic(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::Missing { file } => write!(f, "snapshot file missing: {file}"),
            SnapshotError::Checksum { file, expected, actual } => write!(
                f,
                "snapshot checksum mismatch in {file}: meta records {expected:#018x}, \
                 bytes hash to {actual:#018x}"
            ),
            SnapshotError::VersionSkew { found, supported } => write!(
                f,
                "snapshot format version skew: found {found}, this build reads {supported}"
            ),
            SnapshotError::Malformed(m) => write!(f, "snapshot malformed: {m}"),
            SnapshotError::Semantic(m) => write!(f, "snapshot semantically invalid: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Number of elements the sorted slices `a` and `b` share (the
/// two-pointer merge step; both inputs must be ascending, as CSR
/// neighbour slices are).
pub fn sorted_intersection_count(a: &[NodeId], b: &[NodeId]) -> u64 {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Top-`k` nodes from `score(node)`, descending, ties by node id — the
/// same ordering contract as [`PageRank::top`]. Only nodes for which
/// `include` holds participate (used for per-country restriction).
fn top_by<F, G>(g: &CsrGraph, k: usize, include: G, score: F) -> Vec<RankedNode>
where
    F: Fn(NodeId) -> f64,
    G: Fn(NodeId) -> bool,
{
    let mut ranked: Vec<RankedNode> = g
        .nodes()
        .filter(|&u| include(u))
        .map(|u| RankedNode { node: u, score: score(u) })
        .collect();
    // total_cmp, not partial_cmp: a NaN score (e.g. a poisoned PageRank
    // run) must sort deterministically instead of panicking the
    // leaderboard builder mid-snapshot-build; under IEEE total order a
    // positive NaN ranks above +inf and a negative NaN below -inf, and
    // every rerun places it identically
    ranked.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.node.cmp(&b.node)));
    ranked.truncate(k);
    ranked
}

impl AnalysedSnapshot {
    /// Runs the batch analyses over a generated network and freezes the
    /// results. This is the expensive offline step (`gplus snapshot`);
    /// serving never calls it.
    pub fn build(network: &SynthNetwork) -> Self {
        let _span = gplus_obs::global().span("serve.snapshot.build");
        let g = &network.graph;
        let n = g.node_count();
        let cap = MAX_TOP_K as usize;

        let mut names = Vec::with_capacity(n);
        let mut countries = Vec::with_capacity(n);
        let mut reciprocal = Vec::with_capacity(n);
        for u in g.nodes() {
            let profile = network.population.profile(u);
            names.push(profile.display_name());
            countries.push(profile.public_country());
            reciprocal
                .push(sorted_intersection_count(g.out_neighbors(u), g.in_neighbors(u)) > 0);
        }

        let pr = pagerank(g, &PageRankParams::default());
        let pagerank_top: Vec<RankedNode> =
            pr.top(cap).into_iter().map(|(node, score)| RankedNode { node, score }).collect();
        let in_degree_top = top_by(g, cap, |_| true, |u| g.in_degree(u) as f64);
        let out_degree_top = top_by(g, cap, |_| true, |u| g.out_degree(u) as f64);

        // per-country leaderboards for every country that occurs at all
        let mut located: HashMap<Country, ()> = HashMap::new();
        for c in countries.iter().flatten() {
            located.insert(*c, ());
        }
        let mut present: Vec<Country> = located.into_keys().collect();
        present.sort();
        let country_top = present
            .into_iter()
            .map(|c| {
                let here = |u: NodeId| countries[u as usize] == Some(c);
                CountryRankings {
                    country: c,
                    pagerank: top_by(g, cap, here, |u| pr.scores[u as usize]),
                    in_degree: top_by(g, cap, here, |u| g.in_degree(u) as f64),
                    out_degree: top_by(g, cap, here, |u| g.out_degree(u) as f64),
                }
            })
            .collect();

        Self {
            seed: network.config.seed,
            graph: g.clone(),
            names,
            countries,
            reciprocal,
            pagerank_top,
            in_degree_top,
            out_degree_top,
            country_top,
        }
    }

    /// The identity record for this snapshot, including the payload
    /// checksum. Serializes the snapshot to hash it; `save` reuses the
    /// bytes instead of calling this twice.
    pub fn meta(&self) -> SnapshotMeta {
        let payload = serde_json::to_vec(self).expect("snapshot serializes");
        self.meta_for_payload(&payload)
    }

    fn meta_for_payload(&self, payload: &[u8]) -> SnapshotMeta {
        SnapshotMeta {
            format_version: SNAPSHOT_FORMAT_VERSION,
            seed: self.seed,
            nodes: self.graph.node_count() as u64,
            edges: self.graph.edge_count() as u64,
            payload_fnv1a: fnv1a(payload),
        }
    }

    /// Resolves a public user id to an internal node, rejecting ids
    /// outside the snapshot (including u64-scale ids that cannot index a
    /// CSR graph) instead of truncating them.
    pub fn node_of(&self, user: u64) -> Option<NodeId> {
        let node = NodeId::try_from(user).ok()?;
        ((node as usize) < self.graph.node_count()).then_some(node)
    }

    /// Writes `meta.json` and `snapshot.json` into `dir` (created if
    /// missing) via write-temp-then-rename. Both files are staged as
    /// `.tmp` siblings first and renamed into place payload-before-meta,
    /// so a process killed at any instant leaves either the fully-old
    /// directory or one whose inconsistency `load` *detects* (checksum or
    /// identity mismatch against the old meta) — never a silently torn
    /// snapshot that serves wrong answers.
    pub fn save(&self, dir: &Path) -> Result<(), SnapshotError> {
        std::fs::create_dir_all(dir)?;
        let payload =
            serde_json::to_vec(self).map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        let meta = serde_json::to_string_pretty(&self.meta_for_payload(&payload))
            .map_err(|e| SnapshotError::Malformed(e.to_string()))?;
        let payload_tmp = dir.join("snapshot.json.tmp");
        let meta_tmp = dir.join("meta.json.tmp");
        std::fs::write(&payload_tmp, &payload)?;
        std::fs::write(&meta_tmp, meta)?;
        std::fs::rename(&payload_tmp, dir.join("snapshot.json"))?;
        std::fs::rename(&meta_tmp, dir.join("meta.json"))?;
        Ok(())
    }

    /// Loads a snapshot directory, verifying — in order — that both files
    /// exist, the format version matches, the payload bytes hash to the
    /// digest `meta.json` records, the payload parses, its structure is
    /// semantically valid ([`AnalysedSnapshot::validate`]), and its
    /// identity agrees with the meta record. A snapshot that fails any
    /// step must never reach the serving path.
    pub fn load(dir: &Path) -> Result<Self, SnapshotError> {
        let meta_bytes = read_snapshot_file(dir, "meta.json")?;
        let meta: SnapshotMeta = serde_json::from_slice(&meta_bytes)
            .map_err(|e| SnapshotError::Malformed(format!("meta.json: {e}")))?;
        if meta.format_version != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotError::VersionSkew {
                found: meta.format_version,
                supported: SNAPSHOT_FORMAT_VERSION,
            });
        }
        let payload = read_snapshot_file(dir, "snapshot.json")?;
        let actual_digest = fnv1a(&payload);
        if actual_digest != meta.payload_fnv1a {
            return Err(SnapshotError::Checksum {
                file: "snapshot.json".to_string(),
                expected: meta.payload_fnv1a,
                actual: actual_digest,
            });
        }
        let snapshot: AnalysedSnapshot = serde_json::from_slice(&payload)
            .map_err(|e| SnapshotError::Malformed(format!("snapshot.json: {e}")))?;
        snapshot.validate()?;
        let actual = snapshot.meta_for_payload(&payload);
        if actual != meta {
            return Err(SnapshotError::Semantic(format!(
                "meta.json disagrees with payload: {meta:?} vs {actual:?}"
            )));
        }
        Ok(snapshot)
    }

    /// Structural invariants a serving snapshot must satisfy. The
    /// checksum proves the bytes are what the builder wrote; this proves
    /// what the builder wrote is *servable* — every leaderboard entry
    /// indexes a real node with a non-NaN score, attribute vectors cover
    /// exactly the graph, and per-country lists are strictly sorted (the
    /// binary-search contract of country lookups).
    pub fn validate(&self) -> Result<(), SnapshotError> {
        let n = self.graph.node_count();
        if self.names.len() != n || self.countries.len() != n || self.reciprocal.len() != n {
            return Err(SnapshotError::Semantic(format!(
                "attribute vectors disagree with graph: {n} nodes vs {} names, {} countries, \
                 {} reciprocal flags",
                self.names.len(),
                self.countries.len(),
                self.reciprocal.len()
            )));
        }
        let check = |label: &str, list: &[RankedNode]| -> Result<(), SnapshotError> {
            for e in list {
                if (e.node as usize) >= n {
                    return Err(SnapshotError::Semantic(format!(
                        "{label} ranks node {} but the graph has {n} nodes",
                        e.node
                    )));
                }
                if e.score.is_nan() {
                    return Err(SnapshotError::Semantic(format!(
                        "{label} carries a NaN score for node {}",
                        e.node
                    )));
                }
            }
            Ok(())
        };
        check("pagerank_top", &self.pagerank_top)?;
        check("in_degree_top", &self.in_degree_top)?;
        check("out_degree_top", &self.out_degree_top)?;
        for w in self.country_top.windows(2) {
            if w[0].country >= w[1].country {
                return Err(SnapshotError::Semantic(format!(
                    "country_top not strictly sorted: {:?} then {:?}",
                    w[0].country, w[1].country
                )));
            }
        }
        for ranking in &self.country_top {
            let c = ranking.country;
            check(&format!("country_top[{c:?}].pagerank"), &ranking.pagerank)?;
            check(&format!("country_top[{c:?}].in_degree"), &ranking.in_degree)?;
            check(&format!("country_top[{c:?}].out_degree"), &ranking.out_degree)?;
        }
        Ok(())
    }
}

/// Reads one snapshot file, mapping "not found" to the typed
/// [`SnapshotError::Missing`] (an interrupted deploy looks exactly like
/// this) and every other io failure to [`SnapshotError::Io`].
fn read_snapshot_file(dir: &Path, name: &str) -> Result<Vec<u8>, SnapshotError> {
    std::fs::read(dir.join(name)).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            SnapshotError::Missing { file: name.to_string() }
        } else {
            SnapshotError::Io(e)
        }
    })
}

/// The snapshot doubles as a [`Dataset`], so batch extensions (friend
/// recommendation in particular) run against it unchanged. Only the
/// attributes the serving layer materializes are exposed; everything else
/// reports "withheld", which the extensions already handle.
impl Dataset for AnalysedSnapshot {
    fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    fn profile_known(&self, node: NodeId) -> bool {
        (node as usize) < self.names.len()
    }

    fn display_name(&self, node: NodeId) -> Option<String> {
        self.names.get(node as usize).cloned()
    }

    fn gender(&self, _node: NodeId) -> Option<Gender> {
        None
    }

    fn relationship(&self, _node: NodeId) -> Option<RelationshipStatus> {
        None
    }

    fn occupation(&self, _node: NodeId) -> Option<Occupation> {
        None
    }

    fn country(&self, node: NodeId) -> Option<Country> {
        self.countries.get(node as usize).copied().flatten()
    }

    fn location(&self, _node: NodeId) -> Option<LatLon> {
        None
    }

    fn fields_shared(&self, _node: NodeId) -> Option<u32> {
        None
    }

    fn fields_shared_excl_contact(&self, _node: NodeId) -> Option<u32> {
        None
    }

    fn is_tel_user(&self, _node: NodeId) -> Option<bool> {
        None
    }

    fn public_attribute_list(&self, _node: NodeId) -> Option<Vec<Attribute>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_synth::SynthConfig;

    fn small() -> AnalysedSnapshot {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(400, 7));
        AnalysedSnapshot::build(&net)
    }

    #[test]
    fn build_materializes_every_node() {
        let snap = small();
        let n = snap.graph.node_count();
        assert_eq!(snap.names.len(), n);
        assert_eq!(snap.countries.len(), n);
        assert_eq!(snap.reciprocal.len(), n);
        assert_eq!(snap.names[0], "Larry Page");
        assert!(!snap.pagerank_top.is_empty());
        assert_eq!(snap.in_degree_top.len(), n.min(MAX_TOP_K as usize));
    }

    #[test]
    fn rankings_are_descending_with_stable_ties() {
        let snap = small();
        for list in [&snap.pagerank_top, &snap.in_degree_top, &snap.out_degree_top] {
            for w in list.windows(2) {
                assert!(
                    w[0].score > w[1].score
                        || (w[0].score == w[1].score && w[0].node < w[1].node),
                    "ordering violated: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
        // degree lists carry the true degrees
        for e in snap.in_degree_top.iter().take(10) {
            assert_eq!(e.score, snap.graph.in_degree(e.node) as f64);
        }
    }

    #[test]
    fn country_lists_cover_exactly_located_users() {
        let snap = small();
        assert!(!snap.country_top.is_empty(), "some users share a country");
        for ranking in &snap.country_top {
            assert!(!ranking.in_degree.is_empty());
            for e in &ranking.in_degree {
                assert_eq!(snap.countries[e.node as usize], Some(ranking.country));
            }
            let located = snap
                .countries
                .iter()
                .filter(|c| **c == Some(ranking.country))
                .count()
                .min(MAX_TOP_K as usize);
            assert_eq!(ranking.in_degree.len(), located);
        }
        // sorted by country, no duplicates
        for w in snap.country_top.windows(2) {
            assert!(w[0].country < w[1].country);
        }
    }

    #[test]
    fn reciprocal_flags_match_graph_structure() {
        let snap = small();
        for u in snap.graph.nodes() {
            let expected =
                snap.graph.out_neighbors(u).iter().any(|&v| snap.graph.has_edge(v, u));
            assert_eq!(snap.reciprocal[u as usize], expected, "node {u}");
        }
    }

    #[test]
    fn node_of_rejects_out_of_range_ids() {
        let snap = small();
        assert_eq!(snap.node_of(0), Some(0));
        let n = snap.graph.node_count() as u64;
        assert_eq!(snap.node_of(n - 1), Some((n - 1) as NodeId));
        assert_eq!(snap.node_of(n), None);
        assert_eq!(snap.node_of(u64::MAX), None, "u64-scale ids must not truncate");
        assert_eq!(snap.node_of(u64::from(u32::MAX) + 1), None);
    }

    #[test]
    fn sorted_intersection_counts() {
        assert_eq!(sorted_intersection_count(&[], &[]), 0);
        assert_eq!(sorted_intersection_count(&[1, 2, 3], &[]), 0);
        assert_eq!(sorted_intersection_count(&[1, 3, 5], &[2, 4, 6]), 0);
        assert_eq!(sorted_intersection_count(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(sorted_intersection_count(&[5], &[5]), 1);
    }

    #[test]
    fn snapshot_round_trips_through_directory() {
        let snap = small();
        let dir = std::env::temp_dir().join("gplus-serve-snapshot-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        snap.save(&dir).unwrap();
        let back = AnalysedSnapshot::load(&dir).unwrap();
        assert_eq!(back, snap);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_meta_payload_mismatch() {
        let snap = small();
        let dir = std::env::temp_dir().join("gplus-serve-snapshot-mismatch");
        let _ = std::fs::remove_dir_all(&dir);
        snap.save(&dir).unwrap();
        let mut meta = snap.meta();
        meta.seed ^= 1;
        std::fs::write(dir.join("meta.json"), serde_json::to_string(&meta).unwrap()).unwrap();
        assert!(matches!(AnalysedSnapshot::load(&dir), Err(SnapshotError::Semantic(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_leaves_no_temp_files_behind() {
        let snap = small();
        let dir = std::env::temp_dir().join("gplus-serve-snapshot-no-tmp");
        let _ = std::fs::remove_dir_all(&dir);
        snap.save(&dir).unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert!(!names.iter().any(|f| f.ends_with(".tmp")), "temp files left: {names:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_single_flipped_byte_with_checksum_error() {
        let snap = small();
        let dir = std::env::temp_dir().join("gplus-serve-snapshot-bitrot");
        let _ = std::fs::remove_dir_all(&dir);
        snap.save(&dir).unwrap();
        let path = dir.join("snapshot.json");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40; // one flipped bit, still plausibly valid JSON bytes
        std::fs::write(&path, &bytes).unwrap();
        match AnalysedSnapshot::load(&dir) {
            Err(SnapshotError::Checksum { file, expected, actual }) => {
                assert_eq!(file, "snapshot.json");
                assert_ne!(expected, actual);
            }
            other => panic!("expected checksum error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_reports_missing_files_as_typed_errors() {
        let snap = small();
        let dir = std::env::temp_dir().join("gplus-serve-snapshot-missing");
        let _ = std::fs::remove_dir_all(&dir);
        snap.save(&dir).unwrap();
        std::fs::remove_file(dir.join("snapshot.json")).unwrap();
        assert!(matches!(
            AnalysedSnapshot::load(&dir),
            Err(SnapshotError::Missing { file }) if file == "snapshot.json"
        ));
        std::fs::remove_file(dir.join("meta.json")).unwrap();
        assert!(matches!(
            AnalysedSnapshot::load(&dir),
            Err(SnapshotError::Missing { file }) if file == "meta.json"
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_version_skew() {
        let snap = small();
        let dir = std::env::temp_dir().join("gplus-serve-snapshot-skew");
        let _ = std::fs::remove_dir_all(&dir);
        snap.save(&dir).unwrap();
        let mut meta = snap.meta();
        meta.format_version = SNAPSHOT_FORMAT_VERSION + 1;
        std::fs::write(dir.join("meta.json"), serde_json::to_string(&meta).unwrap()).unwrap();
        assert!(matches!(
            AnalysedSnapshot::load(&dir),
            Err(SnapshotError::VersionSkew { found, supported })
                if found == SNAPSHOT_FORMAT_VERSION + 1 && supported == SNAPSHOT_FORMAT_VERSION
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_rejects_out_of_range_leaderboard_ids() {
        let mut snap = small();
        snap.validate().unwrap();
        let n = snap.graph.node_count() as NodeId;
        snap.pagerank_top.push(RankedNode { node: n, score: 0.5 });
        assert!(matches!(snap.validate(), Err(SnapshotError::Semantic(_))));
    }

    #[test]
    fn validate_rejects_nan_scores_and_short_vectors() {
        let mut snap = small();
        snap.in_degree_top[0].score = f64::NAN;
        assert!(matches!(snap.validate(), Err(SnapshotError::Semantic(_))));
        let mut snap = small();
        snap.names.pop();
        assert!(matches!(snap.validate(), Err(SnapshotError::Semantic(_))));
    }

    #[test]
    fn top_by_tolerates_nan_scores() {
        // regression: partial_cmp(...).expect("finite scores") panicked the
        // leaderboard builder on the first NaN score; total_cmp must rank
        // deterministically instead
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(50, 7));
        let g = &net.graph;
        let ranked = top_by(g, 10, |_| true, |u| if u == 3 { f64::NAN } else { u as f64 });
        assert_eq!(ranked.len(), 10);
        // IEEE total order ranks positive NaN above every finite score, so
        // the poisoned node leads the descending list — deterministically
        assert_eq!(ranked[0].node, 3);
        assert!(ranked[0].score.is_nan());
        // rerun places every entry identically
        let again = top_by(g, 10, |_| true, |u| if u == 3 { f64::NAN } else { u as f64 });
        let ids: Vec<_> = ranked.iter().map(|e| e.node).collect();
        let ids_again: Vec<_> = again.iter().map(|e| e.node).collect();
        assert_eq!(ids, ids_again);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // canonical FNV-1a 64 test vectors
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn dataset_view_exposes_materialized_attributes() {
        let snap = small();
        assert!(snap.profile_known(0));
        assert_eq!(Dataset::display_name(&snap, 0), Some("Larry Page".to_string()));
        assert_eq!(Dataset::country(&snap, 0), snap.countries[0]);
        assert_eq!(Dataset::gender(&snap, 0), None);
        assert_eq!(snap.known_profile_count(), snap.graph.node_count());
    }
}
