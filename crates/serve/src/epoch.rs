//! Epoch-tagged atomic snapshot holder.
//!
//! The serving engine answers every query against an immutable
//! [`Arc`]-held snapshot. An operator swaps in a freshly analysed
//! snapshot *under live traffic*; readers must never observe a torn view
//! (half old snapshot, half new) and must be able to tell *which* epoch
//! answered them. The classic lock-free solution is arc-swap's
//! RCU-style pointer publication; this repo's no-new-dependency
//! discipline gets the same safety (not the same nanoseconds — fine at
//! simulation scale) from a [`RwLock`]`<Arc<T>>` plus an epoch counter
//! bumped inside the writer critical section, so the `(snapshot, epoch)`
//! pair a reader extracts is always mutually consistent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// An `Arc<T>` cell supporting atomic replacement with a monotone epoch.
///
/// Readers pay one read-lock acquisition and one `Arc` clone per query;
/// the critical section is a pointer copy, so readers never block each
/// other and a swap blocks only for the duration of two pointer writes.
#[derive(Debug)]
pub struct EpochSwap<T> {
    current: RwLock<Arc<T>>,
    epoch: AtomicU64,
}

impl<T> EpochSwap<T> {
    /// Wraps the initial value at epoch 0.
    pub fn new(value: Arc<T>) -> Self {
        Self { current: RwLock::new(value), epoch: AtomicU64::new(0) }
    }

    /// Read-locks the cell, recovering from poison. The held value is an
    /// `Arc<T>` that is only ever *replaced whole* under the write lock,
    /// never mutated in place, so a writer that panicked cannot have left
    /// it half-updated — the poison flag carries no information here and
    /// swallowing it is sound. A panicked swap must wedge the one swap,
    /// not every reader for the life of the process.
    fn read(&self) -> RwLockReadGuard<'_, Arc<T>> {
        self.current.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, Arc<T>> {
        self.current.write().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Returns the current value. The clone is cheap (refcount bump) and
    /// the caller's view is immutable for as long as it holds the `Arc`,
    /// regardless of later swaps.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.read())
    }

    /// Returns the current value together with the epoch that published
    /// it. Both are read under one lock acquisition, so the pair is
    /// consistent: an epoch `e` is never returned with a snapshot
    /// published at some other epoch.
    pub fn load_with_epoch(&self) -> (Arc<T>, u64) {
        let guard = self.read();
        let value = Arc::clone(&guard);
        let epoch = self.epoch.load(Ordering::Acquire);
        (value, epoch)
    }

    /// The number of swaps performed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Atomically replaces the value and returns the new epoch. In-flight
    /// readers keep their `Arc` to the old value; the old snapshot is
    /// dropped when the last of them finishes.
    pub fn swap(&self, next: Arc<T>) -> u64 {
        self.swap_with(|| next)
    }

    /// Runs `make` under the write lock and publishes its result. The
    /// epoch bump happens *after* the new value is in place, still inside
    /// the critical section; if `make` panics the value and the epoch are
    /// both untouched (the panic unwinds before either write), so readers
    /// — including ones that recover the poisoned lock — keep serving the
    /// old epoch.
    pub fn swap_with(&self, make: impl FnOnce() -> Arc<T>) -> u64 {
        let mut guard = self.write();
        let next = make();
        *guard = next;
        // incremented while the write lock is held so no reader can pair
        // the new snapshot with the old epoch or vice versa
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn load_returns_initial_value_at_epoch_zero() {
        let cell = EpochSwap::new(Arc::new(41));
        let (v, e) = cell.load_with_epoch();
        assert_eq!(*v, 41);
        assert_eq!(e, 0);
        assert_eq!(cell.epoch(), 0);
    }

    #[test]
    fn swap_bumps_epoch_and_replaces_value() {
        let cell = EpochSwap::new(Arc::new(1));
        let held = cell.load();
        assert_eq!(cell.swap(Arc::new(2)), 1);
        assert_eq!(*cell.load(), 2);
        assert_eq!(cell.epoch(), 1);
        // in-flight readers keep the old value alive
        assert_eq!(*held, 1);
    }

    #[test]
    fn panicked_writer_does_not_wedge_readers() {
        let cell = Arc::new(EpochSwap::new(Arc::new(7u64)));
        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                cell.swap_with(|| panic!("writer died mid-swap"));
            })
        };
        assert!(writer.join().is_err(), "writer must have panicked");
        // the RwLock is now poisoned; readers must recover it and keep
        // serving the old value at the old epoch
        assert_eq!(*cell.load(), 7);
        let (v, e) = cell.load_with_epoch();
        assert_eq!(*v, 7);
        assert_eq!(e, 0, "failed swap must not consume an epoch");
        // and a later, healthy swap still goes through
        assert_eq!(cell.swap(Arc::new(8)), 1);
        assert_eq!(*cell.load(), 8);
    }

    #[test]
    fn concurrent_readers_always_see_consistent_pairs() {
        // values are (epoch, payload) with payload == epoch * 1000; a torn
        // read would pair an epoch with the wrong payload
        let cell = Arc::new(EpochSwap::new(Arc::new((0u64, 0u64))));
        let swapper = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                for e in 1..=200u64 {
                    cell.swap(Arc::new((e, e * 1000)));
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    for _ in 0..2000 {
                        let (v, e) = cell.load_with_epoch();
                        assert_eq!(v.0, e, "snapshot paired with foreign epoch");
                        assert_eq!(v.1, v.0 * 1000, "torn snapshot observed");
                    }
                })
            })
            .collect();
        swapper.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.epoch(), 200);
    }
}
