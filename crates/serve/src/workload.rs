//! Deterministic serving workload: a seeded Zipf query stream with hot
//! celebrity keys.
//!
//! The generator is pure — query `i` of a given [`WorkloadConfig`] is a
//! function of the seed alone, never of engine state or wall clock — so
//! two runs with the same config produce byte-identical query logs and
//! cost-bucket counts. That is the replay property the determinism tests
//! and the CI `serve` job assert with a straight `cmp`. Key popularity is
//! Zipfian over the node-id space: the generator places celebrities at
//! the lowest ids (node 0 is Larry Page), so low ids are exactly the hot
//! keys a real serving tier would see.
//!
//! Wall-clock latency goes to the engine's obs histograms (for humans and
//! the bench suite); the *deterministic* cost signal recorded here is the
//! response payload size in bytes, folded through the same logarithmic
//! buckets (`gplus_obs::bucket_index`) so replays can be compared
//! bucket-for-bucket.

use crate::engine::{QueryEngine, QUERY_KINDS};
use crate::snapshot::{fnv1a, AnalysedSnapshot};
use crate::swap::SwapGuard;
use gplus_geo::TOP10_COUNTRIES;
use gplus_service::failure::splitmix64;
use gplus_service::query::{QueryError, QueryRequest, QueryResponse, RankMetric};
use gplus_service::Direction;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::Path;

/// Weighted query-type mix (weights are relative, need not sum to
/// anything in particular; a zero weight disables the kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryMix {
    /// Profile point lookups.
    pub profile: u32,
    /// Degree point lookups.
    pub degree: u32,
    /// Circle-list fetches.
    pub circles: u32,
    /// Reciprocity lookups.
    pub reciprocity: u32,
    /// Top-k rankings (half country-restricted).
    pub topk: u32,
    /// Pairwise shortest paths.
    pub shortest_path: u32,
    /// Friend recommendations.
    pub recommend: u32,
    /// Epoch probes.
    pub epoch: u32,
}

impl Default for QueryMix {
    /// A read-mostly mix: point lookups dominate, traversal-heavy kinds
    /// are the tail — the shape of a social-graph serving tier.
    fn default() -> Self {
        Self {
            profile: 30,
            degree: 15,
            circles: 15,
            reciprocity: 10,
            topk: 10,
            shortest_path: 8,
            recommend: 8,
            epoch: 4,
        }
    }
}

impl QueryMix {
    fn cumulative(&self) -> [u64; 8] {
        let w = [
            self.profile,
            self.degree,
            self.circles,
            self.reciprocity,
            self.topk,
            self.shortest_path,
            self.recommend,
            self.epoch,
        ];
        let mut cdf = [0u64; 8];
        let mut acc = 0u64;
        for (slot, weight) in cdf.iter_mut().zip(w) {
            acc += u64::from(weight);
            *slot = acc;
        }
        assert!(acc > 0, "query mix must have at least one positive weight");
        cdf
    }
}

/// Workload parameters. Fully describes the query stream: same config,
/// same stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of queries to issue.
    pub queries: u64,
    /// Id space queries draw users from (typically the snapshot's node
    /// count; ids past a smaller snapshot answer `UnknownUser`).
    pub user_space: u64,
    /// Zipf skew exponent; higher concentrates traffic on the celebrity
    /// ids. 0 is uniform.
    pub zipf_exponent: f64,
    /// Query-type mix.
    pub mix: QueryMix,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            seed: 2012,
            queries: 1_000,
            user_space: 1,
            zipf_exponent: 1.0,
            mix: QueryMix::default(),
        }
    }
}

/// Outcome of one workload run. `log` and `cost_buckets` are the
/// deterministic replay artifacts; everything else is summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Queries issued.
    pub queries: u64,
    /// Queries answered with [`gplus_service::query::QueryResponse::Error`],
    /// of any cause — shed queries included.
    pub failed: u64,
    /// The subset of `failed` that was overload protection doing its job
    /// ([`QueryError::Overloaded`] / [`QueryError::DeadlineExceeded`])
    /// rather than a wrong or unanswerable query. `failed > shed` is the
    /// serve CLI's hard-failure signal.
    pub shed: u64,
    /// Whether an injected swap was rejected by the [`SwapGuard`] (the
    /// old snapshot kept serving).
    pub swap_rejected: bool,
    /// Per-kind query counts, in [`QUERY_KINDS`] order.
    pub per_kind: Vec<(String, u64)>,
    /// Response-size histogram over `gplus_obs` buckets (deterministic
    /// stand-in for latency buckets).
    pub cost_buckets: Vec<u64>,
    /// Query index the snapshot swap was injected at, if any.
    pub swapped_at: Option<u64>,
    /// The query log: one `seq\tkind\tdigest` line per query, where the
    /// digest is an FNV-1a fold of the serialized response.
    pub log: String,
}

/// Minimal deterministic RNG: a splitmix64 counter stream. Not
/// cryptographic; statistically solid for workload shaping and entirely
/// reproducible from the seed.
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: u64,
}

impl SeededRng {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`. The modulo bias is negligible for the small
    /// `n` used here and costs nothing in determinism.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Zipf sampler over ids `0..n` by inverse-CDF binary search; id 0 (the
/// most-followed celebrity) is the hottest key.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the cumulative weights `sum 1/(i+1)^s`.
    pub fn new(n: u64, exponent: f64) -> Self {
        assert!(n > 0, "zipf table needs a non-empty id space");
        assert!(exponent >= 0.0 && exponent.is_finite(), "zipf exponent must be finite");
        let n = usize::try_from(n).expect("id space fits in memory");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        Self { cdf }
    }

    /// Draws one id.
    pub fn sample(&self, rng: &mut SeededRng) -> u64 {
        let total = *self.cdf.last().expect("non-empty table");
        let r = rng.next_f64() * total;
        let idx = self.cdf.partition_point(|&c| c <= r);
        idx.min(self.cdf.len() - 1) as u64
    }
}

/// The `i`-th query of the stream, given the shared sampler state.
fn generate(rng: &mut SeededRng, zipf: &ZipfTable, mix_cdf: &[u64; 8]) -> QueryRequest {
    let total = mix_cdf[7];
    let pick = rng.below(total);
    let kind = mix_cdf.iter().position(|&c| pick < c).expect("pick < total");
    match kind {
        0 => QueryRequest::Profile { user: zipf.sample(rng) },
        1 => QueryRequest::Degree { user: zipf.sample(rng) },
        2 => QueryRequest::Circles {
            user: zipf.sample(rng),
            direction: if rng.next_u64() & 1 == 0 {
                Direction::InCircles
            } else {
                Direction::OutCircles
            },
            limit: 1 + rng.below(64) as u32,
        },
        3 => QueryRequest::Reciprocity { user: zipf.sample(rng) },
        4 => QueryRequest::TopK {
            metric: match rng.below(3) {
                0 => RankMetric::PageRank,
                1 => RankMetric::InDegree,
                _ => RankMetric::OutDegree,
            },
            k: 1 + rng.below(20) as u32,
            country: if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(TOP10_COUNTRIES[rng.below(10) as usize])
            },
        },
        5 => QueryRequest::ShortestPath { src: zipf.sample(rng), dst: zipf.sample(rng) },
        6 => QueryRequest::Recommend { user: zipf.sample(rng), k: 1 + rng.below(10) as u32 },
        _ => QueryRequest::Epoch,
    }
}

/// What to do when the swap index is reached mid-workload.
enum SwapPlan<'a> {
    /// No swap injected.
    None,
    /// Trusted in-memory swap (the original hot-reload drill).
    Trusted(u64, &'a AnalysedSnapshot),
    /// Guarded swap from a directory: full integrity validation; a
    /// rejection leaves the old epoch serving and is recorded in the
    /// report rather than aborting the run.
    Guarded(u64, &'a Path),
}

impl SwapPlan<'_> {
    fn at(&self) -> Option<u64> {
        match self {
            SwapPlan::None => None,
            SwapPlan::Trusted(at, _) | SwapPlan::Guarded(at, _) => Some(*at),
        }
    }
}

/// Runs the workload against `engine`, optionally swapping in `snapshot`
/// when query index `at` is reached (`swap_at = Some((at, &snapshot))`) —
/// the hot-reload drill. Single-threaded by design: a total order over
/// queries is what makes the log replayable byte-for-byte.
pub fn run(
    engine: &QueryEngine,
    config: &WorkloadConfig,
    swap_at: Option<(u64, &AnalysedSnapshot)>,
) -> WorkloadReport {
    let plan = match swap_at {
        None => SwapPlan::None,
        Some((at, snapshot)) => SwapPlan::Trusted(at, snapshot),
    };
    run_with_plan(engine, config, plan)
}

/// Like [`run`], but the injected swap goes through a [`SwapGuard`] over
/// a snapshot *directory* — the deployment-shaped drill. If the
/// directory fails validation the workload keeps serving the old epoch
/// and reports `swap_rejected = true`; queries are never interrupted.
pub fn run_guarded(
    engine: &QueryEngine,
    config: &WorkloadConfig,
    swap_at: Option<(u64, &Path)>,
) -> WorkloadReport {
    let plan = match swap_at {
        None => SwapPlan::None,
        Some((at, dir)) => SwapPlan::Guarded(at, dir),
    };
    run_with_plan(engine, config, plan)
}

fn run_with_plan(
    engine: &QueryEngine,
    config: &WorkloadConfig,
    plan: SwapPlan<'_>,
) -> WorkloadReport {
    let obs = gplus_obs::global();
    let _span = obs.span("serve.workload.run");
    let mut rng = SeededRng::new(config.seed);
    let zipf = ZipfTable::new(config.user_space, config.zipf_exponent);
    let mix_cdf = config.mix.cumulative();

    let mut per_kind = [0u64; 8];
    let mut cost_buckets = vec![0u64; gplus_obs::NUM_BUCKETS];
    let mut failed = 0u64;
    let mut shed = 0u64;
    let mut log = String::new();
    let mut swapped_at = None;
    let mut swap_rejected = false;

    for seq in 0..config.queries {
        if plan.at() == Some(seq) {
            match &plan {
                SwapPlan::None => unreachable!("at() is None for SwapPlan::None"),
                SwapPlan::Trusted(_, snapshot) => {
                    engine.swap((*snapshot).clone());
                    swapped_at = Some(seq);
                }
                SwapPlan::Guarded(_, dir) => match SwapGuard::new(engine).apply_dir(dir) {
                    Ok(_) => swapped_at = Some(seq),
                    Err(_) => swap_rejected = true,
                },
            }
        }
        let req = generate(&mut rng, &zipf, &mix_cdf);
        let kind = req.kind();
        let idx = QUERY_KINDS.iter().position(|&k| k == kind).expect("known kind");
        per_kind[idx] += 1;
        let resp = engine.answer(&req);
        if resp.is_error() {
            failed += 1;
        }
        if matches!(
            resp,
            QueryResponse::Error(
                QueryError::Overloaded { .. } | QueryError::DeadlineExceeded { .. }
            )
        ) {
            shed += 1;
        }
        let payload = serde_json::to_vec(&resp).expect("responses serialize");
        cost_buckets[gplus_obs::bucket_index(payload.len() as u64)] += 1;
        writeln!(log, "{seq}\t{kind}\t{:016x}", fnv1a(&payload)).expect("string write");
    }
    obs.counter("serve.workload.queries").add(config.queries);

    WorkloadReport {
        queries: config.queries,
        failed,
        shed,
        swap_rejected,
        per_kind: QUERY_KINDS.iter().zip(per_kind).map(|(k, c)| (k.to_string(), c)).collect(),
        cost_buckets,
        swapped_at,
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn snapshot() -> &'static AnalysedSnapshot {
        static SNAP: OnceLock<AnalysedSnapshot> = OnceLock::new();
        SNAP.get_or_init(|| {
            AnalysedSnapshot::build(&SynthNetwork::generate(&SynthConfig::google_plus_2011(
                500, 21,
            )))
        })
    }

    fn config() -> WorkloadConfig {
        WorkloadConfig {
            seed: 99,
            queries: 400,
            user_space: snapshot().graph.node_count() as u64,
            ..Default::default()
        }
    }

    #[test]
    fn same_seed_replays_byte_identically() {
        let a = run(
            &QueryEngine::new(snapshot().clone(), EngineConfig::default()),
            &config(),
            None,
        );
        let b = run(
            &QueryEngine::new(snapshot().clone(), EngineConfig::default()),
            &config(),
            None,
        );
        assert_eq!(a.log, b.log, "query logs must be byte-identical");
        assert_eq!(a.cost_buckets, b.cost_buckets);
        assert_eq!(a.per_kind, b.per_kind);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let engine = QueryEngine::new(snapshot().clone(), EngineConfig::default());
        let a = run(&engine, &config(), None);
        let b = run(&engine, &WorkloadConfig { seed: 100, ..config() }, None);
        assert_ne!(a.log, b.log);
    }

    #[test]
    fn in_range_workload_never_fails() {
        let engine = QueryEngine::new(snapshot().clone(), EngineConfig::default());
        let report = run(&engine, &config(), None);
        assert_eq!(report.failed, 0);
        assert_eq!(report.queries, 400);
        let issued: u64 = report.per_kind.iter().map(|(_, c)| c).sum();
        assert_eq!(issued, 400);
        let bucketed: u64 = report.cost_buckets.iter().sum();
        assert_eq!(bucketed, 400);
    }

    #[test]
    fn zipf_concentrates_on_celebrity_ids() {
        let mut rng = SeededRng::new(7);
        let table = ZipfTable::new(1_000, 1.2);
        let mut low = 0u64;
        for _ in 0..10_000 {
            if table.sample(&mut rng) < 100 {
                low += 1;
            }
        }
        // with s=1.2 the first 10% of ids carry well over half the mass
        assert!(low > 6_000, "only {low}/10000 samples hit the hot 10%");
    }

    #[test]
    fn zero_weight_kinds_are_never_generated() {
        let mix = QueryMix { shortest_path: 0, recommend: 0, topk: 0, ..QueryMix::default() };
        let engine = QueryEngine::new(snapshot().clone(), EngineConfig::default());
        let report = run(&engine, &WorkloadConfig { mix, ..config() }, None);
        for (kind, count) in &report.per_kind {
            if matches!(kind.as_str(), "shortest_path" | "recommend" | "topk") {
                assert_eq!(*count, 0, "kind {kind} should be disabled");
            }
        }
    }

    #[test]
    fn swap_mid_workload_completes_without_failures() {
        let engine = QueryEngine::new(snapshot().clone(), EngineConfig::default());
        let report = run(&engine, &config(), Some((200, snapshot())));
        assert_eq!(report.swapped_at, Some(200));
        assert_eq!(report.failed, 0, "swap to an equal snapshot must not fail queries");
        assert_eq!(engine.epoch(), 1);
    }

    #[test]
    fn guarded_swap_from_valid_directory_applies_mid_workload() {
        let dir = std::env::temp_dir().join("gplus-workload-guarded-ok");
        let _ = std::fs::remove_dir_all(&dir);
        snapshot().save(&dir).unwrap();
        let engine = QueryEngine::new(snapshot().clone(), EngineConfig::default());
        let report = run_guarded(&engine, &config(), Some((200, dir.as_path())));
        assert_eq!(report.swapped_at, Some(200));
        assert!(!report.swap_rejected);
        assert_eq!(report.failed, 0);
        assert_eq!(engine.epoch(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn guarded_swap_from_corrupt_directory_keeps_serving_byte_identically() {
        let dir = std::env::temp_dir().join("gplus-workload-guarded-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        snapshot().save(&dir).unwrap();
        crate::fault::corrupt_payload(&dir, 9, 2).unwrap();
        let baseline = run(
            &QueryEngine::new(snapshot().clone(), EngineConfig::default()),
            &config(),
            None,
        );
        let engine = QueryEngine::new(snapshot().clone(), EngineConfig::default());
        let report = run_guarded(&engine, &config(), Some((200, dir.as_path())));
        assert!(report.swap_rejected, "corrupt snapshot must be rejected");
        assert_eq!(report.swapped_at, None);
        assert_eq!(engine.epoch(), 0, "old epoch must keep serving");
        assert_eq!(engine.stats().swaps_rejected, 1);
        assert_eq!(report.log, baseline.log, "answers must be byte-identical to no-swap run");
        assert_eq!(report.failed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shed_queries_are_counted_separately_from_hard_failures() {
        let engine = QueryEngine::new(
            snapshot().clone(),
            EngineConfig {
                limiter: Some(gplus_service::TokenBucket::new(4.0, 0.3)),
                ..EngineConfig::default()
            },
        );
        let report = run(&engine, &config(), None);
        assert!(report.shed > 0, "a throttled engine must shed under this workload");
        // every id is in range, so the only errors are sheds: overload
        // protection must never manufacture hard failures
        assert_eq!(report.failed, report.shed);
        assert_eq!(engine.stats().shed_total, report.shed);
    }
}
