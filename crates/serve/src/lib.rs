//! `gplus-serve` — the online query layer over the batch pipeline.
//!
//! The rest of the workspace is batch: generate a network, crawl it,
//! analyse the result. This crate promotes those outputs into a serving
//! tier (ROADMAP #1): an [`AnalysedSnapshot`] freezes the graph plus the
//! precomputed rankings, a [`QueryEngine`] answers the paper's
//! measurement queries against it over the crawl-era wire protocol, an
//! [`EpochSwap`] hot-reloads snapshots under live traffic without torn
//! reads, and a seeded Zipf [`workload`] replays a celebrity-skewed query
//! stream byte-identically for regression comparison.
//!
//! Query vocabulary (requests/responses) lives in
//! [`gplus_service::query`] so the wire protocol owns its own message
//! set; this crate owns the answering machinery.
//!
//! The robustness layer wraps all of it: snapshots carry FNV-1a
//! checksums verified on [`AnalysedSnapshot::load`] and save atomically
//! (temp-then-rename), a [`SwapGuard`] rejects corrupt or invalid
//! snapshots while the old epoch keeps serving, the engine sheds load
//! (cost-weighted admission, bounded in-flight, deadline budgets on a
//! [`ServeClock`]), and the [`fault`] module injects deterministic
//! serve-path damage for the chaos suite.

pub mod clock;
pub mod engine;
pub mod epoch;
pub mod fault;
pub mod snapshot;
pub mod swap;
pub mod workload;

pub use clock::ServeClock;
pub use engine::{CostClass, EngineConfig, EngineStats, QueryEngine, QUERY_KINDS};
pub use epoch::EpochSwap;
pub use fault::{corrupt_payload, interrupted_save, truncate_payload, FlakyLoader, SavePhase};
pub use snapshot::{
    fnv1a, AnalysedSnapshot, CountryRankings, RankedNode, SnapshotError, SnapshotMeta,
    PAYLOAD_FILE, SNAPSHOT_FORMAT_VERSION,
};
pub use swap::SwapGuard;
pub use workload::{
    run as run_workload, run_guarded, QueryMix, SeededRng, WorkloadConfig, WorkloadReport,
    ZipfTable,
};
