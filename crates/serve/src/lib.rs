//! `gplus-serve` — the online query layer over the batch pipeline.
//!
//! The rest of the workspace is batch: generate a network, crawl it,
//! analyse the result. This crate promotes those outputs into a serving
//! tier (ROADMAP #1): an [`AnalysedSnapshot`] freezes the graph plus the
//! precomputed rankings, a [`QueryEngine`] answers the paper's
//! measurement queries against it over the crawl-era wire protocol, an
//! [`EpochSwap`] hot-reloads snapshots under live traffic without torn
//! reads, and a seeded Zipf [`workload`] replays a celebrity-skewed query
//! stream byte-identically for regression comparison.
//!
//! Query vocabulary (requests/responses) lives in
//! [`gplus_service::query`] so the wire protocol owns its own message
//! set; this crate owns the answering machinery.

pub mod engine;
pub mod epoch;
pub mod snapshot;
pub mod workload;

pub use engine::{EngineConfig, QueryEngine, QUERY_KINDS};
pub use epoch::EpochSwap;
pub use snapshot::{
    AnalysedSnapshot, CountryRankings, RankedNode, SnapshotError, SnapshotMeta,
    SNAPSHOT_FORMAT_VERSION,
};
pub use workload::{
    run as run_workload, QueryMix, SeededRng, WorkloadConfig, WorkloadReport, ZipfTable,
};
