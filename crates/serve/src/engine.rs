//! The online query engine: answers [`QueryRequest`]s against the
//! current [`AnalysedSnapshot`], over the same length-prefixed wire
//! protocol the crawler uses.
//!
//! Every query runs against exactly one snapshot `Arc` taken at entry
//! ([`EpochSwap::load_with_epoch`]), so a concurrent [`QueryEngine::swap`]
//! can never mix two snapshots inside one answer.
//!
//! ## Overload protection
//!
//! Admission is layered, and every rejection happens *before* the query
//! touches the snapshot, so shedding can refuse work but never corrupt
//! an answer:
//!
//! 1. **Bounded in-flight** (`max_in_flight`): a semaphore-style counter
//!    caps concurrent execution; the excess answers
//!    [`QueryError::Overloaded`] immediately instead of queueing.
//! 2. **Cost-weighted tokens** (`limiter`): each [`CostClass`] pays its
//!    own token price into the shared [`TokenBucket`], so under a storm
//!    the expensive kinds (shortest-path, recommend) are priced out
//!    first while cheap point lookups keep serving — graceful
//!    degradation by construction. Rejections carry a `retry_after`
//!    computed from the bucket's refill rate.
//! 3. **Deadline budget** (`deadline_us`): elapsed time on the engine's
//!    [`ServeClock`] above the budget turns the answer into
//!    [`QueryError::DeadlineExceeded`]; with a simulated clock each class
//!    charges its nominal cost, making deadline behaviour deterministic.
//!
//! Per-query-type latency lands in `serve.query.<kind>.duration_us`
//! histograms via `gplus-obs`, per-kind failures in
//! `serve.query.<kind>.errors_count`, sheds in the `serve.shed.*`
//! counters, alongside `serve.query.count` / `serve.query.error_count` /
//! `serve.epoch.swap_count` / `serve.swap.*`. The same tallies are
//! mirrored in per-engine [`EngineStats`] atomics so tests can assert
//! exact counts without owning the process-global registry.

use crate::clock::ServeClock;
use crate::epoch::EpochSwap;
use crate::snapshot::{sorted_intersection_count, AnalysedSnapshot, RankedNode};
use bytes::BytesMut;
use gplus_core::extensions::recommend::recommend_for;
use gplus_geo::Country;
use gplus_graph::reciprocity::relation_reciprocity;
use gplus_graph::{mbfs, NodeId};
use gplus_obs::{names, Counter, Histogram, Registry};
use gplus_service::query::{
    ProfileSummary, QueryError, QueryRequest, QueryResponse, RankMetric, RankedUser,
    MAX_CIRCLE_FETCH, MAX_TOP_K,
};
use gplus_service::wire::{decode, encode, Request, Response};
use gplus_service::{Direction, TokenBucket};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Direction-optimization threshold for online shortest-path BFS — the
/// same default the batch distance kernels use.
const BFS_THRESHOLD: f64 = 0.05;

/// The query-kind labels, in the order their latency histograms are
/// pre-resolved and workload reports tally. Must stay in sync with
/// [`QueryRequest::kind`].
pub const QUERY_KINDS: [&str; 8] = [
    "profile",
    "degree",
    "circles",
    "reciprocity",
    "topk",
    "shortest_path",
    "recommend",
    "epoch",
];

/// How much serving capacity one query kind consumes — the unit the
/// shedding policy prices in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// O(1) lookups: profile, degree, epoch probes.
    Cheap,
    /// Bounded scans: circles, reciprocity, precomputed top-k.
    Moderate,
    /// Graph traversals: shortest path, friend recommendation.
    Expensive,
}

impl CostClass {
    /// The class of query kind `QUERY_KINDS[kind_idx]`.
    pub fn of_kind_index(kind_idx: usize) -> Self {
        match kind_idx {
            0 | 1 | 7 => CostClass::Cheap, // profile, degree, epoch
            2..=4 => CostClass::Moderate,  // circles, reciprocity, topk
            5 | 6 => CostClass::Expensive, // shortest_path, recommend
            _ => unreachable!("QUERY_KINDS has 8 kinds"),
        }
    }

    /// The class of a request.
    pub fn of(req: &QueryRequest) -> Self {
        let idx = QUERY_KINDS
            .iter()
            .position(|&k| k == req.kind())
            .expect("QUERY_KINDS covers every request kind");
        Self::of_kind_index(idx)
    }

    /// Token price paid into the admission bucket. The 1:2:4 ratio is
    /// what makes degradation graceful: when the bucket hovers near
    /// empty under a storm, cost-4 queries are rejected while cost-1
    /// lookups still clear the bar.
    pub fn token_cost(self) -> f64 {
        match self {
            CostClass::Cheap => 1.0,
            CostClass::Moderate => 2.0,
            CostClass::Expensive => 4.0,
        }
    }

    /// Deterministic execution charge on a simulated [`ServeClock`],
    /// in microseconds — the stand-in for real latency in deadline
    /// tests.
    pub fn nominal_cost_us(self) -> u64 {
        match self {
            CostClass::Cheap => 10,
            CostClass::Moderate => 100,
            CostClass::Expensive => 1_000,
        }
    }

    /// Stable lower-case label (metric names, logs).
    pub fn label(self) -> &'static str {
        match self {
            CostClass::Cheap => "cheap",
            CostClass::Moderate => "moderate",
            CostClass::Expensive => "expensive",
        }
    }
}

/// Engine configuration. The default is fully permissive (no limiter, no
/// deadline, unbounded in-flight, wall clock) — exactly the pre-robustness
/// behaviour.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineConfig {
    /// Admission limiter; `None` admits everything. Queries pay their
    /// [`CostClass::token_cost`] into this shared bucket.
    pub limiter: Option<TokenBucket>,
    /// Per-query deadline budget in microseconds on the engine clock;
    /// `None` disables deadline enforcement.
    pub deadline_us: Option<u64>,
    /// Maximum queries executing concurrently; the excess is shed with
    /// [`QueryError::Overloaded`]. `None` is unbounded.
    pub max_in_flight: Option<u32>,
    /// Run on a simulated clock that advances by each query's
    /// [`CostClass::nominal_cost_us`] instead of wall time, making
    /// deadline behaviour deterministic.
    pub simulated_clock: bool,
}

/// Exact per-engine tallies, mirrored from the obs counters into plain
/// atomics owned by one engine. The process-global registry accumulates
/// across every engine a test builds; these do not, so a test can assert
/// `shed_total == 37` rather than `>= 37`. Indices into the per-kind and
/// per-class arrays follow [`QUERY_KINDS`] and
/// Cheap/Moderate/Expensive order respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Queries answered (including shed ones).
    pub queries: u64,
    /// Answers that were [`QueryResponse::Error`], of any cause.
    pub errors: u64,
    /// Errors per query kind, [`QUERY_KINDS`] order.
    pub errors_by_kind: [u64; 8],
    /// Queries shed for any overload reason.
    pub shed_total: u64,
    /// Sheds caused by the in-flight cap specifically.
    pub shed_in_flight: u64,
    /// Token-admission sheds per cost class (cheap, moderate, expensive).
    pub shed_by_class: [u64; 3],
    /// Answers discarded for running past the deadline budget.
    pub deadline_exceeded: u64,
    /// Snapshot swaps applied.
    pub swaps_applied: u64,
    /// Snapshot swaps rejected by a `SwapGuard`.
    pub swaps_rejected: u64,
}

#[derive(Debug, Default)]
struct StatCells {
    queries: AtomicU64,
    errors: AtomicU64,
    errors_by_kind: [AtomicU64; 8],
    shed_total: AtomicU64,
    shed_in_flight: AtomicU64,
    shed_by_class: [AtomicU64; 3],
    deadline_exceeded: AtomicU64,
    swaps_applied: AtomicU64,
    swaps_rejected: AtomicU64,
}

/// Online query engine over an epoch-swapped analysed snapshot.
pub struct QueryEngine {
    snapshot: EpochSwap<AnalysedSnapshot>,
    limiter: Option<Mutex<TokenBucket>>,
    deadline_us: Option<u64>,
    max_in_flight: Option<u32>,
    in_flight: AtomicU32,
    clock: ServeClock,
    registry: Arc<Registry>,
    latency: [Arc<Histogram>; 8],
    kind_errors: [Arc<Counter>; 8],
    queries: Arc<Counter>,
    errors: Arc<Counter>,
    swaps: Arc<Counter>,
    swap_applied: Arc<Counter>,
    swap_rejected: Arc<Counter>,
    shed_total: Arc<Counter>,
    shed_in_flight: Arc<Counter>,
    shed_class: [Arc<Counter>; 3],
    deadline_exceeded: Arc<Counter>,
    cells: StatCells,
}

/// RAII in-flight slot: decrements the engine's concurrency counter when
/// the query finishes (or is shed later in admission).
struct InFlightSlot<'a>(Option<&'a AtomicU32>);

impl Drop for InFlightSlot<'_> {
    fn drop(&mut self) {
        if let Some(counter) = self.0 {
            counter.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

impl QueryEngine {
    /// Builds an engine serving `snapshot`, recording into the global
    /// registry.
    pub fn new(snapshot: AnalysedSnapshot, config: EngineConfig) -> Self {
        Self::with_registry(snapshot, config, Arc::clone(gplus_obs::global()))
    }

    /// Builds an engine recording into an explicit registry (tests
    /// asserting exact counter values own a private one). Every counter
    /// the engine can ever bump is registered here, so all of them are
    /// visible — at zero — in a `MetricsSnapshot` taken before traffic.
    pub fn with_registry(
        snapshot: AnalysedSnapshot,
        config: EngineConfig,
        registry: Arc<Registry>,
    ) -> Self {
        let latency = QUERY_KINDS
            .map(|kind| registry.histogram(&format!("serve.query.{kind}.duration_us")));
        let kind_errors = QUERY_KINDS
            .map(|kind| registry.counter(&format!("serve.query.{kind}.errors_count")));
        let shed_class = [
            registry.counter(names::SERVE_SHED_CHEAP),
            registry.counter(names::SERVE_SHED_MODERATE),
            registry.counter(names::SERVE_SHED_EXPENSIVE),
        ];
        Self {
            snapshot: EpochSwap::new(Arc::new(snapshot)),
            limiter: config.limiter.map(Mutex::new),
            deadline_us: config.deadline_us,
            max_in_flight: config.max_in_flight,
            in_flight: AtomicU32::new(0),
            clock: if config.simulated_clock {
                ServeClock::simulated()
            } else {
                ServeClock::wall()
            },
            latency,
            kind_errors,
            queries: registry.counter("serve.query.count"),
            errors: registry.counter("serve.query.error_count"),
            swaps: registry.counter("serve.epoch.swap_count"),
            swap_applied: registry.counter(names::SERVE_SWAP_APPLIED),
            swap_rejected: registry.counter(names::SERVE_SWAP_REJECTED),
            shed_total: registry.counter(names::SERVE_SHED_TOTAL),
            shed_in_flight: registry.counter(names::SERVE_SHED_IN_FLIGHT),
            shed_class,
            deadline_exceeded: registry.counter(names::SERVE_DEADLINE_EXCEEDED),
            cells: StatCells::default(),
            registry,
        }
    }

    /// The registry this engine records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The engine's clock (simulated in deterministic-deadline setups).
    pub fn clock(&self) -> &ServeClock {
        &self.clock
    }

    /// Exact tallies for this engine instance.
    pub fn stats(&self) -> EngineStats {
        let load = |c: &AtomicU64| c.load(Ordering::Acquire);
        EngineStats {
            queries: load(&self.cells.queries),
            errors: load(&self.cells.errors),
            errors_by_kind: std::array::from_fn(|i| load(&self.cells.errors_by_kind[i])),
            shed_total: load(&self.cells.shed_total),
            shed_in_flight: load(&self.cells.shed_in_flight),
            shed_by_class: std::array::from_fn(|i| load(&self.cells.shed_by_class[i])),
            deadline_exceeded: load(&self.cells.deadline_exceeded),
            swaps_applied: load(&self.cells.swaps_applied),
            swaps_rejected: load(&self.cells.swaps_rejected),
        }
    }

    /// The snapshot currently being served.
    pub fn current(&self) -> Arc<AnalysedSnapshot> {
        self.snapshot.load()
    }

    /// The number of snapshot swaps performed so far.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Atomically replaces the serving snapshot; in-flight queries finish
    /// against the snapshot they started on. Returns the new epoch. This
    /// is the *trusted* path — in-memory snapshots the caller just built.
    /// Snapshots of doubtful provenance (a directory on disk, an operator
    /// upload) go through a `SwapGuard`, which validates before calling
    /// this and records a rejection instead on failure.
    pub fn swap(&self, next: AnalysedSnapshot) -> u64 {
        self.swaps.inc();
        self.swap_applied.inc();
        self.cells.swaps_applied.fetch_add(1, Ordering::Release);
        self.snapshot.swap(Arc::new(next))
    }

    pub(crate) fn note_swap_rejected(&self) {
        self.swap_rejected.inc();
        self.cells.swaps_rejected.fetch_add(1, Ordering::Release);
    }

    /// Answers one serving query, applying admission control before any
    /// snapshot work and the deadline budget after.
    pub fn answer(&self, req: &QueryRequest) -> QueryResponse {
        let wall_start = Instant::now();
        let kind_idx = QUERY_KINDS
            .iter()
            .position(|&k| k == req.kind())
            .expect("QUERY_KINDS covers every request kind");
        let class = CostClass::of_kind_index(kind_idx);
        self.queries.inc();
        self.cells.queries.fetch_add(1, Ordering::Release);

        let response = match self.try_admit(class) {
            Err(shed) => QueryResponse::Error(shed),
            Ok(_slot) => {
                let start_us = self.clock.now_us();
                let answer = self.answer_admitted(req);
                if self.clock.is_simulated() {
                    self.clock.advance_us(class.nominal_cost_us());
                }
                let elapsed_us = self.clock.now_us().saturating_sub(start_us);
                match self.deadline_us {
                    Some(deadline_us) if elapsed_us > deadline_us => {
                        self.deadline_exceeded.inc();
                        self.cells.deadline_exceeded.fetch_add(1, Ordering::Release);
                        QueryResponse::Error(QueryError::DeadlineExceeded {
                            elapsed_us,
                            deadline_us,
                        })
                    }
                    _ => answer,
                }
            }
        };

        if response.is_error() {
            self.errors.inc();
            self.kind_errors[kind_idx].inc();
            self.cells.errors.fetch_add(1, Ordering::Release);
            self.cells.errors_by_kind[kind_idx].fetch_add(1, Ordering::Release);
        }
        self.latency[kind_idx].observe(wall_start.elapsed().as_micros() as u64);
        response
    }

    /// Admission control: in-flight cap first (cheapest check, and the
    /// one that must reject before any token is spent), then
    /// cost-weighted tokens. Returns the RAII slot keeping the in-flight
    /// count honest for the duration of execution.
    fn try_admit(&self, class: CostClass) -> Result<InFlightSlot<'_>, QueryError> {
        let slot = match self.max_in_flight {
            None => InFlightSlot(None),
            Some(max) => {
                let prev = self.in_flight.fetch_add(1, Ordering::AcqRel);
                let slot = InFlightSlot(Some(&self.in_flight));
                if prev >= max {
                    // `slot` drops here, undoing the optimistic increment
                    self.shed_in_flight.inc();
                    self.shed_total.inc();
                    self.cells.shed_in_flight.fetch_add(1, Ordering::Release);
                    self.cells.shed_total.fetch_add(1, Ordering::Release);
                    return Err(QueryError::Overloaded { retry_after: 1 });
                }
                slot
            }
        };
        if let Some(bucket) = &self.limiter {
            // a panicked holder cannot have left the bucket mid-update
            // (both mutating methods write plain f64 fields and don't
            // panic after the first write); recover instead of wedging
            // admission for the life of the engine
            let mut bucket = bucket.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            let cost = class.token_cost();
            if !bucket.try_acquire_cost(cost) {
                let retry_after = bucket.ticks_until(cost);
                drop(bucket);
                self.shed_total.inc();
                self.shed_class[class as usize].inc();
                self.cells.shed_total.fetch_add(1, Ordering::Release);
                self.cells.shed_by_class[class as usize].fetch_add(1, Ordering::Release);
                return Err(QueryError::Overloaded { retry_after });
            }
        }
        Ok(slot)
    }

    fn answer_admitted(&self, req: &QueryRequest) -> QueryResponse {
        let (snap, epoch) = self.snapshot.load_with_epoch();
        match *req {
            QueryRequest::Profile { user } => match snap.node_of(user) {
                None => QueryResponse::Error(QueryError::UnknownUser(user)),
                Some(n) => QueryResponse::Profile(ProfileSummary {
                    user,
                    display_name: Some(snap.names[n as usize].clone()),
                    in_degree: snap.graph.in_degree(n) as u64,
                    out_degree: snap.graph.out_degree(n) as u64,
                    reciprocal: snap.reciprocal[n as usize],
                    country: snap.countries[n as usize],
                }),
            },
            QueryRequest::Degree { user } => match snap.node_of(user) {
                None => QueryResponse::Error(QueryError::UnknownUser(user)),
                Some(n) => QueryResponse::Degree {
                    user,
                    in_degree: snap.graph.in_degree(n) as u64,
                    out_degree: snap.graph.out_degree(n) as u64,
                },
            },
            QueryRequest::Circles { user, direction, limit } => match snap.node_of(user) {
                None => QueryResponse::Error(QueryError::UnknownUser(user)),
                Some(n) => {
                    let full: &[NodeId] = match direction {
                        Direction::InCircles => snap.graph.in_neighbors(n),
                        Direction::OutCircles => snap.graph.out_neighbors(n),
                    };
                    let limit = limit.min(MAX_CIRCLE_FETCH) as usize;
                    QueryResponse::Circles {
                        user,
                        direction,
                        users: full.iter().take(limit).map(|&v| v as u64).collect(),
                        total: full.len() as u64,
                    }
                }
            },
            QueryRequest::Reciprocity { user } => match snap.node_of(user) {
                None => QueryResponse::Error(QueryError::UnknownUser(user)),
                Some(n) => QueryResponse::Reciprocity {
                    user,
                    reciprocity: relation_reciprocity(&snap.graph, n),
                    reciprocal_edges: sorted_intersection_count(
                        snap.graph.out_neighbors(n),
                        snap.graph.in_neighbors(n),
                    ),
                },
            },
            QueryRequest::TopK { metric, k, country } => {
                let list = Self::ranking(&snap, metric, country);
                let k = k.min(MAX_TOP_K) as usize;
                QueryResponse::TopK {
                    metric,
                    country,
                    entries: list
                        .iter()
                        .take(k)
                        .map(|r| RankedUser { user: r.node as u64, score: r.score })
                        .collect(),
                }
            }
            QueryRequest::ShortestPath { src, dst } => {
                let (s, t) = match (snap.node_of(src), snap.node_of(dst)) {
                    (Some(s), Some(t)) => (s, t),
                    (None, _) => return QueryResponse::Error(QueryError::UnknownUser(src)),
                    (_, None) => return QueryResponse::Error(QueryError::UnknownUser(dst)),
                };
                let distance = mbfs::distance_pairs(&snap.graph, &[(s, t)], BFS_THRESHOLD)[0];
                QueryResponse::ShortestPath { src, dst, distance }
            }
            QueryRequest::Recommend { user, k } => match snap.node_of(user) {
                None => QueryResponse::Error(QueryError::UnknownUser(user)),
                Some(n) => {
                    let k = k.min(MAX_TOP_K) as usize;
                    QueryResponse::Recommend {
                        user,
                        recommendations: recommend_for(&*snap, n, k)
                            .into_iter()
                            .map(|(v, common)| RankedUser {
                                user: v as u64,
                                score: common as f64,
                            })
                            .collect(),
                    }
                }
            },
            QueryRequest::Epoch => QueryResponse::Epoch {
                epoch,
                nodes: snap.graph.node_count() as u64,
                edges: snap.graph.edge_count() as u64,
                seed: snap.seed,
            },
        }
    }

    /// Selects the precomputed ranking for `(metric, country)`. A country
    /// with no located users yields the empty list — a valid (empty)
    /// leaderboard, not an error.
    fn ranking(
        snap: &AnalysedSnapshot,
        metric: RankMetric,
        country: Option<Country>,
    ) -> &[RankedNode] {
        match country {
            None => match metric {
                RankMetric::PageRank => &snap.pagerank_top,
                RankMetric::InDegree => &snap.in_degree_top,
                RankMetric::OutDegree => &snap.out_degree_top,
            },
            Some(c) => match snap.country_top.binary_search_by(|r| r.country.cmp(&c)) {
                Err(_) => &[],
                Ok(i) => {
                    let ranking = &snap.country_top[i];
                    match metric {
                        RankMetric::PageRank => &ranking.pagerank,
                        RankMetric::InDegree => &ranking.in_degree,
                        RankMetric::OutDegree => &ranking.out_degree,
                    }
                }
            },
        }
    }

    /// Answers a wire-level request. Crawl-era requests (profile/circle
    /// pages) are not served from a snapshot engine; they get a typed
    /// `Unsupported` answer instead of a protocol error so a mixed client
    /// can tell the difference between "wrong endpoint" and "broken pipe".
    pub fn serve(&self, request: Request) -> Response {
        match request {
            Request::Query(q) => Response::Query(self.answer(&q)),
            Request::Profile { .. } | Request::Circle { .. } => {
                Response::Query(QueryResponse::Error(QueryError::Unsupported))
            }
        }
    }

    /// Full wire round trip: encodes the request, decodes it server-side,
    /// serves it, encodes the response, decodes it client-side. An answer
    /// that cannot fit one frame even after server-side clamping comes
    /// back as [`QueryError::Oversized`] rather than tearing the stream.
    pub fn call(&self, request: &Request) -> Response {
        let mut wire = BytesMut::new();
        encode(request, &mut wire).expect("request frames fit the wire cap");
        let decoded: Request = decode(&mut wire).expect("just-encoded frame decodes");
        let response = self.serve(decoded);
        let mut back = BytesMut::new();
        if encode(&response, &mut back).is_err() {
            return Response::Query(QueryResponse::Error(QueryError::Oversized));
        }
        decode(&mut back).expect("just-encoded frame decodes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_graph::bfs;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn net() -> &'static SynthNetwork {
        static NET: OnceLock<SynthNetwork> = OnceLock::new();
        NET.get_or_init(|| SynthNetwork::generate(&SynthConfig::google_plus_2011(600, 11)))
    }

    fn engine() -> QueryEngine {
        QueryEngine::new(AnalysedSnapshot::build(net()), EngineConfig::default())
    }

    #[test]
    fn profile_lookup_matches_ground_truth() {
        let e = engine();
        match e.answer(&QueryRequest::Profile { user: 0 }) {
            QueryResponse::Profile(p) => {
                assert_eq!(p.user, 0);
                assert_eq!(p.display_name.as_deref(), Some("Larry Page"));
                assert_eq!(p.in_degree, net().graph.in_degree(0) as u64);
                assert_eq!(p.out_degree, net().graph.out_degree(0) as u64);
            }
            other => panic!("expected profile, got {other:?}"),
        }
    }

    #[test]
    fn unknown_users_are_typed_errors_not_panics() {
        let e = engine();
        let n = net().graph.node_count() as u64;
        for user in [n, n + 5, u64::from(u32::MAX) + 1, u64::MAX] {
            for req in [
                QueryRequest::Profile { user },
                QueryRequest::Degree { user },
                QueryRequest::Reciprocity { user },
                QueryRequest::Recommend { user, k: 5 },
                QueryRequest::ShortestPath { src: 0, dst: user },
            ] {
                assert_eq!(
                    e.answer(&req),
                    QueryResponse::Error(QueryError::UnknownUser(user)),
                    "req {req:?}"
                );
            }
        }
    }

    #[test]
    fn circles_respect_direction_and_limit() {
        let e = engine();
        let g = &net().graph;
        let user =
            (0..g.node_count() as NodeId).max_by_key(|&u| g.in_degree(u)).unwrap() as u64;
        match e.answer(&QueryRequest::Circles {
            user,
            direction: Direction::InCircles,
            limit: 3,
        }) {
            QueryResponse::Circles { users, total, .. } => {
                let truth = g.in_neighbors(user as NodeId);
                assert_eq!(total, truth.len() as u64);
                assert_eq!(users.len(), 3.min(truth.len()));
                assert_eq!(users, truth.iter().take(3).map(|&v| v as u64).collect::<Vec<_>>());
            }
            other => panic!("expected circles, got {other:?}"),
        }
    }

    #[test]
    fn topk_is_served_from_precomputed_rankings() {
        let e = engine();
        let snap = e.current();
        match e.answer(&QueryRequest::TopK {
            metric: RankMetric::InDegree,
            k: 10,
            country: None,
        }) {
            QueryResponse::TopK { entries, .. } => {
                assert_eq!(entries.len(), 10);
                for (got, want) in entries.iter().zip(&snap.in_degree_top) {
                    assert_eq!(got.user, want.node as u64);
                    assert_eq!(got.score, want.score);
                }
            }
            other => panic!("expected topk, got {other:?}"),
        }
        // a country with located users restricts the list to them
        let country = snap.country_top[0].country;
        match e.answer(&QueryRequest::TopK {
            metric: RankMetric::PageRank,
            k: 5,
            country: Some(country),
        }) {
            QueryResponse::TopK { entries, .. } => {
                assert!(!entries.is_empty());
                for r in &entries {
                    assert_eq!(snap.countries[r.user as usize], Some(country));
                }
            }
            other => panic!("expected topk, got {other:?}"),
        }
    }

    #[test]
    fn shortest_path_matches_scalar_bfs() {
        let e = engine();
        let g = &net().graph;
        for (s, t) in [(0u32, 1u32), (3, 250), (17, 17), (250, 3), (1, 599)] {
            let want = {
                let d = bfs::distances(g, s)[t as usize];
                (d != bfs::UNREACHABLE).then_some(d)
            };
            assert_eq!(
                e.answer(&QueryRequest::ShortestPath { src: s as u64, dst: t as u64 }),
                QueryResponse::ShortestPath { src: s as u64, dst: t as u64, distance: want },
                "pair ({s},{t})"
            );
        }
    }

    #[test]
    fn recommendations_reuse_the_batch_extension() {
        let e = engine();
        let snap = e.current();
        match e.answer(&QueryRequest::Recommend { user: 5, k: 8 }) {
            QueryResponse::Recommend { recommendations, .. } => {
                let want = recommend_for(&*snap, 5, 8);
                assert_eq!(recommendations.len(), want.len());
                for (got, (v, common)) in recommendations.iter().zip(want) {
                    assert_eq!(got.user, v as u64);
                    assert_eq!(got.score, common as f64);
                }
            }
            other => panic!("expected recommendations, got {other:?}"),
        }
    }

    #[test]
    fn epoch_query_reports_snapshot_identity_and_swap_count() {
        let e = engine();
        let probe = |e: &QueryEngine| match e.answer(&QueryRequest::Epoch) {
            QueryResponse::Epoch { epoch, nodes, edges, seed } => (epoch, nodes, edges, seed),
            other => panic!("expected epoch, got {other:?}"),
        };
        let (epoch, nodes, _, seed) = probe(&e);
        assert_eq!(epoch, 0);
        assert_eq!(nodes, net().graph.node_count() as u64);
        assert_eq!(seed, 11);
        let next = SynthNetwork::generate(&SynthConfig::google_plus_2011(300, 12));
        assert_eq!(e.swap(AnalysedSnapshot::build(&next)), 1);
        let (epoch, nodes, edges, seed) = probe(&e);
        assert_eq!(epoch, 1);
        assert_eq!(nodes, 300);
        assert_eq!(edges, next.graph.edge_count() as u64);
        assert_eq!(seed, 12);
    }

    #[test]
    fn rate_limited_engine_rejects_with_typed_error() {
        let e = QueryEngine::new(
            AnalysedSnapshot::build(net()),
            EngineConfig {
                limiter: Some(TokenBucket::new(2.0, 0.0)),
                ..EngineConfig::default()
            },
        );
        let mut rejected = 0;
        for _ in 0..10 {
            match e.answer(&QueryRequest::Epoch) {
                QueryResponse::Error(QueryError::Overloaded { retry_after }) => {
                    rejected += 1;
                    // zero refill can never re-admit: the hint must say so
                    assert_eq!(retry_after, u64::MAX);
                }
                QueryResponse::Epoch { .. } => {}
                other => panic!("expected epoch or overload, got {other:?}"),
            }
        }
        assert_eq!(rejected, 8, "capacity 2, no refill: exactly 2 admitted");
        let stats = e.stats();
        assert_eq!(stats.queries, 10);
        assert_eq!(stats.shed_total, 8);
        assert_eq!(stats.shed_by_class, [8, 0, 0], "epoch probes are cheap-class");
        assert_eq!(stats.errors, 8);
        assert_eq!(stats.errors_by_kind[7], 8, "epoch is QUERY_KINDS[7]");
    }

    #[test]
    fn expensive_kinds_are_priced_out_before_cheap_ones() {
        // capacity 4, refill 1: every tick regains one token, so cost-1
        // lookups always clear the bar while cost-4 traversals only
        // succeed after a quiet stretch
        let e = QueryEngine::new(
            AnalysedSnapshot::build(net()),
            EngineConfig {
                limiter: Some(TokenBucket::new(4.0, 1.0)),
                ..EngineConfig::default()
            },
        );
        let mut expensive_shed = 0;
        let mut cheap_shed = 0;
        for i in 0..40 {
            let resp = if i % 2 == 0 {
                e.answer(&QueryRequest::ShortestPath { src: 0, dst: 1 })
            } else {
                e.answer(&QueryRequest::Degree { user: 0 })
            };
            if let QueryResponse::Error(QueryError::Overloaded { .. }) = resp {
                if i % 2 == 0 {
                    expensive_shed += 1;
                } else {
                    cheap_shed += 1;
                }
            }
        }
        assert!(expensive_shed > 0, "the storm must shed some traversals");
        assert_eq!(cheap_shed, 0, "cheap lookups must keep serving");
        let stats = e.stats();
        assert_eq!(stats.shed_by_class[0], 0);
        assert_eq!(stats.shed_by_class[2], expensive_shed);
        assert_eq!(stats.shed_total, expensive_shed);
    }

    #[test]
    fn deadline_on_simulated_clock_rejects_expensive_kinds_deterministically() {
        // nominal costs: cheap 10µs, moderate 100µs, expensive 1000µs;
        // a 500µs budget admits the first two classes and rejects the third
        let e = QueryEngine::new(
            AnalysedSnapshot::build(net()),
            EngineConfig {
                deadline_us: Some(500),
                simulated_clock: true,
                ..EngineConfig::default()
            },
        );
        assert!(!e.answer(&QueryRequest::Profile { user: 0 }).is_error());
        assert!(!e
            .answer(&QueryRequest::TopK { metric: RankMetric::InDegree, k: 5, country: None })
            .is_error());
        match e.answer(&QueryRequest::Recommend { user: 0, k: 5 }) {
            QueryResponse::Error(QueryError::DeadlineExceeded { elapsed_us, deadline_us }) => {
                assert_eq!(elapsed_us, 1_000);
                assert_eq!(deadline_us, 500);
            }
            other => panic!("expected deadline error, got {other:?}"),
        }
        let stats = e.stats();
        assert_eq!(stats.deadline_exceeded, 1);
        assert_eq!(stats.errors_by_kind[6], 1, "recommend is QUERY_KINDS[6]");
        assert_eq!(stats.shed_total, 0, "deadline kills are not admission sheds");
    }

    #[test]
    fn in_flight_cap_sheds_concurrent_excess_without_wrong_answers() {
        use std::sync::Barrier;
        let e = Arc::new(QueryEngine::new(
            AnalysedSnapshot::build(net()),
            EngineConfig { max_in_flight: Some(1), ..EngineConfig::default() },
        ));
        let reference = engine();
        let threads = 4;
        let rounds = 25;
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let e = Arc::clone(&e);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut served = 0u64;
                    let mut shed = 0u64;
                    for r in 0..rounds {
                        barrier.wait();
                        let user = ((t * rounds + r) % 100) as u64;
                        match e.answer(&QueryRequest::Recommend { user, k: 5 }) {
                            QueryResponse::Error(QueryError::Overloaded { retry_after }) => {
                                assert_eq!(retry_after, 1);
                                shed += 1;
                            }
                            resp => {
                                assert!(
                                    !resp.is_error(),
                                    "unexpected error for user {user}: {resp:?}"
                                );
                                served += 1;
                            }
                        }
                    }
                    (served, shed)
                })
            })
            .collect();
        let mut total_served = 0;
        let mut total_shed = 0;
        for h in handles {
            let (served, shed) = h.join().expect("worker thread");
            total_served += served;
            total_shed += shed;
        }
        assert_eq!(total_served + total_shed, (threads * rounds) as u64);
        assert!(total_served > 0, "some queries must get through");
        let stats = e.stats();
        assert_eq!(stats.shed_in_flight, total_shed);
        assert_eq!(stats.shed_total, total_shed);
        // every served answer must equal the unthrottled reference
        for user in 0..100u64 {
            assert_eq!(
                e.answer(&QueryRequest::Recommend { user, k: 5 }),
                reference.answer(&QueryRequest::Recommend { user, k: 5 }),
                "user {user}"
            );
        }
    }

    #[test]
    fn private_registry_counters_match_engine_stats() {
        let registry = Arc::new(gplus_obs::Registry::new());
        let e = QueryEngine::with_registry(
            AnalysedSnapshot::build(net()),
            EngineConfig {
                limiter: Some(TokenBucket::new(2.0, 0.0)),
                ..EngineConfig::default()
            },
            Arc::clone(&registry),
        );
        for _ in 0..6 {
            let _ = e.answer(&QueryRequest::Recommend { user: 0, k: 3 });
        }
        let _ = e.answer(&QueryRequest::Profile { user: u64::MAX }); // UnknownUser
        let stats = e.stats();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.query.count"), stats.queries);
        assert_eq!(snap.counter("serve.query.error_count"), stats.errors);
        assert_eq!(snap.counter(gplus_obs::names::SERVE_SHED_TOTAL), stats.shed_total);
        assert_eq!(
            snap.counter(gplus_obs::names::SERVE_SHED_EXPENSIVE),
            stats.shed_by_class[2]
        );
        assert_eq!(snap.counter("serve.query.profile.errors_count"), stats.errors_by_kind[0]);
        assert_eq!(snap.counter("serve.query.recommend.errors_count"), stats.errors_by_kind[6]);
        // cost 4 can never fit a capacity-2 bucket: all 6 recommends shed,
        // plus the one UnknownUser profile error
        assert_eq!(stats.queries, 7);
        assert_eq!(stats.errors, 7);
        assert_eq!(stats.shed_total, 6);
        assert_eq!(stats.errors_by_kind[0], 1);
    }

    #[test]
    fn wire_round_trip_equals_direct_answer() {
        let e = engine();
        let queries = [
            QueryRequest::Profile { user: 3 },
            QueryRequest::Degree { user: 0 },
            QueryRequest::Circles { user: 1, direction: Direction::OutCircles, limit: 50 },
            QueryRequest::Reciprocity { user: 2 },
            QueryRequest::TopK { metric: RankMetric::PageRank, k: 7, country: None },
            QueryRequest::ShortestPath { src: 4, dst: 200 },
            QueryRequest::Recommend { user: 6, k: 4 },
            QueryRequest::Epoch,
        ];
        for q in queries {
            let direct = e.answer(&q);
            match e.call(&Request::Query(q.clone())) {
                Response::Query(over_wire) => assert_eq!(over_wire, direct, "query {q:?}"),
                other => panic!("expected query response, got {other:?}"),
            }
        }
    }

    #[test]
    fn crawl_era_requests_answer_unsupported() {
        let e = engine();
        for req in [
            Request::Profile { user: 0 },
            Request::Circle { user: 0, direction: Direction::InCircles, page: 0 },
        ] {
            assert_eq!(
                e.call(&req),
                Response::Query(QueryResponse::Error(QueryError::Unsupported))
            );
        }
    }
}
