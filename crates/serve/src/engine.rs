//! The online query engine: answers [`QueryRequest`]s against the
//! current [`AnalysedSnapshot`], over the same length-prefixed wire
//! protocol the crawler uses.
//!
//! Every query runs against exactly one snapshot `Arc` taken at entry
//! ([`EpochSwap::load_with_epoch`]), so a concurrent [`QueryEngine::swap`]
//! can never mix two snapshots inside one answer. Admission is an
//! optional [`TokenBucket`]; rejected queries answer
//! [`QueryError::RateLimited`] instead of blocking. Per-query-type
//! latency lands in `serve.query.<kind>.duration_us` histograms via
//! `gplus-obs`, alongside `serve.query.count` / `serve.query.error_count`
//! / `serve.epoch.swap_count` counters.

use crate::epoch::EpochSwap;
use crate::snapshot::{sorted_intersection_count, AnalysedSnapshot, RankedNode};
use bytes::BytesMut;
use gplus_core::extensions::recommend::recommend_for;
use gplus_geo::Country;
use gplus_graph::reciprocity::relation_reciprocity;
use gplus_graph::{mbfs, NodeId};
use gplus_obs::Histogram;
use gplus_service::query::{
    ProfileSummary, QueryError, QueryRequest, QueryResponse, RankMetric, RankedUser,
    MAX_CIRCLE_FETCH, MAX_TOP_K,
};
use gplus_service::wire::{decode, encode, Request, Response};
use gplus_service::{Direction, TokenBucket};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Direction-optimization threshold for online shortest-path BFS — the
/// same default the batch distance kernels use.
const BFS_THRESHOLD: f64 = 0.05;

/// The query-kind labels, in the order their latency histograms are
/// pre-resolved and workload reports tally. Must stay in sync with
/// [`QueryRequest::kind`].
pub const QUERY_KINDS: [&str; 8] = [
    "profile",
    "degree",
    "circles",
    "reciprocity",
    "topk",
    "shortest_path",
    "recommend",
    "epoch",
];

/// Engine configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineConfig {
    /// Admission limiter; `None` admits everything.
    pub limiter: Option<TokenBucket>,
}

/// Online query engine over an epoch-swapped analysed snapshot.
pub struct QueryEngine {
    snapshot: EpochSwap<AnalysedSnapshot>,
    limiter: Option<Mutex<TokenBucket>>,
    latency: [Arc<Histogram>; 8],
    queries: Arc<gplus_obs::Counter>,
    errors: Arc<gplus_obs::Counter>,
    swaps: Arc<gplus_obs::Counter>,
}

impl QueryEngine {
    /// Builds an engine serving `snapshot`.
    pub fn new(snapshot: AnalysedSnapshot, config: EngineConfig) -> Self {
        let obs = gplus_obs::global();
        let latency =
            QUERY_KINDS.map(|kind| obs.histogram(&format!("serve.query.{kind}.duration_us")));
        Self {
            snapshot: EpochSwap::new(Arc::new(snapshot)),
            limiter: config.limiter.map(Mutex::new),
            latency,
            queries: obs.counter("serve.query.count"),
            errors: obs.counter("serve.query.error_count"),
            swaps: obs.counter("serve.epoch.swap_count"),
        }
    }

    /// The snapshot currently being served.
    pub fn current(&self) -> Arc<AnalysedSnapshot> {
        self.snapshot.load()
    }

    /// The number of snapshot swaps performed so far.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Atomically replaces the serving snapshot; in-flight queries finish
    /// against the snapshot they started on. Returns the new epoch.
    pub fn swap(&self, next: AnalysedSnapshot) -> u64 {
        self.swaps.inc();
        self.snapshot.swap(Arc::new(next))
    }

    /// Answers one serving query.
    pub fn answer(&self, req: &QueryRequest) -> QueryResponse {
        let start = Instant::now();
        let kind_idx = QUERY_KINDS
            .iter()
            .position(|&k| k == req.kind())
            .expect("QUERY_KINDS covers every request kind");
        let response = if self.admit() {
            self.answer_admitted(req)
        } else {
            QueryResponse::Error(QueryError::RateLimited)
        };
        self.queries.inc();
        if response.is_error() {
            self.errors.inc();
        }
        self.latency[kind_idx].observe(start.elapsed().as_micros() as u64);
        response
    }

    fn admit(&self) -> bool {
        match &self.limiter {
            Some(bucket) => bucket.lock().expect("limiter poisoned").try_acquire(),
            None => true,
        }
    }

    fn answer_admitted(&self, req: &QueryRequest) -> QueryResponse {
        let (snap, epoch) = self.snapshot.load_with_epoch();
        match *req {
            QueryRequest::Profile { user } => match snap.node_of(user) {
                None => QueryResponse::Error(QueryError::UnknownUser(user)),
                Some(n) => QueryResponse::Profile(ProfileSummary {
                    user,
                    display_name: Some(snap.names[n as usize].clone()),
                    in_degree: snap.graph.in_degree(n) as u64,
                    out_degree: snap.graph.out_degree(n) as u64,
                    reciprocal: snap.reciprocal[n as usize],
                    country: snap.countries[n as usize],
                }),
            },
            QueryRequest::Degree { user } => match snap.node_of(user) {
                None => QueryResponse::Error(QueryError::UnknownUser(user)),
                Some(n) => QueryResponse::Degree {
                    user,
                    in_degree: snap.graph.in_degree(n) as u64,
                    out_degree: snap.graph.out_degree(n) as u64,
                },
            },
            QueryRequest::Circles { user, direction, limit } => match snap.node_of(user) {
                None => QueryResponse::Error(QueryError::UnknownUser(user)),
                Some(n) => {
                    let full: &[NodeId] = match direction {
                        Direction::InCircles => snap.graph.in_neighbors(n),
                        Direction::OutCircles => snap.graph.out_neighbors(n),
                    };
                    let limit = limit.min(MAX_CIRCLE_FETCH) as usize;
                    QueryResponse::Circles {
                        user,
                        direction,
                        users: full.iter().take(limit).map(|&v| v as u64).collect(),
                        total: full.len() as u64,
                    }
                }
            },
            QueryRequest::Reciprocity { user } => match snap.node_of(user) {
                None => QueryResponse::Error(QueryError::UnknownUser(user)),
                Some(n) => QueryResponse::Reciprocity {
                    user,
                    reciprocity: relation_reciprocity(&snap.graph, n),
                    reciprocal_edges: sorted_intersection_count(
                        snap.graph.out_neighbors(n),
                        snap.graph.in_neighbors(n),
                    ),
                },
            },
            QueryRequest::TopK { metric, k, country } => {
                let list = Self::ranking(&snap, metric, country);
                let k = k.min(MAX_TOP_K) as usize;
                QueryResponse::TopK {
                    metric,
                    country,
                    entries: list
                        .iter()
                        .take(k)
                        .map(|r| RankedUser { user: r.node as u64, score: r.score })
                        .collect(),
                }
            }
            QueryRequest::ShortestPath { src, dst } => {
                let (s, t) = match (snap.node_of(src), snap.node_of(dst)) {
                    (Some(s), Some(t)) => (s, t),
                    (None, _) => return QueryResponse::Error(QueryError::UnknownUser(src)),
                    (_, None) => return QueryResponse::Error(QueryError::UnknownUser(dst)),
                };
                let distance = mbfs::distance_pairs(&snap.graph, &[(s, t)], BFS_THRESHOLD)[0];
                QueryResponse::ShortestPath { src, dst, distance }
            }
            QueryRequest::Recommend { user, k } => match snap.node_of(user) {
                None => QueryResponse::Error(QueryError::UnknownUser(user)),
                Some(n) => {
                    let k = k.min(MAX_TOP_K) as usize;
                    QueryResponse::Recommend {
                        user,
                        recommendations: recommend_for(&*snap, n, k)
                            .into_iter()
                            .map(|(v, common)| RankedUser {
                                user: v as u64,
                                score: common as f64,
                            })
                            .collect(),
                    }
                }
            },
            QueryRequest::Epoch => QueryResponse::Epoch {
                epoch,
                nodes: snap.graph.node_count() as u64,
                edges: snap.graph.edge_count() as u64,
                seed: snap.seed,
            },
        }
    }

    /// Selects the precomputed ranking for `(metric, country)`. A country
    /// with no located users yields the empty list — a valid (empty)
    /// leaderboard, not an error.
    fn ranking(
        snap: &AnalysedSnapshot,
        metric: RankMetric,
        country: Option<Country>,
    ) -> &[RankedNode] {
        match country {
            None => match metric {
                RankMetric::PageRank => &snap.pagerank_top,
                RankMetric::InDegree => &snap.in_degree_top,
                RankMetric::OutDegree => &snap.out_degree_top,
            },
            Some(c) => match snap.country_top.binary_search_by(|r| r.country.cmp(&c)) {
                Err(_) => &[],
                Ok(i) => {
                    let ranking = &snap.country_top[i];
                    match metric {
                        RankMetric::PageRank => &ranking.pagerank,
                        RankMetric::InDegree => &ranking.in_degree,
                        RankMetric::OutDegree => &ranking.out_degree,
                    }
                }
            },
        }
    }

    /// Answers a wire-level request. Crawl-era requests (profile/circle
    /// pages) are not served from a snapshot engine; they get a typed
    /// `Unsupported` answer instead of a protocol error so a mixed client
    /// can tell the difference between "wrong endpoint" and "broken pipe".
    pub fn serve(&self, request: Request) -> Response {
        match request {
            Request::Query(q) => Response::Query(self.answer(&q)),
            Request::Profile { .. } | Request::Circle { .. } => {
                Response::Query(QueryResponse::Error(QueryError::Unsupported))
            }
        }
    }

    /// Full wire round trip: encodes the request, decodes it server-side,
    /// serves it, encodes the response, decodes it client-side. An answer
    /// that cannot fit one frame even after server-side clamping comes
    /// back as [`QueryError::Oversized`] rather than tearing the stream.
    pub fn call(&self, request: &Request) -> Response {
        let mut wire = BytesMut::new();
        encode(request, &mut wire).expect("request frames fit the wire cap");
        let decoded: Request = decode(&mut wire).expect("just-encoded frame decodes");
        let response = self.serve(decoded);
        let mut back = BytesMut::new();
        if encode(&response, &mut back).is_err() {
            return Response::Query(QueryResponse::Error(QueryError::Oversized));
        }
        decode(&mut back).expect("just-encoded frame decodes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_graph::bfs;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn net() -> &'static SynthNetwork {
        static NET: OnceLock<SynthNetwork> = OnceLock::new();
        NET.get_or_init(|| SynthNetwork::generate(&SynthConfig::google_plus_2011(600, 11)))
    }

    fn engine() -> QueryEngine {
        QueryEngine::new(AnalysedSnapshot::build(net()), EngineConfig::default())
    }

    #[test]
    fn profile_lookup_matches_ground_truth() {
        let e = engine();
        match e.answer(&QueryRequest::Profile { user: 0 }) {
            QueryResponse::Profile(p) => {
                assert_eq!(p.user, 0);
                assert_eq!(p.display_name.as_deref(), Some("Larry Page"));
                assert_eq!(p.in_degree, net().graph.in_degree(0) as u64);
                assert_eq!(p.out_degree, net().graph.out_degree(0) as u64);
            }
            other => panic!("expected profile, got {other:?}"),
        }
    }

    #[test]
    fn unknown_users_are_typed_errors_not_panics() {
        let e = engine();
        let n = net().graph.node_count() as u64;
        for user in [n, n + 5, u64::from(u32::MAX) + 1, u64::MAX] {
            for req in [
                QueryRequest::Profile { user },
                QueryRequest::Degree { user },
                QueryRequest::Reciprocity { user },
                QueryRequest::Recommend { user, k: 5 },
                QueryRequest::ShortestPath { src: 0, dst: user },
            ] {
                assert_eq!(
                    e.answer(&req),
                    QueryResponse::Error(QueryError::UnknownUser(user)),
                    "req {req:?}"
                );
            }
        }
    }

    #[test]
    fn circles_respect_direction_and_limit() {
        let e = engine();
        let g = &net().graph;
        let user =
            (0..g.node_count() as NodeId).max_by_key(|&u| g.in_degree(u)).unwrap() as u64;
        match e.answer(&QueryRequest::Circles {
            user,
            direction: Direction::InCircles,
            limit: 3,
        }) {
            QueryResponse::Circles { users, total, .. } => {
                let truth = g.in_neighbors(user as NodeId);
                assert_eq!(total, truth.len() as u64);
                assert_eq!(users.len(), 3.min(truth.len()));
                assert_eq!(users, truth.iter().take(3).map(|&v| v as u64).collect::<Vec<_>>());
            }
            other => panic!("expected circles, got {other:?}"),
        }
    }

    #[test]
    fn topk_is_served_from_precomputed_rankings() {
        let e = engine();
        let snap = e.current();
        match e.answer(&QueryRequest::TopK {
            metric: RankMetric::InDegree,
            k: 10,
            country: None,
        }) {
            QueryResponse::TopK { entries, .. } => {
                assert_eq!(entries.len(), 10);
                for (got, want) in entries.iter().zip(&snap.in_degree_top) {
                    assert_eq!(got.user, want.node as u64);
                    assert_eq!(got.score, want.score);
                }
            }
            other => panic!("expected topk, got {other:?}"),
        }
        // a country with located users restricts the list to them
        let country = snap.country_top[0].country;
        match e.answer(&QueryRequest::TopK {
            metric: RankMetric::PageRank,
            k: 5,
            country: Some(country),
        }) {
            QueryResponse::TopK { entries, .. } => {
                assert!(!entries.is_empty());
                for r in &entries {
                    assert_eq!(snap.countries[r.user as usize], Some(country));
                }
            }
            other => panic!("expected topk, got {other:?}"),
        }
    }

    #[test]
    fn shortest_path_matches_scalar_bfs() {
        let e = engine();
        let g = &net().graph;
        for (s, t) in [(0u32, 1u32), (3, 250), (17, 17), (250, 3), (1, 599)] {
            let want = {
                let d = bfs::distances(g, s)[t as usize];
                (d != bfs::UNREACHABLE).then_some(d)
            };
            assert_eq!(
                e.answer(&QueryRequest::ShortestPath { src: s as u64, dst: t as u64 }),
                QueryResponse::ShortestPath { src: s as u64, dst: t as u64, distance: want },
                "pair ({s},{t})"
            );
        }
    }

    #[test]
    fn recommendations_reuse_the_batch_extension() {
        let e = engine();
        let snap = e.current();
        match e.answer(&QueryRequest::Recommend { user: 5, k: 8 }) {
            QueryResponse::Recommend { recommendations, .. } => {
                let want = recommend_for(&*snap, 5, 8);
                assert_eq!(recommendations.len(), want.len());
                for (got, (v, common)) in recommendations.iter().zip(want) {
                    assert_eq!(got.user, v as u64);
                    assert_eq!(got.score, common as f64);
                }
            }
            other => panic!("expected recommendations, got {other:?}"),
        }
    }

    #[test]
    fn epoch_query_reports_snapshot_identity_and_swap_count() {
        let e = engine();
        let probe = |e: &QueryEngine| match e.answer(&QueryRequest::Epoch) {
            QueryResponse::Epoch { epoch, nodes, edges, seed } => (epoch, nodes, edges, seed),
            other => panic!("expected epoch, got {other:?}"),
        };
        let (epoch, nodes, _, seed) = probe(&e);
        assert_eq!(epoch, 0);
        assert_eq!(nodes, net().graph.node_count() as u64);
        assert_eq!(seed, 11);
        let next = SynthNetwork::generate(&SynthConfig::google_plus_2011(300, 12));
        assert_eq!(e.swap(AnalysedSnapshot::build(&next)), 1);
        let (epoch, nodes, edges, seed) = probe(&e);
        assert_eq!(epoch, 1);
        assert_eq!(nodes, 300);
        assert_eq!(edges, next.graph.edge_count() as u64);
        assert_eq!(seed, 12);
    }

    #[test]
    fn rate_limited_engine_rejects_with_typed_error() {
        let e = QueryEngine::new(
            AnalysedSnapshot::build(net()),
            EngineConfig { limiter: Some(TokenBucket::new(2.0, 0.0)) },
        );
        let mut rejected = 0;
        for _ in 0..10 {
            if e.answer(&QueryRequest::Epoch) == QueryResponse::Error(QueryError::RateLimited) {
                rejected += 1;
            }
        }
        assert_eq!(rejected, 8, "capacity 2, no refill: exactly 2 admitted");
    }

    #[test]
    fn wire_round_trip_equals_direct_answer() {
        let e = engine();
        let queries = [
            QueryRequest::Profile { user: 3 },
            QueryRequest::Degree { user: 0 },
            QueryRequest::Circles { user: 1, direction: Direction::OutCircles, limit: 50 },
            QueryRequest::Reciprocity { user: 2 },
            QueryRequest::TopK { metric: RankMetric::PageRank, k: 7, country: None },
            QueryRequest::ShortestPath { src: 4, dst: 200 },
            QueryRequest::Recommend { user: 6, k: 4 },
            QueryRequest::Epoch,
        ];
        for q in queries {
            let direct = e.answer(&q);
            match e.call(&Request::Query(q.clone())) {
                Response::Query(over_wire) => assert_eq!(over_wire, direct, "query {q:?}"),
                other => panic!("expected query response, got {other:?}"),
            }
        }
    }

    #[test]
    fn crawl_era_requests_answer_unsupported() {
        let e = engine();
        for req in [
            Request::Profile { user: 0 },
            Request::Circle { user: 0, direction: Direction::InCircles, page: 0 },
        ] {
            assert_eq!(
                e.call(&req),
                Response::Query(QueryResponse::Error(QueryError::Unsupported))
            );
        }
    }
}
