//! Guarded snapshot swap: validation between the disk and the serving
//! epoch.
//!
//! [`QueryEngine::swap`] trusts its argument — correct for snapshots the
//! process just built, wrong for anything that crossed a filesystem. A
//! [`SwapGuard`] is the untrusted-input front door: it loads and fully
//! verifies a candidate (checksums, version, semantic invariants) and
//! only then publishes it. On any failure the old epoch keeps serving,
//! untouched, and the rejection is visible as `serve.swap.rejected_count`
//! — an operator deploying a corrupt snapshot gets a counter and a typed
//! error, not a panic and an outage.

use crate::engine::QueryEngine;
use crate::snapshot::{AnalysedSnapshot, SnapshotError};
use std::path::Path;

/// Validating swap front door for one engine.
pub struct SwapGuard<'a> {
    engine: &'a QueryEngine,
}

impl<'a> SwapGuard<'a> {
    /// Guards swaps into `engine`.
    pub fn new(engine: &'a QueryEngine) -> Self {
        Self { engine }
    }

    /// Loads the snapshot directory and swaps it in if — and only if —
    /// every integrity and semantic check passes. Returns the new epoch,
    /// or the typed load error after recording the rejection. The old
    /// snapshot serves uninterrupted either way: the load happens
    /// entirely before the swap, so there is no window in which readers
    /// can observe a half-accepted snapshot.
    pub fn apply_dir(&self, dir: &Path) -> Result<u64, SnapshotError> {
        match AnalysedSnapshot::load(dir) {
            Ok(snapshot) => Ok(self.engine.swap(snapshot)),
            Err(err) => {
                self.engine.note_swap_rejected();
                Err(err)
            }
        }
    }

    /// Validates an in-memory candidate (semantic invariants only — there
    /// are no bytes to checksum) and swaps it in, or records a rejection.
    pub fn apply(&self, snapshot: AnalysedSnapshot) -> Result<u64, SnapshotError> {
        match snapshot.validate() {
            Ok(()) => Ok(self.engine.swap(snapshot)),
            Err(err) => {
                self.engine.note_swap_rejected();
                Err(err)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use gplus_service::query::{QueryRequest, QueryResponse};
    use gplus_synth::{SynthConfig, SynthNetwork};

    fn snapshot(nodes: usize, seed: u64) -> AnalysedSnapshot {
        AnalysedSnapshot::build(&SynthNetwork::generate(&SynthConfig::google_plus_2011(
            nodes, seed,
        )))
    }

    #[test]
    fn valid_directory_swap_bumps_epoch() {
        let engine = QueryEngine::new(snapshot(200, 1), EngineConfig::default());
        let dir = std::env::temp_dir().join("gplus-swapguard-ok");
        let _ = std::fs::remove_dir_all(&dir);
        snapshot(250, 2).save(&dir).unwrap();
        let guard = SwapGuard::new(&engine);
        assert_eq!(guard.apply_dir(&dir).unwrap(), 1);
        assert_eq!(engine.current().graph.node_count(), 250);
        assert_eq!(engine.stats().swaps_applied, 1);
        assert_eq!(engine.stats().swaps_rejected, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_directory_swap_is_rejected_and_old_epoch_serves() {
        let engine = QueryEngine::new(snapshot(200, 1), EngineConfig::default());
        let before = engine.answer(&QueryRequest::Epoch);
        let dir = std::env::temp_dir().join("gplus-swapguard-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        snapshot(250, 2).save(&dir).unwrap();
        let path = dir.join(crate::snapshot::PAYLOAD_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let guard = SwapGuard::new(&engine);
        assert!(matches!(guard.apply_dir(&dir), Err(SnapshotError::Checksum { .. })));
        assert_eq!(engine.epoch(), 0, "rejected swap must not consume an epoch");
        assert_eq!(engine.answer(&QueryRequest::Epoch), before);
        assert_eq!(engine.stats().swaps_rejected, 1);
        assert_eq!(engine.stats().swaps_applied, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn semantically_invalid_in_memory_swap_is_rejected() {
        let engine = QueryEngine::new(snapshot(200, 1), EngineConfig::default());
        let mut bad = snapshot(150, 3);
        bad.names.pop(); // attribute vector no longer covers the graph
        let guard = SwapGuard::new(&engine);
        assert!(matches!(guard.apply(bad), Err(SnapshotError::Semantic(_))));
        assert_eq!(engine.epoch(), 0);
        assert_eq!(engine.stats().swaps_rejected, 1);
        match engine.answer(&QueryRequest::Epoch) {
            QueryResponse::Epoch { nodes, .. } => assert_eq!(nodes, 200),
            other => panic!("expected epoch, got {other:?}"),
        }
    }
}
