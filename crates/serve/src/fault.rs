//! Serve-path fault injection: deterministic sabotage for snapshot
//! directories and loads.
//!
//! The crawl side proves its resilience with seed-derived
//! [`gplus_service::fault::FaultPlan`]s — every injected failure is a
//! pure function of a seed, so a chaos run that finds a bug is a
//! reproducer, not an anecdote. This module extends the same idiom to
//! the serving tier's failure surface, which is files rather than
//! requests: bytes rot on disk, deploys die between the two renames of a
//! snapshot save, and loaders hit transient io errors. Each helper
//! performs real filesystem damage (the integrity machinery under test
//! must face real bytes), but *which* damage is derived from a seed via
//! the same splitmix64 streams the crawl plans use.

use crate::snapshot::{AnalysedSnapshot, SnapshotError, PAYLOAD_FILE};
use gplus_service::failure::splitmix64;
use std::path::Path;

/// Stream-separation constant for corruption offsets (same idiom as the
/// crawl-side `STREAM_*` multipliers: distinct odd multiplier per fault
/// mode so plans never entangle).
const STREAM_CORRUPT: u64 = 0x3c79_ac49_2ba7_b653;

/// Flips `nbytes` seed-chosen bytes of `dir/snapshot.bin` in place
/// (XOR with a seed-derived nonzero mask, so every chosen byte really
/// changes). Returns the flipped offsets, ascending — the reproducer
/// record for a failing run. Distinct seeds damage distinct offsets;
/// the same seed always damages the same ones.
pub fn corrupt_payload(dir: &Path, seed: u64, nbytes: usize) -> std::io::Result<Vec<usize>> {
    let path = dir.join(PAYLOAD_FILE);
    let mut bytes = std::fs::read(&path)?;
    assert!(!bytes.is_empty(), "cannot corrupt an empty payload");
    let mut offsets = Vec::with_capacity(nbytes);
    for i in 0..nbytes {
        let h = splitmix64(seed.wrapping_mul(STREAM_CORRUPT).wrapping_add(i as u64));
        let offset = (h % bytes.len() as u64) as usize;
        // low byte of the hash, forced nonzero so the XOR always flips
        let mask = ((h >> 32) as u8) | 0x01;
        bytes[offset] ^= mask;
        offsets.push(offset);
    }
    std::fs::write(&path, &bytes)?;
    offsets.sort_unstable();
    Ok(offsets)
}

/// Truncates `dir/snapshot.bin` to a seed-chosen fraction of its length
/// (at least 1 byte, strictly shorter than the original) — the torn-write
/// shape left by a crashed copy. Returns the new length.
pub fn truncate_payload(dir: &Path, seed: u64) -> std::io::Result<u64> {
    let path = dir.join(PAYLOAD_FILE);
    let len = std::fs::metadata(&path)?.len();
    assert!(len > 1, "payload too small to truncate meaningfully");
    let keep = 1 + splitmix64(seed.wrapping_mul(STREAM_CORRUPT)) % (len - 1);
    let file = std::fs::OpenOptions::new().write(true).open(&path)?;
    file.set_len(keep)?;
    Ok(keep)
}

/// How far an interrupted [`AnalysedSnapshot::save`] got before the
/// process died. The save protocol is: write both `.tmp` files, rename
/// the payload into place, rename the meta into place — so these are the
/// distinct on-disk states a kill can leave behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SavePhase {
    /// Killed after staging `snapshot.bin.tmp`, before anything else.
    PayloadTmpWritten,
    /// Killed after staging both `.tmp` files, before any rename.
    BothTmpsWritten,
    /// Killed after renaming the payload, before renaming the meta —
    /// the most dangerous window: a *new* payload now sits beside the
    /// *old* meta.
    PayloadRenamed,
}

/// Performs the atomic-save steps of `snapshot` into `dir` and stops
/// after `phase`, simulating a process killed mid-save. The directory is
/// left exactly as a real kill would leave it; pair with
/// [`AnalysedSnapshot::load`] to assert that every such state is either
/// fully old or detectably inconsistent.
pub fn interrupted_save(
    snapshot: &AnalysedSnapshot,
    dir: &Path,
    phase: SavePhase,
) -> Result<(), SnapshotError> {
    std::fs::create_dir_all(dir)?;
    let payload = snapshot.to_payload_bytes();
    let meta = serde_json::to_string_pretty(&snapshot.meta())
        .map_err(|e| SnapshotError::Malformed(e.to_string()))?;
    std::fs::write(dir.join("snapshot.bin.tmp"), &payload)?;
    if phase == SavePhase::PayloadTmpWritten {
        return Ok(());
    }
    std::fs::write(dir.join("meta.json.tmp"), meta)?;
    if phase == SavePhase::BothTmpsWritten {
        return Ok(());
    }
    std::fs::rename(dir.join("snapshot.bin.tmp"), dir.join(PAYLOAD_FILE))?;
    // SavePhase::PayloadRenamed: die before the meta rename
    Ok(())
}

/// A loader that fails its first `failures` attempts with an injected io
/// error, then delegates to [`AnalysedSnapshot::load`] — the transient
/// NFS-hiccup / slow-attach shape. Deterministic by construction: the
/// outcome depends only on the attempt counter.
#[derive(Debug)]
pub struct FlakyLoader {
    failures: u32,
    attempts: u32,
}

impl FlakyLoader {
    /// Fails the first `failures` loads.
    pub fn new(failures: u32) -> Self {
        Self { failures, attempts: 0 }
    }

    /// Attempts made so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// One load attempt.
    pub fn load(&mut self, dir: &Path) -> Result<AnalysedSnapshot, SnapshotError> {
        self.attempts += 1;
        if self.attempts <= self.failures {
            return Err(SnapshotError::Io(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                format!("injected transient load failure {}/{}", self.attempts, self.failures),
            )));
        }
        AnalysedSnapshot::load(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_synth::{SynthConfig, SynthNetwork};

    fn snapshot() -> AnalysedSnapshot {
        AnalysedSnapshot::build(&SynthNetwork::generate(&SynthConfig::google_plus_2011(120, 5)))
    }

    fn fresh_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn corruption_is_seed_deterministic_and_detected() {
        let snap = snapshot();
        let dir_a = fresh_dir("gplus-serve-fault-corrupt-a");
        let dir_b = fresh_dir("gplus-serve-fault-corrupt-b");
        snap.save(&dir_a).unwrap();
        snap.save(&dir_b).unwrap();
        let offs_a = corrupt_payload(&dir_a, 42, 3).unwrap();
        let offs_b = corrupt_payload(&dir_b, 42, 3).unwrap();
        assert_eq!(offs_a, offs_b, "same seed must damage the same offsets");
        assert_eq!(
            std::fs::read(dir_a.join(PAYLOAD_FILE)).unwrap(),
            std::fs::read(dir_b.join(PAYLOAD_FILE)).unwrap()
        );
        assert!(matches!(AnalysedSnapshot::load(&dir_a), Err(SnapshotError::Checksum { .. })));
        let dir_c = fresh_dir("gplus-serve-fault-corrupt-c");
        snap.save(&dir_c).unwrap();
        let offs_c = corrupt_payload(&dir_c, 43, 3).unwrap();
        assert_ne!(offs_a, offs_c, "different seeds must diverge");
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
        let _ = std::fs::remove_dir_all(&dir_c);
    }

    #[test]
    fn truncation_is_detected_at_load() {
        let snap = snapshot();
        let dir = fresh_dir("gplus-serve-fault-truncate");
        snap.save(&dir).unwrap();
        let before = std::fs::metadata(dir.join(PAYLOAD_FILE)).unwrap().len();
        let after = truncate_payload(&dir, 7).unwrap();
        assert!(after < before);
        assert!(after >= 1);
        // a shorter byte stream can never hash to the recorded digest
        assert!(matches!(AnalysedSnapshot::load(&dir), Err(SnapshotError::Checksum { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_interrupted_save_phase_is_old_or_detectable() {
        let old = snapshot();
        let new = AnalysedSnapshot::build(&SynthNetwork::generate(
            &SynthConfig::google_plus_2011(180, 6),
        ));
        for phase in [
            SavePhase::PayloadTmpWritten,
            SavePhase::BothTmpsWritten,
            SavePhase::PayloadRenamed,
        ] {
            let dir = fresh_dir("gplus-serve-fault-killpoint");
            old.save(&dir).unwrap();
            interrupted_save(&new, &dir, phase).unwrap();
            match AnalysedSnapshot::load(&dir) {
                // phases before any rename leave the old snapshot intact
                Ok(loaded) => assert_eq!(loaded, old, "phase {phase:?} must serve old bytes"),
                // the payload-renamed phase pairs new payload with old
                // meta: detectably inconsistent, never silently torn
                Err(SnapshotError::Checksum { .. }) => {
                    assert_eq!(phase, SavePhase::PayloadRenamed);
                }
                Err(other) => panic!("phase {phase:?}: unexpected error {other}"),
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn flaky_loader_fails_then_recovers() {
        let snap = snapshot();
        let dir = fresh_dir("gplus-serve-fault-flaky");
        snap.save(&dir).unwrap();
        let mut loader = FlakyLoader::new(2);
        assert!(matches!(loader.load(&dir), Err(SnapshotError::Io(_))));
        assert!(matches!(loader.load(&dir), Err(SnapshotError::Io(_))));
        let loaded = loader.load(&dir).expect("third attempt succeeds");
        assert_eq!(loaded, snap);
        assert_eq!(loader.attempts(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
