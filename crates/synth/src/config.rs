//! Generator configuration and the three network presets.

use gplus_geo::Country;
use serde::{Deserialize, Serialize};

/// How a user's edge slots are distributed across target pickers.
///
/// Each outgoing edge slot is assigned, in order of precedence:
/// a celebrity pick with `celebrity_fraction`, a friend-of-friend closure
/// with `fof_fraction`, otherwise a geographic pick. Geographic picks copy
/// an existing edge's target (preferential attachment) with `copy_prob`,
/// else sample a uniform member of the chosen country — from the user's own
/// city with `same_city_prob`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixProfile {
    /// Probability an edge slot targets a celebrity.
    pub celebrity_fraction: f64,
    /// Probability an edge slot closes a friend-of-friend triangle.
    pub fof_fraction: f64,
    /// Probability a geographic pick copies an existing in-country edge
    /// target (preferential attachment; emergent in-degree CCDF exponent is
    /// roughly `1 / copy_prob`).
    pub copy_prob: f64,
    /// Probability a uniform geographic pick stays in the user's own city.
    pub same_city_prob: f64,
    /// Probability a same-city pick narrows further to the user's own
    /// *community* (a small group of ~community_size users within the
    /// city). Communities are what give the graph its Figure 4(b)
    /// clustering: dense little pockets whose members follow each other.
    pub community_prob: f64,
}

impl MixProfile {
    fn validate(&self, name: &str) {
        for (field, v) in [
            ("celebrity_fraction", self.celebrity_fraction),
            ("fof_fraction", self.fof_fraction),
            ("copy_prob", self.copy_prob),
            ("same_city_prob", self.same_city_prob),
            ("community_prob", self.community_prob),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name}.{field} must be in [0,1], got {v}");
        }
        assert!(
            self.celebrity_fraction + self.fof_fraction <= 1.0,
            "{name}: celebrity + fof fractions exceed 1"
        );
    }
}

/// Follow-back probabilities by edge provenance (§3.3.2's reciprocity
/// structure). When `u` follows `v`, `v` follows back with the probability
/// matching how the edge arose; friend-like edges (same city, FoF) are far
/// more likely to be reciprocated than stranger-like edges (copy-model
/// picks of already-popular users, celebrity adds). This is what produces
/// Figure 4(a)'s split between ordinary users (high RR) and
/// collectors/celebrities (low RR).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FollowBackProfile {
    /// Uniform geographic pick within the user's own city.
    pub same_city: f64,
    /// Uniform geographic pick within the country.
    pub same_country: f64,
    /// Uniform geographic pick across countries.
    pub cross_country: f64,
    /// Friend-of-friend closure edge.
    pub fof: f64,
    /// Copy-model (preferential attachment) edge.
    pub copy: f64,
    /// Celebrity target.
    pub celebrity: f64,
    /// Multiplier applied when the *source* of the edge is a celebrity
    /// (mass accounts rarely get followed back by the paper's top users'
    /// audiences; this keeps celebrity RR low).
    pub celebrity_source_damping: f64,
}

impl FollowBackProfile {
    fn validate(&self) {
        for (field, v) in [
            ("same_city", self.same_city),
            ("same_country", self.same_country),
            ("cross_country", self.cross_country),
            ("fof", self.fof),
            ("copy", self.copy),
            ("celebrity", self.celebrity),
            ("celebrity_source_damping", self.celebrity_source_damping),
        ] {
            assert!((0.0..=1.0).contains(&v), "follow_back.{field} must be in [0,1], got {v}");
        }
    }
}

/// All knobs of the synthetic network generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of users.
    pub n_users: usize,
    /// RNG seed; the whole generation is deterministic given this.
    pub seed: u64,

    // ---- out-degree model (§3.3.1) ----
    /// Fraction of ordinary users who are pure lurkers: zero out-circles
    /// and no follow-backs. These are the sink nodes that keep the giant
    /// SCC at ~70% of the graph rather than ~100% (§3.3.4: 25.2M of 35.1M
    /// nodes in the giant component, with 9.77M mostly-singleton SCCs).
    pub lurker_fraction: f64,
    /// Fraction of non-lurker ordinary users in the geometric "head"
    /// (casual users).
    pub head_fraction: f64,
    /// Mean out-degree of head users.
    pub head_mean: f64,
    /// Mean out-degree of celebrity sources.
    pub celebrity_out_mean: f64,
    /// Scale `x₀` of the Pareto tail: `d = x₀·U^(-1/α)`.
    pub tail_x0: f64,
    /// Tail CCDF exponent α (paper fits α_out = 1.2).
    pub tail_alpha: f64,
    /// Hard cap on out-degree — "Google maintains a policy that allows only
    /// some special users to outpass a specified threshold ... 5000"
    /// (§3.3.1). Celebrities are the exempt "special users".
    pub out_degree_cap: usize,
    /// Target size of the intra-city communities that drive clustering.
    pub community_size: usize,
    /// Extra community-directed edges every casual user adds on top of the
    /// mixture slots. Communities must be *dense* for the Figure 4(b)
    /// clustering mass ("40% of all users have a CC greater than 0.2");
    /// the mixture alone cannot reach that density without starving the
    /// other pickers, so casual users bond explicitly with their community.
    pub community_bonus_edges: usize,

    // ---- target mixing ----
    /// Slot mixture for casual users (friend-driven).
    pub casual_mix: MixProfile,
    /// Slot mixture for collectors (interest-driven).
    pub collector_mix: MixProfile,
    /// Probability a celebrity pick uses the global Table-1 roster rather
    /// than the user's own country's Table-5 roster.
    pub celebrity_global_prob: f64,

    // ---- reciprocity (§3.3.2) ----
    /// Follow-back probabilities by provenance.
    pub follow_back: FollowBackProfile,

    // ---- geography (Figures 9, 10) ----
    /// English-affinity multiplier on cross-country picks between
    /// English-first-language countries (GB/CA → US in Figure 10).
    pub english_affinity: f64,

    // ---- archetypes ----
    /// Whether to seed Table-1 / Table-5 celebrities.
    pub with_celebrities: bool,
}

impl SynthConfig {
    /// The Google+ late-2011 calibration.
    pub fn google_plus_2011(n_users: usize, seed: u64) -> Self {
        Self {
            n_users,
            seed,
            lurker_fraction: 0.25,
            head_fraction: 0.75,
            head_mean: 4.5,
            celebrity_out_mean: 25.0,
            tail_x0: 13.0,
            tail_alpha: 1.2,
            out_degree_cap: 5_000,
            community_size: 10,
            community_bonus_edges: 4,
            casual_mix: MixProfile {
                celebrity_fraction: 0.05,
                fof_fraction: 0.30,
                copy_prob: 0.10,
                same_city_prob: 0.85,
                community_prob: 0.90,
            },
            collector_mix: MixProfile {
                celebrity_fraction: 0.25,
                fof_fraction: 0.10,
                copy_prob: 0.88,
                same_city_prob: 0.15,
                community_prob: 0.30,
            },
            celebrity_global_prob: 0.65,
            follow_back: FollowBackProfile {
                same_city: 0.84,
                same_country: 0.52,
                cross_country: 0.42,
                fof: 0.55,
                copy: 0.04,
                celebrity: 0.004,
                celebrity_source_damping: 0.08,
            },
            english_affinity: 2.5,
            with_celebrities: true,
        }
    }

    /// A Twitter-like regime: broadcast-heavy, low reciprocity (22.1% per
    /// Kwak et al. \[26\], the paper's comparison), more celebrity/media
    /// mass, weaker geo structure.
    pub fn twitter_like(n_users: usize, seed: u64) -> Self {
        let base = Self::google_plus_2011(n_users, seed);
        Self {
            casual_mix: MixProfile {
                celebrity_fraction: 0.20,
                fof_fraction: 0.15,
                copy_prob: 0.50,
                same_city_prob: 0.30,
                community_prob: 0.50,
            },
            collector_mix: MixProfile {
                celebrity_fraction: 0.40,
                fof_fraction: 0.05,
                copy_prob: 0.92,
                same_city_prob: 0.05,
                community_prob: 0.20,
            },
            follow_back: FollowBackProfile {
                same_city: 0.60,
                same_country: 0.35,
                cross_country: 0.15,
                fof: 0.30,
                copy: 0.04,
                celebrity: 0.002,
                celebrity_source_damping: 0.08,
            },
            english_affinity: 1.0,
            community_bonus_edges: 1,
            ..base
        }
    }

    /// A Facebook-like regime: every link mutual (reciprocity 100% by
    /// construction in Table 4), no celebrity broadcast edges, strong
    /// local closure.
    pub fn facebook_like(n_users: usize, seed: u64) -> Self {
        let base = Self::google_plus_2011(n_users, seed);
        Self {
            casual_mix: MixProfile {
                celebrity_fraction: 0.0,
                fof_fraction: 0.35,
                copy_prob: 0.30,
                same_city_prob: 0.70,
                community_prob: 0.85,
            },
            collector_mix: MixProfile {
                celebrity_fraction: 0.0,
                fof_fraction: 0.30,
                copy_prob: 0.60,
                same_city_prob: 0.40,
                community_prob: 0.60,
            },
            follow_back: FollowBackProfile {
                same_city: 1.0,
                same_country: 1.0,
                cross_country: 1.0,
                fof: 1.0,
                copy: 1.0,
                celebrity: 1.0,
                celebrity_source_damping: 1.0,
            },
            // Facebook links require both sides to agree, so there is no
            // lurker population receiving edges it never returns
            lurker_fraction: 0.0,
            with_celebrities: false,
            ..base
        }
    }

    /// Figure 10 self-loop target: the probability that an edge from a
    /// user in `country` stays inside that country. Values read from
    /// Figure 10 (§4.5 quotes GB = 0.30 and CA = 0.33 explicitly and names
    /// ID/IN/BR/IT as the > 0.50 group alongside the US).
    pub fn self_loop_fraction(country: Country) -> f64 {
        match country {
            Country::Us => 0.79,
            Country::In => 0.77,
            Country::Br => 0.78,
            Country::Id => 0.74,
            Country::It => 0.56,
            Country::Es => 0.49,
            Country::De => 0.49,
            Country::Mx => 0.46,
            Country::Ca => 0.33,
            Country::Gb => 0.30,
            _ => 0.50,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics with a description of the first violated constraint.
    pub fn validate(&self) {
        assert!(self.n_users > 0, "n_users must be positive");
        assert!((0.0..=1.0).contains(&self.lurker_fraction), "lurker_fraction in [0,1]");
        assert!((0.0..=1.0).contains(&self.head_fraction), "head_fraction in [0,1]");
        assert!(self.head_mean >= 1.0, "head_mean >= 1");
        assert!(self.celebrity_out_mean >= 1.0, "celebrity_out_mean >= 1");
        assert!(self.tail_x0 >= 1.0, "tail_x0 >= 1");
        assert!(self.tail_alpha > 0.0, "tail_alpha > 0");
        assert!(self.out_degree_cap >= 1, "out_degree_cap >= 1");
        assert!(self.community_size >= 2, "community_size >= 2");
        assert!(
            self.community_bonus_edges <= self.community_size,
            "community_bonus_edges cannot exceed community_size"
        );
        self.casual_mix.validate("casual_mix");
        self.collector_mix.validate("collector_mix");
        assert!(
            (0.0..=1.0).contains(&self.celebrity_global_prob),
            "celebrity_global_prob in [0,1]"
        );
        self.follow_back.validate();
        assert!(self.english_affinity >= 0.0, "english_affinity >= 0");
    }

    /// Expected mean out-degree before reciprocation, from the head/tail
    /// mixture (the Pareto-tail mean is the capped closed form).
    pub fn expected_base_out_degree(&self) -> f64 {
        let a = self.tail_alpha;
        let x0 = self.tail_x0;
        let cap = self.out_degree_cap as f64;
        // E[min(x0·U^(-1/a), cap)]
        let tail_mean = if (a - 1.0).abs() < 1e-9 {
            x0 * (1.0 + (cap / x0).ln())
        } else {
            let r = (x0 / cap).powf(a); // P(hit the cap)
            x0 * a / (a - 1.0) * (1.0 - (x0 / cap).powf(a - 1.0)) + cap * r
        };
        (1.0 - self.lurker_fraction)
            * (self.head_fraction * self.head_mean + (1.0 - self.head_fraction) * tail_mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SynthConfig::google_plus_2011(1000, 1).validate();
        SynthConfig::twitter_like(1000, 1).validate();
        SynthConfig::facebook_like(1000, 1).validate();
    }

    #[test]
    fn facebook_preset_fully_reciprocal() {
        let c = SynthConfig::facebook_like(10, 0);
        assert_eq!(c.follow_back.same_city, 1.0);
        assert_eq!(c.follow_back.copy, 1.0);
        assert_eq!(c.casual_mix.celebrity_fraction, 0.0);
        assert!(!c.with_celebrities);
    }

    #[test]
    fn twitter_less_reciprocal_than_gplus() {
        let t = SynthConfig::twitter_like(10, 0);
        let g = SynthConfig::google_plus_2011(10, 0);
        assert!(t.follow_back.same_city < g.follow_back.same_city);
        assert!(t.casual_mix.celebrity_fraction > g.casual_mix.celebrity_fraction);
    }

    #[test]
    fn self_loops_match_figure10_quotes() {
        assert!((SynthConfig::self_loop_fraction(Country::Gb) - 0.30).abs() < 1e-9);
        assert!((SynthConfig::self_loop_fraction(Country::Ca) - 0.33).abs() < 1e-9);
        // the >0.50 group of §4.5
        for c in [Country::Us, Country::In, Country::Br, Country::Id, Country::It] {
            assert!(SynthConfig::self_loop_fraction(c) > 0.50, "{c}");
        }
    }

    #[test]
    fn expected_out_degree_in_paper_ballpark() {
        let c = SynthConfig::google_plus_2011(1000, 1);
        let m = c.expected_base_out_degree();
        // paper's mean degree is 16.4 *after* reciprocation edges; the base
        // process sits somewhat below that
        assert!(m > 8.0 && m < 25.0, "expected base mean {m}");
    }

    #[test]
    fn persona_mixes_differ_in_the_intended_direction() {
        let c = SynthConfig::google_plus_2011(10, 0);
        assert!(c.collector_mix.copy_prob > c.casual_mix.copy_prob);
        assert!(c.casual_mix.same_city_prob > c.collector_mix.same_city_prob);
        assert!(c.collector_mix.celebrity_fraction > c.casual_mix.celebrity_fraction);
    }

    #[test]
    fn friendlike_follow_back_exceeds_strangerlike() {
        let f = SynthConfig::google_plus_2011(10, 0).follow_back;
        assert!(f.same_city > f.same_country);
        assert!(f.same_country > f.cross_country);
        assert!(f.fof > f.copy);
        assert!(f.copy > f.celebrity);
    }

    #[test]
    #[should_panic(expected = "n_users")]
    fn validate_rejects_empty() {
        SynthConfig::google_plus_2011(0, 1).validate();
    }

    #[test]
    #[should_panic(expected = "celebrity + fof")]
    fn validate_rejects_overfull_mixture() {
        let mut c = SynthConfig::google_plus_2011(10, 1);
        c.casual_mix.celebrity_fraction = 0.8;
        c.casual_mix.fof_fraction = 0.4;
        c.validate();
    }
}
