//! Celebrity archetypes: Table 1's global top-20 and Table 5's per-country
//! top-10 lists.
//!
//! Two disjoint groups are seeded:
//!
//! * **Global celebrities** (Table 1): the twenty named users, with the
//!   paper's categories mapped to occupation codes. They do *not* share
//!   "places lived" — which is exactly why the paper's Table 5 (computed
//!   over geo-located users) shows a different US top-10 than Table 1.
//! * **Country celebrities** (Table 5): ten per top-10 country carrying the
//!   paper's verbatim occupation-code sequences, sharing their location.
//!
//! Attractiveness ("fitness") decays with rank inside each group so that
//! ranking by in-degree recovers the intended order.

use gplus_geo::{Country, TOP10_COUNTRIES};
use gplus_profiles::calibration::{top_user_occupations, TABLE1_TOP_USERS};
use gplus_profiles::Occupation;
use serde::{Deserialize, Serialize};

/// One seeded celebrity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Celebrity {
    /// Graph node id (celebrities occupy the first ids).
    pub node: u32,
    /// Display name ("Larry Page" or a synthesized national handle).
    pub name: String,
    /// Occupation code per Table 1 / Table 5.
    pub occupation: Occupation,
    /// Country of residence.
    pub country: Country,
    /// Rank within Table 1, if a global celebrity (0 = Larry Page).
    pub global_rank: Option<usize>,
    /// Rank within the country's Table-5 list, if a country celebrity.
    pub country_rank: Option<usize>,
    /// Relative probability of being picked as a celebrity target.
    pub fitness: f64,
    /// Whether the profile exposes "places lived" (global celebrities
    /// withhold it; country celebrities share it).
    pub shares_location: bool,
}

impl Celebrity {
    /// Whether this is a Table-1 global celebrity.
    pub fn is_global(&self) -> bool {
        self.global_rank.is_some()
    }
}

/// Maps a Table-1 "About" string to an occupation code.
fn table1_occupation(about: &str) -> Occupation {
    if about.starts_with("IT") {
        Occupation::InformationTechnology
    } else if about.starts_with("Musician") {
        Occupation::Musician
    } else if about.starts_with("Model") {
        Occupation::Model
    } else if about.starts_with("Socialite") {
        Occupation::Socialite
    } else if about.starts_with("Businessman") {
        Occupation::Businessman
    } else if about.starts_with("Comedian") {
        Occupation::Comedian
    } else if about.starts_with("Blogger") {
        Occupation::Blogger
    } else if about.starts_with("Actor") {
        Occupation::Actor
    } else {
        // "Astronaut (NASA)" has no Table-5 code; Writer is the nearest
        // archetype the paper's code list offers for public figures
        Occupation::Writer
    }
}

/// Country of residence for Table-1 celebrities. Richard Branson and Pete
/// Cashmore are British; everyone else on the list is US-based.
fn table1_country(name: &str) -> Country {
    match name {
        "Richard Branson" | "Pete Cashmore" => Country::Gb,
        _ => Country::Us,
    }
}

/// Seeds the full celebrity roster: 20 global + 10 × top-10 countries.
///
/// Node ids are `0..120`. Fitness decays as `rank^-0.8` within each group;
/// the global group carries `global_weight` times the mass of a country
/// group so Table-1 members dominate the overall in-degree ranking.
pub fn seed_celebrities() -> Vec<Celebrity> {
    let mut out = Vec::with_capacity(120);
    let mut node: u32 = 0;

    // Table 1: global top-20.
    for (rank, (name, about, _is_it)) in TABLE1_TOP_USERS.iter().enumerate() {
        out.push(Celebrity {
            node,
            name: (*name).to_string(),
            occupation: table1_occupation(about),
            country: table1_country(name),
            global_rank: Some(rank),
            country_rank: None,
            fitness: 10.0 / ((rank + 1) as f64).powf(0.6),
            shares_location: false,
        });
        node += 1;
    }

    // Table 5: per-country top-10.
    for country in TOP10_COUNTRIES {
        let occupations =
            top_user_occupations(country).expect("top-10 countries have occupation lists");
        for (rank, occ) in occupations.into_iter().enumerate() {
            out.push(Celebrity {
                node,
                name: format!("{} top-{} ({})", country.code(), rank + 1, occ.code()),
                occupation: occ,
                country,
                global_rank: None,
                country_rank: Some(rank),
                fitness: 1.0 / ((rank + 1) as f64).powf(1.1),
                shares_location: true,
            });
            node += 1;
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_size_and_dense_ids() {
        let c = seed_celebrities();
        assert_eq!(c.len(), 120);
        for (i, celeb) in c.iter().enumerate() {
            assert_eq!(celeb.node as usize, i);
        }
    }

    #[test]
    fn first_twenty_are_table1_in_order() {
        let c = seed_celebrities();
        assert_eq!(c[0].name, "Larry Page");
        assert_eq!(c[1].name, "Mark Zuckerberg");
        assert_eq!(c[19].name, "Ron Garan");
        for (i, celeb) in c[..20].iter().enumerate() {
            assert_eq!(celeb.global_rank, Some(i));
            assert!(celeb.is_global());
            assert!(!celeb.shares_location, "Table-1 celebs withhold location");
        }
    }

    #[test]
    fn seven_it_celebrities_globally() {
        let c = seed_celebrities();
        let it = c[..20]
            .iter()
            .filter(|x| x.occupation == Occupation::InformationTechnology)
            .count();
        assert_eq!(it, 7);
    }

    #[test]
    fn country_groups_carry_table5_occupations() {
        let c = seed_celebrities();
        for country in TOP10_COUNTRIES {
            let group: Vec<&Celebrity> =
                c.iter().filter(|x| x.country_rank.is_some() && x.country == country).collect();
            assert_eq!(group.len(), 10, "{country}");
            let expected = top_user_occupations(country).unwrap();
            for (rank, celeb) in group.iter().enumerate() {
                assert_eq!(celeb.country_rank, Some(rank));
                assert_eq!(celeb.occupation, expected[rank], "{country} rank {rank}");
                assert!(celeb.shares_location);
            }
        }
    }

    #[test]
    fn fitness_decays_with_rank() {
        let c = seed_celebrities();
        assert!(c[0].fitness > c[1].fitness);
        assert!(c[1].fitness > c[19].fitness);
        // global group strictly outweighs country groups at equal rank
        let us_top = c.iter().find(|x| x.country_rank == Some(0)).unwrap();
        assert!(c[0].fitness > us_top.fitness);
    }

    #[test]
    fn branson_and_cashmore_british() {
        let c = seed_celebrities();
        let branson = c.iter().find(|x| x.name == "Richard Branson").unwrap();
        let cashmore = c.iter().find(|x| x.name == "Pete Cashmore").unwrap();
        assert_eq!(branson.country, Country::Gb);
        assert_eq!(cashmore.country, Country::Gb);
        assert_eq!(c[0].country, Country::Us);
    }
}
