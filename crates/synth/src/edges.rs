//! The edge-generation process.
//!
//! Every user gets a *persona* (casual / collector / celebrity) which fixes
//! their out-degree distribution and target-picking mixture; targets come
//! from five pickers (celebrity roster, friend-of-friend closure,
//! copy-model preferential attachment, same-city uniform, country/cross
//! uniform); each new edge may be reciprocated with a provenance-dependent
//! follow-back probability. See the crate docs for which published
//! statistic each mechanism is responsible for.

use crate::config::{MixProfile, SynthConfig};
use crate::population::Population;
use gplus_geo::Country;
use rand::distr::weighted::WeightedIndex;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A user's behavioural archetype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Persona {
    /// Friend-driven user with a small, mostly-local circle.
    Casual,
    /// Interest-driven user following many popular accounts.
    Collector,
    /// Seeded Table-1 / Table-5 archetype.
    Celebrity,
    /// Pure consumer: no out-circles, never follows back (§3.3.4's
    /// outside-the-giant-SCC population).
    Lurker,
}

/// How a particular edge came to exist (decides its follow-back rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provenance {
    /// Uniform pick within the source's own city.
    SameCity,
    /// Uniform pick within the source's country.
    SameCountry,
    /// Uniform pick in another country.
    CrossCountry,
    /// Friend-of-friend closure.
    Fof,
    /// Copy-model (preferential attachment) pick.
    Copy,
    /// Celebrity roster pick.
    Celebrity,
}

/// Aggregate statistics of one generation run, for tests and reports.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EdgeStats {
    /// Base (non-follow-back) edges per provenance.
    pub by_provenance: HashMap<String, u64>,
    /// Follow-back edges added.
    pub follow_backs: u64,
    /// Base edges total.
    pub base_edges: u64,
}

/// Result of the edge process: a directed edge list (with possible
/// duplicates — the graph builder dedups) plus personas and stats.
#[derive(Debug, Clone)]
pub struct EdgeOutcome {
    /// Directed edges `(u, v)`.
    pub edges: Vec<(u32, u32)>,
    /// Persona per node.
    pub personas: Vec<Persona>,
    /// Run statistics.
    pub stats: EdgeStats,
}

/// Result of one [`stream_edges`] pass: everything [`EdgeOutcome`] carries
/// except the edge list itself, which went to the sink.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Persona per node.
    pub personas: Vec<Persona>,
    /// Run statistics.
    pub stats: EdgeStats,
    /// Edges emitted to the sink (base + follow-backs, duplicates included).
    pub emitted: u64,
}

/// Runs the edge process over a generated population, materialising the
/// edge list. Thin wrapper over [`stream_edges`]; both draw the identical
/// RNG sequence, so a fixed seed yields the same network either way.
pub fn generate_edges(cfg: &SynthConfig, pop: &Population) -> EdgeOutcome {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let outcome = stream_edges(cfg, pop, &mut |u, v| edges.push((u, v)));
    EdgeOutcome { edges, personas: outcome.personas, stats: outcome.stats }
}

/// Runs the edge process, emitting each directed edge to `sink` the moment
/// it is generated instead of accumulating a `Vec` of every `(u, v)` pair.
///
/// This is the paper-scale entry point: a streaming consumer (the two-pass
/// CSR builder, a crawl frontier, an edge-file writer) never holds the
/// duplicated edge list, so peak memory is the generator's own working
/// state plus whatever the sink keeps. The RNG draw sequence is exactly
/// [`generate_edges`]'s — the seed contract pins edge emission order.
pub fn stream_edges(
    cfg: &SynthConfig,
    pop: &Population,
    sink: &mut dyn FnMut(u32, u32),
) -> StreamOutcome {
    cfg.validate();
    let n = pop.len();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6564_6765_735f_6765); // "edges_ge"

    // --- personas and base out-degrees ---
    let roster = pop.celebrities.len();
    let personas: Vec<Persona> = (0..n)
        .map(|id| {
            if id < roster {
                Persona::Celebrity
            } else if rng.random_bool(cfg.lurker_fraction) {
                Persona::Lurker
            } else if rng.random_bool(cfg.head_fraction) {
                Persona::Casual
            } else {
                Persona::Collector
            }
        })
        .collect();
    let base_degree: Vec<u32> =
        personas.iter().map(|p| sample_out_degree(cfg, *p, &mut rng)).collect();
    let bonus = cfg.community_bonus_edges as u32;

    // --- pickers ---
    let pickers = Pickers::build(cfg, pop);

    // --- the process ---
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rng);

    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut global_copy: Vec<u32> = Vec::new();
    let mut country_copy: HashMap<Country, Vec<u32>> = HashMap::new();
    let mut stats = EdgeStats::default();

    for &u in &order {
        let persona = personas[u as usize];
        let mix = match persona {
            Persona::Casual | Persona::Celebrity | Persona::Lurker => &cfg.casual_mix,
            Persona::Collector => &cfg.collector_mix,
        };
        let d = base_degree[u as usize];
        if persona == Persona::Casual {
            // community bonding edges (see SynthConfig::community_bonus_edges).
            // Bonus edges are always domestic, so outward-looking countries
            // (low Figure-10 self-loop targets) get proportionally fewer of
            // them — otherwise GB/CA could never reach their 0.30/0.33
            // cross-border mixing.
            let home = pop.profile(u).country;
            let gate = SynthConfig::self_loop_fraction(home) / 0.79;
            let comm = pop.community_of(u);
            if comm.len() > 1 {
                for _ in 0..bonus {
                    if !rng.random_bool(gate.clamp(0.0, 1.0)) {
                        continue;
                    }
                    let v = comm[rng.random_range(0..comm.len())];
                    if v == u {
                        continue;
                    }
                    push_edge(
                        cfg,
                        pop,
                        &personas,
                        u,
                        v,
                        Provenance::SameCity,
                        &mut out,
                        sink,
                        &mut global_copy,
                        &mut country_copy,
                        &mut stats,
                        &mut rng,
                    );
                }
            }
        }
        for _ in 0..d {
            let Some((v, provenance)) = pick_target(
                cfg,
                pop,
                &pickers,
                mix,
                u,
                &out,
                &global_copy,
                &country_copy,
                &mut rng,
            ) else {
                continue;
            };
            if v == u {
                continue;
            }
            push_edge(
                cfg,
                pop,
                &personas,
                u,
                v,
                provenance,
                &mut out,
                sink,
                &mut global_copy,
                &mut country_copy,
                &mut stats,
                &mut rng,
            );
        }
    }

    let emitted = stats.base_edges + stats.follow_backs;
    StreamOutcome { personas, stats, emitted }
}

/// Records the base edge `u -> v` with its provenance and rolls the
/// follow-back `v -> u`.
#[allow(clippy::too_many_arguments)]
fn push_edge(
    cfg: &SynthConfig,
    pop: &Population,
    personas: &[Persona],
    u: u32,
    v: u32,
    provenance: Provenance,
    out: &mut [Vec<u32>],
    sink: &mut dyn FnMut(u32, u32),
    global_copy: &mut Vec<u32>,
    country_copy: &mut HashMap<Country, Vec<u32>>,
    stats: &mut EdgeStats,
    rng: &mut StdRng,
) {
    sink(u, v);
    out[u as usize].push(v);
    global_copy.push(v);
    country_copy.entry(pop.profile(v).country).or_default().push(v);
    stats.base_edges += 1;
    *stats.by_provenance.entry(format!("{provenance:?}")).or_insert(0) += 1;

    // follow-back v -> u?
    let mut r = if personas[v as usize] == Persona::Lurker {
        0.0
    } else if personas[v as usize] == Persona::Celebrity {
        cfg.follow_back.celebrity
    } else {
        match provenance {
            Provenance::SameCity => cfg.follow_back.same_city,
            Provenance::SameCountry => cfg.follow_back.same_country,
            Provenance::CrossCountry => cfg.follow_back.cross_country,
            Provenance::Fof => cfg.follow_back.fof,
            Provenance::Copy => cfg.follow_back.copy,
            Provenance::Celebrity => cfg.follow_back.celebrity,
        }
    };
    if personas[u as usize] == Persona::Celebrity {
        r *= cfg.follow_back.celebrity_source_damping;
    }
    if r > 0.0 && rng.random_bool(r.min(1.0)) {
        sink(v, u);
        out[v as usize].push(u);
        stats.follow_backs += 1;
    }
}

/// Precomputed weighted samplers for celebrity and cross-country picks.
struct Pickers {
    global_celebs: Option<(Vec<u32>, WeightedIndex<f64>)>,
    country_celebs: HashMap<Country, (Vec<u32>, WeightedIndex<f64>)>,
    /// Cross-country target sampler per source country.
    cross: HashMap<Country, (Vec<Country>, WeightedIndex<f64>)>,
}

impl Pickers {
    fn build(cfg: &SynthConfig, pop: &Population) -> Self {
        let mut global_nodes = Vec::new();
        let mut global_weights = Vec::new();
        let mut per_country: HashMap<Country, (Vec<u32>, Vec<f64>)> = HashMap::new();
        for celeb in &pop.celebrities {
            if celeb.is_global() {
                global_nodes.push(celeb.node);
                global_weights.push(celeb.fitness);
            } else {
                let entry = per_country.entry(celeb.country).or_default();
                entry.0.push(celeb.node);
                entry.1.push(celeb.fitness);
            }
        }
        let global_celebs = if global_nodes.is_empty() {
            None
        } else {
            let w = WeightedIndex::new(&global_weights).expect("positive fitness");
            Some((global_nodes, w))
        };
        let country_celebs = per_country
            .into_iter()
            .map(|(c, (nodes, weights))| {
                let w = WeightedIndex::new(&weights).expect("positive fitness");
                (c, (nodes, w))
            })
            .collect();

        // cross-country samplers, deterministic iteration order
        let mut cross = HashMap::new();
        for src in Country::all() {
            let mut countries = Vec::new();
            let mut weights = Vec::new();
            for dst in Country::all() {
                if dst == src {
                    continue;
                }
                let members = pop.country_members(dst).len();
                if members == 0 {
                    continue;
                }
                let mut w = members as f64;
                if src.english_first_language() && dst.english_first_language() {
                    w *= cfg.english_affinity.max(f64::MIN_POSITIVE);
                }
                countries.push(dst);
                weights.push(w);
            }
            if !countries.is_empty() {
                let w = WeightedIndex::new(&weights).expect("positive weights");
                cross.insert(src, (countries, w));
            }
        }
        Self { global_celebs, country_celebs, cross }
    }
}

/// Samples one target for `u`, returning the node and the provenance.
/// Returns `None` when every applicable picker comes up empty (tiny
/// populations).
#[allow(clippy::too_many_arguments)]
fn pick_target(
    cfg: &SynthConfig,
    pop: &Population,
    pickers: &Pickers,
    mix: &MixProfile,
    u: u32,
    out: &[Vec<u32>],
    global_copy: &[u32],
    country_copy: &HashMap<Country, Vec<u32>>,
    rng: &mut StdRng,
) -> Option<(u32, Provenance)> {
    {
        let roll: f64 = rng.random();
        let home = pop.profile(u).country;

        // 1. celebrity pick
        if roll < mix.celebrity_fraction {
            let use_global = rng.random_bool(cfg.celebrity_global_prob)
                || !pickers.country_celebs.contains_key(&home);
            let roster = if use_global {
                pickers.global_celebs.as_ref()
            } else {
                pickers.country_celebs.get(&home)
            };
            if let Some((nodes, weights)) = roster {
                return Some((nodes[weights.sample(rng)], Provenance::Celebrity));
            }
            // no roster at all (celebrities disabled): fall through to geo
        }

        // 2. friend-of-friend closure
        if roll < mix.celebrity_fraction + mix.fof_fraction {
            let mine = &out[u as usize];
            if !mine.is_empty() {
                // prefer a non-celebrity intermediary: a celebrity's
                // followee list is unrelated to u's social circle and
                // contributes no local closure
                let roster = pop.celebrities.len() as u32;
                let mut v = mine[rng.random_range(0..mine.len())];
                if v < roster && mine.len() > 1 {
                    v = mine[rng.random_range(0..mine.len())];
                }
                let theirs = &out[v as usize];
                if !theirs.is_empty() {
                    let w = theirs[rng.random_range(0..theirs.len())];
                    if w != u {
                        return Some((w, Provenance::Fof));
                    }
                }
            }
            // fall through to geo when the neighbourhood is still empty
        }

        // 3. geographic pick: choose target country first
        let (target_country, cross) = if rng.random_bool(SynthConfig::self_loop_fraction(home))
        {
            (home, false)
        } else if let Some((countries, weights)) = pickers.cross.get(&home) {
            (countries[weights.sample(rng)], true)
        } else {
            (home, false)
        };

        // 3a. copy-model (preferential attachment) within the country
        if rng.random_bool(mix.copy_prob) {
            if let Some(list) = country_copy.get(&target_country) {
                if !list.is_empty() {
                    return Some((list[rng.random_range(0..list.len())], Provenance::Copy));
                }
            }
            if !global_copy.is_empty() {
                return Some((
                    global_copy[rng.random_range(0..global_copy.len())],
                    Provenance::Copy,
                ));
            }
        }

        // 3b. uniform pick, same-city (and usually same-community)
        // preferred when staying home
        if !cross && rng.random_bool(mix.same_city_prob) {
            if rng.random_bool(mix.community_prob) {
                let comm = pop.community_of(u);
                if comm.len() > 1 {
                    let v = comm[rng.random_range(0..comm.len())];
                    if v != u {
                        return Some((v, Provenance::SameCity));
                    }
                }
            }
            let city = pop.profile(u).city_index;
            let members = pop.city_members(home, city);
            if members.len() > 1 {
                let v = members[rng.random_range(0..members.len())];
                return Some((v, Provenance::SameCity));
            }
        }
        let members = pop.country_members(target_country);
        if members.is_empty() {
            return None;
        }
        let v = members[rng.random_range(0..members.len())];
        let provenance = if cross { Provenance::CrossCountry } else { Provenance::SameCountry };
        Some((v, provenance))
    }
}

fn sample_out_degree(cfg: &SynthConfig, persona: Persona, rng: &mut StdRng) -> u32 {
    match persona {
        Persona::Lurker => 0,
        Persona::Casual => 1 + sample_geometric(cfg.head_mean - 1.0, rng),
        Persona::Celebrity => 1 + sample_geometric(cfg.celebrity_out_mean - 1.0, rng),
        Persona::Collector => {
            let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            let d = cfg.tail_x0 * u.powf(-1.0 / cfg.tail_alpha);
            d.min(cfg.out_degree_cap as f64).round().max(1.0) as u32
        }
    }
}

/// Geometric over {0, 1, 2, ...} with the given mean (0 when mean <= 0).
fn sample_geometric(mean: f64, rng: &mut StdRng) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (1.0 + mean); // success prob: mean failures = (1-p)/p
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    (u.ln() / (1.0 - p).ln()).floor().min(u32::MAX as f64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(n: usize, seed: u64) -> (Population, EdgeOutcome) {
        let cfg = SynthConfig::google_plus_2011(n, seed);
        let pop = Population::generate(&cfg);
        let out = generate_edges(&cfg, &pop);
        (pop, out)
    }

    #[test]
    fn deterministic() {
        let (_, a) = outcome(2_000, 5);
        let (_, b) = outcome(2_000, 5);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.personas, b.personas);
    }

    #[test]
    fn stream_matches_batch_exactly() {
        let cfg = SynthConfig::google_plus_2011(2_000, 5);
        let pop = Population::generate(&cfg);
        let batch = generate_edges(&cfg, &pop);
        let mut streamed: Vec<(u32, u32)> = Vec::new();
        let so = stream_edges(&cfg, &pop, &mut |u, v| streamed.push((u, v)));
        assert_eq!(streamed, batch.edges, "same RNG sequence, same emission order");
        assert_eq!(so.personas, batch.personas);
        assert_eq!(so.stats, batch.stats);
        assert_eq!(so.emitted, batch.edges.len() as u64);
    }

    #[test]
    fn no_self_loops() {
        let (_, o) = outcome(2_000, 6);
        assert!(o.edges.iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn personas_assigned_sensibly() {
        let (pop, o) = outcome(3_000, 7);
        for celeb in &pop.celebrities {
            assert_eq!(o.personas[celeb.node as usize], Persona::Celebrity);
        }
        let ordinary = (pop.len() - pop.celebrities.len()) as f64;
        let lurkers = o.personas.iter().filter(|p| **p == Persona::Lurker).count() as f64;
        assert!((lurkers / ordinary - 0.25).abs() < 0.05, "lurker share");
        let casual = o.personas.iter().filter(|p| **p == Persona::Casual).count() as f64;
        // casual = (1 - lurker) * head_fraction of ordinary users
        assert!((casual / ordinary - 0.5625).abs() < 0.05, "casual share");
    }

    #[test]
    fn mean_degree_in_target_band() {
        let (pop, o) = outcome(10_000, 8);
        let mean = o.edges.len() as f64 / pop.len() as f64;
        assert!(mean > 6.0 && mean < 30.0, "mean degree {mean}");
    }

    #[test]
    fn follow_backs_are_substantial_minority() {
        let (_, o) = outcome(10_000, 9);
        let frac = o.stats.follow_backs as f64 / o.stats.base_edges as f64;
        assert!(frac > 0.1 && frac < 0.5, "follow-back fraction {frac}");
    }

    #[test]
    fn provenance_mix_covers_all_pickers() {
        let (_, o) = outcome(10_000, 10);
        for key in ["SameCity", "SameCountry", "CrossCountry", "Fof", "Copy", "Celebrity"] {
            assert!(
                o.stats.by_provenance.get(key).copied().unwrap_or(0) > 0,
                "no {key} edges generated"
            );
        }
    }

    #[test]
    fn celebrities_attract_mass() {
        let (pop, o) = outcome(10_000, 11);
        let mut indeg = vec![0u64; pop.len()];
        for &(_, v) in &o.edges {
            indeg[v as usize] += 1;
        }
        let celeb_mean: f64 = (0..120).map(|i| indeg[i] as f64).sum::<f64>() / 120.0;
        let all_mean: f64 = indeg.iter().sum::<u64>() as f64 / indeg.len() as f64;
        assert!(celeb_mean > all_mean * 10.0, "celeb {celeb_mean} vs all {all_mean}");
    }

    #[test]
    fn ordinary_out_degree_respects_cap() {
        let mut cfg = SynthConfig::google_plus_2011(5_000, 12);
        cfg.out_degree_cap = 50; // low cap to make hits observable
        let pop = Population::generate(&cfg);
        let o = generate_edges(&cfg, &pop);
        let mut outdeg = vec![0u32; pop.len()];
        for &(u, _) in &o.edges {
            outdeg[u as usize] += 1;
        }
        for (id, &d) in outdeg.iter().enumerate() {
            if o.personas[id] == Persona::Collector {
                // base degree capped; follow-backs may add a few on top
                assert!(d <= 50 + 25, "collector {id} has out-degree {d}");
            }
        }
        // and the cap actually binds for someone
        let hits = outdeg
            .iter()
            .enumerate()
            .filter(|(id, &d)| o.personas[*id] == Persona::Collector && d >= 50)
            .count();
        assert!(hits > 0, "cap never binds — tail too thin for the test");
    }

    #[test]
    fn geometric_sampler_mean() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 50_000;
        let mean =
            (0..n).map(|_| sample_geometric(4.0, &mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "geometric mean {mean}");
    }

    #[test]
    fn collector_degrees_heavy_tailed() {
        let cfg = SynthConfig::google_plus_2011(10, 1);
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<u32> = (0..20_000)
            .map(|_| sample_out_degree(&cfg, Persona::Collector, &mut rng))
            .collect();
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        assert!(min >= 1);
        assert!(max > 500, "tail should reach high degrees, max {max}");
        // all at least x0-ish
        assert!(samples.iter().filter(|&&d| d >= 10).count() > 19_000);
    }
}
