//! Adversarial tiny-graph shapes for correctness tooling.
//!
//! The calibrated presets all produce "reasonable" social graphs —
//! heavy-tailed, mostly connected, sparse. Kernel bugs love the inputs
//! those presets never generate: empty graphs, stars whose hub degree
//! equals `n - 1`, cliques where clustering saturates at 1.0, self-loop
//! chains, and dust (many isolated nodes around a few random edges).
//! [`adversarial_graphs`] returns that bestiary, deterministically, for
//! the oracle sweep to run alongside the presets.

use gplus_graph::builder::from_edges;
use gplus_graph::{CsrGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Named adversarial graphs, deterministic in `seed`. `max_nodes` caps the
/// size of every shape (cliques are additionally capped so the edge count
/// stays small); it is clamped to at least 4 so each shape is non-trivial.
pub fn adversarial_graphs(max_nodes: usize, seed: u64) -> Vec<(String, CsrGraph)> {
    let n = max_nodes.max(4);
    let clique_n = n.min(24);
    let mut shapes: Vec<(String, CsrGraph)> = vec![
        ("adv-empty".into(), from_edges(0, [])),
        ("adv-single-node".into(), from_edges(1, [])),
        ("adv-single-self-loop".into(), from_edges(1, [(0, 0)])),
        ("adv-two-cycle".into(), from_edges(2, [(0, 1), (1, 0)])),
        // hub -> everyone: out-degree n-1 against in-degrees of 1
        ("adv-out-star".into(), from_edges(n, (1..n as NodeId).map(|v| (0, v)))),
        // everyone -> hub: the transpose stress case
        ("adv-in-star".into(), from_edges(n, (1..n as NodeId).map(|v| (v, 0)))),
        // complete digraph: clustering saturates at 1.0, one SCC
        (
            "adv-clique".into(),
            from_edges(
                clique_n,
                (0..clique_n as NodeId).flat_map(move |u| {
                    (0..clique_n as NodeId).filter(move |&v| v != u).map(move |v| (u, v))
                }),
            ),
        ),
        // directed path where every node also points at itself: self-loops
        // must count for reciprocity yet never extend a BFS level
        (
            "adv-self-loop-chain".into(),
            from_edges(
                n,
                (0..n as NodeId)
                    .map(|u| (u, u))
                    .chain((0..n as NodeId - 1).map(|u| (u, u + 1))),
            ),
        ),
    ];
    // disconnected dust: a few random edges lost in a sea of isolated nodes
    let mut rng = StdRng::seed_from_u64(seed ^ 0xad7e_2512);
    let dust_edges: Vec<(NodeId, NodeId)> = (0..n / 4)
        .map(|_| (rng.random_range(0..n) as NodeId, rng.random_range(0..n) as NodeId))
        .collect();
    shapes.push(("adv-dust".into(), from_edges(n, dust_edges)));
    shapes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_deterministic_and_capped() {
        let a = adversarial_graphs(40, 7);
        let b = adversarial_graphs(40, 7);
        assert_eq!(a.len(), b.len());
        for ((name_a, g_a), (name_b, g_b)) in a.iter().zip(&b) {
            assert_eq!(name_a, name_b);
            assert_eq!(g_a, g_b);
            assert!(g_a.node_count() <= 40, "{name_a} exceeds the cap");
        }
        let names: Vec<&str> = a.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"adv-empty"));
        assert!(names.contains(&"adv-clique"));
        assert!(names.contains(&"adv-dust"));
    }

    #[test]
    fn stars_and_chain_have_the_advertised_structure() {
        let shapes = adversarial_graphs(10, 0);
        let find =
            |name: &str| &shapes.iter().find(|(n, _)| n == name).expect("shape present").1;
        let out_star = find("adv-out-star");
        assert_eq!(out_star.out_degree(0), 9);
        assert_eq!(out_star.in_degree(0), 0);
        let in_star = find("adv-in-star");
        assert_eq!(in_star.in_degree(0), 9);
        let chain = find("adv-self-loop-chain");
        assert!(chain.nodes().all(|u| chain.has_edge(u, u)));
        let clique = find("adv-clique");
        assert_eq!(clique.edge_count(), 10 * 9);
    }
}
