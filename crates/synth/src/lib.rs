//! Synthetic Google+ 2011 population and social-graph generator.
//!
//! The original dataset (27.5M profiles, 575M links) is gone, so this crate
//! generates populations whose *distributional shape* matches everything
//! the paper published about the real network:
//!
//! * heavy-tailed in/out-degree with CCDF exponents near α_in = 1.3 and
//!   α_out = 1.2 and the sharp out-degree drop near 5,000 (§3.3.1) — the
//!   out-degree comes from an explicit head+tail mixture, the in-degree
//!   emerges from a copy-model (preferential attachment) target sampler;
//! * global edge reciprocity near 32% with the Figure 4(a) bimodal RR
//!   structure (ordinary users high, collectors/celebrities low), produced
//!   by per-persona follow-back probabilities;
//! * high directed clustering (Figure 4(b)) from friend-of-friend closure;
//! * one giant SCC covering ~70% of users (Figure 4(c)) and small-world
//!   path lengths (Figure 5), emergent from the above;
//! * geographic homophily calibrated to Figure 10's per-country self-loop
//!   fractions and Figure 9's distance CDFs (same-city boost, distance-
//!   damped reciprocation);
//! * celebrity archetypes reproducing Table 1 (global top-20, 7/20 IT,
//!   location mostly withheld) and Table 5 (per-country top-10 occupation
//!   lists, location shared).
//!
//! Presets: [`SynthConfig::google_plus_2011`] (the calibration above),
//! [`SynthConfig::twitter_like`] and [`SynthConfig::facebook_like`] for the
//! Table 4 cross-network comparisons.
//!
//! Generation is deterministic given `seed`.
//!
//! ```
//! use gplus_synth::{SynthConfig, SynthNetwork};
//!
//! let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(2_000, 42));
//! assert_eq!(net.population.profiles.len(), 2_000);
//! assert!(net.graph.edge_count() > 2_000);
//! ```

pub mod adversarial;
pub mod celebrities;
pub mod config;
pub mod edges;
pub mod growth;
pub mod network;
pub mod population;

pub use celebrities::{seed_celebrities, Celebrity};
pub use config::SynthConfig;
pub use growth::{densification_exponent, GrowthModel, SnapshotStats};
pub use network::SynthNetwork;
pub use population::Population;
