//! Top-level network assembly: population + edge process + CSR graph.

use crate::config::SynthConfig;
use crate::edges::{generate_edges, stream_edges, EdgeStats, Persona, StreamOutcome};
use crate::population::Population;
use gplus_graph::builder::build_streamed;
use gplus_graph::{CsrGraph, GraphBuilder};

/// A fully generated synthetic network: profiles, personas and the social
/// graph, ready for the analysis and crawling layers.
#[derive(Debug, Clone)]
pub struct SynthNetwork {
    /// The configuration that produced this network.
    pub config: SynthConfig,
    /// Profiles and geographic indices.
    pub population: Population,
    /// The directed social graph (node id = profile index).
    pub graph: CsrGraph,
    /// Persona per node.
    pub personas: Vec<Persona>,
    /// Edge-process statistics.
    pub edge_stats: EdgeStats,
}

impl SynthNetwork {
    /// Generates a network. Deterministic given `config.seed`.
    pub fn generate(config: &SynthConfig) -> Self {
        let population = Population::generate(config);
        let outcome = generate_edges(config, &population);
        let mut builder = GraphBuilder::with_capacity(outcome.edges.len());
        builder.ensure_nodes(population.len());
        for (u, v) in &outcome.edges {
            builder.add_edge(*u, *v);
        }
        let graph = builder.build();
        Self {
            config: config.clone(),
            population,
            graph,
            personas: outcome.personas,
            edge_stats: outcome.stats,
        }
    }

    /// Generates a network without ever materialising the raw edge list:
    /// the edge process streams straight into the two-pass CSR builder
    /// ([`build_streamed`]), which replays the seeded generator once to
    /// count degrees and once to fill rows. Byte-identical to
    /// [`Self::generate`] at the same seed — the RNG contract is pinned by
    /// tests — at the cost of running the edge process twice. This is the
    /// paper-scale path: peak memory is the generator's working state plus
    /// the finished CSR, with no `(u, v)` list or global edge sort.
    pub fn generate_streamed(config: &SynthConfig) -> Self {
        let population = Population::generate(config);
        let mut last_pass: Option<StreamOutcome> = None;
        let graph = build_streamed(population.len(), |emit| {
            last_pass = Some(stream_edges(config, &population, &mut |u, v| emit(u, v)));
        });
        let outcome = last_pass.expect("build_streamed runs the pass");
        Self {
            config: config.clone(),
            population,
            graph,
            personas: outcome.personas,
            edge_stats: outcome.stats,
        }
    }

    /// Number of users.
    pub fn node_count(&self) -> usize {
        self.population.len()
    }

    /// Number of distinct directed edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_graph::{degree, paths, reciprocity, scc};
    use gplus_stats::median;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// One mid-sized network shared by the structural assertions (generation
    /// is the expensive part; the assertions are cheap).
    fn gplus_net() -> &'static SynthNetwork {
        use std::sync::OnceLock;
        static NET: OnceLock<SynthNetwork> = OnceLock::new();
        NET.get_or_init(|| SynthNetwork::generate(&SynthConfig::google_plus_2011(30_000, 2012)))
    }

    #[test]
    fn streamed_generation_is_byte_identical() {
        let cfg = SynthConfig::google_plus_2011(3_000, 2012);
        let batch = SynthNetwork::generate(&cfg);
        let streamed = SynthNetwork::generate_streamed(&cfg);
        assert_eq!(streamed.graph, batch.graph);
        assert_eq!(streamed.personas, batch.personas);
        assert_eq!(streamed.edge_stats, batch.edge_stats);
    }

    #[test]
    fn graph_covers_population() {
        let net = gplus_net();
        assert_eq!(net.graph.node_count(), net.node_count());
        assert!(net.edge_count() > net.node_count() * 5);
    }

    #[test]
    fn global_reciprocity_near_paper() {
        // paper: 32% for Google+ (§3.3.2); we accept the band [0.22, 0.45]
        let r = reciprocity::global_reciprocity(&gplus_net().graph);
        assert!(r > 0.22 && r < 0.45, "global reciprocity {r}");
    }

    #[test]
    fn reciprocity_bimodal_by_persona() {
        let net = gplus_net();
        let g = &net.graph;
        let mut casual = Vec::new();
        let mut collector = Vec::new();
        for u in g.nodes() {
            if let Some(rr) = reciprocity::relation_reciprocity(g, u) {
                match net.personas[u as usize] {
                    Persona::Casual => casual.push(rr),
                    Persona::Collector => collector.push(rr),
                    // celebrities tracked separately; lurkers have no
                    // out-edges so RR is undefined for them anyway
                    Persona::Celebrity | Persona::Lurker => {}
                }
            }
        }
        let med_casual = median(&casual);
        let med_collector = median(&collector);
        assert!(
            med_casual > med_collector + 0.2,
            "casual median {med_casual} vs collector {med_collector}"
        );
        assert!(med_casual > 0.45, "casual users should have high RR, got {med_casual}");
    }

    #[test]
    fn giant_scc_majority_of_nodes() {
        // paper: the giant SCC holds 25.2M of 35.1M nodes ≈ 72% (§3.3.4)
        let s = scc::kosaraju(&gplus_net().graph);
        let frac = s.giant_fraction();
        assert!(frac > 0.45 && frac < 0.95, "giant SCC fraction {frac}");
        // and the rest of the components are tiny
        let mut sizes = s.sizes();
        sizes.sort_unstable();
        let second = sizes[sizes.len() - 2];
        assert!(second < 100, "second SCC should be tiny, got {second}");
    }

    #[test]
    fn small_world_path_lengths() {
        // paper: directed mean 5.9, mode 6, diameter 19 (§3.3.5) at 35M
        // nodes; at 30k nodes paths are shorter but still small-world
        let mut rng = StdRng::seed_from_u64(5);
        let d = paths::sampled_path_lengths(&gplus_net().graph, 300, &mut rng);
        let mean = d.mean();
        assert!(mean > 2.0 && mean < 8.0, "mean path length {mean}");
        assert!(d.max_distance < 40, "diameter estimate {}", d.max_distance);
    }

    #[test]
    fn degree_ccdfs_heavy_tailed() {
        let net = gplus_net();
        let (fit_in, fit_out) = degree::degree_power_laws(&net.graph, 10);
        assert!(
            fit_in.alpha > 0.7 && fit_in.alpha < 2.2,
            "alpha_in {} should be near 1.3",
            fit_in.alpha
        );
        assert!(
            fit_out.alpha > 0.7 && fit_out.alpha < 2.2,
            "alpha_out {} should be near 1.2",
            fit_out.alpha
        );
        assert!(fit_in.r_squared > 0.8, "r2_in {}", fit_in.r_squared);
    }

    #[test]
    fn table1_celebrities_top_the_in_degree_ranking() {
        let net = gplus_net();
        let top = degree::top_by_in_degree(&net.graph, 20);
        // the single most-followed user is Larry Page (node 0)
        assert_eq!(top[0].0, 0, "rank 1 should be node 0 (Larry Page)");
        // at least 15 of the top 20 are global (Table-1) celebrities
        let globals = top.iter().filter(|(id, _)| *id < 20).count();
        assert!(globals >= 15, "only {globals} of top-20 are Table-1 celebrities");
    }

    #[test]
    fn country_celebrities_top_their_countries() {
        let net = gplus_net();
        let g = &net.graph;
        // among users sharing a US location, the top in-degree nodes should
        // be dominated by the seeded US country celebrities (20..30)
        let mut us_located: Vec<(u32, usize)> = g
            .nodes()
            .filter(|&u| {
                net.population.profile(u).public_country() == Some(gplus_geo::Country::Us)
            })
            .map(|u| (u, g.in_degree(u)))
            .collect();
        us_located.sort_by(|a, b| b.1.cmp(&a.1));
        let top10: Vec<u32> = us_located.iter().take(10).map(|x| x.0).collect();
        let seeded = top10.iter().filter(|&&id| (20..30).contains(&id)).count();
        assert!(seeded >= 7, "only {seeded} of located-US top-10 are seeded: {top10:?}");
    }

    #[test]
    fn twitter_preset_less_reciprocal() {
        let t = SynthNetwork::generate(&SynthConfig::twitter_like(8_000, 3));
        let g = SynthNetwork::generate(&SynthConfig::google_plus_2011(8_000, 3));
        let rt = reciprocity::global_reciprocity(&t.graph);
        let rg = reciprocity::global_reciprocity(&g.graph);
        assert!(rt < rg, "twitter {rt} should be below gplus {rg}");
    }

    #[test]
    fn facebook_preset_fully_reciprocal() {
        let f = SynthNetwork::generate(&SynthConfig::facebook_like(5_000, 4));
        let r = reciprocity::global_reciprocity(&f.graph);
        assert!(r > 0.95, "facebook-like reciprocity {r}");
    }

    #[test]
    fn self_loop_country_fractions_follow_figure10() {
        let net = gplus_net();
        let frac = |c: gplus_geo::Country| {
            let mut total = 0u64;
            let mut same = 0u64;
            for u in net.graph.nodes() {
                if net.population.profile(u).country != c {
                    continue;
                }
                for &v in net.graph.out_neighbors(u) {
                    total += 1;
                    if net.population.profile(v).country == c {
                        same += 1;
                    }
                }
            }
            same as f64 / total.max(1) as f64
        };
        let us = frac(gplus_geo::Country::Us);
        let gb = frac(gplus_geo::Country::Gb);
        assert!(us > 0.60, "US self-loop {us}");
        assert!(gb < us - 0.2, "GB self-loop {gb} should sit well below US {us}");
    }
}
