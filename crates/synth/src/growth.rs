//! Temporal growth: the paper's §7 future work, implemented.
//!
//! "First, we are interested in measuring the speed at which a new social
//! network service grows ... By collecting multiple snapshots of the
//! Google+ topology, we hope to gain insight in the dynamic changes in the
//! internal structure of the social network over various adoption phases."
//!
//! This module assigns every user a *join rank* following the service's
//! actual adoption history (§2.1): a 90-day invitation-only field trial in
//! which "the network grew virally through social contacts", then open
//! sign-up. Viral ranks come from a randomized contagion over the social
//! graph seeded at the celebrity core; open-phase ranks are uniform.
//! [`GrowthModel::snapshot`] induces the subgraph of the first `fraction`
//! of joiners — a reconstruction of what a crawl at that point in time
//! would have seen — and [`GrowthModel::snapshot_series`] measures the
//! growth trajectory (densification in the sense of Leskovec et al. \[28\],
//! which the paper cites for exactly this phenomenon, and the diameter
//! trend).

use crate::network::SynthNetwork;
use gplus_graph::{paths, CsrGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Join-order model over a generated network.
#[derive(Debug, Clone)]
pub struct GrowthModel {
    /// `join_order[rank] = node`.
    pub join_order: Vec<NodeId>,
    /// `join_rank[node] = rank`.
    pub join_rank: Vec<u32>,
    /// Ranks below this joined during the invitation-only field trial.
    pub invite_phase_end: usize,
    /// Seed for the per-edge formation delays.
    delay_seed: u64,
}

/// Measurements of one growth snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnapshotStats {
    /// Fraction of the final population present.
    pub fraction: f64,
    /// Nodes in the snapshot.
    pub nodes: u64,
    /// Induced edges.
    pub edges: u64,
    /// Mean degree.
    pub mean_degree: f64,
    /// Sampled mean shortest-path length (directed).
    pub mean_path: f64,
    /// Diameter estimate (max sampled eccentricity).
    pub diameter: u32,
}

impl GrowthModel {
    /// Builds a join order for `network`: contagion from the celebrity
    /// core over the first `invite_fraction` of users, uniform afterwards.
    ///
    /// # Panics
    /// Panics if `invite_fraction` is outside `\[0, 1\]`.
    pub fn new(network: &SynthNetwork, invite_fraction: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&invite_fraction), "invite_fraction must be in [0,1]");
        let g = &network.graph;
        let n = g.node_count();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6772_6f77_7468); // "growth"
        let invite_phase_end = (n as f64 * invite_fraction) as usize;

        let mut joined = vec![false; n];
        let mut join_order: Vec<NodeId> = Vec::with_capacity(n);

        // --- invitation phase: randomized contagion from the seeds ---
        // frontier holds users with at least one joined contact; picking a
        // uniformly random frontier member approximates the exponential
        // viral spread ("the network grew virally through social contacts")
        let mut frontier: Vec<NodeId> = Vec::new();
        let seeds = if network.population.celebrities.is_empty() {
            vec![0 as NodeId]
        } else {
            network.population.celebrities.iter().map(|c| c.node).collect()
        };
        for s in seeds {
            if (s as usize) < n && !joined[s as usize] {
                joined[s as usize] = true;
                join_order.push(s);
                frontier.extend(contacts(g, s).filter(|&v| !joined[v as usize]));
            }
        }
        while join_order.len() < invite_phase_end {
            // compact the frontier lazily: swap-remove the chosen element
            let Some(pick) = pick_unjoined(&mut frontier, &joined, &mut rng) else {
                // contagion exhausted its component: seed a random outsider
                // (invitations also travelled by email, §2.1)
                let mut outsider = rng.random_range(0..n) as NodeId;
                while joined[outsider as usize] {
                    outsider = rng.random_range(0..n) as NodeId;
                }
                joined[outsider as usize] = true;
                join_order.push(outsider);
                frontier.extend(contacts(g, outsider).filter(|&v| !joined[v as usize]));
                continue;
            };
            joined[pick as usize] = true;
            join_order.push(pick);
            frontier.extend(contacts(g, pick).filter(|&v| !joined[v as usize]));
        }

        // --- open sign-up: the rest join in uniform random order ---
        let mut rest: Vec<NodeId> = (0..n as NodeId).filter(|&v| !joined[v as usize]).collect();
        use rand::seq::SliceRandom;
        rest.shuffle(&mut rng);
        join_order.extend(rest);

        let mut join_rank = vec![0u32; n];
        for (rank, &node) in join_order.iter().enumerate() {
            join_rank[node as usize] = rank as u32;
        }
        Self { join_order, join_rank, invite_phase_end, delay_seed: seed ^ 0x64656c61 }
    }

    /// When the edge `(u, v)` becomes visible, in join-rank time units.
    ///
    /// Circles fill up gradually after both endpoints have accounts — this
    /// is the paper's own reading of its long path lengths ("Google+ is a
    /// new system where relationships are still rapidly growing"). The
    /// activation point is `max_join + B·(n - max_join)` with a
    /// deterministic `B = U² ∈ [0, 1)` per edge, so early cores are sparse
    /// at first and every edge exists by the final snapshot.
    fn edge_activation(&self, u: NodeId, v: NodeId) -> f64 {
        let n = self.join_order.len() as f64;
        let max_join = self.join_rank[u as usize].max(self.join_rank[v as usize]) as f64;
        let h = splitmix64(
            self.delay_seed ^ ((u as u64) << 32 | v as u64).wrapping_mul(0x9e37_79b9),
        );
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        let b = unit * unit;
        max_join + b * (n - max_join)
    }

    /// The subgraph of the first `fraction` of joiners, with node ids
    /// remapped to join rank (so snapshots nest).
    ///
    /// # Panics
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn snapshot(&self, network: &SynthNetwork, fraction: f64) -> CsrGraph {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0,1]");
        let keep = ((self.join_order.len() as f64 * fraction) as usize).max(1);
        let horizon = keep as f64;
        let full = keep == self.join_order.len();
        let mut builder = GraphBuilder::new();
        builder.ensure_nodes(keep);
        for (u, v) in network.graph.edges() {
            let ru = self.join_rank[u as usize] as usize;
            let rv = self.join_rank[v as usize] as usize;
            if ru < keep && rv < keep && (full || self.edge_activation(u, v) <= horizon) {
                builder.add_edge(ru as NodeId, rv as NodeId);
            }
        }
        builder.build()
    }

    /// Measures a series of snapshots.
    pub fn snapshot_series(
        &self,
        network: &SynthNetwork,
        fractions: &[f64],
        path_samples: usize,
        seed: u64,
    ) -> Vec<SnapshotStats> {
        fractions
            .iter()
            .map(|&fraction| {
                let g = self.snapshot(network, fraction);
                let mut rng = StdRng::seed_from_u64(seed);
                let dist = paths::sampled_path_lengths(&g, path_samples, &mut rng);
                SnapshotStats {
                    fraction,
                    nodes: g.node_count() as u64,
                    edges: g.edge_count() as u64,
                    mean_degree: g.edge_count() as f64 / g.node_count().max(1) as f64,
                    mean_path: dist.mean(),
                    diameter: dist.max_distance,
                }
            })
            .collect()
    }
}

/// SplitMix64 finaliser.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn contacts(g: &CsrGraph, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
    g.out_neighbors(u).iter().copied().chain(g.in_neighbors(u).iter().copied())
}

fn pick_unjoined(
    frontier: &mut Vec<NodeId>,
    joined: &[bool],
    rng: &mut StdRng,
) -> Option<NodeId> {
    while !frontier.is_empty() {
        let i = rng.random_range(0..frontier.len());
        let v = frontier.swap_remove(i);
        if !joined[v as usize] {
            return Some(v);
        }
    }
    None
}

/// Fits the densification exponent `a` in `E(t) ∝ N(t)^a` over a snapshot
/// series (Leskovec et al. \[28\]: real networks show `1 < a < 2`).
/// Returns `None` with fewer than two usable snapshots.
pub fn densification_exponent(series: &[SnapshotStats]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .filter(|s| s.nodes > 1 && s.edges > 0)
        .map(|s| ((s.nodes as f64).ln(), (s.edges as f64).ln()))
        .collect();
    if pts.len() < 2 || pts.iter().all(|p| p.0 == pts[0].0) {
        return None;
    }
    Some(gplus_stats::LinearRegression::fit(&pts).slope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthConfig;
    use std::sync::OnceLock;

    fn net() -> &'static SynthNetwork {
        static NET: OnceLock<SynthNetwork> = OnceLock::new();
        NET.get_or_init(|| SynthNetwork::generate(&SynthConfig::google_plus_2011(12_000, 77)))
    }

    fn model() -> GrowthModel {
        GrowthModel::new(net(), 0.4, 5)
    }

    #[test]
    fn join_order_is_a_permutation() {
        let m = model();
        let mut sorted = m.join_order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..net().node_count() as NodeId).collect::<Vec<_>>());
        for (rank, &node) in m.join_order.iter().enumerate() {
            assert_eq!(m.join_rank[node as usize] as usize, rank);
        }
    }

    #[test]
    fn celebrities_join_first() {
        let m = model();
        for celeb in &net().population.celebrities {
            assert!(
                (m.join_rank[celeb.node as usize] as usize) < 200,
                "{} joined at rank {}",
                celeb.name,
                m.join_rank[celeb.node as usize]
            );
        }
    }

    #[test]
    fn invite_phase_joiners_are_socially_connected() {
        // during the viral phase, (almost) every joiner after the seeds has
        // a contact who joined earlier
        let m = model();
        let g = &net().graph;
        let mut connected = 0;
        let mut total = 0;
        for rank in 120..m.invite_phase_end {
            let u = m.join_order[rank];
            total += 1;
            let has_earlier_contact =
                contacts(g, u).any(|v| m.join_rank[v as usize] < rank as u32);
            if has_earlier_contact {
                connected += 1;
            }
        }
        assert!(
            connected as f64 / total as f64 > 0.95,
            "viral joiners should follow contacts: {connected}/{total}"
        );
    }

    #[test]
    fn snapshots_nest_and_grow() {
        let m = model();
        let s1 = m.snapshot(net(), 0.3);
        let s2 = m.snapshot(net(), 0.7);
        assert!(s1.node_count() < s2.node_count());
        assert!(s1.edge_count() < s2.edge_count());
        // nesting: every edge of the early snapshot exists in the later one
        for (u, v) in s1.edges() {
            assert!(s2.has_edge(u, v));
        }
    }

    #[test]
    fn full_snapshot_is_the_network() {
        let m = model();
        let full = m.snapshot(net(), 1.0);
        assert_eq!(full.node_count(), net().node_count());
        assert_eq!(full.edge_count(), net().graph.edge_count());
    }

    #[test]
    fn network_densifies_over_time() {
        let m = model();
        let series = m.snapshot_series(net(), &[0.2, 0.4, 0.6, 0.8, 1.0], 60, 1);
        // mean degree grows monotonically (densification)
        for w in series.windows(2) {
            assert!(
                w[1].mean_degree > w[0].mean_degree,
                "mean degree should grow: {} -> {}",
                w[0].mean_degree,
                w[1].mean_degree
            );
        }
        let a = densification_exponent(&series).expect("fit exists");
        assert!(a > 1.0 && a < 2.0, "densification exponent {a} (Leskovec: 1 < a < 2)");
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn snapshot_rejects_zero() {
        let m = model();
        let _ = m.snapshot(net(), 0.0);
    }
}
