//! Population assembly: celebrity roster + ordinary users, indexed by
//! country and city for the geographic edge process.

use crate::celebrities::{seed_celebrities, Celebrity};
use crate::config::SynthConfig;
use gplus_geo::Country;
use gplus_profiles::{Attribute, Profile, ProfileGenerator};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// The generated user population with geographic indices.
#[derive(Debug, Clone)]
pub struct Population {
    /// One profile per node, indexed by node id.
    pub profiles: Vec<Profile>,
    /// Seeded celebrities (empty when the config disables them).
    pub celebrities: Vec<Celebrity>,
    /// Node ids per country, ascending.
    pub by_country: HashMap<Country, Vec<u32>>,
    /// Node ids per (country, city index), ascending.
    pub by_city: HashMap<(Country, u8), Vec<u32>>,
    /// Community id per node (communities are small groups inside a city).
    pub community: Vec<u32>,
    /// Members of each community, indexed by community id.
    pub community_members: Vec<Vec<u32>>,
}

impl Population {
    /// Generates the population for `config` (profiles only, no edges).
    ///
    /// Celebrities occupy node ids `0..roster_len` when enabled; ordinary
    /// users fill the rest. Deterministic given `config.seed`.
    ///
    /// # Panics
    /// Panics if `config.n_users` is smaller than the celebrity roster
    /// while celebrities are enabled.
    pub fn generate(config: &SynthConfig) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x706f_7075_6c61_7469); // "populati"
        let generator = ProfileGenerator::paper_calibrated();

        let celebrities = if config.with_celebrities { seed_celebrities() } else { Vec::new() };
        assert!(
            config.n_users >= celebrities.len(),
            "n_users ({}) must cover the celebrity roster ({})",
            config.n_users,
            celebrities.len()
        );

        let mut profiles = Vec::with_capacity(config.n_users);
        for celeb in &celebrities {
            let mut p = generator.generate_celebrity(
                celeb.node as u64,
                &celeb.name,
                celeb.occupation,
                celeb.country,
                &mut rng,
            );
            if !celeb.shares_location {
                // Table-1 celebrities withhold "places lived" — this is
                // what keeps them out of the Table-5 per-country rankings.
                p.public_mask &= !Attribute::PlacesLived.bit();
            }
            profiles.push(p);
        }
        for id in celebrities.len()..config.n_users {
            profiles.push(generator.generate(id as u64, &mut rng));
        }

        let mut by_country: HashMap<Country, Vec<u32>> = HashMap::new();
        let mut by_city: HashMap<(Country, u8), Vec<u32>> = HashMap::new();
        for (id, p) in profiles.iter().enumerate() {
            by_country.entry(p.country).or_default().push(id as u32);
            by_city.entry((p.country, p.city_index)).or_default().push(id as u32);
        }

        // Communities: shuffle each city's members and chunk them into
        // groups of community_size. Iterate cities in sorted order so the
        // assignment is deterministic.
        let mut community = vec![0u32; profiles.len()];
        let mut community_members: Vec<Vec<u32>> = Vec::new();
        let mut city_keys: Vec<(Country, u8)> = by_city.keys().copied().collect();
        city_keys.sort_unstable();
        for key in city_keys {
            let mut members = by_city[&key].clone();
            members.shuffle(&mut rng);
            for chunk in members.chunks(config.community_size.max(2)) {
                let cid = community_members.len() as u32;
                for &m in chunk {
                    community[m as usize] = cid;
                }
                community_members.push(chunk.to_vec());
            }
        }

        Self { profiles, celebrities, by_country, by_city, community, community_members }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The profile of node `id`.
    pub fn profile(&self, id: u32) -> &Profile {
        &self.profiles[id as usize]
    }

    /// Members of `country` (empty slice if none).
    pub fn country_members(&self, country: Country) -> &[u32] {
        self.by_country.get(&country).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Members of a specific city (empty slice if none).
    pub fn city_members(&self, country: Country, city: u8) -> &[u32] {
        self.by_city.get(&(country, city)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Members of the community containing `id` (always includes `id`).
    pub fn community_of(&self, id: u32) -> &[u32] {
        &self.community_members[self.community[id as usize] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Population {
        Population::generate(&SynthConfig::google_plus_2011(3_000, 11))
    }

    #[test]
    fn sizes_and_ids() {
        let pop = small();
        assert_eq!(pop.len(), 3_000);
        assert_eq!(pop.celebrities.len(), 120);
        for (i, p) in pop.profiles.iter().enumerate() {
            assert_eq!(p.user_id, i as u64);
        }
    }

    #[test]
    fn celebrity_profiles_first_and_named() {
        let pop = small();
        assert_eq!(pop.profile(0).display_name(), "Larry Page");
        assert!(pop.profile(0).celebrity_name.is_some());
        assert!(pop.profile(120).celebrity_name.is_none());
    }

    #[test]
    fn global_celebs_hide_location_country_celebs_share() {
        let pop = small();
        for celeb in &pop.celebrities {
            let p = pop.profile(celeb.node);
            assert_eq!(p.public_country().is_some(), celeb.shares_location, "{}", celeb.name);
        }
    }

    #[test]
    fn indices_cover_population() {
        let pop = small();
        let total: usize = pop.by_country.values().map(Vec::len).sum();
        assert_eq!(total, pop.len());
        let total_city: usize = pop.by_city.values().map(Vec::len).sum();
        assert_eq!(total_city, pop.len());
        // city lists refine country lists
        for ((country, city), members) in &pop.by_city {
            for m in members {
                assert_eq!(pop.profile(*m).country, *country);
                assert_eq!(pop.profile(*m).city_index, *city);
            }
        }
    }

    #[test]
    fn communities_partition_cities() {
        let pop = small();
        // every node belongs to exactly one community, inside its own city
        let total: usize = pop.community_members.iter().map(Vec::len).sum();
        assert_eq!(total, pop.len());
        for (id, p) in pop.profiles.iter().enumerate() {
            let comm = pop.community_of(id as u32);
            assert!(comm.contains(&(id as u32)));
            for &m in comm {
                let q = pop.profile(m);
                assert_eq!((q.country, q.city_index), (p.country, p.city_index));
            }
        }
    }

    #[test]
    fn communities_bounded_by_config_size() {
        let pop = small();
        for members in &pop.community_members {
            assert!(!members.is_empty());
            assert!(members.len() <= 12, "community of {}", members.len());
        }
    }

    #[test]
    fn deterministic() {
        let a = Population::generate(&SynthConfig::google_plus_2011(500, 3));
        let b = Population::generate(&SynthConfig::google_plus_2011(500, 3));
        assert_eq!(a.profiles, b.profiles);
    }

    #[test]
    fn no_celebrities_when_disabled() {
        let mut cfg = SynthConfig::google_plus_2011(300, 5);
        cfg.with_celebrities = false;
        let pop = Population::generate(&cfg);
        assert!(pop.celebrities.is_empty());
        assert!(pop.profile(0).celebrity_name.is_none());
    }

    #[test]
    #[should_panic(expected = "celebrity roster")]
    fn rejects_population_smaller_than_roster() {
        let _ = Population::generate(&SynthConfig::google_plus_2011(50, 1));
    }
}
