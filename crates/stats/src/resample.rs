//! Bootstrap resampling for confidence intervals.
//!
//! The paper reports point estimates only; a reproduction should know how
//! wide its own estimates are. [`bootstrap_ci`] wraps any statistic of a
//! sample with a percentile-bootstrap confidence interval, used by the
//! harness when reporting paper-vs-measured rows at small scale.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A percentile-bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapCi {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level (e.g. 0.95).
    pub level: f64,
    /// Bootstrap replicates used.
    pub replicates: usize,
}

impl BootstrapCi {
    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        (self.lo..=self.hi).contains(&x)
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Percentile bootstrap of `statistic` over `sample`.
///
/// # Panics
/// Panics on an empty sample, `replicates == 0`, or `level` outside (0,1).
pub fn bootstrap_ci<R: Rng + ?Sized>(
    sample: &[f64],
    replicates: usize,
    level: f64,
    statistic: impl Fn(&[f64]) -> f64,
    rng: &mut R,
) -> BootstrapCi {
    assert!(!sample.is_empty(), "bootstrap requires a non-empty sample");
    assert!(replicates > 0, "bootstrap requires replicates");
    assert!(level > 0.0 && level < 1.0, "confidence level in (0,1)");

    let estimate = statistic(sample);
    let mut stats = Vec::with_capacity(replicates);
    let mut scratch = vec![0.0; sample.len()];
    for _ in 0..replicates {
        for slot in scratch.iter_mut() {
            *slot = sample[rng.random_range(0..sample.len())];
        }
        stats.push(statistic(&scratch));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistics"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((alpha * replicates as f64) as usize).min(replicates - 1);
    let hi_idx = (((1.0 - alpha) * replicates as f64) as usize).min(replicates - 1);
    BootstrapCi { estimate, lo: stats[lo_idx], hi: stats[hi_idx], level, replicates }
}

/// Gini coefficient of a non-negative sample — the standard inequality
/// measure for degree concentration ("a small fraction of the individuals
/// have disproportionately large number of neighbors", §3.3.1).
///
/// Returns 0 for an empty or all-zero sample.
pub fn gini(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x).sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

/// Shannon entropy (bits) of a discrete distribution given as counts.
/// Zero-count categories contribute nothing. Returns 0 for empty input.
pub fn entropy_bits(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bootstrap_mean_covers_truth() {
        let mut rng = StdRng::seed_from_u64(1);
        let sample: Vec<f64> = (0..500).map(|i| (i % 10) as f64).collect(); // mean 4.5
        let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
        let ci = bootstrap_ci(&sample, 500, 0.95, mean, &mut rng);
        assert!((ci.estimate - 4.5).abs() < 1e-9);
        assert!(ci.contains(4.5));
        assert!(ci.lo < ci.hi);
        assert!(ci.width() < 1.0, "width {}", ci.width());
    }

    #[test]
    fn bootstrap_tighter_with_larger_sample() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
        let small: Vec<f64> = (0..30).map(|i| (i % 7) as f64).collect();
        let large: Vec<f64> = (0..3000).map(|i| (i % 7) as f64).collect();
        let ci_small = bootstrap_ci(&small, 300, 0.95, mean, &mut rng);
        let ci_large = bootstrap_ci(&large, 300, 0.95, mean, &mut rng);
        assert!(ci_large.width() < ci_small.width());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn bootstrap_rejects_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = bootstrap_ci(&[], 10, 0.9, |s| s.len() as f64, &mut rng);
    }

    #[test]
    fn gini_known_values() {
        assert_eq!(gini(&[]), 0.0);
        assert!(gini(&[5.0, 5.0, 5.0]).abs() < 1e-12, "equal shares -> 0");
        // one person owns everything among n: G = (n-1)/n
        let g = gini(&[0.0, 0.0, 0.0, 12.0]);
        assert!((g - 0.75).abs() < 1e-12, "got {g}");
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn gini_monotone_in_concentration() {
        let even = gini(&[1.0, 1.0, 1.0, 1.0]);
        let skewed = gini(&[0.1, 0.1, 0.1, 3.7]);
        assert!(skewed > even);
    }

    #[test]
    fn entropy_known_values() {
        assert_eq!(entropy_bits(&[]), 0.0);
        assert_eq!(entropy_bits(&[10]), 0.0);
        assert!((entropy_bits(&[1, 1]) - 1.0).abs() < 1e-12);
        assert!((entropy_bits(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
        // zeros ignored
        assert!((entropy_bits(&[1, 1, 0, 0]) - 1.0).abs() < 1e-12);
    }
}
