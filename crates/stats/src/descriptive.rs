//! Descriptive statistics: streaming mean/variance (Welford), medians,
//! percentiles.
//!
//! Figure 9(b) reports per-country *average path miles with standard
//! deviation*; Table 4 reports average path lengths and degrees. [`Summary`]
//! accumulates those moments in one pass without storing the observations.

use serde::{Deserialize, Serialize};

/// Single-pass summary statistics using Welford's online algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Builds a summary over a slice in one call.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.add(v);
        }
        s
    }

    /// Adds one observation.
    ///
    /// # Panics
    /// Panics on non-finite input: a NaN silently poisons every statistic.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "Summary::add requires finite observations");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel reduction), using the
    /// Chan et al. pairwise update.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (Bessel-corrected) variance; 0 when fewer than two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Median by the standard "average the two middle elements" convention.
///
/// # Panics
/// Panics on empty input.
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// The `p`-th percentile (`0 <= p <= 100`) with linear interpolation between
/// closest ranks.
///
/// # Panics
/// Panics on empty input or `p` outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile requires p in [0,100]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_sample_variance_bessel() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert!((s.sample_variance() - 1.0).abs() < 1e-12);
        assert!((s.variance() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let whole = Summary::of(&all);
        let mut merged = Summary::of(&all[..37]);
        merged.merge(&Summary::of(&all[37..]));
        assert_eq!(whole.count(), merged.count());
        assert!((whole.mean() - merged.mean()).abs() < 1e-9);
        assert!((whole.variance() - merged.variance()).abs() < 1e-9);
        assert_eq!(whole.min(), merged.min());
        assert_eq!(whole.max(), merged.max());
    }

    #[test]
    fn summary_merge_with_empty_is_identity() {
        let mut a = Summary::of(&[1.0, 2.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn summary_rejects_nan() {
        Summary::new().add(f64::NAN);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 40.0);
        assert!((percentile(&v, 25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        let _ = percentile(&[], 50.0);
    }
}
