//! Empirical distribution functions: CDF, CCDF, histograms, log binning.
//!
//! The paper presents nearly every result as a CDF (Figures 4a, 4b, 9a) or a
//! CCDF (Figures 2, 3, 4c, 8). These types build the corresponding step
//! functions from raw observations and expose evaluation, quantiles, and the
//! `(x, y)` point series the benches print.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function over `f64` observations.
///
/// `F(x) = P(X <= x)`, built by sorting the observations once. Evaluation is
/// `O(log n)` by binary search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from arbitrary (unsorted) observations.
    ///
    /// Non-finite values are rejected because they have no meaningful order.
    ///
    /// # Panics
    /// Panics if `values` is empty or contains a NaN/infinite value.
    pub fn new(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "Cdf::new requires at least one observation");
        assert!(values.iter().all(|v| v.is_finite()), "Cdf::new requires finite observations");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values are totally ordered"));
        Self { sorted }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the CDF holds no observations (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates `P(X <= x)`.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.sorted.len();
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / n as f64
    }

    /// Evaluates `P(X > x)` — the complementary CDF at `x`.
    pub fn ccdf(&self, x: f64) -> f64 {
        1.0 - self.eval(x)
    }

    /// The `q`-quantile (`0 <= q <= 1`) using the nearest-rank method.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile requires q in [0,1]");
        if q == 0.0 {
            return self.sorted[0];
        }
        let n = self.sorted.len();
        let rank = (q * n as f64).ceil() as usize;
        self.sorted[rank.clamp(1, n) - 1]
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Mean of the observations.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// The `(x, F(x))` step points at each distinct observation, suitable for
    /// plotting the CDF curve exactly.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut pts = Vec::new();
        let mut i = 0;
        while i < self.sorted.len() {
            let x = self.sorted[i];
            // advance over duplicates so each x appears once with its final F(x)
            let mut j = i;
            while j + 1 < self.sorted.len() && self.sorted[j + 1] == x {
                j += 1;
            }
            pts.push((x, (j + 1) as f64 / n));
            i = j + 1;
        }
        pts
    }

    /// Sorted view of the underlying observations.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

/// An empirical complementary CDF over non-negative integer counts
/// (degrees, field counts, component sizes).
///
/// `G(x) = P(X >= x)`, the convention the paper's log–log CCDF plots use:
/// the curve starts at 1 for the minimum value and each distinct value `x`
/// is plotted against the fraction of observations that are `>= x`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ccdf {
    /// Distinct observed values, ascending.
    values: Vec<u64>,
    /// `survival[i]` = fraction of observations `>= values[i]`.
    survival: Vec<f64>,
    n: usize,
}

impl Ccdf {
    /// Builds the CCDF of a sequence of counts.
    ///
    /// # Panics
    /// Panics if `counts` is empty.
    pub fn from_counts(counts: &[u64]) -> Self {
        assert!(!counts.is_empty(), "Ccdf::from_counts requires observations");
        let mut sorted = counts.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let mut values = Vec::new();
        let mut survival = Vec::new();
        let mut i = 0;
        while i < n {
            let v = sorted[i];
            // fraction of observations >= v  ==  (n - i) / n
            values.push(v);
            survival.push((n - i) as f64 / n as f64);
            while i < n && sorted[i] == v {
                i += 1;
            }
        }
        Self { values, survival, n }
    }

    /// Number of observations the CCDF was built from.
    pub fn sample_size(&self) -> usize {
        self.n
    }

    /// Evaluates `P(X >= x)`.
    pub fn eval(&self, x: u64) -> f64 {
        // first index with values[i] >= x
        let idx = self.values.partition_point(|&v| v < x);
        if idx == self.values.len() {
            0.0
        } else {
            self.survival[idx]
        }
    }

    /// The `(value, survival)` series, ascending in value.
    pub fn points(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.values.iter().copied().zip(self.survival.iter().copied())
    }

    /// The subset of points with strictly positive values, in `(ln x, ln y)`
    /// space — the input to the paper's log–log regression.
    pub fn log_log_points(&self) -> Vec<(f64, f64)> {
        self.points()
            .filter(|&(x, y)| x > 0 && y > 0.0)
            .map(|(x, y)| ((x as f64).ln(), y.ln()))
            .collect()
    }

    /// Largest observed value.
    pub fn max_value(&self) -> u64 {
        *self.values.last().expect("non-empty by construction")
    }

    /// Smallest observed value.
    pub fn min_value(&self) -> u64 {
        self.values[0]
    }
}

/// A fixed-width histogram over `f64` observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Observations outside `[lo, hi)`.
    out_of_range: u64,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "Histogram requires at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid histogram range");
        Self { lo, hi, counts: vec![0; bins], out_of_range: 0, total: 0 }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if !x.is_finite() || x < self.lo || x >= self.hi {
            self.out_of_range += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((x - self.lo) / width) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Adds every observation in `xs`.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.add(x);
        }
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of observations that fell outside `[lo, hi)`.
    pub fn out_of_range(&self) -> u64 {
        self.out_of_range
    }

    /// Total observations added (including out-of-range ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bin `(bin_center, density)` where density integrates to the
    /// in-range fraction.
    pub fn density(&self) -> Vec<(f64, f64)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let total = self.total.max(1) as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let center = self.lo + (i as f64 + 0.5) * width;
                (center, c as f64 / total / width)
            })
            .collect()
    }
}

/// Logarithmic binning for heavy-tailed count data.
///
/// Power-law tails are noisy under linear binning; the conventional remedy
/// (used when plotting Figure 3-style distributions) is bins whose edges grow
/// geometrically. Bin `i` covers `[base^i, base^(i+1))` scaled so the first
/// bin starts at 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogBins {
    base: f64,
    counts: Vec<u64>,
    zero_count: u64,
    total: u64,
}

impl LogBins {
    /// Creates empty log bins with the given geometric `base` (> 1) covering
    /// values up to `max_value`.
    ///
    /// # Panics
    /// Panics if `base <= 1.0`.
    pub fn new(base: f64, max_value: u64) -> Self {
        assert!(base > 1.0, "LogBins base must exceed 1");
        let nbins = if max_value <= 1 {
            1
        } else {
            ((max_value as f64).ln() / base.ln()).floor() as usize + 1
        };
        Self { base, counts: vec![0; nbins], zero_count: 0, total: 0 }
    }

    /// Adds one count observation. Zeros are tracked separately because they
    /// have no logarithm.
    pub fn add(&mut self, x: u64) {
        self.total += 1;
        if x == 0 {
            self.zero_count += 1;
            return;
        }
        let idx = ((x as f64).ln() / self.base.ln()).floor() as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Number of zero observations seen.
    pub fn zeros(&self) -> u64 {
        self.zero_count
    }

    /// Per-bin `(geometric_center, normalized_density)` points.
    pub fn density(&self) -> Vec<(f64, f64)> {
        let total = self.total.max(1) as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let lo = self.base.powi(i as i32);
                let hi = self.base.powi(i as i32 + 1);
                let center = (lo * hi).sqrt();
                (center, c as f64 / total / (hi - lo))
            })
            .collect()
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_eval_matches_definition() {
        let cdf = Cdf::new(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(3.0), 1.0);
        assert_eq!(cdf.eval(10.0), 1.0);
    }

    #[test]
    fn cdf_ccdf_complements() {
        let cdf = Cdf::new(&[1.0, 2.0, 3.0, 4.0]);
        for x in [0.0, 1.5, 2.0, 5.0] {
            assert!((cdf.eval(x) + cdf.ccdf(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_quantiles_nearest_rank() {
        let cdf = Cdf::new(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(cdf.quantile(0.0), 10.0);
        assert_eq!(cdf.quantile(0.5), 30.0);
        assert_eq!(cdf.quantile(1.0), 50.0);
        assert_eq!(cdf.min(), 10.0);
        assert_eq!(cdf.max(), 50.0);
    }

    #[test]
    fn cdf_points_deduplicate() {
        let cdf = Cdf::new(&[1.0, 1.0, 2.0]);
        let pts = cdf.points();
        assert_eq!(pts, vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn cdf_rejects_empty() {
        let _ = Cdf::new(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn cdf_rejects_nan() {
        let _ = Cdf::new(&[1.0, f64::NAN]);
    }

    #[test]
    fn ccdf_eval_matches_definition() {
        let ccdf = Ccdf::from_counts(&[1, 2, 2, 5]);
        assert_eq!(ccdf.eval(0), 1.0);
        assert_eq!(ccdf.eval(1), 1.0);
        assert_eq!(ccdf.eval(2), 0.75);
        assert_eq!(ccdf.eval(3), 0.25);
        assert_eq!(ccdf.eval(5), 0.25);
        assert_eq!(ccdf.eval(6), 0.0);
    }

    #[test]
    fn ccdf_points_start_at_one() {
        let ccdf = Ccdf::from_counts(&[3, 7, 7, 9, 12]);
        let first = ccdf.points().next().unwrap();
        assert_eq!(first, (3, 1.0));
        assert_eq!(ccdf.min_value(), 3);
        assert_eq!(ccdf.max_value(), 12);
        assert_eq!(ccdf.sample_size(), 5);
    }

    #[test]
    fn ccdf_monotone_nonincreasing() {
        let ccdf = Ccdf::from_counts(&[1, 1, 4, 9, 9, 20, 100]);
        let ys: Vec<f64> = ccdf.points().map(|(_, y)| y).collect();
        for w in ys.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn ccdf_log_log_points_skip_zero() {
        let ccdf = Ccdf::from_counts(&[0, 0, 1, 2]);
        let pts = ccdf.log_log_points();
        // value 0 has no logarithm and must be excluded
        assert!(pts.iter().all(|&(lx, _)| lx >= 0.0));
        assert_eq!(pts.len(), 2);
    }

    #[test]
    fn histogram_bins_and_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([0.0, 1.0, 2.5, 9.99, 10.0, -1.0]);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.out_of_range(), 2);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn histogram_density_integrates_to_in_range_fraction() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..100 {
            h.add(i as f64 / 100.0);
        }
        let width = 0.1;
        let integral: f64 = h.density().iter().map(|&(_, d)| d * width).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log_bins_geometric_growth() {
        let mut lb = LogBins::new(2.0, 1024);
        lb.add(1); // bin 0: [1,2)
        lb.add(2); // bin 1: [2,4)
        lb.add(3); // bin 1
        lb.add(1000); // bin 9: [512,1024)
        lb.add(0); // tracked separately
        assert_eq!(lb.counts()[0], 1);
        assert_eq!(lb.counts()[1], 2);
        assert_eq!(lb.counts()[9], 1);
        assert_eq!(lb.zeros(), 1);
    }

    #[test]
    fn log_bins_density_positive_only_where_counts() {
        let mut lb = LogBins::new(10.0, 1000);
        lb.add(5);
        let dens = lb.density();
        assert!(dens[0].1 > 0.0);
        assert_eq!(dens[1].1, 0.0);
    }
}
