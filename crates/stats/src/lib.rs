//! Statistics substrate for the Google+ IMC'12 reproduction.
//!
//! The measurement study reports almost all of its findings as empirical
//! distributions (CDFs and CCDFs), power-law fits obtained by linear
//! regression in log–log space, descriptive statistics, and one Jaccard
//! similarity table. This crate implements those estimators from scratch,
//! plus the sampling and convergence machinery the paper's methodology
//! relies on (reservoir sampling of nodes, and the "grow k until the
//! distribution stops changing" schedule of §3.3.5).
//!
//! Everything here is deterministic given a seeded RNG and operates on
//! plain slices, so the graph and analysis crates stay decoupled from any
//! particular storage layout.
//!
//! # Quick tour
//!
//! ```
//! use gplus_stats::{Ccdf, PowerLawFit};
//!
//! // Degree sequence -> CCDF -> power-law exponent, as in Figure 3.
//! let degrees: Vec<u64> = (1..1000).map(|i| 1 + 100_000 / (i * i)).collect();
//! let ccdf = Ccdf::from_counts(&degrees);
//! let fit = PowerLawFit::from_ccdf(&ccdf);
//! assert!(fit.alpha > 0.0);
//! assert!(fit.r_squared > 0.8);
//! ```

pub mod convergence;
pub mod descriptive;
pub mod distribution;
pub mod jaccard;
pub mod linreg;
pub mod normal;
pub mod powerlaw;
pub mod resample;
pub mod sampling;

pub use convergence::{ks_distance, ConvergenceDetector};
pub use descriptive::{median, percentile, Summary};
pub use distribution::{Ccdf, Cdf, Histogram, LogBins};
pub use jaccard::{jaccard_index, multiset_jaccard};
pub use linreg::LinearRegression;
pub use normal::{phi, phi_inv};
pub use powerlaw::PowerLawFit;
pub use resample::{bootstrap_ci, entropy_bits, gini, BootstrapCi};
pub use sampling::{reservoir_sample, sample_indices};
