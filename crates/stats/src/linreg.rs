//! Ordinary least-squares simple linear regression.
//!
//! The paper estimates power-law exponents "by using a simple statistical
//! linear regression (in the log-log scale)" (§3.3.1) and reports the R²
//! goodness of fit. This module provides exactly that primitive.

use serde::{Deserialize, Serialize};

/// Result of fitting `y = slope * x + intercept` by least squares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (clamped).
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

impl LinearRegression {
    /// Fits a least-squares line through `points`.
    ///
    /// # Panics
    /// Panics if fewer than two points are supplied, or if all `x` values are
    /// identical (the slope is undefined).
    pub fn fit(points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "linear regression requires >= 2 points");
        let n = points.len() as f64;
        let mean_x = points.iter().map(|p| p.0).sum::<f64>() / n;
        let mean_y = points.iter().map(|p| p.1).sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for &(x, y) in points {
            let dx = x - mean_x;
            let dy = y - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        assert!(sxx > 0.0, "linear regression requires non-degenerate x values");
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        // R^2 = 1 - SS_res / SS_tot; when y is constant the line fits exactly.
        let r_squared = if syy == 0.0 {
            1.0
        } else {
            let ss_res: f64 = points
                .iter()
                .map(|&(x, y)| {
                    let e = y - (slope * x + intercept);
                    e * e
                })
                .sum();
            (1.0 - ss_res / syy).clamp(0.0, 1.0)
        };
        Self { slope, intercept, r_squared, n: points.len() }
    }

    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let fit = LinearRegression::fit(&pts);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(fit.n, 10);
    }

    #[test]
    fn predict_uses_fit() {
        let pts = [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)];
        let fit = LinearRegression::fit(&pts);
        assert!((fit.predict(3.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let pts = [(0.0, 0.0), (1.0, 1.2), (2.0, 1.8), (3.0, 3.1), (4.0, 3.9)];
        let fit = LinearRegression::fit(&pts);
        assert!(fit.slope > 0.8 && fit.slope < 1.2);
        assert!(fit.r_squared > 0.95 && fit.r_squared < 1.0);
    }

    #[test]
    fn constant_y_perfect_fit() {
        let pts = [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)];
        let fit = LinearRegression::fit(&pts);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = ">= 2 points")]
    fn rejects_single_point() {
        let _ = LinearRegression::fit(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn rejects_vertical_line() {
        let _ = LinearRegression::fit(&[(1.0, 1.0), (1.0, 2.0)]);
    }
}
