//! Standard normal CDF and quantile function.
//!
//! The profile generator uses a Gaussian copula to correlate field-sharing
//! decisions within a user while preserving each field's Table-2 marginal
//! exactly; that needs Φ and Φ⁻¹. Both are implemented from scratch:
//! Φ via the Abramowitz–Stegun erf approximation (|error| < 1.5e-7) and
//! Φ⁻¹ via Acklam's rational approximation refined with one Halley step
//! (relative error < 1e-9).

/// Error function, Abramowitz & Stegun 7.1.26 (|ε| ≤ 1.5·10⁻⁷).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF `Φ(x)`.
pub fn phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Acklam's piecewise rational approximation, refined by one Halley
/// iteration against [`phi`].
///
/// # Panics
/// Panics if `p` is outside the open interval `(0, 1)`.
pub fn phi_inv(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "phi_inv requires p in (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the forward CDF.
    let e = phi(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // the A&S 7.1.26 approximation carries ~1.5e-7 absolute error
        assert!((erf(0.0)).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn phi_known_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-9);
        assert!((phi(1.0) - 0.8413447461).abs() < 1e-6);
        assert!((phi(-1.96) - 0.0249978951).abs() < 1e-6);
        assert!((phi(2.5758) - 0.995).abs() < 1e-4);
    }

    #[test]
    fn phi_inv_round_trips() {
        for p in [0.001, 0.01, 0.024, 0.1, 0.3, 0.5, 0.7, 0.9, 0.976, 0.99, 0.999] {
            let x = phi_inv(p);
            assert!((phi(x) - p).abs() < 1e-6, "p={p}: phi(phi_inv)={}", phi(x));
        }
    }

    #[test]
    fn phi_inv_symmetry() {
        for p in [0.01, 0.2, 0.4] {
            assert!((phi_inv(p) + phi_inv(1.0 - p)).abs() < 1e-7);
        }
        assert!(phi_inv(0.5).abs() < 1e-6);
    }

    #[test]
    fn phi_monotone() {
        let mut prev = phi(-6.0);
        let mut x = -6.0;
        while x < 6.0 {
            x += 0.1;
            let cur = phi(x);
            assert!(cur >= prev);
            prev = cur;
        }
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn phi_inv_rejects_zero() {
        let _ = phi_inv(0.0);
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn phi_inv_rejects_one() {
        let _ = phi_inv(1.0);
    }
}
