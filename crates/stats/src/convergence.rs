//! Convergence detection for iteratively-refined empirical distributions.
//!
//! §3.3.5: "We sampled k different users ... We started with k = 2000 and
//! increased it until 10000, stopping in this value once there were no more
//! changes in the distribution." [`ConvergenceDetector`] formalises "no more
//! changes" as the Kolmogorov–Smirnov distance between successive empirical
//! distributions dropping below a tolerance.

use serde::{Deserialize, Serialize};

use crate::distribution::Cdf;

/// Two-sample Kolmogorov–Smirnov distance: the supremum of the absolute
/// difference between the two empirical CDFs.
///
/// # Panics
/// Panics if either sample is empty.
pub fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    let ca = Cdf::new(a);
    let cb = Cdf::new(b);
    let mut d: f64 = 0.0;
    // The supremum is attained at an observation point of either sample.
    for &x in ca.sorted_values().iter().chain(cb.sorted_values()) {
        d = d.max((ca.eval(x) - cb.eval(x)).abs());
        // also check just below x (left limit) via the previous value; the
        // step structure means evaluating at each observation suffices for
        // the max over the union of jump points.
    }
    d
}

/// Tracks successive snapshots of a distribution and reports convergence
/// when the KS distance between consecutive snapshots stays below `tol`
/// for `patience` comparisons in a row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConvergenceDetector {
    tol: f64,
    patience: usize,
    streak: usize,
    last: Option<Vec<f64>>,
    history: Vec<f64>,
}

impl ConvergenceDetector {
    /// Creates a detector with KS tolerance `tol` (> 0) requiring
    /// `patience` (>= 1) consecutive sub-tolerance steps.
    ///
    /// # Panics
    /// Panics if `tol <= 0` or `patience == 0`.
    pub fn new(tol: f64, patience: usize) -> Self {
        assert!(tol > 0.0, "tolerance must be positive");
        assert!(patience >= 1, "patience must be at least 1");
        Self { tol, patience, streak: 0, last: None, history: Vec::new() }
    }

    /// Feeds the next snapshot; returns `true` once converged.
    ///
    /// # Panics
    /// Panics if `snapshot` is empty.
    pub fn update(&mut self, snapshot: &[f64]) -> bool {
        assert!(!snapshot.is_empty(), "snapshot must be non-empty");
        if let Some(prev) = &self.last {
            let d = ks_distance(prev, snapshot);
            self.history.push(d);
            if d < self.tol {
                self.streak += 1;
            } else {
                self.streak = 0;
            }
        }
        self.last = Some(snapshot.to_vec());
        self.converged()
    }

    /// Whether the convergence criterion has been met.
    pub fn converged(&self) -> bool {
        self.streak >= self.patience
    }

    /// The KS distances observed between successive snapshots, in order.
    pub fn ks_history(&self) -> &[f64] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ks_identical_samples_zero() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(ks_distance(&a, &a), 0.0);
    }

    #[test]
    fn ks_disjoint_samples_one() {
        let a = [1.0, 2.0];
        let b = [10.0, 20.0];
        assert_eq!(ks_distance(&a, &b), 1.0);
    }

    #[test]
    fn ks_known_value() {
        // F_a steps 0.5 at 1 and 1.0 at 3; F_b steps 0.5 at 2 and 1.0 at 3.
        // At x=1: |0.5 - 0| = 0.5.
        let a = [1.0, 3.0];
        let b = [2.0, 3.0];
        assert!((ks_distance(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ks_symmetric() {
        let a = [1.0, 5.0, 9.0, 2.0];
        let b = [0.5, 4.0, 4.5];
        assert_eq!(ks_distance(&a, &b), ks_distance(&b, &a));
    }

    #[test]
    fn detector_converges_on_stable_distribution() {
        let mut det = ConvergenceDetector::new(0.05, 2);
        let snap: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(!det.update(&snap)); // first snapshot: no comparison yet
        assert!(!det.update(&snap)); // streak 1
        assert!(det.update(&snap)); // streak 2 -> converged
        assert_eq!(det.ks_history().len(), 2);
    }

    #[test]
    fn detector_resets_streak_on_change() {
        let mut det = ConvergenceDetector::new(0.05, 2);
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| i as f64 + 50.0).collect();
        det.update(&a);
        det.update(&a); // streak 1
        assert!(!det.update(&b)); // big jump resets streak
        assert!(!det.update(&b)); // streak 1 again
        assert!(det.update(&b)); // streak 2
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn detector_rejects_zero_tol() {
        let _ = ConvergenceDetector::new(0.0, 1);
    }
}
