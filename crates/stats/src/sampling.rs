//! Random sampling utilities.
//!
//! The paper samples nodes in two places: one million nodes for the
//! clustering-coefficient CDF (§3.3.3) and `k` BFS sources for the
//! path-length distribution (§3.3.5). Both need uniform sampling without
//! replacement from a large index range; [`sample_indices`] provides that,
//! and [`reservoir_sample`] covers streams of unknown length (e.g. edges
//! seen during a crawl).

use rand::seq::SliceRandom;
use rand::Rng;

/// Samples `k` distinct indices uniformly from `0..n` without replacement.
///
/// Uses a partial Fisher–Yates shuffle when `k` is a large fraction of `n`
/// and rejection sampling otherwise, so both "sample 10k of 35M" and
/// "sample 90% of the nodes" are efficient.
///
/// If `k >= n`, returns all indices `0..n` (shuffled).
pub fn sample_indices<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    if k >= n {
        let mut all: Vec<usize> = (0..n).collect();
        all.shuffle(rng);
        return all;
    }
    if k == 0 || n == 0 {
        return Vec::new();
    }
    // Rejection sampling is expected O(k) while k/n is small; beyond ~1/4 the
    // collision rate makes the partial shuffle cheaper.
    if k * 4 <= n {
        let mut seen = std::collections::HashSet::with_capacity(k * 2);
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            let idx = rng.random_range(0..n);
            if seen.insert(idx) {
                out.push(idx);
            }
        }
        out
    } else {
        let mut all: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.random_range(i..n);
            all.swap(i, j);
        }
        all.truncate(k);
        all
    }
}

/// Reservoir sampling (Algorithm R): a uniform sample of size `k` from a
/// stream of unknown length, in one pass and `O(k)` memory.
///
/// If the stream yields fewer than `k` items, all of them are returned.
pub fn reservoir_sample<T, I, R>(rng: &mut R, stream: I, k: usize) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    R: Rng + ?Sized,
{
    if k == 0 {
        return Vec::new();
    }
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    for (i, item) in stream.into_iter().enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = rng.random_range(0..=i);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(n, k) in &[(100usize, 10usize), (100, 80), (1000, 999), (50, 0)] {
            let s = sample_indices(&mut rng, n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "indices must be distinct");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn sample_indices_k_ge_n_returns_all() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = sample_indices(&mut rng, 10, 25);
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20;
        let mut hits = vec![0u32; n];
        for _ in 0..4000 {
            for i in sample_indices(&mut rng, n, 5) {
                hits[i] += 1;
            }
        }
        // each index expected 1000 times; allow generous slack
        for (i, &h) in hits.iter().enumerate() {
            assert!((700..1300).contains(&h), "index {i} hit {h} times");
        }
    }

    #[test]
    fn reservoir_short_stream_returns_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = reservoir_sample(&mut rng, 0..5, 10);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reservoir_exact_size() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = reservoir_sample(&mut rng, 0..10_000, 32);
        assert_eq!(s.len(), 32);
        let set: std::collections::HashSet<_> = s.iter().collect();
        assert_eq!(set.len(), 32);
    }

    #[test]
    fn reservoir_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 10;
        let mut hits = vec![0u32; n];
        for _ in 0..5000 {
            for v in reservoir_sample(&mut rng, 0..n, 3) {
                hits[v] += 1;
            }
        }
        // each value expected 1500 times
        for (i, &h) in hits.iter().enumerate() {
            assert!((1150..1850).contains(&h), "value {i} hit {h} times");
        }
    }

    #[test]
    fn reservoir_k_zero() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(reservoir_sample(&mut rng, 0..100, 0).is_empty());
    }
}
