//! Jaccard similarity indices.
//!
//! Table 5 compares the occupation mix of each country's top-10 users with
//! that of the United States via a Jaccard index. Because the same
//! occupation code can appear several times in a top-10 list (e.g. "Mu Mu Mu
//! IT Mu ..." for Mexico), the multiset (weighted) Jaccard variant is the
//! faithful estimator; the plain set variant is provided for comparison.

use std::collections::HashMap;
use std::hash::Hash;

/// Set Jaccard index `|A ∩ B| / |A ∪ B|`, ignoring multiplicities.
///
/// Returns 1.0 when both collections are empty (two empty sets are
/// identical).
pub fn jaccard_index<T: Eq + Hash + Clone>(a: &[T], b: &[T]) -> f64 {
    let sa: std::collections::HashSet<&T> = a.iter().collect();
    let sb: std::collections::HashSet<&T> = b.iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

/// Multiset (weighted) Jaccard index
/// `Σ min(m_A(x), m_B(x)) / Σ max(m_A(x), m_B(x))` over element
/// multiplicities.
///
/// Returns 1.0 when both collections are empty.
pub fn multiset_jaccard<T: Eq + Hash + Clone>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut counts_a: HashMap<&T, usize> = HashMap::new();
    for x in a {
        *counts_a.entry(x).or_insert(0) += 1;
    }
    let mut counts_b: HashMap<&T, usize> = HashMap::new();
    for x in b {
        *counts_b.entry(x).or_insert(0) += 1;
    }
    let mut inter = 0usize;
    let mut union = 0usize;
    for (k, &ca) in &counts_a {
        let cb = counts_b.get(k).copied().unwrap_or(0);
        inter += ca.min(cb);
        union += ca.max(cb);
    }
    for (k, &cb) in &counts_b {
        if !counts_a.contains_key(k) {
            union += cb;
        }
    }
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_lists_are_one() {
        let a = ["Mu", "IT", "Co"];
        assert_eq!(jaccard_index(&a, &a), 1.0);
        assert_eq!(multiset_jaccard(&a, &a), 1.0);
    }

    #[test]
    fn disjoint_lists_are_zero() {
        assert_eq!(jaccard_index(&["a", "b"], &["c", "d"]), 0.0);
        assert_eq!(multiset_jaccard(&["a", "b"], &["c", "d"]), 0.0);
    }

    #[test]
    fn set_index_ignores_multiplicity() {
        assert_eq!(jaccard_index(&["a", "a", "b"], &["a", "b", "b"]), 1.0);
    }

    #[test]
    fn multiset_index_respects_multiplicity() {
        // A = {a:2, b:1}, B = {a:1, b:2}: inter = 1+1, union = 2+2
        assert_eq!(multiset_jaccard(&["a", "a", "b"], &["a", "b", "b"]), 0.5);
    }

    #[test]
    fn empty_vs_empty_is_one_empty_vs_nonempty_zero() {
        let e: [&str; 0] = [];
        assert_eq!(jaccard_index(&e, &e), 1.0);
        assert_eq!(multiset_jaccard(&e, &e), 1.0);
        assert_eq!(jaccard_index(&e, &["a"]), 0.0);
        assert_eq!(multiset_jaccard(&e, &["a"]), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = ["x", "y", "y", "z"];
        let b = ["y", "z", "z", "w"];
        assert_eq!(multiset_jaccard(&a, &b), multiset_jaccard(&b, &a));
        assert_eq!(jaccard_index(&a, &b), jaccard_index(&b, &a));
    }

    #[test]
    fn table5_style_profession_codes() {
        // US and Canada from Table 5 share most codes -> high index.
        let us = ["Co", "Mu", "IT", "Mu", "IT", "Mu", "Bu", "IT", "Mo", "Ac"];
        let ca = ["IT", "IT", "Mu", "Co", "Bu", "Ac", "IT", "Mu", "Co", "Ac"];
        let sim = multiset_jaccard(&us, &ca);
        assert!(sim > 0.5, "US/CA should be similar, got {sim}");
        // Germany's list shares far less with the US.
        let de = ["Bl", "IT", "IT", "Jo", "Bl", "IT", "Jo", "Ec", "Mu", "Bl"];
        let sim_de = multiset_jaccard(&us, &de);
        assert!(sim_de < sim, "DE should be less similar than CA");
    }
}
