//! Power-law exponent estimation.
//!
//! §3.3.1 of the paper: "The CCDF of a Power Law distribution is given by
//! `C x^{-α}`... By using a simple statistical linear regression (in the
//! log-log scale) we estimated the exponent α that best models the data. We
//! obtained α = 1.3 (with R² = 0.99) for in-degree and α = 1.2 (with
//! R² = 0.99) for out-degree."
//!
//! [`PowerLawFit::from_ccdf`] reproduces exactly that estimator: regress
//! `ln G(x)` on `ln x` over the CCDF's support and report `α = -slope`
//! together with `C = e^intercept` and R².
//!
//! A maximum-likelihood estimator for the discrete power-law *density*
//! exponent (`p(x) ∝ x^{-γ}`, with `γ = α + 1` when the tail is a clean
//! power law) is provided as a cross-check; the analysis crate reports the
//! regression fit because that is what the paper used.

use serde::{Deserialize, Serialize};

use crate::distribution::Ccdf;
use crate::linreg::LinearRegression;

/// A fitted power-law model of a CCDF, `G(x) ≈ C x^{-α}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawFit {
    /// CCDF exponent (the paper's α).
    pub alpha: f64,
    /// Multiplicative constant `C`.
    pub c: f64,
    /// Goodness of fit of the log–log regression.
    pub r_squared: f64,
    /// Points used in the regression.
    pub n_points: usize,
    /// Smallest value included in the fit.
    pub x_min: u64,
}

impl PowerLawFit {
    /// Fits the full support of `ccdf` (all strictly positive values).
    ///
    /// # Panics
    /// Panics if the CCDF has fewer than two distinct positive values.
    pub fn from_ccdf(ccdf: &Ccdf) -> Self {
        Self::from_ccdf_with_xmin(ccdf, 1)
    }

    /// Fits only values `>= x_min`, the standard remedy for the curvature
    /// real degree distributions show at small degrees.
    ///
    /// # Panics
    /// Panics if fewer than two distinct values of the CCDF are `>= x_min`.
    pub fn from_ccdf_with_xmin(ccdf: &Ccdf, x_min: u64) -> Self {
        let pts: Vec<(f64, f64)> = ccdf
            .points()
            .filter(|&(x, y)| x >= x_min.max(1) && y > 0.0)
            .map(|(x, y)| ((x as f64).ln(), y.ln()))
            .collect();
        assert!(
            pts.len() >= 2,
            "power-law fit requires >= 2 distinct values at or above x_min"
        );
        let reg = LinearRegression::fit(&pts);
        Self {
            alpha: -reg.slope,
            c: reg.intercept.exp(),
            r_squared: reg.r_squared,
            n_points: reg.n,
            x_min: x_min.max(1),
        }
    }

    /// Model prediction `G(x) = C x^{-α}`.
    pub fn predict_ccdf(&self, x: u64) -> f64 {
        assert!(x > 0, "power law is defined for x > 0");
        self.c * (x as f64).powf(-self.alpha)
    }
}

/// Discrete maximum-likelihood estimate of the *density* exponent γ for
/// observations `x >= x_min`, using the standard Clauset–Shalizi–Newman
/// approximation `γ ≈ 1 + n / Σ ln(x_i / (x_min - 1/2))`.
///
/// For a pure power-law tail the CCDF exponent relates as `α = γ - 1`.
///
/// Returns `None` when fewer than two observations are `>= x_min` or
/// `x_min == 0`.
pub fn mle_density_exponent(counts: &[u64], x_min: u64) -> Option<f64> {
    if x_min == 0 {
        return None;
    }
    let denom_base = x_min as f64 - 0.5;
    let mut n = 0usize;
    let mut log_sum = 0.0;
    for &x in counts {
        if x >= x_min {
            n += 1;
            log_sum += (x as f64 / denom_base).ln();
        }
    }
    if n < 2 || log_sum <= 0.0 {
        return None;
    }
    Some(1.0 + n as f64 / log_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Draws from a discrete power law with CCDF exponent alpha via inverse
    /// transform on the continuous approximation.
    fn sample_power_law(alpha: f64, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f64 = rng.random_range(1e-12..1.0);
                // G(x) = x^{-alpha}  =>  x = u^{-1/alpha}
                u.powf(-1.0 / alpha).floor().max(1.0) as u64
            })
            .collect()
    }

    #[test]
    fn recovers_exponent_of_synthetic_power_law() {
        let data = sample_power_law(1.3, 200_000, 42);
        let ccdf = Ccdf::from_counts(&data);
        let fit = PowerLawFit::from_ccdf_with_xmin(&ccdf, 2);
        assert!((fit.alpha - 1.3).abs() < 0.25, "alpha {} should be near 1.3", fit.alpha);
        assert!(fit.r_squared > 0.9, "r2 {}", fit.r_squared);
    }

    #[test]
    fn exact_power_law_perfect_r2() {
        // Construct counts whose CCDF is exactly x^-1 over {1,2,4,8}:
        // multiplicities chosen so survival halves at each doubling.
        let mut data = Vec::new();
        data.extend(std::iter::repeat_n(1u64, 4));
        data.extend(std::iter::repeat_n(2u64, 2));
        data.extend(std::iter::repeat_n(4u64, 1));
        data.push(8);
        let ccdf = Ccdf::from_counts(&data);
        let fit = PowerLawFit::from_ccdf(&ccdf);
        assert!((fit.alpha - 1.0).abs() < 0.01, "alpha {}", fit.alpha);
        assert!(fit.r_squared > 0.999);
        assert!((fit.c - 1.0).abs() < 0.05);
    }

    #[test]
    fn predict_matches_model_form() {
        let data = sample_power_law(1.5, 50_000, 7);
        let fit = PowerLawFit::from_ccdf(&Ccdf::from_counts(&data));
        let p1 = fit.predict_ccdf(10);
        let p2 = fit.predict_ccdf(100);
        // a decade in x should change G by ~10^alpha
        let ratio = p1 / p2;
        assert!((ratio.log10() - fit.alpha).abs() < 1e-9);
    }

    #[test]
    fn xmin_restricts_fit_range() {
        let data = sample_power_law(1.2, 100_000, 99);
        let ccdf = Ccdf::from_counts(&data);
        let full = PowerLawFit::from_ccdf(&ccdf);
        let tail = PowerLawFit::from_ccdf_with_xmin(&ccdf, 10);
        assert!(tail.n_points < full.n_points);
        assert_eq!(tail.x_min, 10);
    }

    #[test]
    fn mle_agrees_with_known_exponent() {
        let data = sample_power_law(1.3, 200_000, 5);
        // density exponent gamma = alpha + 1 = 2.3
        let gamma = mle_density_exponent(&data, 5).unwrap();
        assert!((gamma - 2.3).abs() < 0.2, "gamma {}", gamma);
    }

    #[test]
    fn mle_rejects_degenerate_input() {
        assert!(mle_density_exponent(&[1, 2, 3], 10).is_none());
        assert!(mle_density_exponent(&[5, 6], 0).is_none());
    }

    #[test]
    #[should_panic(expected = ">= 2 distinct values")]
    fn fit_rejects_single_value() {
        let ccdf = Ccdf::from_counts(&[3, 3, 3]);
        let _ = PowerLawFit::from_ccdf(&ccdf);
    }
}
