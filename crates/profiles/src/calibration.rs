//! Calibration constants transcribed from the paper's tables and figures.
//!
//! Every constant here carries the table/figure it came from. The generator
//! consumes these so that synthetic populations reproduce the paper's
//! marginal and conditional structure; the analysis crate re-imports the
//! same constants as the "paper reference" column of its reports.

use crate::types::{Gender, Occupation, RelationshipStatus};
use gplus_geo::Country;

/// Table 2: fraction of the 27,556,390 crawled users with each attribute
/// publicly available, in [`crate::ALL_ATTRIBUTES`] order.
pub const TABLE2_AVAILABILITY: [f64; 17] = [
    1.0,    // Name (mandatory, public by default)
    0.9767, // Gender
    0.2711, // Education
    0.2675, // Places lived
    0.2147, // Employment
    0.1479, // Phrase
    0.1348, // Other profiles
    0.1327, // Occupation
    0.1315, // Contributor to
    0.0780, // Introduction
    0.0439, // Other names
    0.0431, // Relationship
    0.0390, // Braggin rights
    0.0363, // Recommended links
    0.0274, // Looking for
    0.0022, // Work (contact)
    0.0021, // Home (contact)
];

/// Table 3, "Gender" block, all users: (male, female, other).
pub const GENDER_ALL: [(Gender, f64); 3] =
    [(Gender::Male, 0.6765), (Gender::Female, 0.3146), (Gender::Other, 0.0089)];

/// Table 3, "Gender" block, tel-users.
pub const GENDER_TEL: [(Gender, f64); 3] =
    [(Gender::Male, 0.8599), (Gender::Female, 0.1126), (Gender::Other, 0.0275)];

/// Table 3, "Relationship" block, all users (fractions of those who expose
/// the field).
pub const RELATIONSHIP_ALL: [(RelationshipStatus, f64); 9] = [
    (RelationshipStatus::Single, 0.4282),
    (RelationshipStatus::Married, 0.2659),
    (RelationshipStatus::InARelationship, 0.1980),
    (RelationshipStatus::ItsComplicated, 0.0316),
    (RelationshipStatus::Engaged, 0.0439),
    (RelationshipStatus::InAnOpenRelationship, 0.0126),
    (RelationshipStatus::Widowed, 0.0050),
    (RelationshipStatus::InADomesticPartnership, 0.0108),
    (RelationshipStatus::InACivilUnion, 0.0039),
];

/// Table 3, "Relationship" block, tel-users.
pub const RELATIONSHIP_TEL: [(RelationshipStatus, f64); 9] = [
    (RelationshipStatus::Single, 0.5724),
    (RelationshipStatus::Married, 0.2103),
    (RelationshipStatus::InARelationship, 0.1023),
    (RelationshipStatus::ItsComplicated, 0.0398),
    (RelationshipStatus::Engaged, 0.0298),
    (RelationshipStatus::InAnOpenRelationship, 0.0277),
    (RelationshipStatus::Widowed, 0.0058),
    (RelationshipStatus::InADomesticPartnership, 0.0077),
    (RelationshipStatus::InACivilUnion, 0.0041),
];

/// Overall tel-user rate: "a total of 72,736 users share telephone number
/// in Google+, which represent 0.26% of the population" (§3.2).
pub const TEL_USER_RATE: f64 = 0.0026;

/// Figure 6 / Table 3 "Location": fraction of *located* users per country.
/// The first ten are the paper's top-10 (US…ES); the second ten fill in the
/// remaining Figure-7 focus countries with weights chosen so the GPR
/// ranking of Figure 7(a) is reproduced (India top; Taiwan/Thailand in the
/// top ten; Japan/Russia/China far below their Internet penetration).
/// The remainder goes to [`Country::Other`].
pub const LOCATED_COUNTRY_WEIGHTS: [(Country, f64); 21] = [
    (Country::Us, 0.3138),    // Table 3
    (Country::In, 0.1671),    // Table 3
    (Country::Br, 0.0576),    // Table 3
    (Country::Gb, 0.0335),    // Table 3
    (Country::Ca, 0.0230),    // Table 3
    (Country::De, 0.0223),    // Figure 6 (read off)
    (Country::Id, 0.0208),    // Figure 6 (read off)
    (Country::Mx, 0.0190),    // Figure 6 (read off)
    (Country::It, 0.0172),    // Figure 6 (read off)
    (Country::Es, 0.0160),    // Figure 6 (read off)
    (Country::Vn, 0.0110),    // Figure 7 shape
    (Country::Cn, 0.0100),    // Figure 7 shape (big IPR/GPR gap)
    (Country::Tw, 0.0090),    // Figure 7 shape (top-10 GPR)
    (Country::Fr, 0.0090),    // Figure 7 shape
    (Country::Au, 0.0085),    // Figure 7 shape
    (Country::Th, 0.0080),    // Figure 7 shape (top-10 GPR)
    (Country::Ir, 0.0070),    // Figure 7 shape
    (Country::Ru, 0.0060),    // Figure 7 shape (big IPR/GPR gap)
    (Country::Jp, 0.0060),    // Figure 7 shape (big IPR/GPR gap)
    (Country::Ar, 0.0060),    // Figure 7 shape
    (Country::Other, 0.2292), // remainder
];

/// Table 3 "Location", tel-users relative propensity: the ratio of a
/// country's share among tel-users to its share among all located users
/// (US 8.92/31.38, IN 31.90/16.71, BR 4.72/5.76, GB 2.19/3.35,
/// CA 1.52/2.30; everything else pooled under "Other" 50.77/40.50).
pub fn tel_country_multiplier(c: Country) -> f64 {
    match c {
        Country::Us => 0.0892 / 0.3138,
        Country::In => 0.3190 / 0.1671,
        Country::Br => 0.0472 / 0.0576,
        Country::Gb => 0.0219 / 0.0335,
        Country::Ca => 0.0152 / 0.0230,
        _ => 0.5077 / 0.4050,
    }
}

/// Tel-user gender propensity: `P(g | tel) / P(g)` from Table 3.
pub fn tel_gender_multiplier(g: Gender) -> f64 {
    match g {
        Gender::Male => 0.8599 / 0.6765,
        Gender::Female => 0.1126 / 0.3146,
        Gender::Other => 0.0275 / 0.0089,
    }
}

/// Tel-user relationship propensity: `P(r | tel) / P(r)` from Table 3.
pub fn tel_relationship_multiplier(r: RelationshipStatus) -> f64 {
    use RelationshipStatus::*;
    match r {
        Single => 0.5724 / 0.4282,
        Married => 0.2103 / 0.2659,
        InARelationship => 0.1023 / 0.1980,
        ItsComplicated => 0.0398 / 0.0316,
        Engaged => 0.0298 / 0.0439,
        InAnOpenRelationship => 0.0277 / 0.0126,
        Widowed => 0.0058 / 0.0050,
        InADomesticPartnership => 0.0077 / 0.0108,
        InACivilUnion => 0.0041 / 0.0039,
    }
}

/// Figure 8: per-country openness multiplier applied to every optional
/// field's share probability. Ordered to reproduce the figure's ranking —
/// "Indonesia and Mexico share more information than ... United States and
/// United Kingdom. Germany is the most conservative" (§4.3).
pub fn country_openness(c: Country) -> f64 {
    match c {
        Country::Id => 1.30,
        Country::Mx => 1.22,
        Country::Us => 1.10,
        Country::Br => 1.06,
        Country::Gb => 1.00,
        Country::Es => 0.97,
        Country::Ca => 0.94,
        Country::It => 0.90,
        Country::In => 0.85,
        Country::De => 0.68,
        _ => 1.00,
    }
}

/// Table 5: the occupation codes of the ten most-connected users per
/// top-10 country, verbatim.
pub fn top_user_occupations(c: Country) -> Option<[Occupation; 10]> {
    use Occupation::*;
    Some(match c {
        Country::Us => [
            Comedian,
            Musician,
            InformationTechnology,
            Musician,
            InformationTechnology,
            Musician,
            Businessman,
            InformationTechnology,
            Model,
            Actor,
        ],
        Country::In => [
            Musician,
            Socialite,
            InformationTechnology,
            Musician,
            Model,
            Model,
            InformationTechnology,
            Businessman,
            InformationTechnology,
            Musician,
        ],
        Country::Br => [
            Comedian,
            TelevisionHost,
            Journalist,
            Writer,
            Artist,
            Blogger,
            Blogger,
            Comedian,
            Musician,
            Comedian,
        ],
        Country::Gb => [
            Businessman,
            Musician,
            InformationTechnology,
            InformationTechnology,
            Musician,
            Musician,
            InformationTechnology,
            Model,
            Socialite,
            InformationTechnology,
        ],
        Country::Ca => [
            InformationTechnology,
            InformationTechnology,
            Musician,
            Comedian,
            Businessman,
            Actor,
            InformationTechnology,
            Musician,
            Comedian,
            Actor,
        ],
        Country::De => [
            Blogger,
            InformationTechnology,
            InformationTechnology,
            Journalist,
            Blogger,
            InformationTechnology,
            Journalist,
            Economist,
            Musician,
            Blogger,
        ],
        Country::Id => [
            Musician,
            InformationTechnology,
            Socialite,
            Model,
            Model,
            InformationTechnology,
            Musician,
            Economist,
            Photographer,
            Journalist,
        ],
        Country::Mx => [
            Musician,
            Musician,
            Musician,
            InformationTechnology,
            Musician,
            Blogger,
            Blogger,
            Musician,
            Actor,
            Journalist,
        ],
        Country::It => [
            Journalist,
            Journalist,
            InformationTechnology,
            InformationTechnology,
            Journalist,
            InformationTechnology,
            Journalist,
            Musician,
            Musician,
            InformationTechnology,
        ],
        Country::Es => [
            Journalist,
            Politician,
            Politician,
            InformationTechnology,
            Musician,
            Musician,
            InformationTechnology,
            Musician,
            Politician,
            InformationTechnology,
        ],
        _ => return None,
    })
}

/// Table 1: the global top-20 users by in-degree, with name and category.
/// "7 out of the 20 users are IT related" (§3.1).
pub const TABLE1_TOP_USERS: [(&str, &str, bool); 20] = [
    // (name, about, is_IT_related)
    ("Larry Page", "IT (Google)", true),
    ("Mark Zuckerberg", "IT (Facebook)", true),
    ("Britney Spears", "Musician", false),
    ("Snoop Dogg", "Musician", false),
    ("Sergey Brin", "IT (Google)", true),
    ("Tyra Banks", "Model", false),
    ("Vic Gundotra", "IT (Google)", true),
    ("Paris Hilton", "Socialite", false),
    ("Richard Branson", "Businessman (Virgin Group)", false),
    ("Dane Cook", "Comedian", false),
    ("Jessi June", "Model", false),
    ("Trey Ratcliff", "Blogger", false),
    ("will.i.am", "Musician", false),
    ("Felicia Day", "Actor", false),
    ("Thomas Hawk", "Blogger", false),
    ("Tom Anderson", "IT (Myspace)", true),
    ("Pete Cashmore", "IT (Mashable)", true),
    ("Guy Kawasaki", "IT (Apple) & Writer", true),
    ("Wil Wheaton", "Actor & Writer", false),
    ("Ron Garan", "Astronaut (NASA)", false),
];

/// §3.1: fraction of users whose location could be identified —
/// "we were able to identify the country of 6,621,644 users" out of
/// 27,556,390 crawled minus those without public places lived. We model it
/// as: places-lived shared (Table 2, 26.75%) and the last entry resolving
/// to a country (6.62M / 7.37M ≈ 89.8% resolution success).
pub const GEOCODING_SUCCESS_RATE: f64 = 0.898;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_attribute_order_and_monotone_after_name() {
        assert_eq!(TABLE2_AVAILABILITY.len(), 17);
        assert_eq!(TABLE2_AVAILABILITY[0], 1.0);
        // Table 2 lists rows in descending availability
        for w in TABLE2_AVAILABILITY.windows(2) {
            assert!(w[0] >= w[1], "availability must be non-increasing");
        }
    }

    #[test]
    fn distributions_sum_to_one() {
        let close = |s: f64| (s - 1.0).abs() < 0.01;
        assert!(close(GENDER_ALL.iter().map(|x| x.1).sum()));
        assert!(close(GENDER_TEL.iter().map(|x| x.1).sum()));
        assert!(close(RELATIONSHIP_ALL.iter().map(|x| x.1).sum()));
        assert!(close(RELATIONSHIP_TEL.iter().map(|x| x.1).sum()));
        assert!(close(LOCATED_COUNTRY_WEIGHTS.iter().map(|x| x.1).sum()));
    }

    #[test]
    fn india_tel_multiplier_highest_of_named() {
        let named = [Country::Us, Country::In, Country::Br, Country::Gb, Country::Ca];
        for c in named {
            if c != Country::In {
                assert!(tel_country_multiplier(Country::In) > tel_country_multiplier(c));
            }
        }
        assert!(tel_country_multiplier(Country::Us) < 0.5);
    }

    #[test]
    fn male_more_tel_prone_than_female() {
        assert!(tel_gender_multiplier(Gender::Male) > 1.0);
        assert!(tel_gender_multiplier(Gender::Female) < 0.5);
    }

    #[test]
    fn single_more_tel_prone_than_in_relationship() {
        assert!(
            tel_relationship_multiplier(RelationshipStatus::Single)
                > tel_relationship_multiplier(RelationshipStatus::InARelationship)
        );
        // §3.2: "only half of the users 'in a relationship' shared"
        assert!(tel_relationship_multiplier(RelationshipStatus::InARelationship) < 0.6);
    }

    #[test]
    fn openness_ranking_matches_figure8() {
        // ID and MX above US and GB; DE strictly the most conservative
        assert!(country_openness(Country::Id) > country_openness(Country::Us));
        assert!(country_openness(Country::Mx) > country_openness(Country::Gb));
        for c in gplus_geo::TOP10_COUNTRIES {
            if c != Country::De {
                assert!(country_openness(Country::De) < country_openness(c));
            }
        }
    }

    #[test]
    fn table5_verbatim_set_jaccard_matches_paper() {
        // The paper's Jaccard column (US=1.00, CA=0.83, IN=GB=0.57,
        // BR=0.18, DE=0.22, ID=0.30, IT=0.29, ES=0.25) is the *set*
        // Jaccard of the occupation-code lists; verify our transcription.
        let us = top_user_occupations(Country::Us).unwrap();
        let set = |l: &[Occupation; 10]| {
            let mut v: Vec<_> = l.to_vec();
            v.sort_unstable();
            v.dedup();
            v
        };
        let jac = |a: &[Occupation], b: &[Occupation]| {
            let inter = a.iter().filter(|x| b.contains(x)).count();
            let union = a.len() + b.iter().filter(|x| !a.contains(x)).count();
            inter as f64 / union as f64
        };
        let us_set = set(&us);
        let expect = [
            (Country::Us, 1.00),
            (Country::In, 0.57),
            (Country::Br, 0.18),
            (Country::Gb, 0.57),
            (Country::Ca, 0.83),
            (Country::De, 0.22),
            (Country::Id, 0.30),
            (Country::It, 0.29),
            (Country::Es, 0.25),
        ];
        for (c, j) in expect {
            let other = set(&top_user_occupations(c).unwrap());
            let got = jac(&us_set, &other);
            assert!((got - j).abs() < 0.015, "{c}: got {got}, paper {j}");
        }
    }

    #[test]
    fn table1_seven_it_users() {
        let it = TABLE1_TOP_USERS.iter().filter(|(_, _, it)| *it).count();
        assert_eq!(it, 7, "paper: 7 of top 20 are IT related");
        assert_eq!(TABLE1_TOP_USERS.len(), 20);
        assert_eq!(TABLE1_TOP_USERS[0].0, "Larry Page");
    }

    #[test]
    fn top_user_occupations_only_for_top10() {
        assert!(top_user_occupations(Country::Jp).is_none());
        assert!(top_user_occupations(Country::Other).is_none());
        for c in gplus_geo::TOP10_COUNTRIES {
            assert!(top_user_occupations(c).is_some());
        }
    }
}
