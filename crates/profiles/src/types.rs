//! Domains of the restricted fields and the Table-5 occupation codes.

use serde::{Deserialize, Serialize};

/// Gender, as Google+ offered it (Table 3 groups: male / female / other).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gender {
    /// Male.
    Male,
    /// Female.
    Female,
    /// "Other".
    Other,
}

impl Gender {
    /// All variants in Table-3 order.
    pub const ALL: [Gender; 3] = [Gender::Male, Gender::Female, Gender::Other];

    /// Table-3 row label.
    pub fn label(self) -> &'static str {
        match self {
            Gender::Male => "Male",
            Gender::Female => "Female",
            Gender::Other => "Other",
        }
    }
}

/// The nine relationship-status options Google+ offered (§3.2: "What is
/// particular about Google+ is that it asks users to provide a very
/// detailed level of information about their relationship status ... The
/// nine default options").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelationshipStatus {
    /// Single.
    Single,
    /// Married.
    Married,
    /// In a relationship.
    InARelationship,
    /// It's complicated.
    ItsComplicated,
    /// Engaged.
    Engaged,
    /// In an open relationship.
    InAnOpenRelationship,
    /// Widowed.
    Widowed,
    /// In a domestic partnership.
    InADomesticPartnership,
    /// In a civil union.
    InACivilUnion,
}

impl RelationshipStatus {
    /// All nine options in Table-3 order.
    pub const ALL: [RelationshipStatus; 9] = [
        RelationshipStatus::Single,
        RelationshipStatus::Married,
        RelationshipStatus::InARelationship,
        RelationshipStatus::ItsComplicated,
        RelationshipStatus::Engaged,
        RelationshipStatus::InAnOpenRelationship,
        RelationshipStatus::Widowed,
        RelationshipStatus::InADomesticPartnership,
        RelationshipStatus::InACivilUnion,
    ];

    /// Table-3 row label.
    pub fn label(self) -> &'static str {
        match self {
            RelationshipStatus::Single => "Single",
            RelationshipStatus::Married => "Married",
            RelationshipStatus::InARelationship => "In a relationship",
            RelationshipStatus::ItsComplicated => "It's complicated",
            RelationshipStatus::Engaged => "Engaged",
            RelationshipStatus::InAnOpenRelationship => "In an open relationship",
            RelationshipStatus::Widowed => "Widowed",
            RelationshipStatus::InADomesticPartnership => "In a domestic partnership",
            RelationshipStatus::InACivilUnion => "In a civil union",
        }
    }
}

/// The "looking for" options Google+ offered (§3.1 names the field as one
/// of the three restricted fields; these were its choices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LookingFor {
    /// Friends.
    Friends,
    /// Dating.
    Dating,
    /// A relationship.
    ARelationship,
    /// Networking.
    Networking,
}

impl LookingFor {
    /// All four options.
    pub const ALL: [LookingFor; 4] = [
        LookingFor::Friends,
        LookingFor::Dating,
        LookingFor::ARelationship,
        LookingFor::Networking,
    ];

    /// UI label.
    pub fn label(self) -> &'static str {
        match self {
            LookingFor::Friends => "Friends",
            LookingFor::Dating => "Dating",
            LookingFor::ARelationship => "A relationship",
            LookingFor::Networking => "Networking",
        }
    }
}

/// The fifteen profession codes of Table 5's footnote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Occupation {
    /// Co: Comedian.
    Comedian,
    /// Mu: Musician.
    Musician,
    /// IT: Information Technology Person.
    InformationTechnology,
    /// Bu: Businessman.
    Businessman,
    /// Mo: Model.
    Model,
    /// Ac: Actor.
    Actor,
    /// So: Socialite.
    Socialite,
    /// TV: Television Host.
    TelevisionHost,
    /// Jo: Journalist.
    Journalist,
    /// Bl: Blogger.
    Blogger,
    /// Ec: Economist.
    Economist,
    /// Ar: Artist.
    Artist,
    /// Po: Politician.
    Politician,
    /// Ph: Photographer.
    Photographer,
    /// Wr: Writer.
    Writer,
}

impl Occupation {
    /// All fifteen codes.
    pub const ALL: [Occupation; 15] = [
        Occupation::Comedian,
        Occupation::Musician,
        Occupation::InformationTechnology,
        Occupation::Businessman,
        Occupation::Model,
        Occupation::Actor,
        Occupation::Socialite,
        Occupation::TelevisionHost,
        Occupation::Journalist,
        Occupation::Blogger,
        Occupation::Economist,
        Occupation::Artist,
        Occupation::Politician,
        Occupation::Photographer,
        Occupation::Writer,
    ];

    /// The two-letter code Table 5 prints.
    pub fn code(self) -> &'static str {
        match self {
            Occupation::Comedian => "Co",
            Occupation::Musician => "Mu",
            Occupation::InformationTechnology => "IT",
            Occupation::Businessman => "Bu",
            Occupation::Model => "Mo",
            Occupation::Actor => "Ac",
            Occupation::Socialite => "So",
            Occupation::TelevisionHost => "TV",
            Occupation::Journalist => "Jo",
            Occupation::Blogger => "Bl",
            Occupation::Economist => "Ec",
            Occupation::Artist => "Ar",
            Occupation::Politician => "Po",
            Occupation::Photographer => "Ph",
            Occupation::Writer => "Wr",
        }
    }

    /// Full label from the Table-5 footnote.
    pub fn label(self) -> &'static str {
        match self {
            Occupation::Comedian => "Comedian",
            Occupation::Musician => "Musician",
            Occupation::InformationTechnology => "Information Technology Person",
            Occupation::Businessman => "Businessman",
            Occupation::Model => "Model",
            Occupation::Actor => "Actor",
            Occupation::Socialite => "Socialite",
            Occupation::TelevisionHost => "Television Host",
            Occupation::Journalist => "Journalist",
            Occupation::Blogger => "Blogger",
            Occupation::Economist => "Economist",
            Occupation::Artist => "Artist",
            Occupation::Politician => "Politician",
            Occupation::Photographer => "Photographer",
            Occupation::Writer => "Writer",
        }
    }

    /// Parses a two-letter Table-5 code.
    pub fn from_code(code: &str) -> Option<Occupation> {
        Occupation::ALL.into_iter().find(|o| o.code() == code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_relationship_options() {
        assert_eq!(RelationshipStatus::ALL.len(), 9);
        let mut labels: Vec<_> = RelationshipStatus::ALL.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 9);
    }

    #[test]
    fn fifteen_occupation_codes_round_trip() {
        assert_eq!(Occupation::ALL.len(), 15);
        for o in Occupation::ALL {
            assert_eq!(Occupation::from_code(o.code()), Some(o));
            assert_eq!(o.code().len(), 2);
        }
        assert_eq!(Occupation::from_code("XX"), None);
    }

    #[test]
    fn looking_for_options() {
        assert_eq!(LookingFor::ALL.len(), 4);
        let mut labels: Vec<_> = LookingFor::ALL.iter().map(|l| l.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn gender_labels() {
        assert_eq!(Gender::Male.label(), "Male");
        assert_eq!(Gender::ALL.len(), 3);
    }
}
