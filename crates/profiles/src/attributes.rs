//! The seventeen profile attributes of Table 2 and the visibility model.

use serde::{Deserialize, Serialize};

/// A profile field a Google+ user may expose, in Table 2 order
/// (descending availability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Attribute {
    /// Display name — "public by default" and mandatory (§3.1).
    Name = 0,
    /// Gender (restricted field).
    Gender = 1,
    /// Education history.
    Education = 2,
    /// The free-text, geocoded "places lived" list.
    PlacesLived = 3,
    /// Employment history.
    Employment = 4,
    /// Tagline phrase.
    Phrase = 5,
    /// Links to profiles on other services.
    OtherProfiles = 6,
    /// Occupation / job title.
    Occupation = 7,
    /// "Contributor to" links.
    ContributorTo = 8,
    /// Free-text introduction.
    Introduction = 9,
    /// Other names (nicknames, maiden names).
    OtherNames = 10,
    /// Relationship status (restricted field, nine options).
    Relationship = 11,
    /// "Bragging rights".
    BragginRights = 12,
    /// Recommended links.
    RecommendedLinks = 13,
    /// "Looking for" (restricted field).
    LookingFor = 14,
    /// Work contact info — phone; sharing it makes a "tel-user" (§3.2).
    WorkContact = 15,
    /// Home contact info — phone; sharing it makes a "tel-user" (§3.2).
    HomeContact = 16,
}

/// All seventeen attributes in Table 2 order.
pub const ALL_ATTRIBUTES: [Attribute; 17] = [
    Attribute::Name,
    Attribute::Gender,
    Attribute::Education,
    Attribute::PlacesLived,
    Attribute::Employment,
    Attribute::Phrase,
    Attribute::OtherProfiles,
    Attribute::Occupation,
    Attribute::ContributorTo,
    Attribute::Introduction,
    Attribute::OtherNames,
    Attribute::Relationship,
    Attribute::BragginRights,
    Attribute::RecommendedLinks,
    Attribute::LookingFor,
    Attribute::WorkContact,
    Attribute::HomeContact,
];

impl Attribute {
    /// Table-2 row label.
    pub fn label(self) -> &'static str {
        match self {
            Attribute::Name => "Name",
            Attribute::Gender => "Gender",
            Attribute::Education => "Education",
            Attribute::PlacesLived => "Places lived",
            Attribute::Employment => "Employment",
            Attribute::Phrase => "Phrase",
            Attribute::OtherProfiles => "Other profiles",
            Attribute::Occupation => "Occupation",
            Attribute::ContributorTo => "Contributor to",
            Attribute::Introduction => "Introduction",
            Attribute::OtherNames => "Other names",
            Attribute::Relationship => "Relationship",
            Attribute::BragginRights => "Braggin rights",
            Attribute::RecommendedLinks => "Recommended links",
            Attribute::LookingFor => "Looking for",
            Attribute::WorkContact => "Work (contact)",
            Attribute::HomeContact => "Home (contact)",
        }
    }

    /// "Restricted fields" offer a fixed set of options; everything else is
    /// free text (§3.1: "Only the fields relationship, looking for, and
    /// gender are restricted fields").
    pub fn is_restricted(self) -> bool {
        matches!(self, Attribute::Gender | Attribute::Relationship | Attribute::LookingFor)
    }

    /// The name is the only field that is always public (§3.1).
    pub fn always_public(self) -> bool {
        self == Attribute::Name
    }

    /// Bit position in a [`crate::Profile`]'s public-field mask.
    pub fn bit(self) -> u32 {
        1u32 << (self as u8)
    }

    /// Inverse of [`Attribute::bit`]'s position; `None` for indices >= 17.
    pub fn from_index(i: u8) -> Option<Attribute> {
        ALL_ATTRIBUTES.get(i as usize).copied()
    }
}

/// The five visibility levels of §3.1. The crawler sees a field iff it is
/// [`Visibility::Public`]; the other four levels exist so the service crate
/// can faithfully withhold them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Visibility {
    /// "open to anyone in the Internet".
    Public,
    /// "open to people that are in circles and people that are in the
    /// circles of those".
    ExtendedCircles,
    /// "open to people in one's circles".
    YourCircles,
    /// "only you".
    OnlyYou,
    /// "a user can choose exactly which circles may view that field".
    Custom,
}

impl Visibility {
    /// Whether an anonymous crawler (no circle relationship) can read the
    /// field.
    pub fn crawlable(self) -> bool {
        self == Visibility::Public
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_attributes() {
        assert_eq!(ALL_ATTRIBUTES.len(), 17);
        // distinct bit positions
        let mut mask = 0u32;
        for a in ALL_ATTRIBUTES {
            assert_eq!(mask & a.bit(), 0, "{a:?} bit collides");
            mask |= a.bit();
        }
        assert_eq!(mask, (1 << 17) - 1);
    }

    #[test]
    fn from_index_round_trip() {
        for (i, a) in ALL_ATTRIBUTES.iter().enumerate() {
            assert_eq!(Attribute::from_index(i as u8), Some(*a));
        }
        assert_eq!(Attribute::from_index(17), None);
    }

    #[test]
    fn restricted_fields_match_paper() {
        let restricted: Vec<_> = ALL_ATTRIBUTES.iter().filter(|a| a.is_restricted()).collect();
        assert_eq!(
            restricted,
            vec![&Attribute::Gender, &Attribute::Relationship, &Attribute::LookingFor]
        );
    }

    #[test]
    fn only_name_always_public() {
        for a in ALL_ATTRIBUTES {
            assert_eq!(a.always_public(), a == Attribute::Name);
        }
    }

    #[test]
    fn only_public_is_crawlable() {
        assert!(Visibility::Public.crawlable());
        for v in [
            Visibility::ExtendedCircles,
            Visibility::YourCircles,
            Visibility::OnlyYou,
            Visibility::Custom,
        ] {
            assert!(!v.crawlable());
        }
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = ALL_ATTRIBUTES.iter().map(|a| a.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 17);
    }
}
