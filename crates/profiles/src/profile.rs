//! The compact per-user profile record.

use crate::attributes::{Attribute, ALL_ATTRIBUTES};
use crate::types::{Gender, LookingFor, Occupation, RelationshipStatus};
use gplus_geo::{cities_of, format_place, Country, LatLon};
use serde::{Deserialize, Serialize};

/// One user's profile: ground-truth attribute values plus the mask of
/// fields the user made public.
///
/// The struct is deliberately compact (no heap allocation for ordinary
/// users) so tens of millions fit in memory, matching the paper's scale
/// ambitions. Ground truth exists for every field; the *public* view —
/// what the crawler can see — is gated by [`Profile::shares`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Stable user id (the synth crate makes this the graph node id).
    pub user_id: u64,
    /// Bitmask over [`Attribute`] bit positions of publicly shared fields.
    /// Bit 0 (Name) is always set.
    pub public_mask: u32,
    /// Ground-truth gender.
    pub gender: Gender,
    /// Ground-truth relationship status.
    pub relationship: RelationshipStatus,
    /// Ground-truth country of the *last* "places lived" entry (the one the
    /// paper geocodes, §4).
    pub country: Country,
    /// Index into [`gplus_geo::cities_of`]`(country)` for the home city.
    pub city_index: u8,
    /// Ground-truth occupation.
    pub occupation: Occupation,
    /// Ground-truth "looking for" selection.
    pub looking_for: LookingFor,
    /// Whether the free-text place resolves in geocoding (§3.1's automatic
    /// map marking sometimes fails; see
    /// [`crate::calibration::GEOCODING_SUCCESS_RATE`]).
    pub geocodable: bool,
    /// Celebrity display name, when this profile is one of the seeded
    /// archetypes (Table 1 / Table 5 top users). `None` for ordinary users.
    pub celebrity_name: Option<String>,
}

impl Profile {
    /// Whether `attr` is publicly visible.
    pub fn shares(&self, attr: Attribute) -> bool {
        self.public_mask & attr.bit() != 0
    }

    /// Number of publicly shared fields (Name always counts; Figure 2's
    /// x-axis, which excludes the Work/Home contact fields from the count —
    /// "removing the fields of Home and Work information from the
    /// contabilization").
    pub fn fields_shared_excl_contact(&self) -> u32 {
        let mask =
            self.public_mask & !(Attribute::WorkContact.bit() | Attribute::HomeContact.bit());
        mask.count_ones()
    }

    /// Number of publicly shared fields including the contact fields
    /// (Figure 8 uses the full count; its minimum is 2 because name and
    /// places-lived are both present for the geo-located population).
    pub fn fields_shared(&self) -> u32 {
        self.public_mask.count_ones()
    }

    /// A "tel-user": shares work or home contact info publicly (§3.2).
    pub fn is_tel_user(&self) -> bool {
        self.shares(Attribute::WorkContact) || self.shares(Attribute::HomeContact)
    }

    /// Publicly visible gender, if shared.
    pub fn public_gender(&self) -> Option<Gender> {
        self.shares(Attribute::Gender).then_some(self.gender)
    }

    /// Publicly visible relationship status, if shared.
    pub fn public_relationship(&self) -> Option<RelationshipStatus> {
        self.shares(Attribute::Relationship).then_some(self.relationship)
    }

    /// Publicly visible occupation, if shared.
    pub fn public_occupation(&self) -> Option<Occupation> {
        self.shares(Attribute::Occupation).then_some(self.occupation)
    }

    /// Publicly visible "looking for" selection, if shared.
    pub fn public_looking_for(&self) -> Option<LookingFor> {
        self.shares(Attribute::LookingFor).then_some(self.looking_for)
    }

    /// Ground-truth home coordinates: the user's city centre plus a
    /// deterministic within-metro offset (±~20 miles). Real metros are not
    /// points; without the spread, Figure 9's "< 10 miles" bucket would
    /// absorb every same-city pair.
    pub fn true_location(&self) -> LatLon {
        let cities = cities_of(self.country);
        let centre = cities[self.city_index as usize % cities.len()].location;
        // splitmix64 of the user id -> two uniform offsets in [-0.15, 0.15]°
        let mut x = self.user_id.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        let u1 = ((x >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
        let u2 = (((x.wrapping_mul(0x2545_f491_4f6c_dd1d)) >> 11) as f64 / (1u64 << 53) as f64)
            - 0.5;
        let lat = (centre.lat + u1 * 0.3).clamp(-89.9, 89.9);
        // widen the longitude offset at high latitude so the metro stays
        // roughly round in miles
        let lon_scale = 0.3 / centre.lat.to_radians().cos().max(0.2);
        let mut lon = centre.lon + u2 * lon_scale;
        if lon > 180.0 {
            lon -= 360.0;
        } else if lon < -180.0 {
            lon += 360.0;
        }
        LatLon::new(lat, lon)
    }

    /// The "places lived" entry as the user typed it: a deterministic
    /// free-text rendering of the home city in one of eight real-world
    /// styles ("New York", "new york", "New York, United States", junk...).
    /// Whether it geocodes is what decides [`Profile::public_country`] —
    /// the §3.1 pipeline, faithfully: free text in, map pin out (or not).
    pub fn places_lived_text(&self) -> String {
        let cities = cities_of(self.country);
        let city = &cities[self.city_index as usize % cities.len()];
        format_place(city, self.country, self.place_style())
    }

    /// The text style this user writes their place in (hashed off the id).
    pub fn place_style(&self) -> u8 {
        let mut x = self.user_id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x706c_6163;
        x = (x ^ (x >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
        (x >> 59) as u8 // top bits, 0..32 -> % 8 in format_place
    }

    /// The publicly visible "places lived" text, when shared.
    pub fn public_places_text(&self) -> Option<String> {
        self.shares(Attribute::PlacesLived).then(|| self.places_lived_text())
    }

    /// The country visible to an observer of the public profile: requires
    /// the places-lived field to be shared *and* geocodable, mirroring the
    /// paper's 6.62M located users out of 7.37M sharing the field.
    pub fn public_country(&self) -> Option<Country> {
        (self.shares(Attribute::PlacesLived) && self.geocodable).then_some(self.country)
    }

    /// Coordinates visible to an observer, under the same conditions as
    /// [`Profile::public_country`].
    pub fn public_location(&self) -> Option<LatLon> {
        self.public_country().map(|_| self.true_location())
    }

    /// Display name: celebrity name if any, otherwise a deterministic
    /// pseudonym derived from the user id.
    pub fn display_name(&self) -> String {
        match &self.celebrity_name {
            Some(n) => n.clone(),
            None => format!("user-{:08x}", self.user_id),
        }
    }

    /// The publicly shared attributes, in Table-2 order.
    pub fn public_attributes(&self) -> Vec<Attribute> {
        ALL_ATTRIBUTES.into_iter().filter(|a| self.shares(*a)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_profile() -> Profile {
        Profile {
            user_id: 42,
            public_mask: Attribute::Name.bit(),
            gender: Gender::Female,
            relationship: RelationshipStatus::Single,
            country: Country::Br,
            city_index: 1,
            occupation: Occupation::Musician,
            looking_for: LookingFor::Friends,
            geocodable: true,
            celebrity_name: None,
        }
    }

    #[test]
    fn name_only_profile() {
        let p = base_profile();
        assert!(p.shares(Attribute::Name));
        assert_eq!(p.fields_shared(), 1);
        assert_eq!(p.fields_shared_excl_contact(), 1);
        assert!(!p.is_tel_user());
        assert!(p.public_gender().is_none());
        assert!(p.public_country().is_none());
        assert!(p.public_location().is_none());
    }

    #[test]
    fn contact_fields_excluded_from_fig2_count() {
        let mut p = base_profile();
        p.public_mask |= Attribute::WorkContact.bit() | Attribute::HomeContact.bit();
        assert_eq!(p.fields_shared(), 3);
        assert_eq!(p.fields_shared_excl_contact(), 1);
        assert!(p.is_tel_user());
    }

    #[test]
    fn tel_user_either_contact_field() {
        let mut p = base_profile();
        p.public_mask |= Attribute::HomeContact.bit();
        assert!(p.is_tel_user());
        let mut q = base_profile();
        q.public_mask |= Attribute::WorkContact.bit();
        assert!(q.is_tel_user());
    }

    #[test]
    fn public_getters_require_sharing() {
        let mut p = base_profile();
        assert_eq!(p.public_relationship(), None);
        assert_eq!(p.public_looking_for(), None);
        p.public_mask |= Attribute::Relationship.bit()
            | Attribute::Gender.bit()
            | Attribute::LookingFor.bit();
        assert_eq!(p.public_relationship(), Some(RelationshipStatus::Single));
        assert_eq!(p.public_gender(), Some(Gender::Female));
        assert_eq!(p.public_looking_for(), Some(LookingFor::Friends));
    }

    #[test]
    fn location_requires_share_and_geocodable() {
        let mut p = base_profile();
        p.public_mask |= Attribute::PlacesLived.bit();
        assert_eq!(p.public_country(), Some(Country::Br));
        assert_eq!(p.public_location(), Some(p.true_location()));
        p.geocodable = false;
        assert_eq!(p.public_country(), None);
    }

    #[test]
    fn true_location_near_gazetteer_city() {
        use gplus_geo::haversine_miles;
        let p = base_profile();
        let loc = p.true_location();
        let nearest = cities_of(Country::Br)
            .iter()
            .map(|c| haversine_miles(c.location, loc))
            .fold(f64::INFINITY, f64::min);
        assert!(nearest < 40.0, "user should live within the metro, {nearest} miles out");
        assert!(nearest > 0.0, "jitter should move users off the city centre");
    }

    #[test]
    fn same_city_users_spread_apart() {
        use gplus_geo::haversine_miles;
        let mut a = base_profile();
        let mut b = base_profile();
        a.user_id = 1;
        b.user_id = 2;
        let d = haversine_miles(a.true_location(), b.true_location());
        assert!(d > 0.1, "distinct users should not collide exactly");
        assert!(d < 80.0, "same-city users stay within the metro, got {d}");
        // deterministic
        assert_eq!(a.true_location(), a.true_location());
    }

    #[test]
    fn city_index_wraps_defensively() {
        let mut p = base_profile();
        p.city_index = 250; // beyond Brazil's city list
        let _ = p.true_location(); // must not panic
    }

    #[test]
    fn display_name_celebrity_vs_pseudonym() {
        let mut p = base_profile();
        assert_eq!(p.display_name(), "user-0000002a");
        p.celebrity_name = Some("Larry Page".into());
        assert_eq!(p.display_name(), "Larry Page");
    }

    #[test]
    fn public_attributes_lists_in_order() {
        let mut p = base_profile();
        p.public_mask |= Attribute::Gender.bit() | Attribute::Relationship.bit();
        assert_eq!(
            p.public_attributes(),
            vec![Attribute::Name, Attribute::Gender, Attribute::Relationship]
        );
    }
}
