//! User-profile substrate for the Google+ IMC'12 reproduction.
//!
//! §3.1 of the paper enumerates the seventeen profile attributes a Google+
//! user could expose (Table 2), the five-level visibility control, the
//! restricted fields (gender, relationship, "looking for"), and the free
//! "places lived" field. §3.2 studies the "tel-users" who publish a phone
//! number. §4.2 assigns occupation codes to top users and §4.3 ranks
//! countries by profile openness.
//!
//! This crate models all of that:
//!
//! * [`Attribute`] / [`Visibility`] — the seventeen fields of Table 2 and
//!   the five privacy levels of §3.1.
//! * [`Gender`], [`RelationshipStatus`], [`Occupation`] — the restricted
//!   field domains (nine relationship states, Table 3) and the fifteen
//!   profession codes of Table 5.
//! * [`Profile`] — one user's attribute values plus a bitmask of which are
//!   public; compact enough to hold millions in memory.
//! * [`ProfileGenerator`] — the calibrated generative model: per-country
//!   adoption (Figure 6), per-attribute share marginals (Table 2),
//!   per-country openness (Figure 8), and the tel-user conditional
//!   structure (Table 3, Figure 2). Calibration constants live in
//!   [`calibration`] with a paper citation on each.

pub mod attributes;
pub mod calibration;
pub mod generator;
pub mod profile;
pub mod types;

pub use attributes::{Attribute, Visibility, ALL_ATTRIBUTES};
pub use generator::{GeneratorConfig, ProfileGenerator};
pub use profile::Profile;
pub use types::{Gender, LookingFor, Occupation, RelationshipStatus};
