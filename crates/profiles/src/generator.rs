//! The calibrated generative profile model.
//!
//! Substitutes for the real 2011 Google+ population (the dataset is gone).
//! Each profile is drawn so that the population reproduces the paper's
//! published structure:
//!
//! * country marginals from Figure 6 / Table 3
//!   ([`calibration::LOCATED_COUNTRY_WEIGHTS`]);
//! * per-attribute public-share marginals from Table 2, preserved *exactly*
//!   (up to the per-country openness multiplier) by a Gaussian copula: each
//!   user has an openness latent `z ~ N(0,1)` and shares field `f` iff
//!   `ρ·z + √(1-ρ²)·ε_f > Φ⁻¹(1 - p_f)` — the marginal stays `p_f` while
//!   sharing decisions correlate within a user;
//! * tel-user probability proportional to `exp(β·z - β²/2)` (mean 1), so
//!   phone-sharers are drawn from the open end of the population — this is
//!   what produces Figure 2's stochastic dominance of tel-users;
//! * tel-user conditionals from Table 3 (country, gender, relationship
//!   multipliers);
//! * per-country openness multipliers ordered as in Figure 8.

use crate::attributes::{Attribute, ALL_ATTRIBUTES};
use crate::calibration;
use crate::profile::Profile;
use crate::types::{LookingFor, Occupation};
use gplus_geo::{cities_of, Country};
use gplus_stats::phi_inv;
use rand::distr::weighted::WeightedIndex;
use rand::prelude::*;
use rand_distr::StandardNormal;

/// Tunable knobs of the generative model. [`GeneratorConfig::default`] is
/// the paper calibration; tests and ablations perturb single knobs.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Target overall tel-user rate (paper: 0.26%).
    pub tel_rate: f64,
    /// Copula correlation `ρ ∈ [0, 1)` between a user's openness latent and
    /// each field-share decision. 0 makes fields independent; higher values
    /// concentrate sharing in open users (Figure 2's separation).
    pub field_correlation: f64,
    /// Exponential tilt `β` of the tel-user probability in the openness
    /// latent: `P(tel | z) ∝ exp(β z)`. 0 decouples phone sharing from
    /// openness.
    pub tel_openness_beta: f64,
    /// Country weights for the located population.
    pub country_weights: Vec<(Country, f64)>,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            tel_rate: calibration::TEL_USER_RATE,
            field_correlation: 0.60,
            tel_openness_beta: 1.5,
            country_weights: calibration::LOCATED_COUNTRY_WEIGHTS.to_vec(),
        }
    }
}

/// Samples [`Profile`]s from the calibrated model.
pub struct ProfileGenerator {
    config: GeneratorConfig,
    countries: Vec<Country>,
    country_dist: WeightedIndex<f64>,
    gender_dist: WeightedIndex<f64>,
    relationship_dist: WeightedIndex<f64>,
    /// Precomputed `Φ⁻¹(1 - clamp(base_f * openness_c))` per (country slot,
    /// attribute) would cost 21×17 entries; instead cache per-attribute
    /// thresholds for multiplier 1.0 and adjust per country at sample time.
    rho: f64,
    rho_comp: f64,
}

impl ProfileGenerator {
    /// Creates a generator from a configuration.
    ///
    /// # Panics
    /// Panics if the country weight vector is empty or non-positive, or if
    /// `field_correlation` is outside `[0, 1)`.
    pub fn new(config: GeneratorConfig) -> Self {
        assert!(
            (0.0..1.0).contains(&config.field_correlation),
            "field_correlation must be in [0,1)"
        );
        let countries: Vec<Country> = config.country_weights.iter().map(|c| c.0).collect();
        let country_dist = WeightedIndex::new(config.country_weights.iter().map(|c| c.1))
            .expect("country weights must be positive");
        let gender_dist = WeightedIndex::new(calibration::GENDER_ALL.iter().map(|g| g.1))
            .expect("gender weights");
        let relationship_dist =
            WeightedIndex::new(calibration::RELATIONSHIP_ALL.iter().map(|r| r.1))
                .expect("relationship weights");
        let rho = config.field_correlation;
        let rho_comp = (1.0 - rho * rho).sqrt();
        Self { config, countries, country_dist, gender_dist, relationship_dist, rho, rho_comp }
    }

    /// Paper-calibrated generator.
    pub fn paper_calibrated() -> Self {
        Self::new(GeneratorConfig::default())
    }

    /// Access the active configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Samples the country of residence.
    pub fn sample_country<R: Rng + ?Sized>(&self, rng: &mut R) -> Country {
        self.countries[self.country_dist.sample(rng)]
    }

    /// Samples a home-city index within `country`, weighted by city size.
    pub fn sample_city<R: Rng + ?Sized>(&self, country: Country, rng: &mut R) -> u8 {
        let cities = cities_of(country);
        let dist = WeightedIndex::new(cities.iter().map(|c| c.weight))
            .expect("gazetteer weights are positive");
        dist.sample(rng) as u8
    }

    /// Generates one ordinary user.
    pub fn generate<R: Rng + ?Sized>(&self, user_id: u64, rng: &mut R) -> Profile {
        let country = self.sample_country(rng);
        self.generate_in_country(user_id, country, rng)
    }

    /// Generates one ordinary user pinned to a country (the synth crate
    /// assigns countries itself when it needs geographic structure first).
    pub fn generate_in_country<R: Rng + ?Sized>(
        &self,
        user_id: u64,
        country: Country,
        rng: &mut R,
    ) -> Profile {
        let city_index = self.sample_city(country, rng);
        let gender = calibration::GENDER_ALL[self.gender_dist.sample(rng)].0;
        let relationship = calibration::RELATIONSHIP_ALL[self.relationship_dist.sample(rng)].0;
        let occupation = self.sample_occupation(country, rng);
        // "looking for" skews social: friends and networking dominate
        let looking_for = match rng.random_range(0..10u8) {
            0..=3 => LookingFor::Friends,
            4..=6 => LookingFor::Networking,
            7..=8 => LookingFor::Dating,
            _ => LookingFor::ARelationship,
        };
        // the user's openness latent: high z = open profile
        let z: f64 = rng.sample(StandardNormal);
        let c_open = calibration::country_openness(country);

        let mut mask = Attribute::Name.bit();
        for attr in ALL_ATTRIBUTES {
            if attr == Attribute::Name
                || attr == Attribute::WorkContact
                || attr == Attribute::HomeContact
            {
                continue;
            }
            let base = calibration::TABLE2_AVAILABILITY[attr as u8 as usize];
            // "places lived" is the geo-conditioning field: scaling it by
            // country openness would distort the Figure 6 country marginals,
            // so the openness multiplier applies to every *other* field
            let mult = if attr == Attribute::PlacesLived { 1.0 } else { c_open };
            let p = (base * mult).clamp(1e-9, 1.0 - 1e-9);
            // Gaussian copula: share iff ρz + √(1-ρ²)ε exceeds the
            // (1-p)-quantile; the marginal over users is exactly p.
            let eps: f64 = rng.sample(StandardNormal);
            if self.rho * z + self.rho_comp * eps > phi_inv(1.0 - p) {
                mask |= attr.bit();
            }
        }

        // Phone sharing: exponentially tilted in the same openness latent
        // (mean of the tilt is 1), times the Table-3 conditional
        // multipliers. The work/home split follows Table 2 (0.22%/0.21%).
        let beta = self.config.tel_openness_beta;
        let tilt = (beta * z - beta * beta / 2.0).exp();
        let tel_mult = calibration::tel_country_multiplier(country)
            * calibration::tel_gender_multiplier(gender)
            * calibration::tel_relationship_multiplier(relationship)
            * tilt;
        let p_work = (0.0022 / 0.0026 * self.config.tel_rate * tel_mult).clamp(0.0, 1.0);
        let p_home = (0.0021 / 0.0026 * self.config.tel_rate * tel_mult).clamp(0.0, 1.0);
        if rng.random_bool(p_work) {
            mask |= Attribute::WorkContact.bit();
        }
        if rng.random_bool(p_home) {
            mask |= Attribute::HomeContact.bit();
        }

        let mut profile = Profile {
            user_id,
            public_mask: mask,
            gender,
            relationship,
            country,
            city_index,
            occupation,
            looking_for,
            geocodable: false,
            celebrity_name: None,
        };
        // geocodability is emergent: the §3.1 resolver either pins the
        // user's free-text place on the map or it does not. One of the
        // eight text styles is unresolvable junk, so ~88% of shared places
        // geocode — the paper located 6.62M of 7.37M sharers (89.8%).
        profile.geocodable = gplus_geo::geocode(&profile.places_lived_text()).is_some();
        profile
    }

    /// Generates a celebrity archetype: a named, highly open profile with a
    /// fixed occupation, used to seed Table 1 and Table 5 top users.
    pub fn generate_celebrity<R: Rng + ?Sized>(
        &self,
        user_id: u64,
        name: &str,
        occupation: Occupation,
        country: Country,
        rng: &mut R,
    ) -> Profile {
        let mut p = self.generate_in_country(user_id, country, rng);
        p.celebrity_name = Some(name.to_string());
        p.occupation = occupation;
        // Celebrities run public-facing profiles: name, gender, occupation,
        // employment, introduction, places lived all visible.
        p.public_mask |= Attribute::Gender.bit()
            | Attribute::Occupation.bit()
            | Attribute::Employment.bit()
            | Attribute::Introduction.bit()
            | Attribute::PlacesLived.bit()
            | Attribute::OtherProfiles.bit();
        p.geocodable = true;
        p
    }

    fn sample_occupation<R: Rng + ?Sized>(&self, country: Country, rng: &mut R) -> Occupation {
        // Ordinary users: blend the country's celebrity occupation mix
        // (which encodes what each national audience gravitates to) with a
        // uniform background so every code appears.
        if let Some(mix) = calibration::top_user_occupations(country) {
            if rng.random_bool(0.5) {
                return mix[rng.random_range(0..mix.len())];
            }
        }
        Occupation::ALL[rng.random_range(0..Occupation::ALL.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Gender, RelationshipStatus};
    use rand::rngs::StdRng;

    fn population(n: usize, seed: u64) -> Vec<Profile> {
        let generator = ProfileGenerator::paper_calibrated();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n as u64).map(|id| generator.generate(id, &mut rng)).collect()
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(population(100, 7), population(100, 7));
        assert_ne!(population(100, 7), population(100, 8));
    }

    #[test]
    fn name_always_shared() {
        for p in population(500, 1) {
            assert!(p.shares(Attribute::Name));
            assert!(p.fields_shared() >= 1);
        }
    }

    #[test]
    fn table2_marginals_approximately_reproduced() {
        let pop = population(60_000, 2);
        let n = pop.len() as f64;
        for attr in [
            Attribute::Gender,
            Attribute::Education,
            Attribute::PlacesLived,
            Attribute::Employment,
            Attribute::Relationship,
        ] {
            let base = calibration::TABLE2_AVAILABILITY[attr as u8 as usize];
            let got = pop.iter().filter(|p| p.shares(attr)).count() as f64 / n;
            // per-country multipliers and saturation shift rates slightly
            assert!(
                (got - base).abs() < base * 0.15 + 0.01,
                "{attr:?}: got {got}, table {base}"
            );
        }
        // rare fields stay rare but present
        let tel = pop.iter().filter(|p| p.is_tel_user()).count() as f64 / n;
        assert!(tel < 0.02, "tel rate {tel} should be well under 2%");
        assert!(tel > 0.0005, "tel rate {tel} should be nonzero at 60k users");
    }

    #[test]
    fn tel_users_skew_male_and_single() {
        let pop = population(400_000, 3);
        let tel: Vec<&Profile> = pop.iter().filter(|p| p.is_tel_user()).collect();
        assert!(tel.len() > 100, "need enough tel-users, got {}", tel.len());
        let frac = |ps: &[&Profile], f: &dyn Fn(&Profile) -> bool| {
            ps.iter().filter(|p| f(p)).count() as f64 / ps.len() as f64
        };
        let all: Vec<&Profile> = pop.iter().collect();
        let male_tel = frac(&tel, &|p| p.gender == Gender::Male);
        let male_all = frac(&all, &|p| p.gender == Gender::Male);
        assert!(male_tel > male_all + 0.05, "tel male {male_tel} vs all {male_all}");
        let single_tel = frac(&tel, &|p| p.relationship == RelationshipStatus::Single);
        let single_all = frac(&all, &|p| p.relationship == RelationshipStatus::Single);
        assert!(single_tel > single_all, "tel single {single_tel} vs all {single_all}");
    }

    #[test]
    fn tel_users_share_more_fields_fig2() {
        let pop = population(400_000, 4);
        let mean = |ps: &[&Profile]| {
            ps.iter().map(|p| p.fields_shared_excl_contact() as f64).sum::<f64>()
                / ps.len() as f64
        };
        let tel: Vec<&Profile> = pop.iter().filter(|p| p.is_tel_user()).collect();
        let all: Vec<&Profile> = pop.iter().collect();
        assert!(tel.len() > 100);
        assert!(mean(&tel) > mean(&all) + 1.0, "tel {} vs all {}", mean(&tel), mean(&all));
    }

    #[test]
    fn india_overrepresented_among_tel_users() {
        let pop = population(400_000, 12);
        let tel: Vec<&Profile> = pop.iter().filter(|p| p.is_tel_user()).collect();
        let frac_in_tel =
            tel.iter().filter(|p| p.country == Country::In).count() as f64 / tel.len() as f64;
        let frac_in_all =
            pop.iter().filter(|p| p.country == Country::In).count() as f64 / pop.len() as f64;
        assert!(frac_in_tel > frac_in_all * 1.4, "IN tel {frac_in_tel} vs all {frac_in_all}");
    }

    #[test]
    fn country_marginals_roughly_weighted() {
        let pop = population(80_000, 5);
        let n = pop.len() as f64;
        let frac = |c: Country| pop.iter().filter(|p| p.country == c).count() as f64 / n;
        assert!((frac(Country::Us) - 0.3138).abs() < 0.02);
        assert!((frac(Country::In) - 0.1671).abs() < 0.02);
        assert!(frac(Country::Us) > frac(Country::In));
        assert!(frac(Country::In) > frac(Country::Br));
    }

    #[test]
    fn germany_less_open_than_indonesia_fig8() {
        let pop = population(150_000, 6);
        let mean_fields = |c: Country| {
            let sel: Vec<_> = pop.iter().filter(|p| p.country == c).collect();
            sel.iter().map(|p| p.fields_shared() as f64).sum::<f64>() / sel.len() as f64
        };
        assert!(mean_fields(Country::Id) > mean_fields(Country::De) + 0.5);
        assert!(mean_fields(Country::Mx) > mean_fields(Country::De));
    }

    #[test]
    fn field_correlation_zero_removes_fig2_gap() {
        // ablation: with ρ = 0 and β = 0, tel-users look like everyone else
        let config = GeneratorConfig {
            field_correlation: 0.0,
            tel_openness_beta: 0.0,
            tel_rate: 0.01, // raise the rate so the tel sample is large
            ..GeneratorConfig::default()
        };
        let generator = ProfileGenerator::new(config);
        let mut rng = StdRng::seed_from_u64(13);
        let pop: Vec<Profile> =
            (0..150_000u64).map(|id| generator.generate(id, &mut rng)).collect();
        let mean = |ps: &[&Profile]| {
            ps.iter().map(|p| p.fields_shared_excl_contact() as f64).sum::<f64>()
                / ps.len() as f64
        };
        let tel: Vec<&Profile> = pop.iter().filter(|p| p.is_tel_user()).collect();
        let all: Vec<&Profile> = pop.iter().collect();
        assert!(tel.len() > 200);
        assert!(
            (mean(&tel) - mean(&all)).abs() < 0.35,
            "decoupled model should close the gap: tel {} all {}",
            mean(&tel),
            mean(&all)
        );
    }

    #[test]
    fn celebrity_profiles_named_and_open() {
        let generator = ProfileGenerator::paper_calibrated();
        let mut rng = StdRng::seed_from_u64(9);
        let c = generator.generate_celebrity(
            1,
            "Larry Page",
            Occupation::InformationTechnology,
            Country::Us,
            &mut rng,
        );
        assert_eq!(c.display_name(), "Larry Page");
        assert_eq!(c.occupation, Occupation::InformationTechnology);
        assert!(c.shares(Attribute::Occupation));
        assert!(c.shares(Attribute::PlacesLived));
        assert_eq!(c.public_country(), Some(Country::Us));
    }

    #[test]
    fn city_index_valid_for_country() {
        for p in population(2_000, 10) {
            assert!((p.city_index as usize) < cities_of(p.country).len());
        }
    }

    #[test]
    fn geocoding_failures_exist_but_minority() {
        let pop = population(50_000, 11);
        let fail = pop.iter().filter(|p| !p.geocodable).count() as f64 / pop.len() as f64;
        assert!(fail > 0.05 && fail < 0.2, "failure rate {fail}");
    }

    #[test]
    #[should_panic(expected = "field_correlation")]
    fn rejects_invalid_correlation() {
        let config = GeneratorConfig { field_correlation: 1.0, ..GeneratorConfig::default() };
        let _ = ProfileGenerator::new(config);
    }
}
