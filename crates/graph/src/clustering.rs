//! Directed clustering coefficient, exact and sampled.
//!
//! §3.3.3: "The CC of a node u ... is defined as the probability of any two
//! of its neighbors (outgoing) being neighbors themselves. ... For a
//! directed graph, the maximum number of triangles connecting the |OS(u)|
//! outgoing neighbors of u is |OS(u)|(|OS(u)|−1). Thus, the CC measures the
//! ratio between actual triangles and their maximal value. During
//! clustering coefficient analysis we only consider the nodes with
//! |OS(u)| > 1."
//!
//! So for each ordered pair of distinct out-neighbours `(v, w)` of `u`, we
//! check whether the directed edge `v -> w` exists. The paper computed this
//! over a random sample of one million nodes; [`sampled_cc`] reproduces that
//! procedure and [`clustering_coefficient`] gives the exact per-node value.

use crate::adjacency::Adjacency;
use crate::cast;
use crate::csr::NodeId;
use rand::Rng;
use rayon::prelude::*;

/// Exact directed clustering coefficient of `u` per the paper's definition.
///
/// Returns `None` when `|OS(u)| <= 1` (the denominator vanishes). Self-loops
/// in the out-list are ignored: a user cannot form a triangle with herself.
///
/// `u`'s own out-list is materialised once (it is scanned `|OS(u)|` times);
/// every neighbour's list is consumed as a streaming iterator, so the
/// compressed representation is decoded on the fly without per-edge
/// allocation.
pub fn clustering_coefficient<G: Adjacency>(g: &G, u: NodeId) -> Option<f64> {
    clustering_coefficient_scratch(g, u, &mut Vec::new())
}

/// [`clustering_coefficient`] with a caller-owned scratch buffer for the
/// materialised out-list. The hot full-graph sweeps pass one buffer per
/// rayon worker (`map_init`), so a 1M-node sweep over a compressed graph
/// performs a handful of allocations instead of one per node.
fn clustering_coefficient_scratch<G: Adjacency>(
    g: &G,
    u: NodeId,
    scratch: &mut Vec<NodeId>,
) -> Option<f64> {
    scratch.clear();
    scratch.extend(g.out_iter(u));
    let outs: &[NodeId] = scratch;
    let k = outs.iter().filter(|&&v| v != u).count();
    if k <= 1 {
        return None;
    }
    let mut closed: u64 = 0;
    for &v in outs {
        if v == u {
            continue;
        }
        // count edges v -> w for w in OS(u) \ {u, v}: one linear merge of
        // the two sorted rows, no intermediate filtered copy
        closed += closed_pairs(g.out_iter(v), outs, u, v);
    }
    Some(closed as f64 / (k * (k - 1)) as f64)
}

/// Counts members of `outs` (sorted) present in `adj` (sorted), excluding
/// the apex `u` (self-loops never form triangles) and `v` (no v -> v
/// contributions), via a linear merge over the streaming adjacency.
fn closed_pairs<I>(adj: I, outs: &[NodeId], u: NodeId, v: NodeId) -> u64
where
    I: Iterator<Item = NodeId>,
{
    let (mut j, mut count) = (0, 0u64);
    for a in adj {
        while j < outs.len() && outs[j] < a {
            j += 1;
        }
        if j == outs.len() {
            break;
        }
        if outs[j] == a {
            if a != u && a != v {
                count += 1;
            }
            j += 1;
        }
    }
    count
}

/// Exact CC for every eligible node (`|OS(u)| > 1`), in parallel.
/// Order is unspecified (the consumer builds a CDF).
pub fn clustering_all<G: Adjacency>(g: &G) -> Vec<f64> {
    let _span = gplus_obs::global().span("graph.clustering.exact");
    gplus_obs::global().counter("graph.clustering.nodes_count").add(g.node_count() as u64);
    (0..cast::node_id(g.node_count()))
        .into_par_iter()
        .map_init(Vec::new, |scratch, u| clustering_coefficient_scratch(g, u, scratch))
        .flatten_iter()
        .collect()
}

/// The paper's procedure: sample `sample_size` nodes uniformly (without
/// replacement), compute CC for the eligible ones.
///
/// Returns the CC values (length <= `sample_size`, since ineligible nodes
/// are skipped, exactly as the paper "only consider\[s\] the nodes with
/// |OS(u)| > 1").
pub fn sampled_cc<G: Adjacency, R: Rng + ?Sized>(
    g: &G,
    sample_size: usize,
    rng: &mut R,
) -> Vec<f64> {
    let _span = gplus_obs::global().span("graph.clustering.sampled");
    let idx = gplus_stats::sample_indices(rng, g.node_count(), sample_size);
    gplus_obs::global().counter("graph.clustering.nodes_count").add(idx.len() as u64);
    idx.into_par_iter()
        .map_init(Vec::new, |scratch, u| {
            clustering_coefficient_scratch(g, cast::node_id(u), scratch)
        })
        .flatten_iter()
        .collect()
}

/// Mean clustering coefficient over eligible nodes; `None` if no node is
/// eligible.
pub fn average_cc<G: Adjacency>(g: &G) -> Option<f64> {
    let all = clustering_all(g);
    if all.is_empty() {
        None
    } else {
        Some(all.iter().sum::<f64>() / all.len() as f64)
    }
}

/// Total number of directed triangles `u -> v`, `u -> w`, `v -> w` summed
/// over all `u` (each geometric triangle is counted once per "apex" node
/// and orientation that realises it). Exposed for tests and ablations.
pub fn directed_triangle_closures<G: Adjacency>(g: &G) -> u64 {
    (0..cast::node_id(g.node_count()))
        .into_par_iter()
        .map_init(Vec::<NodeId>::new, |scratch, u| {
            scratch.clear();
            scratch.extend(g.out_iter(u));
            let outs: &[NodeId] = scratch;
            outs.iter()
                .filter(|&&v| v != u)
                .map(|&v| closed_pairs(g.out_iter(v), outs, u, v))
                .sum::<u64>()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_triangle_cc_one() {
        // complete directed triangle: every ordered pair linked
        let g = from_edges(3, [(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)]);
        assert_eq!(clustering_coefficient(&g, 0), Some(1.0));
    }

    #[test]
    fn one_way_triangle_half() {
        // u=0 follows 1,2; only 1->2 exists (not 2->1):
        // closed ordered pairs = 1 of max 2
        let g = from_edges(3, [(0, 1), (0, 2), (1, 2)]);
        assert_eq!(clustering_coefficient(&g, 0), Some(0.5));
    }

    #[test]
    fn star_center_zero() {
        let g = from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(clustering_coefficient(&g, 0), Some(0.0));
    }

    #[test]
    fn ineligible_nodes_return_none() {
        let g = from_edges(3, [(0, 1), (1, 2)]);
        assert!(clustering_coefficient(&g, 0).is_none()); // |OS| = 1
        assert!(clustering_coefficient(&g, 2).is_none()); // |OS| = 0
    }

    #[test]
    fn self_loops_excluded_from_outset() {
        // 0 -> {0, 1, 2}; self-loop must not inflate k or triangles
        let g = from_edges(3, [(0, 0), (0, 1), (0, 2), (1, 2), (2, 1)]);
        assert_eq!(clustering_coefficient(&g, 0), Some(1.0));
    }

    #[test]
    fn incoming_edges_irrelevant() {
        // definition uses outgoing neighbours only
        let g1 = from_edges(4, [(0, 1), (0, 2), (1, 2)]);
        let g2 = from_edges(4, [(0, 1), (0, 2), (1, 2), (3, 0), (2, 0)]);
        assert_eq!(clustering_coefficient(&g1, 0), clustering_coefficient(&g2, 0));
    }

    #[test]
    fn clustering_all_skips_ineligible() {
        let g = from_edges(4, [(0, 1), (0, 2), (1, 2), (3, 0)]);
        // eligible: node 0 only (|OS|=2); nodes 1,3 have |OS|=1, node 2 none
        let all = clustering_all(&g);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0], 0.5);
    }

    #[test]
    fn sampled_cc_full_sample_equals_exact() {
        let g = from_edges(
            6,
            [(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4), (4, 3), (5, 0), (5, 1), (5, 2)],
        );
        let mut rng = StdRng::seed_from_u64(1);
        let mut sampled = sampled_cc(&g, g.node_count(), &mut rng);
        let mut exact = clustering_all(&g);
        sampled.sort_by(|a, b| a.partial_cmp(b).unwrap());
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sampled, exact);
    }

    #[test]
    fn sampled_cc_subsample_subset_of_range() {
        let g = from_edges(10, (0..9).map(|i| (i, i + 1)));
        let mut rng = StdRng::seed_from_u64(2);
        let vals = sampled_cc(&g, 5, &mut rng);
        // path graph: nobody has |OS|>1, so no eligible nodes
        assert!(vals.is_empty());
    }

    #[test]
    fn average_cc_none_when_no_eligible() {
        let g = from_edges(2, [(0, 1)]);
        assert!(average_cc(&g).is_none());
        let g2 = from_edges(3, [(0, 1), (0, 2), (1, 2)]);
        assert_eq!(average_cc(&g2), Some(0.5));
    }

    #[test]
    fn triangle_closures_count() {
        // one directed triangle apexed at 0: (0->1,0->2,1->2)
        let g = from_edges(3, [(0, 1), (0, 2), (1, 2)]);
        assert_eq!(directed_triangle_closures(&g), 1);
        // adding 2->1 closes the second ordered pair
        let g2 = from_edges(3, [(0, 1), (0, 2), (1, 2), (2, 1)]);
        // apex 0: pairs (1,2) and (2,1) both closed = 2;
        // apex 1: outs {2} ineligible contributes 0; apex 2: outs {1} -> 0
        assert_eq!(directed_triangle_closures(&g2), 2);
    }
}
