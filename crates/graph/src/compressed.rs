//! Delta-gap varint compressed CSR (WebGraph-style).
//!
//! At the paper's scale (575M directed edges, stored twice for the two
//! CSR halves) a flat `u32` target array costs 4.6 GB before offsets.
//! Neighbour lists are sorted, and after the hub-first relabeling of
//! [`crate::relabel`] most gaps between consecutive neighbours are small
//! — exactly the regime where delta-gap coding wins. Each list is stored
//! as:
//!
//! ```text
//! varint(degree) · varint(first) · varint(n₁−n₀) · varint(n₂−n₁) · …
//! ```
//!
//! with LEB128 varints (7 payload bits per byte, high bit = continuation).
//! Per-node *byte offsets* into the stream are `u64` — at 575M edges the
//! stream crosses the `u32` boundary, which is the truncation bug class
//! the [`crate::cast`] helpers exist to prevent.
//!
//! [`CompressedCsr`] implements [`crate::adjacency::Adjacency`], so every
//! generic kernel (BFS, multi-source BFS, PageRank, clustering) consumes
//! the decode iterator directly, without materialising a neighbour list
//! or allocating per edge. The backing storage is [`ByteSlice`], so a
//! compressed graph opened from a binary container is walked straight out
//! of the file mapping.

use crate::adjacency::Adjacency;
use crate::binfmt::{BinError, ByteSlice, U64View};
use crate::cast;
use crate::csr::{CsrGraph, NodeId};
use crate::par::{self, NODE_CHUNK};
use rayon::prelude::*;

/// Appends `x` as an LEB128 varint.
#[inline]
pub fn write_varint(buf: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint at `*pos`, advancing it.
///
/// # Panics
/// Panics if the buffer ends mid-varint (sections are checksummed, so a
/// malformed stream means an upstream bug, not user data).
#[inline]
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = bytes[*pos];
        *pos += 1;
        x |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return x;
        }
        shift += 7;
        debug_assert!(shift < 64, "varint longer than u64");
    }
}

/// Encodes one sorted, deduplicated neighbour list.
pub fn encode_list(buf: &mut Vec<u8>, list: &[NodeId]) {
    write_varint(buf, cast::offset_u64(list.len()));
    let mut prev: u64 = 0;
    for (i, &v) in list.iter().enumerate() {
        let v = u64::from(v);
        debug_assert!(i == 0 || v > prev, "list must be strictly ascending");
        write_varint(buf, if i == 0 { v } else { v - prev });
        prev = v;
    }
}

/// Decodes one list produced by [`encode_list`].
pub fn decode_list(bytes: &[u8]) -> Vec<NodeId> {
    let mut pos = 0;
    let decoder = NeighborDecoder::new(bytes, &mut pos);
    decoder.collect()
}

/// Streaming decoder for one delta-gap encoded neighbour list; yields
/// neighbours in ascending order without allocating.
#[derive(Debug, Clone)]
pub struct NeighborDecoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    remaining: usize,
    prev: u64,
    first: bool,
}

impl<'a> NeighborDecoder<'a> {
    /// Starts decoding a list at `*pos` (which is advanced past the
    /// degree varint; the caller may not assume where it points after).
    pub fn new(bytes: &'a [u8], pos: &mut usize) -> NeighborDecoder<'a> {
        let degree = read_varint(bytes, pos);
        NeighborDecoder {
            bytes,
            pos: *pos,
            remaining: cast::offset_usize(degree),
            prev: 0,
            first: true,
        }
    }
}

impl Iterator for NeighborDecoder<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let x = read_varint(self.bytes, &mut self.pos);
        self.prev = if self.first { x } else { self.prev + x };
        self.first = false;
        Some(NodeId::try_from(self.prev).expect("decoded neighbour exceeds u32 id space"))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for NeighborDecoder<'_> {}

/// One compressed adjacency half: per-node `u64` byte offsets plus the
/// concatenated varint streams.
#[derive(Debug, Clone)]
struct Half {
    /// `node_count + 1` byte offsets into `data`.
    offsets: U64View,
    /// Concatenated [`encode_list`] streams.
    data: ByteSlice,
}

impl Half {
    /// Encodes all `n` lists, chunk-parallel: each fixed-size node chunk
    /// is varint-encoded into its own buffer concurrently, then a
    /// sequential prefix pass rebases the per-chunk offsets and
    /// concatenates the buffers in chunk-index order. The output is
    /// byte-identical to a sequential left-to-right encode at any thread
    /// count, because chunk boundaries depend only on [`NODE_CHUNK`].
    fn encode<'g, F>(n: usize, neighbors: F) -> Half
    where
        F: Fn(NodeId) -> &'g [NodeId] + Sync,
    {
        let chunks: Vec<(Vec<u64>, Vec<u8>)> = (0..par::chunk_count(n))
            .into_par_iter()
            .map(|ci| {
                let lo = ci * NODE_CHUNK;
                let hi = usize::min(n, lo + NODE_CHUNK);
                let mut offsets = Vec::with_capacity(hi - lo);
                let mut data = Vec::new();
                for u in lo..hi {
                    offsets.push(cast::offset_u64(data.len()));
                    encode_list(&mut data, neighbors(cast::node_id(u)));
                }
                (offsets, data)
            })
            .collect();

        let total: usize = chunks.iter().map(|(_, d)| d.len()).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut data = Vec::with_capacity(total);
        for (local, part) in &chunks {
            let base = cast::offset_u64(data.len());
            offsets.extend(local.iter().map(|o| base + o));
            data.extend_from_slice(part);
        }
        offsets.push(cast::offset_u64(data.len()));
        Half { offsets: U64View::from_values(&offsets), data: ByteSlice::from_vec(data) }
    }

    #[inline]
    fn list_bounds(&self, u: NodeId) -> (usize, usize) {
        let u = cast::ix(u);
        (cast::offset_usize(self.offsets.get(u)), cast::offset_usize(self.offsets.get(u + 1)))
    }

    #[inline]
    fn decoder(&self, u: NodeId) -> NeighborDecoder<'_> {
        let (start, end) = self.list_bounds(u);
        debug_assert!(end <= self.data.len());
        let mut pos = start;
        NeighborDecoder::new(&self.data, &mut pos)
    }

    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        let (start, _) = self.list_bounds(u);
        let mut pos = start;
        cast::offset_usize(read_varint(&self.data, &mut pos))
    }

    fn byte_len(&self) -> usize {
        self.offsets.byte_len() + self.data.len()
    }

    fn validate(&self, n: usize, label: &str) -> Result<(), BinError> {
        if self.offsets.len() != n + 1 {
            return Err(BinError::Malformed(format!(
                "{label} offsets: {} entries for {n} nodes",
                self.offsets.len()
            )));
        }
        let mut prev = 0u64;
        for i in 0..self.offsets.len() {
            let o = self.offsets.get(i);
            if o < prev {
                return Err(BinError::Malformed(format!(
                    "{label} offsets not monotone at {i}"
                )));
            }
            prev = o;
        }
        if prev != cast::offset_u64(self.data.len()) {
            return Err(BinError::Malformed(format!(
                "{label} final offset {prev} != data length {}",
                self.data.len()
            )));
        }
        Ok(())
    }
}

/// A directed graph in delta-gap varint compressed CSR form, with both
/// forward and reverse adjacency. Immutable; build from a [`CsrGraph`]
/// with [`CompressedCsr::from_csr`] or open zero-copy from a binary
/// container via [`crate::io::open_compressed`].
#[derive(Debug, Clone)]
pub struct CompressedCsr {
    node_count: usize,
    edge_count: u64,
    out: Half,
    inn: Half,
}

impl CompressedCsr {
    /// Compresses a flat CSR graph. The graph's sorted/deduplicated list
    /// invariant is exactly what delta-gap coding requires.
    pub fn from_csr(g: &CsrGraph) -> CompressedCsr {
        let n = g.node_count();
        let c = CompressedCsr {
            node_count: n,
            edge_count: cast::offset_u64(g.edge_count()),
            out: Half::encode(n, |u| g.out_neighbors(u)),
            inn: Half::encode(n, |u| g.in_neighbors(u)),
        };
        let obs = gplus_obs::global();
        obs.gauge(gplus_obs::names::MEM_CSR_COMPRESSED_BYTES).set(c.memory_bytes() as f64);
        obs.gauge(gplus_obs::names::GRAPH_COMPRESS_PARALLEL_CHUNKS)
            .set(par::chunk_count(n) as f64);
        c
    }

    /// Reassembles a compressed graph from container sections (zero-copy
    /// when the sections are mmap-backed). Validates offset-table shape.
    pub(crate) fn from_parts(
        node_count: usize,
        edge_count: u64,
        out_offsets: U64View,
        out_data: ByteSlice,
        in_offsets: U64View,
        in_data: ByteSlice,
    ) -> Result<CompressedCsr, BinError> {
        let out = Half { offsets: out_offsets, data: out_data };
        let inn = Half { offsets: in_offsets, data: in_data };
        out.validate(node_count, "out")?;
        inn.validate(node_count, "in")?;
        Ok(CompressedCsr { node_count, edge_count, out, inn })
    }

    pub(crate) fn parts(&self) -> (&U64View, &ByteSlice, &U64View, &ByteSlice) {
        (&self.out.offsets, &self.out.data, &self.inn.offsets, &self.inn.data)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> u64 {
        self.edge_count
    }

    /// Out-neighbours of `u`, decoded on the fly.
    pub fn out_neighbors(&self, u: NodeId) -> NeighborDecoder<'_> {
        self.out.decoder(u)
    }

    /// In-neighbours of `u`, decoded on the fly.
    pub fn in_neighbors(&self, u: NodeId) -> NeighborDecoder<'_> {
        self.inn.decoder(u)
    }

    /// Total compressed footprint in bytes (offsets + streams, both
    /// halves) — the `mem.csr.compressed.bytes` gauge.
    pub fn memory_bytes(&self) -> usize {
        self.out.byte_len() + self.inn.byte_len()
    }

    /// FNV-1a digest over the exact stored bytes of both halves (offset
    /// tables and varint streams). Two compressed graphs with the same
    /// digest are byte-identical on disk — the equality the oracle's
    /// parallel-determinism kernel and the CI thread-scaling smoke check.
    pub fn content_digest(&self) -> u64 {
        use crate::binfmt::fnv1a;
        let mut acc = fnv1a(self.out.offsets.as_bytes());
        for bytes in [&self.out.data[..], self.inn.offsets.as_bytes(), &self.inn.data[..]] {
            // chain the section digests so byte moves across section
            // boundaries cannot cancel out
            let mut mixed = acc.to_le_bytes().to_vec();
            mixed.extend_from_slice(&fnv1a(bytes).to_le_bytes());
            acc = fnv1a(&mixed);
        }
        acc
    }

    /// Chunk-parallel decode sweep over every out-list: runs `f` on each
    /// `(node, decoder)` pair, one fixed-size node chunk per rayon task,
    /// reusing nothing across nodes (the decoder itself is
    /// allocation-free). Returns per-node `u64` results summed in chunk
    /// order — deterministic by integer associativity either way, but the
    /// fixed chunking keeps the access pattern identical at any thread
    /// count.
    pub fn par_sweep_out<F>(&self, f: F) -> u64
    where
        F: Fn(NodeId, NeighborDecoder<'_>) -> u64 + Sync,
    {
        let n = self.node_count;
        let partials: Vec<u64> = (0..par::chunk_count(n))
            .into_par_iter()
            .map(|ci| {
                let lo = ci * NODE_CHUNK;
                let hi = usize::min(n, lo + NODE_CHUNK);
                let mut acc = 0u64;
                for u in lo..hi {
                    let u = cast::node_id(u);
                    acc = acc.wrapping_add(f(u, self.out.decoder(u)));
                }
                acc
            })
            .collect();
        partials.iter().fold(0u64, |a, &b| a.wrapping_add(b))
    }

    /// Decompresses back to a flat CSR (tests and format migrations).
    pub fn to_csr(&self) -> CsrGraph {
        crate::builder::from_edges(
            self.node_count,
            self.node_ids().flat_map(|u| self.out_neighbors(u).map(move |v| (u, v))),
        )
    }
}

impl Adjacency for CompressedCsr {
    type Iter<'a> = NeighborDecoder<'a>;

    fn node_count(&self) -> usize {
        self.node_count
    }

    fn edge_count(&self) -> usize {
        cast::offset_usize(self.edge_count)
    }

    fn out_degree(&self, u: NodeId) -> usize {
        self.out.degree(u)
    }

    fn in_degree(&self, u: NodeId) -> usize {
        self.inn.degree(u)
    }

    fn out_iter(&self, u: NodeId) -> Self::Iter<'_> {
        self.out.decoder(u)
    }

    fn in_iter(&self, u: NodeId) -> Self::Iter<'_> {
        self.inn.decoder(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn diamond() -> CsrGraph {
        from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])
    }

    #[test]
    fn varint_round_trip_boundaries() {
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64 - 1, u32::MAX as u64, u64::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn list_round_trip() {
        for list in [
            vec![],
            vec![0],
            vec![7],
            vec![0, 1, 2, 3],
            vec![5, 100, 10_000, 1_000_000],
            vec![u32::MAX - 2, u32::MAX - 1, u32::MAX],
            vec![0, u32::MAX],
        ] {
            let mut buf = Vec::new();
            encode_list(&mut buf, &list);
            assert_eq!(decode_list(&buf), list, "{list:?}");
        }
    }

    #[test]
    fn compressed_lists_match_flat() {
        let g = diamond();
        let c = CompressedCsr::from_csr(&g);
        assert_eq!(c.node_count(), g.node_count());
        assert_eq!(c.edge_count(), g.edge_count() as u64);
        for u in g.nodes() {
            let outs: Vec<NodeId> = c.out_neighbors(u).collect();
            assert_eq!(outs, g.out_neighbors(u), "out {u}");
            let ins: Vec<NodeId> = c.in_neighbors(u).collect();
            assert_eq!(ins, g.in_neighbors(u), "in {u}");
            assert_eq!(Adjacency::out_degree(&c, u), g.out_degree(u));
            assert_eq!(Adjacency::in_degree(&c, u), g.in_degree(u));
        }
    }

    #[test]
    fn decoder_is_exact_size() {
        let c = CompressedCsr::from_csr(&diamond());
        let it = c.out_neighbors(0);
        assert_eq!(it.len(), 2);
        assert_eq!(it.size_hint(), (2, Some(2)));
    }

    #[test]
    fn empty_graph_compresses() {
        let g = from_edges(0, []);
        let c = CompressedCsr::from_csr(&g);
        assert_eq!(c.node_count(), 0);
        assert_eq!(c.edge_count(), 0);
        assert_eq!(c.to_csr(), g);
    }

    #[test]
    fn isolated_nodes_have_empty_lists() {
        let g = from_edges(5, [(0, 1)]);
        let c = CompressedCsr::from_csr(&g);
        assert_eq!(c.out_neighbors(3).count(), 0);
        assert_eq!(Adjacency::out_degree(&c, 3), 0);
        assert_eq!(c.to_csr(), g);
    }

    #[test]
    fn round_trip_through_flat() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2012);
        for _ in 0..20 {
            let n = 1 + rng.random_range(0..60);
            let m = rng.random_range(0..n * 4);
            let edges: Vec<(NodeId, NodeId)> = (0..m)
                .map(|_| (rng.random_range(0..n) as NodeId, rng.random_range(0..n) as NodeId))
                .collect();
            let g = from_edges(n, edges);
            let c = CompressedCsr::from_csr(&g);
            assert_eq!(c.to_csr(), g);
            assert!(c.memory_bytes() > 0);
        }
    }

    mod codec_properties {
        use super::*;
        use proptest::prelude::*;

        /// Node ids biased toward the `u32` edge, where delta gaps are
        /// largest and varints longest.
        fn arb_id() -> impl Strategy<Value = NodeId> {
            prop_oneof![0u32..512, any::<NodeId>(), Just(NodeId::MAX - 1), Just(NodeId::MAX),]
        }

        proptest! {
            #[test]
            fn varint_round_trips_any_u64_sequence(
                values in proptest::collection::vec(
                    prop_oneof![
                        any::<u64>(),
                        Just(0u64),
                        Just(127),
                        Just(128),
                        Just(u64::from(u32::MAX)),
                        Just(u64::from(u32::MAX) + 1),
                        Just(u64::MAX),
                    ],
                    0..64,
                )
            ) {
                let mut buf = Vec::new();
                for &v in &values {
                    write_varint(&mut buf, v);
                }
                let mut pos = 0;
                for &v in &values {
                    prop_assert_eq!(read_varint(&buf, &mut pos), v);
                }
                prop_assert_eq!(pos, buf.len(), "stream fully consumed, no trailing bytes");
            }

            #[test]
            fn list_codec_preserves_the_neighbor_set(
                ids in proptest::collection::btree_set(arb_id(), 0..200)
            ) {
                // a BTreeSet is exactly the encoder's input contract:
                // strictly ascending, deduplicated
                let list: Vec<NodeId> = ids.into_iter().collect();
                let mut buf = Vec::new();
                encode_list(&mut buf, &list);
                prop_assert_eq!(decode_list(&buf), list);
            }

            #[test]
            fn concatenated_streams_decode_by_u64_offset(
                lists in proptest::collection::vec(
                    proptest::collection::btree_set(arb_id(), 0..40),
                    0..12,
                )
            ) {
                // mirrors Half::encode: one shared buffer addressed by u64
                // byte offsets — the arithmetic that crosses the u32 edge
                // at paper scale
                let lists: Vec<Vec<NodeId>> =
                    lists.into_iter().map(|s| s.into_iter().collect()).collect();
                let mut data = Vec::new();
                let mut offsets: Vec<u64> = Vec::new();
                for list in &lists {
                    offsets.push(cast::offset_u64(data.len()));
                    encode_list(&mut data, list);
                }
                offsets.push(cast::offset_u64(data.len()));
                for (i, list) in lists.iter().enumerate() {
                    let mut pos = cast::offset_usize(offsets[i]);
                    let decoded: Vec<NodeId> = NeighborDecoder::new(&data, &mut pos).collect();
                    prop_assert_eq!(&decoded, list, "list {}", i);
                }
            }
        }
    }

    /// The pre-parallelization encoder: one sequential left-to-right
    /// pass. The chunk-parallel [`Half::encode`] must reproduce these
    /// bytes exactly.
    fn encode_sequential<'g>(
        n: usize,
        mut neighbors: impl FnMut(NodeId) -> &'g [NodeId],
    ) -> (Vec<u64>, Vec<u8>) {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut data = Vec::new();
        for u in 0..n {
            offsets.push(cast::offset_u64(data.len()));
            encode_list(&mut data, neighbors(cast::node_id(u)));
        }
        offsets.push(cast::offset_u64(data.len()));
        (offsets, data)
    }

    #[test]
    fn parallel_encode_matches_sequential_bytes() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        // larger than one chunk so the prefix stitch actually runs
        let n = NODE_CHUNK * 2 + 37;
        let edges: Vec<(NodeId, NodeId)> = (0..n * 3)
            .map(|_| (rng.random_range(0..n) as NodeId, rng.random_range(0..n) as NodeId))
            .collect();
        let g = from_edges(n, edges);
        let c = CompressedCsr::from_csr(&g);
        let (out_offsets, out_data) = encode_sequential(n, |u| g.out_neighbors(u));
        let (parts_out_offsets, parts_out_data, _, _) = c.parts();
        assert_eq!(parts_out_offsets.len(), out_offsets.len());
        for (i, &o) in out_offsets.iter().enumerate() {
            assert_eq!(parts_out_offsets.get(i), o, "offset {i}");
        }
        assert_eq!(&parts_out_data[..], &out_data[..]);
    }

    #[test]
    fn compressed_bytes_identical_across_thread_counts() {
        let g = from_edges(
            NODE_CHUNK + 100,
            (0..20_000usize).map(|i| {
                (
                    cast::node_id(i * 7919 % (NODE_CHUNK + 100)),
                    cast::node_id(i * 104_729 % (NODE_CHUNK + 100)),
                )
            }),
        );
        let pool =
            |t: usize| rayon::ThreadPoolBuilder::new().num_threads(t).build().expect("pool");
        let reference = pool(1).install(|| CompressedCsr::from_csr(&g)).content_digest();
        for threads in [2usize, 8] {
            let digest = pool(threads).install(|| CompressedCsr::from_csr(&g)).content_digest();
            assert_eq!(digest, reference, "{threads} threads");
        }
        // repeated run at the same thread count
        let again = pool(2).install(|| CompressedCsr::from_csr(&g)).content_digest();
        assert_eq!(again, reference);
    }

    #[test]
    fn par_sweep_out_counts_edges() {
        let g = diamond();
        let c = CompressedCsr::from_csr(&g);
        let total = c.par_sweep_out(|_, dec| dec.count() as u64);
        assert_eq!(total, g.edge_count() as u64);
    }

    #[test]
    fn hub_relabeling_shrinks_stream() {
        // a hub-heavy graph compresses better once hubs get small ids
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = 2000u32;
        let mut b = crate::GraphBuilder::new();
        b.ensure_nodes(n as usize);
        for _ in 0..6000 {
            // preferential-ish: half the edges touch the first 20 nodes
            let hub = rng.random_range(0..20);
            let other = rng.random_range(0..n);
            b.add_edge(other, hub);
            b.add_edge(rng.random_range(0..n), rng.random_range(0..n));
        }
        let mut b2 = crate::GraphBuilder::new();
        b2.ensure_nodes(n as usize);
        let plain = b.build();
        for (u, v) in plain.edges() {
            b2.add_edge(u, v);
        }
        let (relabeled, _) = b2.build_relabeled();
        let c_plain = CompressedCsr::from_csr(&plain);
        let c_hub = CompressedCsr::from_csr(&relabeled);
        assert!(
            c_hub.memory_bytes() <= c_plain.memory_bytes(),
            "hub-first {} vs plain {}",
            c_hub.memory_bytes(),
            c_plain.memory_bytes()
        );
    }
}
