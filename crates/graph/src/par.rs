//! Deterministic fixed-order chunk reduction for parallel kernels.
//!
//! The repo's contract since the oracle/bench PRs is that every kernel is
//! byte-identical run to run — and, from this PR on, byte-identical at any
//! `RAYON_NUM_THREADS`. Floating-point addition is not associative, so a
//! naive `par_iter().sum::<f64>()` changes its result with the rayon split
//! tree, which changes with the thread count. The fix is to make the
//! reduction tree part of the algorithm instead of the scheduler:
//!
//! 1. partition the index space into chunks of a *fixed* size
//!    ([`NODE_CHUNK`]), independent of thread count;
//! 2. sum each chunk sequentially, left to right;
//! 3. sum the per-chunk partials sequentially, in chunk-index order.
//!
//! Threads only decide *when* a chunk's partial is computed, never *what*
//! is added to what. The same discipline makes parallel encode/top-k
//! deterministic: per-chunk results are stitched in chunk-index order, so
//! the concatenated output is the same as the sequential one.

use rayon::prelude::*;

/// Fixed chunk size (in nodes) for parallel sweeps and reductions.
///
/// Must never depend on the thread count: chunk boundaries define the f64
/// addition grouping, so changing them changes low-order bits. 4096 nodes
/// keeps per-chunk work large enough to amortise rayon's scheduling while
/// giving a 1M-node graph ~245 chunks to balance across a small pool.
pub const NODE_CHUNK: usize = 4096;

/// Number of [`NODE_CHUNK`]-sized chunks covering `n` items.
#[inline]
pub fn chunk_count(n: usize) -> usize {
    n.div_ceil(NODE_CHUNK)
}

/// Sums `f64` partials from an indexed parallel iterator in index order.
///
/// The partials are materialised (collect on an indexed iterator preserves
/// order regardless of schedule) and then folded sequentially, so the
/// result is bit-identical at any thread count.
pub fn ordered_sum<I>(partials: I) -> f64
where
    I: IndexedParallelIterator<Item = f64>,
{
    let parts: Vec<f64> = partials.collect();
    parts.iter().sum()
}

/// Deterministic parallel sum of `f(item)` over a slice: per-chunk
/// sequential sums merged in chunk-index order.
pub fn chunked_sum<T, F>(items: &[T], f: F) -> f64
where
    T: Sync,
    F: Fn(&T) -> f64 + Sync + Send,
{
    ordered_sum(
        items
            .par_chunks(NODE_CHUNK)
            .map(|chunk| chunk.iter().map(&f).fold(0.0, |acc, x| acc + x)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(threads: usize) -> rayon::ThreadPool {
        rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool")
    }

    #[test]
    fn chunked_sum_is_thread_count_invariant() {
        // values chosen so grouping matters: mixing magnitudes makes f64
        // addition order observable in the low bits
        let xs: Vec<f64> = (0..20_000u64)
            .map(|i| ((i.wrapping_mul(2_654_435_761) % 613) as f64).exp2() * 1e-150)
            .collect();
        let reference = pool(1).install(|| chunked_sum(&xs, |&x| x));
        for threads in [2, 3, 8] {
            let got = pool(threads).install(|| chunked_sum(&xs, |&x| x));
            assert_eq!(got.to_bits(), reference.to_bits(), "{threads} threads");
        }
    }

    #[test]
    fn chunked_sum_matches_chunked_reference() {
        let xs: Vec<f64> = (0..10_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let mut expect = 0.0;
        for chunk in xs.chunks(NODE_CHUNK) {
            let partial: f64 = chunk.iter().sum();
            expect += partial;
        }
        assert_eq!(chunked_sum(&xs, |&x| x).to_bits(), expect.to_bits());
    }

    #[test]
    fn chunk_count_covers_range() {
        assert_eq!(chunk_count(0), 0);
        assert_eq!(chunk_count(1), 1);
        assert_eq!(chunk_count(NODE_CHUNK), 1);
        assert_eq!(chunk_count(NODE_CHUNK + 1), 2);
    }
}
