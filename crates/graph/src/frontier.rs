//! Dense bitmap frontiers for the direction-optimizing BFS kernels.
//!
//! Bottom-up BFS steps ask "is `u` in the current frontier?" once per
//! scanned in-edge, so the frontier must support O(1) membership at one
//! bit per node. A `Vec<u64>` word array does that with good cache
//! behaviour; clearing is a `memset` of `n / 64` words, negligible next
//! to the level scan it precedes.

use crate::csr::NodeId;

/// A fixed-capacity bit set over dense node ids.
#[derive(Debug, Clone, Default)]
pub struct Bitmap {
    words: Vec<u64>,
}

impl Bitmap {
    /// Creates an all-zero bitmap with capacity for `n` ids.
    pub fn new(n: usize) -> Self {
        Self { words: vec![0; n.div_ceil(64)] }
    }

    /// Grows capacity to at least `n` ids (new bits are zero).
    pub fn ensure(&mut self, n: usize) {
        let words = n.div_ceil(64);
        if self.words.len() < words {
            self.words.resize(words, 0);
        }
    }

    /// Zeroes every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn get(&self, i: NodeId) -> bool {
        (self.words[i as usize / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&mut self, i: NodeId) {
        self.words[i as usize / 64] |= 1u64 << (i % 64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::new(130);
        assert!(!b.get(0));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        for i in [0, 63, 64, 129] {
            assert!(b.get(i), "bit {i}");
        }
        assert!(!b.get(1));
        assert!(!b.get(128));
        b.clear();
        for i in [0, 63, 64, 129] {
            assert!(!b.get(i), "bit {i} after clear");
        }
    }

    #[test]
    fn ensure_grows_without_losing_bits() {
        let mut b = Bitmap::new(10);
        b.set(5);
        b.ensure(1000);
        assert!(b.get(5));
        b.set(999);
        assert!(b.get(999));
    }

    #[test]
    fn zero_capacity_is_fine() {
        let b = Bitmap::new(0);
        assert!(b.words.is_empty());
    }
}
