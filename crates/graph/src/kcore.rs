//! k-core decomposition of the undirected view.
//!
//! The coreness of a node is the largest `k` such that the node survives
//! in the subgraph where everyone has degree ≥ k. OSN characterisation
//! papers (Mislove et al. \[32\], which this paper builds on) use the core
//! decomposition to describe the densely connected nucleus that hubs form;
//! we expose it for the ablation/extension analyses.
//!
//! Implementation: the Batagelj–Zaveršnik bucket algorithm, O(V + E).

use crate::csr::{CsrGraph, NodeId};
use serde::{Deserialize, Serialize};

/// Core decomposition result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreDecomposition {
    /// Coreness per node.
    pub coreness: Vec<u32>,
    /// Maximum coreness (the degeneracy of the graph).
    pub degeneracy: u32,
}

impl CoreDecomposition {
    /// Nodes in the innermost (maximum) core.
    pub fn innermost_core(&self) -> Vec<NodeId> {
        self.coreness
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == self.degeneracy)
            .map(|(i, _)| i as NodeId)
            .collect()
    }

    /// Number of nodes with coreness >= k.
    pub fn core_size(&self, k: u32) -> usize {
        self.coreness.iter().filter(|&&c| c >= k).count()
    }
}

/// Computes the k-core decomposition of the *undirected view* of `g`
/// (degree = number of distinct neighbours in either direction).
pub fn core_decomposition(g: &CsrGraph) -> CoreDecomposition {
    let und = g.undirected_view();
    let n = und.node_count();
    if n == 0 {
        return CoreDecomposition { coreness: Vec::new(), degeneracy: 0 };
    }
    let mut degree: Vec<u32> = (0..n as NodeId).map(|u| und.out_degree(u) as u32).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;

    // bucket sort nodes by degree
    let mut bins = vec![0usize; max_deg + 2];
    for &d in &degree {
        bins[d as usize] += 1;
    }
    let mut start = 0usize;
    for b in bins.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n]; // node -> index in `order`
    let mut order = vec![0 as NodeId; n]; // nodes sorted by current degree
    {
        let mut cursor = bins.clone();
        for u in 0..n as NodeId {
            let d = degree[u as usize] as usize;
            pos[u as usize] = cursor[d];
            order[cursor[d]] = u;
            cursor[d] += 1;
        }
    }

    // peel in increasing degree order
    let mut coreness = vec![0u32; n];
    for i in 0..n {
        let u = order[i];
        coreness[u as usize] = degree[u as usize];
        for &v in und.out_neighbors(u) {
            if degree[v as usize] > degree[u as usize] {
                // move v one bucket down: swap with the first element of
                // its current bucket
                let dv = degree[v as usize] as usize;
                let pv = pos[v as usize];
                let pw = bins[dv];
                let w = order[pw];
                if v != w {
                    order.swap(pv, pw);
                    pos[v as usize] = pw;
                    pos[w as usize] = pv;
                }
                bins[dv] += 1;
                degree[v as usize] -= 1;
            }
        }
    }

    let degeneracy = coreness.iter().copied().max().unwrap_or(0);
    CoreDecomposition { coreness, degeneracy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn clique_is_its_own_core() {
        // K4 (directed both ways): everyone coreness 3
        let mut edges = Vec::new();
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        let g = from_edges(4, edges);
        let core = core_decomposition(&g);
        assert_eq!(core.degeneracy, 3);
        assert_eq!(core.coreness, vec![3, 3, 3, 3]);
        assert_eq!(core.innermost_core().len(), 4);
    }

    #[test]
    fn path_graph_is_one_core() {
        let g = from_edges(5, (0..4).map(|i| (i, i + 1)));
        let core = core_decomposition(&g);
        assert_eq!(core.degeneracy, 1);
        assert!(core.coreness.iter().all(|&c| c == 1));
    }

    #[test]
    fn pendant_on_triangle() {
        // triangle {0,1,2} (undirected) + pendant 3-0
        let g = from_edges(4, [(0, 1), (1, 2), (2, 0), (3, 0)]);
        let core = core_decomposition(&g);
        assert_eq!(core.coreness[0], 2);
        assert_eq!(core.coreness[1], 2);
        assert_eq!(core.coreness[2], 2);
        assert_eq!(core.coreness[3], 1);
        assert_eq!(core.innermost_core(), vec![0, 1, 2]);
        assert_eq!(core.core_size(1), 4);
        assert_eq!(core.core_size(2), 3);
    }

    #[test]
    fn direction_irrelevant() {
        let a = core_decomposition(&from_edges(3, [(0, 1), (1, 2), (2, 0)]));
        let b = core_decomposition(&from_edges(3, [(1, 0), (2, 1), (0, 2)]));
        assert_eq!(a, b);
    }

    #[test]
    fn isolated_nodes_zero() {
        let g = from_edges(3, [(0, 1)]);
        let core = core_decomposition(&g);
        assert_eq!(core.coreness[2], 0);
    }

    #[test]
    fn empty_graph() {
        let core = core_decomposition(&from_edges(0, []));
        assert_eq!(core.degeneracy, 0);
        assert!(core.coreness.is_empty());
    }

    #[test]
    fn coreness_bounded_by_degree() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let n = 40;
        let edges: Vec<(NodeId, NodeId)> = (0..150)
            .map(|_| (rng.random_range(0..n) as NodeId, rng.random_range(0..n) as NodeId))
            .collect();
        let g = from_edges(n, edges);
        let und = g.undirected_view();
        let core = core_decomposition(&g);
        for u in und.nodes() {
            assert!(core.coreness[u as usize] <= und.out_degree(u) as u32);
        }
    }
}
