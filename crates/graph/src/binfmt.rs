//! Versioned binary container for graph datasets and snapshots.
//!
//! The paper-scale tier (35.1M nodes / 575M edges) cannot afford a JSON
//! parse on every load, so datasets are stored in a small sectioned
//! binary format designed for `mmap(2)`:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "GPLUSBIN"
//! 8       4     format version (u32 LE)
//! 12      4     section count k (u32 LE)
//! 16      32·k  section table: id u32 | reserved u32 | offset u64
//!               | len u64 | fnv1a-64 checksum u64   (all LE)
//! ...           section payloads, each 8-byte aligned, zero-padded
//! ```
//!
//! Offsets are file-absolute and 8-byte aligned so fixed-width `u32`/`u64`
//! array sections can be read with aligned loads. Every section carries an
//! FNV-1a 64 checksum, verified at open — a flipped byte anywhere in a
//! payload is a load-time [`BinError::Checksum`], never a silent wrong
//! answer. On Unix the file is mapped read-only and sections are handed
//! out as [`ByteSlice`] views into the mapping (zero-copy); elsewhere the
//! file is read into memory once and the same views index the heap copy.

use std::fmt;
use std::fs::File;
use std::io::{self, Read, Write};
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

/// Leading magic of every gplus binary file.
pub const MAGIC: &[u8; 8] = b"GPLUSBIN";

/// Size of one section-table entry in bytes.
const TABLE_ENTRY: usize = 32;

/// Fixed header size before the section table.
const HEADER: usize = 16;

/// FNV-1a 64-bit hash — the same checksum the serving snapshots use.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Errors opening or validating a binary container.
#[derive(Debug)]
pub enum BinError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    Magic,
    /// The file's format version is not the one the reader expects.
    Version { found: u32, expected: u32 },
    /// The file is shorter than its header or section table claims.
    Truncated,
    /// A section's stored checksum does not match its bytes.
    Checksum { section: u32 },
    /// A section the reader requires is absent.
    MissingSection { section: u32 },
    /// A section's contents violate the reader's expectations.
    Malformed(String),
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "io error: {e}"),
            BinError::Magic => write!(f, "bad magic: not a GPLUSBIN file"),
            BinError::Version { found, expected } => {
                write!(f, "format version {found} does not match expected {expected}")
            }
            BinError::Truncated => {
                write!(f, "file truncated: section table or payload cut short")
            }
            BinError::Checksum { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            BinError::MissingSection { section } => write!(f, "missing section {section}"),
            BinError::Malformed(msg) => write!(f, "malformed section: {msg}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<io::Error> for BinError {
    fn from(e: io::Error) -> Self {
        BinError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Backing storage: a heap buffer or a read-only memory mapping.
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod mapping {
    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    // Raw bindings to the libc already linked by std; the workspace
    // deliberately has no `libc`/`memmap2` dependency.
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    /// A read-only, private mapping of an entire file.
    #[derive(Debug)]
    pub struct MmapRegion {
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is immutable for its whole lifetime, so shared access
    // from any thread is sound.
    unsafe impl Send for MmapRegion {}
    unsafe impl Sync for MmapRegion {}

    impl MmapRegion {
        /// Maps `file` (of known size `len > 0`) read-only.
        pub fn map(file: &File, len: usize) -> io::Result<MmapRegion> {
            debug_assert!(len > 0, "zero-length files use the heap path");
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(MmapRegion { ptr, len })
        }

        pub fn as_slice(&self) -> &[u8] {
            // Safety: the region is a live PROT_READ mapping of `len` bytes.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            // Safety: ptr/len are exactly what mmap returned.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// The owner of a byte buffer: heap memory or a file mapping.
#[derive(Debug)]
enum ByteStore {
    Heap(Vec<u8>),
    #[cfg(unix)]
    Mapped(mapping::MmapRegion),
}

impl ByteStore {
    fn as_slice(&self) -> &[u8] {
        match self {
            ByteStore::Heap(v) => v,
            #[cfg(unix)]
            ByteStore::Mapped(m) => m.as_slice(),
        }
    }
}

/// A cheaply clonable view into shared backing storage (heap or mmap).
///
/// Derefs to `[u8]`; sub-views share the same backing allocation or
/// mapping, so slicing a mapped file never copies payload bytes.
#[derive(Debug, Clone)]
pub struct ByteSlice {
    store: Arc<ByteStore>,
    start: usize,
    len: usize,
}

impl ByteSlice {
    /// Wraps an owned buffer.
    pub fn from_vec(v: Vec<u8>) -> ByteSlice {
        let len = v.len();
        ByteSlice { store: Arc::new(ByteStore::Heap(v)), start: 0, len }
    }

    /// Maps (Unix) or reads (elsewhere) an entire file.
    pub fn open(path: &Path) -> io::Result<ByteSlice> {
        let mut file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len()).map_err(|_| {
            io::Error::new(io::ErrorKind::OutOfMemory, "file exceeds address space")
        })?;
        #[cfg(unix)]
        {
            if len > 0 {
                let region = mapping::MmapRegion::map(&file, len)?;
                return Ok(ByteSlice {
                    store: Arc::new(ByteStore::Mapped(region)),
                    start: 0,
                    len,
                });
            }
        }
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(ByteSlice::from_vec(buf))
    }

    /// A sub-view sharing the same backing storage.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, len: usize) -> ByteSlice {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= self.len),
            "slice out of range"
        );
        ByteSlice { store: Arc::clone(&self.store), start: self.start + start, len }
    }
}

impl Deref for ByteSlice {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.store.as_slice()[self.start..self.start + self.len]
    }
}

// ---------------------------------------------------------------------------
// Little-endian array helpers.
// ---------------------------------------------------------------------------

/// Serialises a `u32` slice as little-endian bytes.
pub fn bytes_of_u32s(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Serialises a `u64` slice as little-endian bytes.
pub fn bytes_of_u64s(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Parses little-endian bytes into a `u32` vector.
pub fn u32s_from_bytes(bytes: &[u8]) -> Result<Vec<u32>, BinError> {
    if bytes.len() % 4 != 0 {
        return Err(BinError::Malformed(format!("u32 array of {} bytes", bytes.len())));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect())
}

/// Parses little-endian bytes into a `u64` vector.
pub fn u64s_from_bytes(bytes: &[u8]) -> Result<Vec<u64>, BinError> {
    if bytes.len() % 8 != 0 {
        return Err(BinError::Malformed(format!("u64 array of {} bytes", bytes.len())));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect())
}

/// A read-only view of a `u64` array section that indexes the underlying
/// bytes in place — the type the mmap-backed compressed CSR keeps its
/// offset arrays in.
#[derive(Debug, Clone)]
pub struct U64View {
    bytes: ByteSlice,
}

impl U64View {
    /// Wraps a section; the length must be a multiple of 8.
    pub fn new(bytes: ByteSlice) -> Result<U64View, BinError> {
        if bytes.len() % 8 != 0 {
            return Err(BinError::Malformed(format!("u64 view of {} bytes", bytes.len())));
        }
        Ok(U64View { bytes })
    }

    /// Builds an owned view from values.
    pub fn from_values(values: &[u64]) -> U64View {
        U64View { bytes: ByteSlice::from_vec(bytes_of_u64s(values)) }
    }

    /// Number of `u64` elements.
    pub fn len(&self) -> usize {
        self.bytes.len() / 8
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.len() == 0
    }

    /// Element `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        let b = &self.bytes[i * 8..i * 8 + 8];
        u64::from_le_bytes(b.try_into().expect("8 bytes"))
    }

    /// Backing byte length (for footprint gauges).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// The raw little-endian bytes (for re-serialisation).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

/// Accumulates checksummed sections and serialises the container.
#[derive(Debug)]
pub struct BinWriter {
    version: u32,
    sections: Vec<(u32, Vec<u8>)>,
}

impl BinWriter {
    /// A writer for the given format version.
    pub fn new(version: u32) -> BinWriter {
        BinWriter { version, sections: Vec::new() }
    }

    /// Appends a section. Ids must be unique within a file.
    pub fn section(&mut self, id: u32, bytes: Vec<u8>) -> &mut Self {
        debug_assert!(
            self.sections.iter().all(|&(existing, _)| existing != id),
            "duplicate section id {id}"
        );
        self.sections.push((id, bytes));
        self
    }

    /// Serialises the container to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let table_end = HEADER + self.sections.len() * TABLE_ENTRY;
        let mut offset = align8(table_end);
        let mut table = Vec::with_capacity(self.sections.len() * TABLE_ENTRY);
        let mut payload_len = 0usize;
        for (id, bytes) in &self.sections {
            table.extend_from_slice(&id.to_le_bytes());
            table.extend_from_slice(&0u32.to_le_bytes());
            table.extend_from_slice(&(offset as u64).to_le_bytes());
            table.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            table.extend_from_slice(&fnv1a(bytes).to_le_bytes());
            offset = align8(offset + bytes.len());
            payload_len = offset;
        }
        let total = payload_len.max(align8(table_end));
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&table);
        out.resize(align8(table_end), 0);
        for (_, bytes) in &self.sections {
            out.extend_from_slice(bytes);
            out.resize(align8(out.len()), 0);
        }
        out
    }

    /// Writes the container to `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.to_bytes())
    }

    /// Writes the container to a file, staging through a `.tmp` sibling so
    /// a crash mid-write never leaves a half-written file at `path`.
    pub fn write_to_path(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)
    }
}

fn align8(x: usize) -> usize {
    (x + 7) & !7
}

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct SectionEntry {
    id: u32,
    offset: u64,
    len: u64,
}

/// An opened binary container with a verified header and section table.
#[derive(Debug)]
pub struct BinFile {
    bytes: ByteSlice,
    version: u32,
    table: Vec<SectionEntry>,
}

impl BinFile {
    /// Opens and fully verifies a container: magic, version, table bounds
    /// and every section checksum.
    pub fn open(path: &Path, expected_version: u32) -> Result<BinFile, BinError> {
        BinFile::from_slice(ByteSlice::open(path)?, expected_version)
    }

    /// Verifies a container already in memory.
    pub fn from_bytes(bytes: Vec<u8>, expected_version: u32) -> Result<BinFile, BinError> {
        BinFile::from_slice(ByteSlice::from_vec(bytes), expected_version)
    }

    /// Verifies a container backed by an existing view — for callers that
    /// mapped the file themselves (e.g. to hash the whole file before
    /// parsing). Section views share the caller's backing storage.
    pub fn from_view(bytes: ByteSlice, expected_version: u32) -> Result<BinFile, BinError> {
        BinFile::from_slice(bytes, expected_version)
    }

    fn from_slice(bytes: ByteSlice, expected_version: u32) -> Result<BinFile, BinError> {
        if bytes.len() < HEADER {
            return Err(BinError::Truncated);
        }
        if &bytes[..8] != MAGIC {
            return Err(BinError::Magic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != expected_version {
            return Err(BinError::Version { found: version, expected: expected_version });
        }
        let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        let table_end = HEADER
            .checked_add(count.checked_mul(TABLE_ENTRY).ok_or(BinError::Truncated)?)
            .ok_or(BinError::Truncated)?;
        if bytes.len() < table_end {
            return Err(BinError::Truncated);
        }
        let mut table = Vec::with_capacity(count);
        for i in 0..count {
            let e = HEADER + i * TABLE_ENTRY;
            let entry = &bytes[e..e + TABLE_ENTRY];
            let id = u32::from_le_bytes(entry[0..4].try_into().expect("4 bytes"));
            let offset = u64::from_le_bytes(entry[8..16].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(entry[16..24].try_into().expect("8 bytes"));
            let checksum = u64::from_le_bytes(entry[24..32].try_into().expect("8 bytes"));
            let start = usize::try_from(offset).map_err(|_| BinError::Truncated)?;
            let slen = usize::try_from(len).map_err(|_| BinError::Truncated)?;
            let end = start.checked_add(slen).ok_or(BinError::Truncated)?;
            if end > bytes.len() {
                return Err(BinError::Truncated);
            }
            if fnv1a(&bytes[start..end]) != checksum {
                return Err(BinError::Checksum { section: id });
            }
            table.push(SectionEntry { id, offset, len });
        }
        Ok(BinFile { bytes, version, table })
    }

    /// The file's format version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// A section's bytes as a shared view, or an error if absent.
    pub fn section(&self, id: u32) -> Result<ByteSlice, BinError> {
        let entry = self
            .table
            .iter()
            .find(|e| e.id == id)
            .ok_or(BinError::MissingSection { section: id })?;
        let start = usize::try_from(entry.offset).map_err(|_| BinError::Truncated)?;
        let len = usize::try_from(entry.len).map_err(|_| BinError::Truncated)?;
        Ok(self.bytes.slice(start, len))
    }

    /// Whether a section is present.
    pub fn has_section(&self, id: u32) -> bool {
        self.table.iter().any(|e| e.id == id)
    }

    /// Total container size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = BinWriter::new(3);
        w.section(1, b"hello".to_vec());
        w.section(2, bytes_of_u64s(&[1, 2, 3]));
        w.section(7, Vec::new());
        w.to_bytes()
    }

    #[test]
    fn round_trip_sections() {
        let f = BinFile::from_bytes(sample(), 3).unwrap();
        assert_eq!(f.version(), 3);
        assert_eq!(&*f.section(1).unwrap(), b"hello");
        assert_eq!(u64s_from_bytes(&f.section(2).unwrap()).unwrap(), vec![1, 2, 3]);
        assert_eq!(f.section(7).unwrap().len(), 0);
        assert!(f.has_section(2));
        assert!(!f.has_section(9));
        assert!(matches!(f.section(9), Err(BinError::MissingSection { section: 9 })));
    }

    #[test]
    fn sections_are_8_byte_aligned() {
        let bytes = sample();
        let f = BinFile::from_bytes(bytes, 3).unwrap();
        for id in [1u32, 2, 7] {
            let s = f.section(id).unwrap();
            let entry = f.table.iter().find(|e| e.id == id).unwrap();
            assert_eq!(entry.offset % 8, 0, "section {id}");
            assert_eq!(s.len() as u64, entry.len);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample();
        bytes[0] ^= 0xff;
        assert!(matches!(BinFile::from_bytes(bytes, 3), Err(BinError::Magic)));
    }

    #[test]
    fn version_skew_rejected() {
        let err = BinFile::from_bytes(sample(), 4).unwrap_err();
        assert!(matches!(err, BinError::Version { found: 3, expected: 4 }));
    }

    #[test]
    fn every_flipped_payload_byte_is_caught() {
        let good = sample();
        let f = BinFile::from_bytes(good.clone(), 3).unwrap();
        // flip each byte of each non-empty section payload
        for id in [1u32, 2] {
            let entry = f.table.iter().find(|e| e.id == id).unwrap();
            for i in 0..entry.len as usize {
                let mut bad = good.clone();
                bad[entry.offset as usize + i] ^= 0x01;
                assert!(
                    matches!(BinFile::from_bytes(bad, 3), Err(BinError::Checksum { .. })),
                    "section {id} byte {i}"
                );
            }
        }
    }

    #[test]
    fn truncated_rejected() {
        let bytes = sample();
        for cut in [0, 4, HEADER - 1, HEADER + 5, bytes.len() - 1] {
            let err = BinFile::from_bytes(bytes[..cut].to_vec(), 3).unwrap_err();
            assert!(
                matches!(
                    err,
                    BinError::Truncated | BinError::Magic | BinError::Checksum { .. }
                ),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn file_round_trip_with_mmap() {
        let dir = std::env::temp_dir().join(format!("gplus-binfmt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.bin");
        let mut w = BinWriter::new(3);
        w.section(1, b"persisted".to_vec());
        w.write_to_path(&path).unwrap();
        let f = BinFile::open(&path, 3).unwrap();
        assert_eq!(&*f.section(1).unwrap(), b"persisted");
        assert!(f.byte_len() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn u64_view_reads_in_place() {
        let view = U64View::from_values(&[5, u64::MAX, 0]);
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
        assert_eq!(view.get(0), 5);
        assert_eq!(view.get(1), u64::MAX);
        assert_eq!(view.get(2), 0);
        assert_eq!(view.byte_len(), 24);
        assert!(U64View::new(ByteSlice::from_vec(vec![0; 7])).is_err());
    }

    #[test]
    fn array_helpers_round_trip() {
        let u32s = vec![0u32, 1, u32::MAX];
        assert_eq!(u32s_from_bytes(&bytes_of_u32s(&u32s)).unwrap(), u32s);
        let u64s = vec![0u64, 1, u64::MAX];
        assert_eq!(u64s_from_bytes(&bytes_of_u64s(&u64s)).unwrap(), u64s);
        assert!(u32s_from_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn byte_slice_subviews_share_storage() {
        let s = ByteSlice::from_vec(vec![1, 2, 3, 4, 5]);
        let sub = s.slice(1, 3);
        assert_eq!(&*sub, &[2, 3, 4]);
        let subsub = sub.slice(1, 1);
        assert_eq!(&*subsub, &[3]);
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn byte_slice_bounds_checked() {
        let s = ByteSlice::from_vec(vec![1, 2, 3]);
        let _ = s.slice(2, 2);
    }
}
