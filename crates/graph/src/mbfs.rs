//! Batched multi-source BFS: up to 64 sources per CSR sweep.
//!
//! The Figure 5 / Figure 9 estimators run hundreds of independent BFS
//! passes over the same graph. One-source-at-a-time kernels re-walk the
//! whole CSR per source; here each node instead carries one `u64` whose
//! bit `l` means "reached by lane `l`", so a single sweep advances up to
//! [`BATCH_WIDTH`] traversals at once. Frontier propagation is pure bit
//! arithmetic (`new = frontier[u] & !seen[v]`), and the level loop is the
//! same direction-optimizing shape as the scalar hybrid kernel in
//! [`crate::bfs`]: top-down over an active-node list while frontiers are
//! small, bottom-up over unsaturated nodes' in-lists once the frontier's
//! out-edge mass crosses `threshold * |E|`.
//!
//! Lanes are fully independent: a lane whose frontier empties simply stops
//! contributing bits, so per-lane level counts are exactly what the
//! per-source [`crate::bfs::levels`] kernel would produce.

use crate::adjacency::Adjacency;
use crate::bfs::BfsLevels;
use crate::cast;
use crate::csr::NodeId;

/// Number of BFS lanes packed into one machine word per node.
pub const BATCH_WIDTH: usize = 64;

/// Reusable state for the batched kernel: per-node lane words plus the
/// active-node lists that keep top-down steps proportional to the frontier.
#[derive(Debug, Default)]
pub struct BatchScratch {
    seen: Vec<u64>,
    frontier: Vec<u64>,
    next: Vec<u64>,
    active: Vec<NodeId>,
    next_active: Vec<NodeId>,
}

impl BatchScratch {
    /// Creates scratch space sized for a graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            seen: vec![0; n],
            frontier: vec![0; n],
            next: vec![0; n],
            active: Vec::new(),
            next_active: Vec::new(),
        }
    }

    fn ensure(&mut self, n: usize) {
        if self.seen.len() < n {
            self.seen.resize(n, 0);
            self.frontier.resize(n, 0);
            self.next.resize(n, 0);
        }
    }
}

/// Runs up to [`BATCH_WIDTH`] BFS traversals in one direction-optimizing
/// pass and returns one [`BfsLevels`] per source, in input order — lane
/// `l` of the batch is exactly `bfs::levels(g, sources[l])`.
///
/// Duplicate sources are fine (each occupies its own lane).
///
/// # Panics
/// Panics if `sources` is longer than [`BATCH_WIDTH`] or contains an
/// out-of-range id.
pub fn batch_levels_with_scratch<G: Adjacency>(
    g: &G,
    sources: &[NodeId],
    threshold: f64,
    scratch: &mut BatchScratch,
) -> Vec<BfsLevels> {
    let lanes = sources.len();
    assert!(lanes <= BATCH_WIDTH, "at most {BATCH_WIDTH} sources per batch");
    let n = g.node_count();
    for &s in sources {
        assert!((s as usize) < n, "source out of range");
    }
    let obs = gplus_obs::global();
    let _span = obs.span("graph.bfs.batch");
    // Resolve the direction counters up front so they exist in snapshots
    // even when a run never takes one of the branches.
    let td_counter = obs.counter("graph.bfs.top_down_levels");
    let bu_counter = obs.counter("graph.bfs.bottom_up_levels");
    obs.counter("graph.bfs.batch.sources_count").add(lanes as u64);
    if lanes == 0 {
        return Vec::new();
    }

    scratch.ensure(n);
    scratch.seen[..n].fill(0);
    scratch.frontier[..n].fill(0);
    scratch.next[..n].fill(0);
    scratch.active.clear();
    scratch.next_active.clear();

    let full: u64 = if lanes == BATCH_WIDTH { !0 } else { (1u64 << lanes) - 1 };
    for (lane, &s) in sources.iter().enumerate() {
        let bit = 1u64 << lane;
        scratch.seen[s as usize] |= bit;
        if scratch.frontier[s as usize] == 0 {
            scratch.active.push(s);
        }
        scratch.frontier[s as usize] |= bit;
    }

    // counts[lane][d] = nodes lane `lane` first reached at distance d
    let mut counts: Vec<Vec<u64>> = vec![vec![1]; lanes];
    let switch_edges = threshold * g.edge_count() as f64;
    let mut depth: usize = 0;
    while !scratch.active.is_empty() {
        let frontier_edges: usize = scratch.active.iter().map(|&u| g.out_degree(u)).sum();
        let bottom_up = frontier_edges as f64 > switch_edges;
        if bottom_up {
            bu_counter.inc();
            for v in 0..n {
                let s = scratch.seen[v];
                if s == full {
                    continue;
                }
                let mut acc = 0u64;
                for u in g.in_iter(cast::node_id(v)) {
                    acc |= scratch.frontier[cast::ix(u)];
                    // early exit once every lane that can still claim v has
                    if acc | s == full {
                        break;
                    }
                }
                let new = acc & !s;
                if new != 0 {
                    scratch.seen[v] = s | new;
                    scratch.next[v] = new;
                    scratch.next_active.push(cast::node_id(v));
                }
            }
        } else {
            td_counter.inc();
            for i in 0..scratch.active.len() {
                let u = scratch.active[i];
                let f = scratch.frontier[cast::ix(u)];
                for v in g.out_iter(u) {
                    let new = f & !scratch.seen[cast::ix(v)];
                    if new != 0 {
                        if scratch.next[cast::ix(v)] == 0 {
                            scratch.next_active.push(v);
                        }
                        scratch.next[cast::ix(v)] |= new;
                        scratch.seen[cast::ix(v)] |= new;
                    }
                }
            }
        }
        if scratch.next_active.is_empty() {
            break;
        }
        depth += 1;
        for &v in &scratch.next_active {
            let mut new = scratch.next[v as usize];
            while new != 0 {
                let lane = new.trailing_zeros() as usize;
                new &= new - 1;
                if counts[lane].len() <= depth {
                    counts[lane].resize(depth + 1, 0);
                }
                counts[lane][depth] += 1;
            }
        }
        // promote next → frontier: clear the old frontier words first so
        // nodes in both the old and new frontier keep only the new bits
        for &u in &scratch.active {
            scratch.frontier[u as usize] = 0;
        }
        for &v in &scratch.next_active {
            scratch.frontier[v as usize] = scratch.next[v as usize];
            scratch.next[v as usize] = 0;
        }
        scratch.active.clear();
        std::mem::swap(&mut scratch.active, &mut scratch.next_active);
    }

    let mut total_visited = 0u64;
    let out: Vec<BfsLevels> = counts
        .into_iter()
        .map(|c| {
            // a lane's frontier only ever shrinks to empty, so counts have
            // no internal zeros: eccentricity is simply the last index
            let reached: u64 = c.iter().sum();
            total_visited += reached;
            BfsLevels { eccentricity: (c.len() - 1) as u32, reached, counts: c }
        })
        .collect();
    obs.counter("graph.bfs.batch.visited_count").add(total_visited);
    out
}

/// Runs BFS from every source in `sources` (any number), chunking into
/// [`BATCH_WIDTH`]-wide batches over one shared scratch; returns one
/// [`BfsLevels`] per source in input order.
pub fn multi_source_levels<G: Adjacency>(
    g: &G,
    sources: &[NodeId],
    threshold: f64,
) -> Vec<BfsLevels> {
    let mut scratch = BatchScratch::new(g.node_count());
    let mut out = Vec::with_capacity(sources.len());
    for chunk in sources.chunks(BATCH_WIDTH) {
        out.extend(batch_levels_with_scratch(g, chunk, threshold, &mut scratch));
    }
    out
}

/// Directed hop distances for up to [`BATCH_WIDTH`] `(src, dst)` pairs in
/// one direction-optimizing sweep. Lane `l` runs a BFS from `pairs[l].0`
/// but, unlike [`batch_levels_with_scratch`], stops propagating the moment
/// `pairs[l].1` is seen, and the sweep exits once every lane has either
/// resolved or exhausted its reachable set — so pairwise queries on a
/// small-world graph cost a handful of levels, not a full traversal.
///
/// Returns the directed distance per pair in input order, `None` when
/// `dst` is unreachable from `src`.
///
/// # Panics
/// Panics if `pairs` is longer than [`BATCH_WIDTH`] or contains an
/// out-of-range id.
pub fn batch_distance_pairs_with_scratch<G: Adjacency>(
    g: &G,
    pairs: &[(NodeId, NodeId)],
    threshold: f64,
    scratch: &mut BatchScratch,
) -> Vec<Option<u32>> {
    let lanes = pairs.len();
    assert!(lanes <= BATCH_WIDTH, "at most {BATCH_WIDTH} pairs per batch");
    let n = g.node_count();
    for &(s, t) in pairs {
        assert!((s as usize) < n, "source out of range");
        assert!((t as usize) < n, "target out of range");
    }
    let obs = gplus_obs::global();
    let _span = obs.span("graph.bfs.pairs");
    let td_counter = obs.counter("graph.bfs.top_down_levels");
    let bu_counter = obs.counter("graph.bfs.bottom_up_levels");
    obs.counter("graph.bfs.pairs.count").add(lanes as u64);
    if lanes == 0 {
        return Vec::new();
    }

    scratch.ensure(n);
    scratch.seen[..n].fill(0);
    scratch.frontier[..n].fill(0);
    scratch.next[..n].fill(0);
    scratch.active.clear();
    scratch.next_active.clear();

    let mut dist: Vec<Option<u32>> = vec![None; lanes];
    // lanes still hunting their target; resolved lanes are masked out of
    // the frontier so finished traversals stop costing edge work
    let mut live: u64 = 0;
    for (lane, &(s, t)) in pairs.iter().enumerate() {
        let bit = 1u64 << lane;
        if s == t {
            dist[lane] = Some(0);
            continue;
        }
        live |= bit;
        scratch.seen[s as usize] |= bit;
        if scratch.frontier[s as usize] == 0 {
            scratch.active.push(s);
        }
        scratch.frontier[s as usize] |= bit;
    }

    let switch_edges = threshold * g.edge_count() as f64;
    let mut depth: u32 = 0;
    while live != 0 && !scratch.active.is_empty() {
        let frontier_edges: usize = scratch.active.iter().map(|&u| g.out_degree(u)).sum();
        let bottom_up = frontier_edges as f64 > switch_edges;
        if bottom_up {
            bu_counter.inc();
            for v in 0..n {
                let s = scratch.seen[v];
                if s & live == live {
                    continue;
                }
                let mut acc = 0u64;
                for u in g.in_iter(cast::node_id(v)) {
                    // frontier words only carry live bits, so acc does too
                    acc |= scratch.frontier[cast::ix(u)];
                    if (acc | s) & live == live {
                        break;
                    }
                }
                let new = acc & !s;
                if new != 0 {
                    scratch.seen[v] = s | new;
                    scratch.next[v] = new;
                    scratch.next_active.push(cast::node_id(v));
                }
            }
        } else {
            td_counter.inc();
            for i in 0..scratch.active.len() {
                let u = scratch.active[i];
                let f = scratch.frontier[cast::ix(u)];
                for v in g.out_iter(u) {
                    let new = f & !scratch.seen[v as usize];
                    if new != 0 {
                        if scratch.next[v as usize] == 0 {
                            scratch.next_active.push(v);
                        }
                        scratch.next[v as usize] |= new;
                        scratch.seen[v as usize] |= new;
                    }
                }
            }
        }
        if scratch.next_active.is_empty() {
            break;
        }
        depth += 1;
        for (lane, &(_, t)) in pairs.iter().enumerate() {
            let bit = 1u64 << lane;
            if live & bit != 0 && scratch.seen[t as usize] & bit != 0 {
                dist[lane] = Some(depth);
                live &= !bit;
            }
        }
        // promote next → frontier, masking out lanes that just resolved
        for &u in &scratch.active {
            scratch.frontier[u as usize] = 0;
        }
        scratch.active.clear();
        for &v in &scratch.next_active {
            let f = scratch.next[v as usize] & live;
            scratch.next[v as usize] = 0;
            scratch.frontier[v as usize] = f;
            if f != 0 {
                scratch.active.push(v);
            }
        }
        scratch.next_active.clear();
    }
    dist
}

/// Directed hop distances for any number of `(src, dst)` pairs, chunked
/// into [`BATCH_WIDTH`]-wide batches over one shared scratch; returns one
/// distance per pair in input order (`None` = unreachable).
pub fn distance_pairs<G: Adjacency>(
    g: &G,
    pairs: &[(NodeId, NodeId)],
    threshold: f64,
) -> Vec<Option<u32>> {
    let mut scratch = BatchScratch::new(g.node_count());
    let mut out = Vec::with_capacity(pairs.len());
    for chunk in pairs.chunks(BATCH_WIDTH) {
        out.extend(batch_distance_pairs_with_scratch(g, chunk, threshold, &mut scratch));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use crate::builder::from_edges;
    use crate::csr::CsrGraph;

    #[test]
    fn batch_matches_per_source_small() {
        let g = from_edges(
            8,
            [(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (5, 3), (3, 6), (6, 7), (7, 0), (2, 2)],
        );
        let sources: Vec<NodeId> = g.nodes().collect();
        for threshold in [0.0, 0.05, 1.0] {
            let batched = multi_source_levels(&g, &sources, threshold);
            for (&s, got) in sources.iter().zip(&batched) {
                assert_eq!(*got, bfs::levels(&g, s), "source {s} at threshold {threshold}");
            }
        }
    }

    #[test]
    fn batch_matches_per_source_random() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        for trial in 0..20 {
            let n = 2 + rng.random_range(0..80);
            let m = rng.random_range(0..n * 3);
            let edges: Vec<(NodeId, NodeId)> = (0..m)
                .map(|_| (rng.random_range(0..n) as NodeId, rng.random_range(0..n) as NodeId))
                .collect();
            let g = from_edges(n, edges);
            let threshold = rng.random_range(0..100) as f64 / 100.0;
            // more sources than one batch, with repeats
            let k = rng.random_range(1..(BATCH_WIDTH * 2 + 10));
            let sources: Vec<NodeId> =
                (0..k).map(|_| rng.random_range(0..n) as NodeId).collect();
            let batched = multi_source_levels(&g, &sources, threshold);
            assert_eq!(batched.len(), sources.len());
            for (i, (&s, got)) in sources.iter().zip(&batched).enumerate() {
                assert_eq!(
                    *got,
                    bfs::levels(&g, s),
                    "trial {trial}, lane {i}, source {s}, threshold {threshold}"
                );
            }
        }
    }

    #[test]
    fn duplicate_sources_get_independent_lanes() {
        let g = from_edges(4, [(0, 1), (1, 2)]);
        let out = multi_source_levels(&g, &[0, 0, 3], 0.0);
        assert_eq!(out[0], out[1]);
        assert_eq!(out[0].counts, vec![1, 1, 1]);
        assert_eq!(out[2].counts, vec![1]);
    }

    #[test]
    fn empty_sources_and_isolated_nodes() {
        let g = from_edges(3, [(1, 2)]);
        assert!(multi_source_levels(&g, &[], 0.5).is_empty());
        let out = multi_source_levels(&g, &[0], 0.5);
        assert_eq!(out[0].counts, vec![1]);
        assert_eq!(out[0].reached, 1);
        assert_eq!(out[0].eccentricity, 0);
    }

    #[test]
    fn full_width_batch() {
        // a long path exercises many levels with every lane live
        let n = BATCH_WIDTH + 10;
        let g = from_edges(n, (0..n as NodeId - 1).map(|i| (i, i + 1)));
        let sources: Vec<NodeId> = (0..BATCH_WIDTH as NodeId).collect();
        let mut scratch = BatchScratch::new(n);
        let out = batch_levels_with_scratch(&g, &sources, 0.02, &mut scratch);
        for (&s, got) in sources.iter().zip(&out) {
            assert_eq!(*got, bfs::levels(&g, s), "source {s}");
        }
        // scratch reuse stays clean
        let again = batch_levels_with_scratch(&g, &sources, 1.0, &mut scratch);
        assert_eq!(out, again);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn batch_rejects_oversized_batches() {
        let g = from_edges(2, [(0, 1)]);
        let sources = vec![0 as NodeId; BATCH_WIDTH + 1];
        let mut scratch = BatchScratch::new(2);
        let _ = batch_levels_with_scratch(&g, &sources, 0.5, &mut scratch);
    }

    fn reference_distance(g: &CsrGraph, s: NodeId, t: NodeId) -> Option<u32> {
        let d = bfs::distances(g, s)[t as usize];
        (d != bfs::UNREACHABLE).then_some(d)
    }

    #[test]
    fn pair_distances_match_scalar_bfs_small() {
        let g = from_edges(
            8,
            [(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (5, 3), (3, 6), (6, 7), (7, 0), (2, 2)],
        );
        let mut pairs = Vec::new();
        for s in g.nodes() {
            for t in g.nodes() {
                pairs.push((s, t));
            }
        }
        for threshold in [0.0, 0.05, 1.0] {
            let got = distance_pairs(&g, &pairs, threshold);
            for (&(s, t), d) in pairs.iter().zip(&got) {
                assert_eq!(
                    *d,
                    reference_distance(&g, s, t),
                    "pair ({s},{t}) at threshold {threshold}"
                );
            }
        }
    }

    #[test]
    fn pair_distances_match_scalar_bfs_random() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(43);
        for trial in 0..20 {
            let n = 2 + rng.random_range(0..80);
            let m = rng.random_range(0..n * 3);
            let edges: Vec<(NodeId, NodeId)> = (0..m)
                .map(|_| (rng.random_range(0..n) as NodeId, rng.random_range(0..n) as NodeId))
                .collect();
            let g = from_edges(n, edges);
            let threshold = rng.random_range(0..100) as f64 / 100.0;
            let k = rng.random_range(1..(BATCH_WIDTH * 2 + 10));
            let pairs: Vec<(NodeId, NodeId)> = (0..k)
                .map(|_| (rng.random_range(0..n) as NodeId, rng.random_range(0..n) as NodeId))
                .collect();
            let got = distance_pairs(&g, &pairs, threshold);
            assert_eq!(got.len(), pairs.len());
            for (i, (&(s, t), d)) in pairs.iter().zip(&got).enumerate() {
                assert_eq!(
                    *d,
                    reference_distance(&g, s, t),
                    "trial {trial}, lane {i}, pair ({s},{t}), threshold {threshold}"
                );
            }
        }
    }

    #[test]
    fn pair_distance_edge_cases() {
        let g = from_edges(5, [(0, 1), (1, 2), (3, 3)]);
        let out = distance_pairs(&g, &[(0, 0), (0, 2), (2, 0), (0, 4), (3, 3), (4, 4)], 0.1);
        assert_eq!(out, vec![Some(0), Some(2), None, None, Some(0), Some(0)]);
        assert!(distance_pairs(&g, &[], 0.1).is_empty());
    }

    #[test]
    fn pair_scratch_reuse_stays_clean() {
        let n = BATCH_WIDTH + 10;
        let g = from_edges(n, (0..n as NodeId - 1).map(|i| (i, i + 1)));
        let pairs: Vec<(NodeId, NodeId)> =
            (0..BATCH_WIDTH as NodeId).map(|i| (i, n as NodeId - 1)).collect();
        let mut scratch = BatchScratch::new(n);
        let first = batch_distance_pairs_with_scratch(&g, &pairs, 0.02, &mut scratch);
        for (i, d) in first.iter().enumerate() {
            assert_eq!(*d, Some((n - 1 - i) as u32), "lane {i}");
        }
        // a levels batch and a second pairs batch on the same scratch
        let levels = batch_levels_with_scratch(&g, &[0], 1.0, &mut scratch);
        assert_eq!(levels[0].reached, n as u64);
        let again = batch_distance_pairs_with_scratch(&g, &pairs, 1.0, &mut scratch);
        assert_eq!(first, again);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn pair_batch_rejects_oversized_batches() {
        let g = from_edges(2, [(0, 1)]);
        let pairs = vec![(0 as NodeId, 1 as NodeId); BATCH_WIDTH + 1];
        let mut scratch = BatchScratch::new(2);
        let _ = batch_distance_pairs_with_scratch(&g, &pairs, 0.5, &mut scratch);
    }
}
