//! Breadth-first search over the CSR graph.
//!
//! BFS is the workhorse of the study: the crawler itself is a BFS (§2.2),
//! and the path-length distribution of Figure 5 is estimated by running BFS
//! from sampled sources. Distances use `u32::MAX` as the "unreachable"
//! sentinel to keep the per-node state at 4 bytes — at the paper's 35M-node
//! scale the distance array alone is 140 MB, so this matters.
//!
//! Two kernels coexist. The classic top-down queue kernel
//! ([`levels_with_scratch`], [`distances`]) expands every frontier node's
//! out-list; it is optimal while frontiers are small. The
//! direction-optimizing kernel ([`hybrid_levels_with_scratch`],
//! [`hybrid_distances`]) additionally switches to *bottom-up* steps —
//! scanning unvisited nodes' in-lists against a dense frontier bitmap —
//! whenever the frontier's out-edge mass exceeds a tunable fraction of
//! `|E|` (Beamer et al.'s rule). On small-world graphs like Google+
//! (mean path 5.9) the middle one or two levels hold most of the graph,
//! which is exactly where bottom-up wins: each unvisited node stops at its
//! first parent instead of every frontier edge being relaxed.

use crate::adjacency::Adjacency;
use crate::cast;
use crate::csr::NodeId;
use crate::frontier::Bitmap;
use std::collections::VecDeque;

/// Sentinel distance for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Default frontier-edge fraction at which the hybrid kernels switch to
/// bottom-up scanning (and back, as the frontier drains). 5% of `|E|` is
/// a conservative middle of Beamer's recommended range; override per run
/// with `--hybrid-threshold`.
pub const DEFAULT_HYBRID_THRESHOLD: f64 = 0.05;

/// Traversal tuning threaded from the analysis layer down into the path
/// kernels: the direction-switch threshold and, when the caller traverses
/// a relabeled graph, the old→new source translation map.
#[derive(Debug, Clone, Copy)]
pub struct TraversalOpts<'a> {
    /// Frontier-edge fraction of `|E|` above which levels run bottom-up.
    pub hybrid_threshold: f64,
    /// Old→new id map for sources sampled in public id space; `None` when
    /// traversing the graph under its public ids.
    pub source_map: Option<&'a [NodeId]>,
}

impl Default for TraversalOpts<'_> {
    fn default() -> Self {
        Self { hybrid_threshold: DEFAULT_HYBRID_THRESHOLD, source_map: None }
    }
}

/// Single-source shortest-path distances (in hops) over the directed graph.
///
/// Returns a vector of length `node_count()` where unreachable nodes hold
/// [`UNREACHABLE`].
///
/// # Panics
/// Panics if `source` is out of range.
pub fn distances<G: Adjacency>(g: &G, source: NodeId) -> Vec<u32> {
    assert!(cast::ix(source) < g.node_count(), "source out of range");
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[cast::ix(source)] = 0;
    queue.push_back(source);
    let mut visited = 1u64;
    while let Some(u) = queue.pop_front() {
        let du = dist[cast::ix(u)];
        for v in g.out_iter(u) {
            if dist[cast::ix(v)] == UNREACHABLE {
                dist[cast::ix(v)] = du + 1;
                visited += 1;
                queue.push_back(v);
            }
        }
    }
    let obs = gplus_obs::global();
    obs.counter("graph.bfs.runs").inc();
    obs.counter("graph.bfs.visited_count").add(visited);
    dist
}

/// Compact result of one BFS: how many nodes sit at each distance, the
/// eccentricity of the source, and how many nodes were reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsLevels {
    /// `counts[d]` = number of nodes at distance exactly `d` (including the
    /// source at `d = 0`).
    pub counts: Vec<u64>,
    /// Largest finite distance (0 for an isolated source).
    pub eccentricity: u32,
    /// Total reachable nodes, including the source.
    pub reached: u64,
}

/// Runs BFS from `source` and aggregates per-level counts without
/// materialising the full distance vector for the caller.
///
/// This is the primitive the Figure 5 estimator runs thousands of times;
/// it reuses a caller-provided scratch buffer so repeated calls do not
/// reallocate 4·n bytes each time.
///
/// `scratch` must have length `node_count()` and is treated as opaque:
/// pass the same buffer to successive calls. Internally it stores a visit
/// epoch so it never needs clearing.
pub fn levels_with_scratch<G: Adjacency>(
    g: &G,
    source: NodeId,
    scratch: &mut BfsScratch,
) -> BfsLevels {
    assert!(cast::ix(source) < g.node_count(), "source out of range");
    scratch.ensure(g.node_count());
    scratch.epoch += 1;
    let epoch = scratch.epoch;

    let mut counts: Vec<u64> = vec![1]; // the source at distance 0
    scratch.mark[cast::ix(source)] = epoch;
    scratch.queue.clear();
    scratch.queue.push_back(source);
    scratch.next.clear();

    let mut reached: u64 = 1;
    let mut depth: u32 = 0;
    // Level-synchronous BFS: `queue` is the current frontier.
    while !scratch.queue.is_empty() {
        while let Some(u) = scratch.queue.pop_front() {
            for v in g.out_iter(u) {
                if scratch.mark[cast::ix(v)] != epoch {
                    scratch.mark[cast::ix(v)] = epoch;
                    scratch.next.push_back(v);
                }
            }
        }
        if scratch.next.is_empty() {
            break;
        }
        depth += 1;
        let level = scratch.next.len() as u64;
        counts.push(level);
        reached += level;
        std::mem::swap(&mut scratch.queue, &mut scratch.next);
    }
    let obs = gplus_obs::global();
    obs.counter("graph.bfs.runs").inc();
    obs.counter("graph.bfs.visited_count").add(reached);
    BfsLevels { counts, eccentricity: depth, reached }
}

/// Reusable BFS scratch space (epoch-marked visited array + two frontiers).
#[derive(Debug, Default)]
pub struct BfsScratch {
    mark: Vec<u64>,
    epoch: u64,
    queue: VecDeque<NodeId>,
    next: VecDeque<NodeId>,
}

impl BfsScratch {
    /// Creates scratch space sized for a graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        Self { mark: vec![0; n], epoch: 0, queue: VecDeque::new(), next: VecDeque::new() }
    }

    fn ensure(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
    }
}

/// Convenience wrapper allocating fresh scratch.
pub fn levels<G: Adjacency>(g: &G, source: NodeId) -> BfsLevels {
    let mut scratch = BfsScratch::new(g.node_count());
    levels_with_scratch(g, source, &mut scratch)
}

/// The explicit frontier sets of a BFS: `result[d]` holds every node at
/// distance exactly `d` from `source`, sorted ascending; `result[0]` is
/// `[source]`.
///
/// This exposes the per-level structure that [`BfsLevels`] only counts, so
/// correctness tooling can check level-set laws (disjointness, parent-in-
/// previous-level) against the optimized kernels. Built from [`distances`],
/// which keeps it a clarity-first derivation rather than a third traversal.
pub fn level_sets<G: Adjacency>(g: &G, source: NodeId) -> Vec<Vec<NodeId>> {
    let dist = distances(g, source);
    let ecc = dist.iter().filter(|&&d| d != UNREACHABLE).max().copied().unwrap_or(0);
    let mut sets: Vec<Vec<NodeId>> = vec![Vec::new(); ecc as usize + 1];
    for (v, &d) in dist.iter().enumerate() {
        if d != UNREACHABLE {
            sets[d as usize].push(cast::node_id(v));
        }
    }
    sets
}

/// The set of nodes reachable from `source` (including it), as a sorted vec.
pub fn reachable_set<G: Adjacency>(g: &G, source: NodeId) -> Vec<NodeId> {
    let dist = distances(g, source);
    dist.iter()
        .enumerate()
        .filter(|(_, &d)| d != UNREACHABLE)
        .map(|(i, _)| cast::node_id(i))
        .collect()
}

/// Reusable state for the direction-optimizing kernel: a visited bitmap,
/// a frontier bitmap for bottom-up steps, and two queue buffers.
#[derive(Debug, Default)]
pub struct HybridScratch {
    visited: Bitmap,
    frontier_bits: Bitmap,
    queue: Vec<NodeId>,
    next: Vec<NodeId>,
}

impl HybridScratch {
    /// Creates scratch space sized for a graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            visited: Bitmap::new(n),
            frontier_bits: Bitmap::new(n),
            queue: Vec::new(),
            next: Vec::new(),
        }
    }

    fn ensure(&mut self, n: usize) {
        self.visited.ensure(n);
        self.frontier_bits.ensure(n);
    }
}

/// Direction-optimizing BFS aggregating per-level counts; semantically
/// identical to [`levels_with_scratch`] (level-synchronous BFS visits the
/// same level *sets* regardless of expansion direction), but each level is
/// expanded top-down or bottom-up by the cheaper estimate: bottom-up when
/// the frontier's summed out-degree exceeds `threshold * |E|`.
pub fn hybrid_levels_with_scratch<G: Adjacency>(
    g: &G,
    source: NodeId,
    threshold: f64,
    scratch: &mut HybridScratch,
) -> BfsLevels {
    hybrid_core(g, source, threshold, scratch, None)
}

/// Convenience wrapper allocating fresh hybrid scratch.
pub fn hybrid_levels<G: Adjacency>(g: &G, source: NodeId, threshold: f64) -> BfsLevels {
    let mut scratch = HybridScratch::new(g.node_count());
    hybrid_levels_with_scratch(g, source, threshold, &mut scratch)
}

/// Single-source distances via the direction-optimizing kernel; returns
/// exactly what [`distances`] returns.
pub fn hybrid_distances<G: Adjacency>(g: &G, source: NodeId, threshold: f64) -> Vec<u32> {
    assert!(cast::ix(source) < g.node_count(), "source out of range");
    let mut dist = vec![UNREACHABLE; g.node_count()];
    dist[cast::ix(source)] = 0;
    let mut scratch = HybridScratch::new(g.node_count());
    hybrid_core(g, source, threshold, &mut scratch, Some(&mut dist));
    dist
}

fn hybrid_core<G: Adjacency>(
    g: &G,
    source: NodeId,
    threshold: f64,
    scratch: &mut HybridScratch,
    mut dist: Option<&mut [u32]>,
) -> BfsLevels {
    let n = g.node_count();
    assert!(cast::ix(source) < n, "source out of range");
    scratch.ensure(n);
    scratch.visited.clear();
    scratch.queue.clear();
    scratch.next.clear();
    scratch.visited.set(source);
    scratch.queue.push(source);

    let switch_edges = threshold * g.edge_count() as f64;
    let mut counts: Vec<u64> = vec![1];
    let mut reached: u64 = 1;
    let mut depth: u32 = 0;
    let (mut td_levels, mut bu_levels) = (0u64, 0u64);
    loop {
        // Beamer's rule on the cheap proxy: the frontier's out-edge mass.
        // Re-evaluated every level, so the kernel switches back to
        // top-down as the frontier drains.
        let frontier_edges: usize = scratch.queue.iter().map(|&u| g.out_degree(u)).sum();
        let bottom_up = (reached as usize) < n && frontier_edges as f64 > switch_edges;
        scratch.next.clear();
        if bottom_up {
            bu_levels += 1;
            scratch.frontier_bits.clear();
            for &u in &scratch.queue {
                scratch.frontier_bits.set(u);
            }
            for v in g.node_ids() {
                if scratch.visited.get(v) {
                    continue;
                }
                // stop at the first frontier parent — the asymmetry that
                // makes bottom-up cheap on huge frontiers
                for u in g.in_iter(v) {
                    if scratch.frontier_bits.get(u) {
                        scratch.visited.set(v);
                        scratch.next.push(v);
                        break;
                    }
                }
            }
        } else {
            td_levels += 1;
            for i in 0..scratch.queue.len() {
                let u = scratch.queue[i];
                for v in g.out_iter(u) {
                    if !scratch.visited.get(v) {
                        scratch.visited.set(v);
                        scratch.next.push(v);
                    }
                }
            }
        }
        if scratch.next.is_empty() {
            break;
        }
        depth += 1;
        if let Some(d) = dist.as_deref_mut() {
            for &v in &scratch.next {
                d[v as usize] = depth;
            }
        }
        let level = scratch.next.len() as u64;
        counts.push(level);
        reached += level;
        std::mem::swap(&mut scratch.queue, &mut scratch.next);
    }
    let obs = gplus_obs::global();
    obs.counter("graph.bfs.hybrid.runs").inc();
    obs.counter("graph.bfs.visited_count").add(reached);
    obs.counter("graph.bfs.top_down_levels").add(td_levels);
    obs.counter("graph.bfs.bottom_up_levels").add(bu_levels);
    BfsLevels { counts, eccentricity: depth, reached }
}

/// Double-sweep diameter lower bound: BFS from `start`, then BFS again from
/// the farthest node found. Cheap and usually tight on social graphs; the
/// exact diameter computed on samples in [`crate::paths`] refines it.
pub fn double_sweep_lower_bound<G: Adjacency>(g: &G, start: NodeId) -> u32 {
    let dist = hybrid_distances(g, start, DEFAULT_HYBRID_THRESHOLD);
    // last-max selection, matching the previous max_by_key tie-breaking
    let (mut far, mut far_d) = (start, 0u32);
    for (i, &d) in dist.iter().enumerate() {
        if d != UNREACHABLE && d >= far_d {
            (far, far_d) = (cast::node_id(i), d);
        }
    }
    let second = hybrid_levels(g, far, DEFAULT_HYBRID_THRESHOLD);
    far_d.max(second.eccentricity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::csr::CsrGraph;

    fn path_graph(n: usize) -> CsrGraph {
        from_edges(n, (0..n as NodeId - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn distances_on_path() {
        let g = path_graph(5);
        let d = distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d_end = distances(&g, 4);
        assert_eq!(d_end[0], UNREACHABLE);
        assert_eq!(d_end[4], 0);
    }

    #[test]
    fn distances_shortest_not_longest() {
        // two routes 0->3: direct and via 1,2
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        assert_eq!(distances(&g, 0)[3], 1);
    }

    #[test]
    fn levels_counts_sum_to_reached() {
        let g = from_edges(6, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let l = levels(&g, 0);
        assert_eq!(l.counts, vec![1, 2, 1, 1]);
        assert_eq!(l.reached, 5);
        assert_eq!(l.eccentricity, 3);
    }

    #[test]
    fn levels_isolated_source() {
        let g = from_edges(3, [(1, 2)]);
        let l = levels(&g, 0);
        assert_eq!(l.counts, vec![1]);
        assert_eq!(l.reached, 1);
        assert_eq!(l.eccentricity, 0);
    }

    #[test]
    fn levels_agree_with_distances() {
        let g = from_edges(
            8,
            [(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (5, 3), (3, 6), (6, 7), (7, 0)],
        );
        let d = distances(&g, 0);
        let l = levels(&g, 0);
        let mut counts = vec![0u64; (l.eccentricity + 1) as usize];
        for &x in &d {
            if x != UNREACHABLE {
                counts[x as usize] += 1;
            }
        }
        assert_eq!(counts, l.counts);
    }

    #[test]
    fn scratch_reuse_across_sources() {
        let g = path_graph(10);
        let mut scratch = BfsScratch::new(g.node_count());
        let a = levels_with_scratch(&g, 0, &mut scratch);
        let b = levels_with_scratch(&g, 9, &mut scratch);
        assert_eq!(a.eccentricity, 9);
        assert_eq!(b.eccentricity, 0);
        // re-running source 0 after other traversals gives identical result
        let a2 = levels_with_scratch(&g, 0, &mut scratch);
        assert_eq!(a, a2);
    }

    #[test]
    fn level_sets_match_levels_counts() {
        let g = from_edges(6, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let sets = level_sets(&g, 0);
        assert_eq!(sets, vec![vec![0], vec![1, 2], vec![3], vec![4]]);
        let l = levels(&g, 0);
        let counts: Vec<u64> = sets.iter().map(|s| s.len() as u64).collect();
        assert_eq!(counts, l.counts);
        // isolated source: single singleton level
        let g = from_edges(3, [(1, 2)]);
        assert_eq!(level_sets(&g, 0), vec![vec![0]]);
    }

    #[test]
    fn reachable_set_directed() {
        let g = from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        assert_eq!(reachable_set(&g, 0), vec![0, 1, 2]);
        assert_eq!(reachable_set(&g, 3), vec![3, 4]);
    }

    #[test]
    fn double_sweep_on_path_exact() {
        let g = path_graph(7).undirected_view();
        assert_eq!(double_sweep_lower_bound(&g, 3), 6);
    }

    #[test]
    fn undirected_view_shortens_paths() {
        // directed cycle 0->1->2->3->0: dist(0,3)=3 directed, 1 undirected
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(distances(&g, 0)[3], 3);
        assert_eq!(distances(&g.undirected_view(), 0)[3], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn distances_rejects_bad_source() {
        let g = path_graph(3);
        let _ = distances(&g, 10);
    }

    #[test]
    fn hybrid_equals_classic_across_thresholds() {
        // threshold 0.0 forces bottom-up on every non-final level,
        // 1.0 forces pure top-down; both must match the classic kernel
        let g = from_edges(
            8,
            [(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (5, 3), (3, 6), (6, 7), (7, 0), (2, 2)],
        );
        for threshold in [0.0, 0.05, 0.5, 1.0] {
            for u in g.nodes() {
                assert_eq!(
                    hybrid_distances(&g, u, threshold),
                    distances(&g, u),
                    "distances from {u} at threshold {threshold}"
                );
                assert_eq!(
                    hybrid_levels(&g, u, threshold),
                    levels(&g, u),
                    "levels from {u} at threshold {threshold}"
                );
            }
        }
    }

    #[test]
    fn hybrid_equals_classic_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2012);
        for trial in 0..30 {
            let n = 2 + rng.random_range(0..40);
            let m = rng.random_range(0..n * 3);
            let edges: Vec<(NodeId, NodeId)> = (0..m)
                .map(|_| (rng.random_range(0..n) as NodeId, rng.random_range(0..n) as NodeId))
                .collect();
            let g = from_edges(n, edges);
            let threshold = rng.random_range(0..100) as f64 / 100.0;
            let mut scratch = HybridScratch::new(g.node_count());
            for u in g.nodes() {
                assert_eq!(
                    hybrid_levels_with_scratch(&g, u, threshold, &mut scratch),
                    levels(&g, u),
                    "trial {trial}, source {u}, threshold {threshold}"
                );
                assert_eq!(
                    hybrid_distances(&g, u, threshold),
                    distances(&g, u),
                    "trial {trial}, source {u}, threshold {threshold}"
                );
            }
        }
    }

    #[test]
    fn hybrid_isolated_source_and_empty_frontier() {
        // isolated source: the very first expansion yields an empty
        // frontier in either direction
        let g = from_edges(3, [(1, 2)]);
        for threshold in [0.0, 1.0] {
            let l = hybrid_levels(&g, 0, threshold);
            assert_eq!(l.counts, vec![1]);
            assert_eq!(l.reached, 1);
            assert_eq!(l.eccentricity, 0);
        }
        // self-loop-only node: the loop edge must not extend the BFS
        let g = from_edges(2, [(0, 0)]);
        let l = hybrid_levels(&g, 0, 0.0);
        assert_eq!(l.counts, vec![1]);
    }

    #[test]
    fn hybrid_scratch_reuse_is_clean() {
        let g = path_graph(10);
        let mut scratch = HybridScratch::new(g.node_count());
        let a = hybrid_levels_with_scratch(&g, 0, 0.0, &mut scratch);
        let b = hybrid_levels_with_scratch(&g, 9, 0.0, &mut scratch);
        let a2 = hybrid_levels_with_scratch(&g, 0, 1.0, &mut scratch);
        assert_eq!(a.eccentricity, 9);
        assert_eq!(b.eccentricity, 0);
        assert_eq!(a, a2);
    }

    #[test]
    fn double_sweep_on_directed_cycle() {
        // exercises the hybrid-backed implementation with asymmetric
        // distances: every source sees an eccentricity of n-1
        let g = from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)));
        assert_eq!(double_sweep_lower_bound(&g, 2), 5);
    }
}
