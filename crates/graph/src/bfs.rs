//! Breadth-first search over the CSR graph.
//!
//! BFS is the workhorse of the study: the crawler itself is a BFS (§2.2),
//! and the path-length distribution of Figure 5 is estimated by running BFS
//! from sampled sources. Distances use `u32::MAX` as the "unreachable"
//! sentinel to keep the per-node state at 4 bytes — at the paper's 35M-node
//! scale the distance array alone is 140 MB, so this matters.

use crate::csr::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Sentinel distance for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source shortest-path distances (in hops) over the directed graph.
///
/// Returns a vector of length `node_count()` where unreachable nodes hold
/// [`UNREACHABLE`].
///
/// # Panics
/// Panics if `source` is out of range.
pub fn distances(g: &CsrGraph, source: NodeId) -> Vec<u32> {
    assert!((source as usize) < g.node_count(), "source out of range");
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    let mut visited = 1u64;
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.out_neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                visited += 1;
                queue.push_back(v);
            }
        }
    }
    let obs = gplus_obs::global();
    obs.counter("graph.bfs.runs").inc();
    obs.counter("graph.bfs.visited_count").add(visited);
    dist
}

/// Compact result of one BFS: how many nodes sit at each distance, the
/// eccentricity of the source, and how many nodes were reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsLevels {
    /// `counts[d]` = number of nodes at distance exactly `d` (including the
    /// source at `d = 0`).
    pub counts: Vec<u64>,
    /// Largest finite distance (0 for an isolated source).
    pub eccentricity: u32,
    /// Total reachable nodes, including the source.
    pub reached: u64,
}

/// Runs BFS from `source` and aggregates per-level counts without
/// materialising the full distance vector for the caller.
///
/// This is the primitive the Figure 5 estimator runs thousands of times;
/// it reuses a caller-provided scratch buffer so repeated calls do not
/// reallocate 4·n bytes each time.
///
/// `scratch` must have length `node_count()` and is treated as opaque:
/// pass the same buffer to successive calls. Internally it stores a visit
/// epoch so it never needs clearing.
pub fn levels_with_scratch(
    g: &CsrGraph,
    source: NodeId,
    scratch: &mut BfsScratch,
) -> BfsLevels {
    assert!((source as usize) < g.node_count(), "source out of range");
    scratch.ensure(g.node_count());
    scratch.epoch += 1;
    let epoch = scratch.epoch;

    let mut counts: Vec<u64> = vec![1]; // the source at distance 0
    scratch.mark[source as usize] = epoch;
    scratch.queue.clear();
    scratch.queue.push_back(source);
    scratch.next.clear();

    let mut reached: u64 = 1;
    let mut depth: u32 = 0;
    // Level-synchronous BFS: `queue` is the current frontier.
    while !scratch.queue.is_empty() {
        while let Some(u) = scratch.queue.pop_front() {
            for &v in g.out_neighbors(u) {
                if scratch.mark[v as usize] != epoch {
                    scratch.mark[v as usize] = epoch;
                    scratch.next.push_back(v);
                }
            }
        }
        if scratch.next.is_empty() {
            break;
        }
        depth += 1;
        let level = scratch.next.len() as u64;
        counts.push(level);
        reached += level;
        std::mem::swap(&mut scratch.queue, &mut scratch.next);
    }
    let obs = gplus_obs::global();
    obs.counter("graph.bfs.runs").inc();
    obs.counter("graph.bfs.visited_count").add(reached);
    BfsLevels { counts, eccentricity: depth, reached }
}

/// Reusable BFS scratch space (epoch-marked visited array + two frontiers).
#[derive(Debug, Default)]
pub struct BfsScratch {
    mark: Vec<u64>,
    epoch: u64,
    queue: VecDeque<NodeId>,
    next: VecDeque<NodeId>,
}

impl BfsScratch {
    /// Creates scratch space sized for a graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        Self { mark: vec![0; n], epoch: 0, queue: VecDeque::new(), next: VecDeque::new() }
    }

    fn ensure(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
    }
}

/// Convenience wrapper allocating fresh scratch.
pub fn levels(g: &CsrGraph, source: NodeId) -> BfsLevels {
    let mut scratch = BfsScratch::new(g.node_count());
    levels_with_scratch(g, source, &mut scratch)
}

/// The set of nodes reachable from `source` (including it), as a sorted vec.
pub fn reachable_set(g: &CsrGraph, source: NodeId) -> Vec<NodeId> {
    let dist = distances(g, source);
    dist.iter()
        .enumerate()
        .filter(|(_, &d)| d != UNREACHABLE)
        .map(|(i, _)| i as NodeId)
        .collect()
}

/// Double-sweep diameter lower bound: BFS from `start`, then BFS again from
/// the farthest node found. Cheap and usually tight on social graphs; the
/// exact diameter computed on samples in [`crate::paths`] refines it.
pub fn double_sweep_lower_bound(g: &CsrGraph, start: NodeId) -> u32 {
    let mut scratch = BfsScratch::new(g.node_count());
    let first = levels_with_scratch(g, start, &mut scratch);
    // find a node at max distance via a fresh distance pass
    let dist = distances(g, start);
    let far = dist
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != UNREACHABLE)
        .max_by_key(|(_, &d)| d)
        .map(|(i, _)| i as NodeId)
        .unwrap_or(start);
    let second = levels_with_scratch(g, far, &mut scratch);
    first.eccentricity.max(second.eccentricity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn path_graph(n: usize) -> CsrGraph {
        from_edges(n, (0..n as NodeId - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn distances_on_path() {
        let g = path_graph(5);
        let d = distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d_end = distances(&g, 4);
        assert_eq!(d_end[0], UNREACHABLE);
        assert_eq!(d_end[4], 0);
    }

    #[test]
    fn distances_shortest_not_longest() {
        // two routes 0->3: direct and via 1,2
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        assert_eq!(distances(&g, 0)[3], 1);
    }

    #[test]
    fn levels_counts_sum_to_reached() {
        let g = from_edges(6, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let l = levels(&g, 0);
        assert_eq!(l.counts, vec![1, 2, 1, 1]);
        assert_eq!(l.reached, 5);
        assert_eq!(l.eccentricity, 3);
    }

    #[test]
    fn levels_isolated_source() {
        let g = from_edges(3, [(1, 2)]);
        let l = levels(&g, 0);
        assert_eq!(l.counts, vec![1]);
        assert_eq!(l.reached, 1);
        assert_eq!(l.eccentricity, 0);
    }

    #[test]
    fn levels_agree_with_distances() {
        let g = from_edges(
            8,
            [(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (5, 3), (3, 6), (6, 7), (7, 0)],
        );
        let d = distances(&g, 0);
        let l = levels(&g, 0);
        let mut counts = vec![0u64; (l.eccentricity + 1) as usize];
        for &x in &d {
            if x != UNREACHABLE {
                counts[x as usize] += 1;
            }
        }
        assert_eq!(counts, l.counts);
    }

    #[test]
    fn scratch_reuse_across_sources() {
        let g = path_graph(10);
        let mut scratch = BfsScratch::new(g.node_count());
        let a = levels_with_scratch(&g, 0, &mut scratch);
        let b = levels_with_scratch(&g, 9, &mut scratch);
        assert_eq!(a.eccentricity, 9);
        assert_eq!(b.eccentricity, 0);
        // re-running source 0 after other traversals gives identical result
        let a2 = levels_with_scratch(&g, 0, &mut scratch);
        assert_eq!(a, a2);
    }

    #[test]
    fn reachable_set_directed() {
        let g = from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        assert_eq!(reachable_set(&g, 0), vec![0, 1, 2]);
        assert_eq!(reachable_set(&g, 3), vec![3, 4]);
    }

    #[test]
    fn double_sweep_on_path_exact() {
        let g = path_graph(7).undirected_view();
        assert_eq!(double_sweep_lower_bound(&g, 3), 6);
    }

    #[test]
    fn undirected_view_shortens_paths() {
        // directed cycle 0->1->2->3->0: dist(0,3)=3 directed, 1 undirected
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(distances(&g, 0)[3], 3);
        assert_eq!(distances(&g.undirected_view(), 0)[3], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn distances_rejects_bad_source() {
        let g = path_graph(3);
        let _ = distances(&g, 10);
    }
}
