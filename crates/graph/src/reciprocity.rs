//! Reciprocity metrics.
//!
//! §3.3.2 defines the per-node Relation Reciprocity
//!
//! ```text
//! RR(u) = |OS(u) ∩ IS(u)| / |OS(u)|
//! ```
//!
//! where `OS(u)` are the users `u` follows and `IS(u)` the users following
//! `u`. The paper's Figure 4(a) plots the CDF of `RR` (more than 60% of
//! users above 0.6) and reports a *global* reciprocity of 32% — the
//! fraction of directed edges whose reverse edge also exists (22.1% for
//! Twitter, 100% for Facebook by construction).

use crate::adjacency::Adjacency;
use crate::cast;
use crate::csr::{CsrGraph, NodeId};
use rayon::prelude::*;

/// Relation Reciprocity of one node, per Eq. 1 of the paper.
///
/// Generic over [`Adjacency`]: the intersection is a streaming merge of
/// the two sorted neighbour iterators, so a compressed graph is decoded
/// on the fly without materialising either list.
///
/// Returns `None` when `OS(u)` is empty (the ratio is undefined; the paper
/// implicitly restricts the CDF to nodes with outgoing edges).
pub fn relation_reciprocity<G: Adjacency>(g: &G, u: NodeId) -> Option<f64> {
    let k = g.out_degree(u);
    if k == 0 {
        return None;
    }
    Some(merge_intersection_count(g.out_iter(u), g.in_iter(u), None) as f64 / k as f64)
}

/// RR for every node with at least one outgoing edge, parallelised.
/// The result order is unspecified (it feeds a CDF).
pub fn relation_reciprocity_all<G: Adjacency>(g: &G) -> Vec<f64> {
    (0..cast::node_id(g.node_count()))
        .into_par_iter()
        .filter_map(|u| relation_reciprocity(g, u))
        .collect()
}

/// Global reciprocity: the fraction of directed edges `(u, v)` for which
/// `(v, u)` also exists. Self-loops count as reciprocated (their reverse is
/// themselves). Returns 0 for an edgeless graph.
pub fn global_reciprocity<G: Adjacency>(g: &G) -> f64 {
    if g.edge_count() == 0 {
        return 0.0;
    }
    let reciprocated: u64 = (0..cast::node_id(g.node_count()))
        .into_par_iter()
        .map(|u| merge_intersection_count(g.out_iter(u), g.in_iter(u), None) as u64)
        .sum();
    reciprocated as f64 / g.edge_count() as f64
}

/// Number of *reciprocal pairs* `{u, v}` with both `u->v` and `v->u`
/// (`u != v`). Used by the geo analysis (Figure 9's "reciprocal" pair set).
pub fn reciprocal_pair_count<G: Adjacency>(g: &G) -> u64 {
    let twice: u64 = (0..cast::node_id(g.node_count()))
        .into_par_iter()
        .map(|u| {
            // count v in OS(u) ∩ IS(u) with v != u; each pair counted twice
            merge_intersection_count(g.out_iter(u), g.in_iter(u), Some(u)) as u64
        })
        .sum();
    twice / 2
}

/// Size of the intersection of two ascending iterators via a linear
/// streaming merge, optionally excluding one value (self-loop exclusion
/// rides the merge instead of a separate pass).
fn merge_intersection_count<I, J>(mut a: I, mut b: J, skip: Option<NodeId>) -> usize
where
    I: Iterator<Item = NodeId>,
    J: Iterator<Item = NodeId>,
{
    let (mut x, mut y, mut count) = (a.next(), b.next(), 0);
    while let (Some(p), Some(q)) = (x, y) {
        match p.cmp(&q) {
            std::cmp::Ordering::Less => x = a.next(),
            std::cmp::Ordering::Greater => y = b.next(),
            std::cmp::Ordering::Equal => {
                if Some(p) != skip {
                    count += 1;
                }
                x = a.next();
                y = b.next();
            }
        }
    }
    count
}

/// Iterates reciprocal pairs `(u, v)` with `u < v`, in lexicographic order.
/// Sequential; intended for sampling-style consumers, not hot loops.
pub fn reciprocal_pairs(g: &CsrGraph) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
    (0..g.node_count() as NodeId).flat_map(move |u| {
        // merge the two sorted rows instead of one binary search per
        // out-neighbour; both suffixes start just past u, so only v > u
        // can surface and values arrive ascending
        let outs = g.out_neighbors(u);
        let ins = g.in_neighbors(u);
        MutualAbove {
            outs: &outs[outs.partition_point(|&v| v <= u)..],
            ins: &ins[ins.partition_point(|&v| v <= u)..],
            u,
        }
    })
}

/// Merge iterator over `outs ∩ ins` yielding `(u, v)` per common element.
struct MutualAbove<'g> {
    outs: &'g [NodeId],
    ins: &'g [NodeId],
    u: NodeId,
}

impl Iterator for MutualAbove<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        while let (Some(&a), Some(&b)) = (self.outs.first(), self.ins.first()) {
            match a.cmp(&b) {
                std::cmp::Ordering::Less => self.outs = &self.outs[1..],
                std::cmp::Ordering::Greater => self.ins = &self.ins[1..],
                std::cmp::Ordering::Equal => {
                    self.outs = &self.outs[1..];
                    self.ins = &self.ins[1..];
                    return Some((self.u, a));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn rr_matches_equation_one() {
        // u=0 follows {1,2,3}; followed back by {1,3} only
        let g = from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 0), (3, 0)]);
        let rr = relation_reciprocity(&g, 0).unwrap();
        assert!((rr - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rr_undefined_without_outgoing() {
        let g = from_edges(2, [(0, 1)]);
        assert!(relation_reciprocity(&g, 1).is_none());
        assert_eq!(relation_reciprocity(&g, 0), Some(0.0));
    }

    #[test]
    fn rr_celebrity_low_ordinary_high() {
        // celebrity 0: followed by 1..=4, follows only 1 -> RR = 1.0 for
        // that single out-edge; follows 5 (nobody follows back) -> RR = 0.5
        let g = from_edges(6, [(1, 0), (2, 0), (3, 0), (4, 0), (0, 1), (0, 5)]);
        let rr = relation_reciprocity(&g, 0).unwrap();
        assert!((rr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rr_all_skips_sinks() {
        let g = from_edges(3, [(0, 1), (1, 0), (0, 2)]);
        let all = relation_reciprocity_all(&g);
        assert_eq!(all.len(), 2); // node 2 has no out-edges
    }

    #[test]
    fn global_reciprocity_full_cycle_pair() {
        let g = from_edges(2, [(0, 1), (1, 0)]);
        assert_eq!(global_reciprocity(&g), 1.0);
    }

    #[test]
    fn global_reciprocity_mixed() {
        // 2 reciprocated edges out of 3
        let g = from_edges(3, [(0, 1), (1, 0), (0, 2)]);
        assert!((global_reciprocity(&g) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn global_reciprocity_empty_graph_zero() {
        let g = from_edges(3, []);
        assert_eq!(global_reciprocity(&g), 0.0);
    }

    #[test]
    fn self_loop_counts_as_reciprocated_edge_but_not_pair() {
        let g = from_edges(1, [(0, 0)]);
        assert_eq!(global_reciprocity(&g), 1.0);
        assert_eq!(reciprocal_pair_count(&g), 0);
    }

    #[test]
    fn pair_count_matches_enumeration() {
        let g = from_edges(5, [(0, 1), (1, 0), (2, 3), (3, 2), (0, 2), (4, 0), (0, 4), (1, 2)]);
        let pairs: Vec<_> = reciprocal_pairs(&g).collect();
        assert_eq!(pairs.len() as u64, reciprocal_pair_count(&g));
        assert_eq!(pairs, vec![(0, 1), (0, 4), (2, 3)]);
    }

    #[test]
    fn compressed_matches_flat() {
        let g = from_edges(5, [(0, 1), (1, 0), (2, 3), (3, 2), (0, 2), (4, 0), (0, 4), (1, 2)]);
        let c = crate::CompressedCsr::from_csr(&g);
        assert_eq!(global_reciprocity(&g), global_reciprocity(&c));
        assert_eq!(reciprocal_pair_count(&g), reciprocal_pair_count(&c));
        for u in g.nodes() {
            assert_eq!(relation_reciprocity(&g, u), relation_reciprocity(&c, u), "node {u}");
        }
    }

    #[test]
    fn twitter_vs_gplus_style_reciprocity_ordering() {
        // A "Google+-like" graph with more mutual links should score higher
        // than a "Twitter-like" broadcast graph.
        let gplus = from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2), (0, 2)]);
        let twitter = from_edges(4, [(1, 0), (2, 0), (3, 0), (0, 1)]);
        assert!(global_reciprocity(&gplus) > global_reciprocity(&twitter));
    }
}
