//! PageRank over the directed social graph.
//!
//! Table 1 ranks users by raw in-degree; PageRank is the natural
//! robustness check (is "most circled" the same as "most central"?) and
//! the basis of the ranking-stability ablation bench. Standard power
//! iteration with uniform teleportation; dangling mass (the lurkers'
//! missing out-edges) is redistributed uniformly each sweep.
//!
//! The sweep is a *gather* (pull) over the reverse adjacency: node `v`'s
//! new rank is `base + Σ contrib[u]` over its in-neighbours, so a
//! `par_chunks_mut` over fixed-size node chunks writes each slot from
//! exactly one thread — no races, no atomics. Every floating-point
//! reduction (dangling mass, L1 delta) sums per-chunk partials in
//! chunk-index order (see [`crate::par`]), so the scores are bit-identical
//! at any `RAYON_NUM_THREADS`. The scatter (push) formulation would need
//! either atomics (non-deterministic accumulation order) or per-thread
//! shadow vectors (an n-sized allocation per thread plus a merge pass);
//! gather gets parallelism for free because the reverse CSR half already
//! exists.

use crate::adjacency::Adjacency;
use crate::cast;
use crate::csr::NodeId;
use crate::par::{self, NODE_CHUNK};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// PageRank parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageRankParams {
    /// Damping factor (teleportation is `1 - damping`).
    pub damping: f64,
    /// Convergence threshold on the L1 change per sweep.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankParams {
    fn default() -> Self {
        Self { damping: 0.85, tolerance: 1e-9, max_iterations: 200 }
    }
}

/// PageRank result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageRank {
    /// Score per node; sums to 1.
    pub scores: Vec<f64>,
    /// Sweeps performed.
    pub iterations: usize,
    /// Final L1 change (below tolerance unless the cap hit).
    pub final_delta: f64,
}

impl PageRank {
    /// The `k` highest-scoring nodes, descending; ties by node id.
    pub fn top(&self, k: usize) -> Vec<(NodeId, f64)> {
        let mut ranked: Vec<(NodeId, f64)> =
            self.scores.iter().enumerate().map(|(i, &s)| (cast::node_id(i), s)).collect();
        ranked
            .sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores").then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }
}

/// Computes PageRank by power iteration (deterministic chunk-parallel
/// gather; see the module docs for why the result does not depend on the
/// thread count).
///
/// # Panics
/// Panics if `damping` is outside `[0, 1)` or the graph is empty.
pub fn pagerank<G: Adjacency>(g: &G, params: &PageRankParams) -> PageRank {
    let _span = gplus_obs::global().span("graph.pagerank");
    assert!((0.0..1.0).contains(&params.damping), "damping must be in [0,1)");
    let n = g.node_count();
    assert!(n > 0, "pagerank requires a non-empty graph");
    let n_f = n as f64;
    let damping = params.damping;

    // Degrees once, up front: CompressedCsr charges a varint read per
    // out_degree call, and the dangling set never changes across sweeps.
    let out_deg: Vec<u32> = (0..n)
        .into_par_iter()
        .with_min_len(NODE_CHUNK)
        .map(|i| g.out_degree(cast::node_id(i)) as u32)
        .collect();
    let dangling: Vec<NodeId> = out_deg
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d == 0)
        .map(|(i, _)| cast::node_id(i))
        .collect();

    let mut rank = vec![1.0 / n_f; n];
    let mut next = vec![0.0; n];
    // contrib[u] = damping * rank[u] / out_deg[u]; what u hands each
    // out-neighbour this sweep (0 for dangling nodes, never read).
    let mut contrib = vec![0.0; n];
    let mut iterations = 0;
    let mut delta = f64::INFINITY;

    while iterations < params.max_iterations && delta > params.tolerance {
        // teleport + dangling redistribution, fixed-order chunk reduction
        let dangling_mass = {
            let rank = &rank;
            par::chunked_sum(&dangling, |&u| rank[cast::ix(u)])
        };
        let base = (1.0 - damping) / n_f + damping * dangling_mass / n_f;

        // elementwise, so trivially deterministic under par_chunks_mut
        contrib
            .par_chunks_mut(NODE_CHUNK)
            .zip(rank.par_chunks(NODE_CHUNK))
            .zip(out_deg.par_chunks(NODE_CHUNK))
            .for_each(|((c, r), d)| {
                for i in 0..c.len() {
                    c[i] = if d[i] == 0 { 0.0 } else { damping * r[i] / f64::from(d[i]) };
                }
            });

        // gather: each chunk of `next` is written by exactly one closure
        // call; per-node accumulation walks in-neighbours ascending, the
        // same order the sequential push added them
        {
            let contrib = &contrib;
            next.par_chunks_mut(NODE_CHUNK).enumerate().for_each(|(ci, chunk)| {
                let first = ci * NODE_CHUNK;
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let v = cast::node_id(first + i);
                    let mut acc = base;
                    for u in g.in_iter(v) {
                        acc += contrib[cast::ix(u)];
                    }
                    *slot = acc;
                }
            });
        }

        delta = par::ordered_sum(
            rank.par_chunks(NODE_CHUNK)
                .zip(next.par_chunks(NODE_CHUNK))
                .map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()),
        );
        std::mem::swap(&mut rank, &mut next);
        iterations += 1;
    }

    let obs = gplus_obs::global();
    obs.gauge("graph.pagerank.iterations").set(iterations as f64);
    obs.gauge(gplus_obs::names::GRAPH_PAGERANK_MODE).set(1.0);
    obs.gauge(gplus_obs::names::GRAPH_PAGERANK_CHUNKS).set(par::chunk_count(n) as f64);
    obs.counter("graph.pagerank.nodes_count").add(n as u64);
    PageRank { scores: rank, iterations, final_delta: delta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::csr::CsrGraph;

    #[test]
    fn scores_sum_to_one() {
        let g = from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 0), (4, 0)]);
        let pr = pagerank(&g, &PageRankParams::default());
        let sum: f64 = pr.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(pr.final_delta < 1e-6, "delta {}", pr.final_delta);
    }

    #[test]
    fn hub_outranks_periphery() {
        // star into node 0
        let g = from_edges(6, (1..6).map(|i| (i, 0)));
        let pr = pagerank(&g, &PageRankParams::default());
        let top = pr.top(1);
        assert_eq!(top[0].0, 0);
        for i in 1..6 {
            assert!(pr.scores[0] > pr.scores[i]);
        }
    }

    #[test]
    fn symmetric_cycle_uniform() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let pr = pagerank(&g, &PageRankParams::default());
        for &s in &pr.scores {
            assert!((s - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn dangling_nodes_handled() {
        // 0 -> 1, 1 dangles; mass must not leak
        let g = from_edges(2, [(0, 1)]);
        let pr = pagerank(&g, &PageRankParams::default());
        let sum: f64 = pr.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(pr.scores[1] > pr.scores[0], "the pointed-at node gains");
    }

    #[test]
    fn respects_iteration_cap() {
        // star graph: far from the uniform starting vector, so the cap
        // binds before convergence
        let g = from_edges(6, (1..6).map(|i| (i, 0)));
        let pr = pagerank(
            &g,
            &PageRankParams { max_iterations: 2, tolerance: 0.0, ..Default::default() },
        );
        assert_eq!(pr.iterations, 2);
        assert!(pr.final_delta > 0.0);
    }

    #[test]
    fn top_k_sorted() {
        let g = from_edges(5, [(1, 0), (2, 0), (3, 0), (3, 4), (2, 4)]);
        let pr = pagerank(&g, &PageRankParams::default());
        let top = pr.top(3);
        assert_eq!(top.len(), 3);
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_bad_damping() {
        let g = from_edges(2, [(0, 1)]);
        let _ = pagerank(&g, &PageRankParams { damping: 1.0, ..Default::default() });
    }

    /// Naive textbook push-style PageRank, kept as an independent
    /// reference for the gather kernel (same teleport + dangling model).
    fn reference_push(g: &CsrGraph, params: &PageRankParams) -> Vec<f64> {
        let n = g.node_count();
        let n_f = n as f64;
        let mut rank = vec![1.0 / n_f; n];
        let mut next = vec![0.0; n];
        let mut delta = f64::INFINITY;
        let mut it = 0;
        while it < params.max_iterations && delta > params.tolerance {
            let dangling: f64 =
                g.nodes().filter(|&u| g.out_degree(u) == 0).map(|u| rank[cast::ix(u)]).sum();
            let base = (1.0 - params.damping) / n_f + params.damping * dangling / n_f;
            next.iter_mut().for_each(|x| *x = base);
            for u in g.nodes() {
                let deg = g.out_degree(u);
                if deg == 0 {
                    continue;
                }
                let share = params.damping * rank[cast::ix(u)] / deg as f64;
                for &v in g.out_neighbors(u) {
                    next[cast::ix(v)] += share;
                }
            }
            delta = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut rank, &mut next);
            it += 1;
        }
        rank
    }

    #[test]
    fn gather_matches_push_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2012);
        for _ in 0..10 {
            let n = 2 + rng.random_range(0..80);
            let m = rng.random_range(0..n * 5);
            let edges: Vec<(NodeId, NodeId)> = (0..m)
                .map(|_| (rng.random_range(0..n) as NodeId, rng.random_range(0..n) as NodeId))
                .collect();
            let g = from_edges(n, edges);
            let params = PageRankParams { max_iterations: 40, ..Default::default() };
            let pr = pagerank(&g, &params);
            let reference = reference_push(&g, &params);
            for (u, (&a, &b)) in pr.scores.iter().zip(&reference).enumerate() {
                assert!((a - b).abs() < 1e-12, "node {u}: gather {a} vs push {b}");
            }
        }
    }

    #[test]
    fn scores_bit_identical_across_thread_counts() {
        let g = from_edges(200, (0..600u32).map(|i| ((i * 131 % 200), (i * 31 % 200))));
        let params = PageRankParams::default();
        let pool =
            |t: usize| rayon::ThreadPoolBuilder::new().num_threads(t).build().expect("pool");
        let reference = pool(1).install(|| pagerank(&g, &params));
        for threads in [2usize, 8] {
            let pr = pool(threads).install(|| pagerank(&g, &params));
            assert_eq!(pr.iterations, reference.iterations);
            for (u, (a, b)) in pr.scores.iter().zip(&reference.scores).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "node {u} at {threads} threads");
            }
        }
    }

    #[test]
    fn compressed_matches_flat_bitwise() {
        let g = from_edges(120, (0..500u32).map(|i| ((i * 37 % 120), (i * 17 % 120))));
        let c = crate::CompressedCsr::from_csr(&g);
        let params = PageRankParams { max_iterations: 30, ..Default::default() };
        let a = pagerank(&g, &params);
        let b = pagerank(&c, &params);
        assert_eq!(a.iterations, b.iterations);
        for (x, y) in a.scores.iter().zip(&b.scores) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
