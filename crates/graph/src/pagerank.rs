//! PageRank over the directed social graph.
//!
//! Table 1 ranks users by raw in-degree; PageRank is the natural
//! robustness check (is "most circled" the same as "most central"?) and
//! the basis of the ranking-stability ablation bench. Standard power
//! iteration with uniform teleportation; dangling mass (the lurkers'
//! missing out-edges) is redistributed uniformly each sweep.

use crate::adjacency::Adjacency;
use crate::cast;
use crate::csr::NodeId;
use serde::{Deserialize, Serialize};

/// PageRank parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageRankParams {
    /// Damping factor (teleportation is `1 - damping`).
    pub damping: f64,
    /// Convergence threshold on the L1 change per sweep.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankParams {
    fn default() -> Self {
        Self { damping: 0.85, tolerance: 1e-9, max_iterations: 200 }
    }
}

/// PageRank result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageRank {
    /// Score per node; sums to 1.
    pub scores: Vec<f64>,
    /// Sweeps performed.
    pub iterations: usize,
    /// Final L1 change (below tolerance unless the cap hit).
    pub final_delta: f64,
}

impl PageRank {
    /// The `k` highest-scoring nodes, descending; ties by node id.
    pub fn top(&self, k: usize) -> Vec<(NodeId, f64)> {
        let mut ranked: Vec<(NodeId, f64)> =
            self.scores.iter().enumerate().map(|(i, &s)| (cast::node_id(i), s)).collect();
        ranked
            .sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores").then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }
}

/// Computes PageRank by power iteration.
///
/// # Panics
/// Panics if `damping` is outside `[0, 1)` or the graph is empty.
pub fn pagerank<G: Adjacency>(g: &G, params: &PageRankParams) -> PageRank {
    let _span = gplus_obs::global().span("graph.pagerank");
    assert!((0.0..1.0).contains(&params.damping), "damping must be in [0,1)");
    let n = g.node_count();
    assert!(n > 0, "pagerank requires a non-empty graph");
    let n_f = n as f64;

    let mut rank = vec![1.0 / n_f; n];
    let mut next = vec![0.0; n];
    let mut iterations = 0;
    let mut delta = f64::INFINITY;

    while iterations < params.max_iterations && delta > params.tolerance {
        // teleport + dangling redistribution
        let dangling: f64 =
            g.node_ids().filter(|&u| g.out_degree(u) == 0).map(|u| rank[cast::ix(u)]).sum();
        let base = (1.0 - params.damping) / n_f + params.damping * dangling / n_f;
        next.iter_mut().for_each(|x| *x = base);
        for u in g.node_ids() {
            let deg = g.out_degree(u);
            if deg == 0 {
                continue;
            }
            let share = params.damping * rank[cast::ix(u)] / deg as f64;
            for v in g.out_iter(u) {
                next[cast::ix(v)] += share;
            }
        }
        delta = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        iterations += 1;
    }

    let obs = gplus_obs::global();
    obs.gauge("graph.pagerank.iterations").set(iterations as f64);
    obs.counter("graph.pagerank.nodes_count").add(n as u64);
    PageRank { scores: rank, iterations, final_delta: delta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn scores_sum_to_one() {
        let g = from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 0), (4, 0)]);
        let pr = pagerank(&g, &PageRankParams::default());
        let sum: f64 = pr.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(pr.final_delta < 1e-6, "delta {}", pr.final_delta);
    }

    #[test]
    fn hub_outranks_periphery() {
        // star into node 0
        let g = from_edges(6, (1..6).map(|i| (i, 0)));
        let pr = pagerank(&g, &PageRankParams::default());
        let top = pr.top(1);
        assert_eq!(top[0].0, 0);
        for i in 1..6 {
            assert!(pr.scores[0] > pr.scores[i]);
        }
    }

    #[test]
    fn symmetric_cycle_uniform() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let pr = pagerank(&g, &PageRankParams::default());
        for &s in &pr.scores {
            assert!((s - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn dangling_nodes_handled() {
        // 0 -> 1, 1 dangles; mass must not leak
        let g = from_edges(2, [(0, 1)]);
        let pr = pagerank(&g, &PageRankParams::default());
        let sum: f64 = pr.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(pr.scores[1] > pr.scores[0], "the pointed-at node gains");
    }

    #[test]
    fn respects_iteration_cap() {
        // star graph: far from the uniform starting vector, so the cap
        // binds before convergence
        let g = from_edges(6, (1..6).map(|i| (i, 0)));
        let pr = pagerank(
            &g,
            &PageRankParams { max_iterations: 2, tolerance: 0.0, ..Default::default() },
        );
        assert_eq!(pr.iterations, 2);
        assert!(pr.final_delta > 0.0);
    }

    #[test]
    fn top_k_sorted() {
        let g = from_edges(5, [(1, 0), (2, 0), (3, 0), (3, 4), (2, 4)]);
        let pr = pagerank(&g, &PageRankParams::default());
        let top = pr.top(3);
        assert_eq!(top.len(), 3);
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_bad_damping() {
        let g = from_edges(2, [(0, 1)]);
        let _ = pagerank(&g, &PageRankParams { damping: 1.0, ..Default::default() });
    }
}
