//! Degree sequences and distribution helpers for Figure 3.
//!
//! The paper's Figure 3 plots the CCDF of the in- and out-degree of the
//! Google+ graph in log–log scale and fits power-law exponents (α_in = 1.3,
//! α_out = 1.2, both R² = 0.99). These helpers extract the sequences and
//! compute the ranking used for Table 1 (top-20 users by in-degree).

use crate::csr::{CsrGraph, NodeId};
use gplus_stats::{Ccdf, PowerLawFit};

/// In-degree of every node, indexed by node id.
pub fn in_degrees(g: &CsrGraph) -> Vec<u64> {
    g.nodes().map(|u| g.in_degree(u) as u64).collect()
}

/// Out-degree of every node, indexed by node id.
pub fn out_degrees(g: &CsrGraph) -> Vec<u64> {
    g.nodes().map(|u| g.out_degree(u) as u64).collect()
}

/// Mean in-degree (equals mean out-degree: both are `|E| / |V|`).
pub fn mean_degree(g: &CsrGraph) -> f64 {
    if g.node_count() == 0 {
        0.0
    } else {
        g.edge_count() as f64 / g.node_count() as f64
    }
}

/// The `k` nodes with largest in-degree, descending; ties broken by node id
/// ascending so the ranking is deterministic. This is Table 1's ranking.
pub fn top_by_in_degree(g: &CsrGraph, k: usize) -> Vec<(NodeId, u64)> {
    let mut ranked: Vec<(NodeId, u64)> =
        g.nodes().map(|u| (u, g.in_degree(u) as u64)).collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

/// CCDF of the in-degree sequence.
pub fn in_degree_ccdf(g: &CsrGraph) -> Ccdf {
    Ccdf::from_counts(&in_degrees(g))
}

/// CCDF of the out-degree sequence.
pub fn out_degree_ccdf(g: &CsrGraph) -> Ccdf {
    Ccdf::from_counts(&out_degrees(g))
}

/// Power-law fits of both degree CCDFs, fitted from `x_min` upward.
///
/// Returns `(in_fit, out_fit)`.
pub fn degree_power_laws(g: &CsrGraph, x_min: u64) -> (PowerLawFit, PowerLawFit) {
    (
        PowerLawFit::from_ccdf_with_xmin(&in_degree_ccdf(g), x_min),
        PowerLawFit::from_ccdf_with_xmin(&out_degree_ccdf(g), x_min),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn star_in(n: usize) -> CsrGraph {
        // everyone points at node 0
        from_edges(n, (1..n as NodeId).map(|i| (i, 0)))
    }

    #[test]
    fn degree_sequences() {
        let g = star_in(5);
        assert_eq!(in_degrees(&g), vec![4, 0, 0, 0, 0]);
        assert_eq!(out_degrees(&g), vec![0, 1, 1, 1, 1]);
    }

    #[test]
    fn mean_degree_edges_over_nodes() {
        let g = star_in(5);
        assert!((mean_degree(&g) - 0.8).abs() < 1e-12);
        assert_eq!(mean_degree(&from_edges(0, [])), 0.0);
    }

    #[test]
    fn top_by_in_degree_ordering_and_ties() {
        let g = from_edges(5, [(1, 0), (2, 0), (3, 0), (0, 1), (2, 1), (0, 4), (1, 4)]);
        // in-degrees: node0=3, node1=2, node4=2, node2=0, node3=0
        let top = top_by_in_degree(&g, 3);
        assert_eq!(top, vec![(0, 3), (1, 2), (4, 2)]);
    }

    #[test]
    fn top_k_truncates() {
        let g = star_in(10);
        assert_eq!(top_by_in_degree(&g, 1), vec![(0, 9)]);
        assert_eq!(top_by_in_degree(&g, 100).len(), 10);
    }

    #[test]
    fn ccdfs_built_over_all_nodes() {
        let g = star_in(4);
        let ccdf = in_degree_ccdf(&g);
        assert_eq!(ccdf.sample_size(), 4);
        assert_eq!(ccdf.eval(1), 0.25); // only the hub has in-degree >= 1
    }

    #[test]
    fn power_law_fit_on_synthetic_degrees() {
        // Build a graph whose in-degree sequence is power-law-ish:
        // node i gets floor(100/i) in-edges from distinct sources.
        let mut edges = Vec::new();
        let mut next_src = 1000u32;
        for i in 1..=50u32 {
            for _ in 0..(200 / i) {
                edges.push((next_src, i));
                next_src += 1;
            }
            // fan node i back out to nodes 1..=i so the out-degree sequence
            // also has multiple distinct positive values
            for j in 1..=i {
                if j != i {
                    edges.push((i, j));
                }
            }
        }
        let g = from_edges(next_src as usize, edges);
        let (fit_in, _fit_out) = degree_power_laws(&g, 1);
        assert!(fit_in.alpha > 0.3, "alpha {}", fit_in.alpha);
        assert!(fit_in.r_squared > 0.5);
    }
}
