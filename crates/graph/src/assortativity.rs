//! Degree assortativity (Pearson degree–degree correlation over edges).
//!
//! Social networks are typically assortative (hubs befriend hubs) while
//! web/technological graphs are disassortative; the OSN characterisation
//! literature the paper builds on (Mislove et al. \[32\]) reports this
//! coefficient, and our extension analyses use it to compare the presets.
//!
//! For a directed graph the coefficient correlates the *out*-degree of the
//! source with the *in*-degree of the target across all edges (the common
//! out–in convention); [`undirected_assortativity`] uses total degrees on
//! the undirected view.

use crate::csr::CsrGraph;

/// Pearson correlation between source out-degree and target in-degree over
/// directed edges. `None` when fewer than two edges exist or either side
/// is degree-constant (the correlation is undefined).
pub fn directed_assortativity(g: &CsrGraph) -> Option<f64> {
    pearson_over_edges(g, |u| g.out_degree(u) as f64, |v| g.in_degree(v) as f64)
}

/// Pearson correlation of total degrees across the undirected view's
/// edges.
pub fn undirected_assortativity(g: &CsrGraph) -> Option<f64> {
    let und = g.undirected_view();
    // the view is symmetric, each undirected edge counted twice — that is
    // the standard convention for this estimator
    let deg = |u| und.out_degree(u) as f64;
    pearson_over_edges(&und, deg, deg)
}

fn pearson_over_edges(
    g: &CsrGraph,
    fx: impl Fn(u32) -> f64,
    fy: impl Fn(u32) -> f64,
) -> Option<f64> {
    let m = g.edge_count();
    if m < 2 {
        return None;
    }
    let m_f = m as f64;
    let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for (u, v) in g.edges() {
        let x = fx(u);
        let y = fy(v);
        sx += x;
        sy += y;
        sxx += x * x;
        syy += y * y;
        sxy += x * y;
    }
    let cov = sxy / m_f - (sx / m_f) * (sy / m_f);
    let var_x = sxx / m_f - (sx / m_f).powi(2);
    let var_y = syy / m_f - (sy / m_f).powi(2);
    if var_x <= 1e-15 || var_y <= 1e-15 {
        return None;
    }
    Some(cov / (var_x * var_y).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn star_is_disassortative() {
        // undirected star: hubs connect only to leaves
        let g = from_edges(6, (1..6).flat_map(|i| [(0, i), (i, 0)]));
        let r = undirected_assortativity(&g).expect("defined");
        assert!(r < -0.99, "star should be maximally disassortative, got {r}");
    }

    #[test]
    fn regular_graph_undefined() {
        // a cycle: every degree equal -> zero variance -> None
        let g = from_edges(
            5,
            (0..5).flat_map(|i| {
                let j = (i + 1) % 5;
                [(i, j), (j, i)]
            }),
        );
        assert_eq!(undirected_assortativity(&g), None);
    }

    #[test]
    fn assortative_construction() {
        // two cliques of different sizes, no cross edges: high-degree with
        // high-degree, low with low
        let mut edges = Vec::new();
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        edges.push((4, 5));
        edges.push((5, 4));
        let g = from_edges(6, edges);
        let r = undirected_assortativity(&g).expect("defined");
        assert!(r > 0.99, "disconnected cliques are perfectly assortative, got {r}");
    }

    #[test]
    fn too_few_edges_none() {
        assert_eq!(directed_assortativity(&from_edges(2, [(0, 1)])), None);
        assert_eq!(directed_assortativity(&from_edges(2, [])), None);
    }

    #[test]
    fn directed_variant_uses_out_in() {
        // broadcast pattern: low-out sources point at one high-in sink and
        // high-out sources point at low-in sinks -> negative correlation
        let mut edges = vec![(0u32, 1u32)]; // low-out -> high-in
        for t in 2..8 {
            edges.push((9, t)); // high-out -> low-in
        }
        edges.push((10, 1)); // another low-out -> high-in
        let g = from_edges(11, edges);
        let r = directed_assortativity(&g).expect("defined");
        assert!(r < 0.0, "broadcast structure should be disassortative, got {r}");
    }

    #[test]
    fn bounded_by_one() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10 {
            let n = 20;
            let edges: Vec<(u32, u32)> =
                (0..80).map(|_| (rng.random_range(0..n), rng.random_range(0..n))).collect();
            let g = from_edges(n as usize, edges);
            if let Some(r) = directed_assortativity(&g) {
                assert!((-1.0..=1.0).contains(&r), "r = {r}");
            }
        }
    }
}
