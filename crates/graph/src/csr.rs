//! Compressed-sparse-row storage for a directed graph.
//!
//! The analysis algorithms are traversal-heavy, so after construction the
//! graph is frozen into two CSR halves: forward adjacency (out-circles) and
//! reverse adjacency (in-circles). Neighbour lists are sorted, which gives
//! `O(log d)` membership tests — the primitive both the reciprocity and the
//! clustering computations are built on.

use crate::cast;
use serde::{Deserialize, Serialize};

/// Dense node identifier. `u32` comfortably covers the paper's 35M nodes.
pub type NodeId = u32;

/// An immutable directed graph in CSR form with forward and reverse
/// adjacency.
///
/// Invariants (upheld by [`crate::GraphBuilder`]):
/// * neighbour lists are sorted ascending and deduplicated;
/// * `out_offsets.len() == in_offsets.len() == node_count + 1`;
/// * the reverse half contains exactly the transposed edges of the forward
///   half.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    pub(crate) out_offsets: Vec<usize>,
    pub(crate) out_targets: Vec<NodeId>,
    pub(crate) in_offsets: Vec<usize>,
    pub(crate) in_targets: Vec<NodeId>,
}

impl CsrGraph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbours of `u` (the users `u` has added to circles), sorted.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = cast::ix(u);
        &self.out_targets[self.out_offsets[u]..self.out_offsets[u + 1]]
    }

    /// In-neighbours of `u` (the users who added `u`), sorted.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    pub fn in_neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = cast::ix(u);
        &self.in_targets[self.in_offsets[u]..self.in_offsets[u + 1]]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_neighbors(u).len()
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.in_neighbors(u).len()
    }

    /// Whether the directed edge `u -> v` exists (`O(log d_out(u))`).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all directed edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..cast::node_id(self.node_count()))
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// All directed edges materialised as a vector, sorted lexicographic by
    /// `(source, target)` — the CSR layout already stores them in that
    /// order, so this is a straight copy. Canonical form for edge-multiset
    /// comparisons between graphs.
    pub fn edge_list(&self) -> Vec<(NodeId, NodeId)> {
        self.edges().collect()
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..cast::node_id(self.node_count())
    }

    /// The transposed graph (every edge reversed). `O(1)`: the two CSR
    /// halves swap roles.
    pub fn transpose(&self) -> CsrGraph {
        CsrGraph {
            out_offsets: self.in_offsets.clone(),
            out_targets: self.in_targets.clone(),
            in_offsets: self.out_offsets.clone(),
            in_targets: self.out_targets.clone(),
        }
    }

    /// Builds the undirected view: an edge between `u` and `v` whenever
    /// either direction exists. Returned as a symmetric `CsrGraph` (each
    /// undirected edge stored in both directions).
    pub fn undirected_view(&self) -> CsrGraph {
        let n = self.node_count();
        // Merge the sorted out- and in-lists per node, deduplicating.
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut targets: Vec<NodeId> = Vec::with_capacity(self.edge_count());
        for u in 0..cast::node_id(n) {
            let outs = self.out_neighbors(u);
            let ins = self.in_neighbors(u);
            let (mut i, mut j) = (0, 0);
            while i < outs.len() || j < ins.len() {
                let next = match (outs.get(i), ins.get(j)) {
                    (Some(&a), Some(&b)) if a == b => {
                        i += 1;
                        j += 1;
                        a
                    }
                    (Some(&a), Some(&b)) if a < b => {
                        i += 1;
                        a
                    }
                    (Some(_), Some(&b)) => {
                        j += 1;
                        b
                    }
                    (Some(&a), None) => {
                        i += 1;
                        a
                    }
                    (None, Some(&b)) => {
                        j += 1;
                        b
                    }
                    (None, None) => unreachable!("loop condition guarantees an element"),
                };
                // skip self-loops in the undirected view: they do not affect
                // path lengths or components and would distort degree stats
                if next != u {
                    targets.push(next);
                }
            }
            offsets.push(targets.len());
        }
        CsrGraph {
            out_offsets: offsets.clone(),
            out_targets: targets.clone(),
            in_offsets: offsets,
            in_targets: targets,
        }
    }

    /// Approximate heap footprint in bytes (offsets + targets of both
    /// halves); useful for scale planning in the examples.
    pub fn memory_bytes(&self) -> usize {
        (self.out_offsets.len() + self.in_offsets.len()) * std::mem::size_of::<usize>()
            + (self.out_targets.len() + self.in_targets.len()) * std::mem::size_of::<NodeId>()
    }

    /// Reassembles a graph from its four raw CSR arrays (the binary
    /// dataset format stores exactly these), validating every invariant
    /// the builder normally upholds: offset shape and monotonicity,
    /// sorted+deduplicated neighbour lists, in-range targets, and that
    /// the reverse half is the exact transpose of the forward half.
    pub fn from_parts(
        out_offsets: Vec<usize>,
        out_targets: Vec<NodeId>,
        in_offsets: Vec<usize>,
        in_targets: Vec<NodeId>,
    ) -> Result<CsrGraph, String> {
        if out_offsets.len() != in_offsets.len() || out_offsets.is_empty() {
            return Err(format!(
                "offset arrays disagree: {} out vs {} in",
                out_offsets.len(),
                in_offsets.len()
            ));
        }
        let n = out_offsets.len() - 1;
        if out_targets.len() != in_targets.len() {
            return Err(format!(
                "edge counts disagree: {} out vs {} in",
                out_targets.len(),
                in_targets.len()
            ));
        }
        for (label, offsets, targets) in
            [("out", &out_offsets, &out_targets), ("in", &in_offsets, &in_targets)]
        {
            if offsets[0] != 0 || offsets[n] != targets.len() {
                return Err(format!("{label} offsets do not span the target array"));
            }
            for w in offsets.windows(2) {
                if w[0] > w[1] {
                    return Err(format!("{label} offsets not monotone"));
                }
            }
            for u in 0..n {
                let list = &targets[offsets[u]..offsets[u + 1]];
                if !list.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("{label} list of node {u} not sorted+deduplicated"));
                }
                if list.last().is_some_and(|&v| cast::ix(v) >= n) {
                    return Err(format!("{label} list of node {u} has out-of-range target"));
                }
            }
        }
        let g = CsrGraph { out_offsets, out_targets, in_offsets, in_targets };
        // transpose check: every forward edge appears in the reverse half
        // and the edge counts match, so the halves are exact mirrors
        for (u, v) in g.edges() {
            if g.in_neighbors(v).binary_search(&u).is_err() {
                return Err(format!("edge ({u},{v}) missing from reverse half"));
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn diamond() -> crate::CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 0
        let mut b = GraphBuilder::new();
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)] {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn neighbors_sorted_and_correct() {
        let g = diamond();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[3]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
    }

    #[test]
    fn has_edge_binary_search() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn edges_iterator_yields_all() {
        let g = diamond();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]);
    }

    #[test]
    fn edge_list_is_sorted_and_complete() {
        let g = diamond();
        let list = g.edge_list();
        let mut sorted = list.clone();
        sorted.sort_unstable();
        assert_eq!(list, sorted, "CSR order is already lexicographic");
        assert_eq!(list, vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.node_count(), g.node_count());
        assert_eq!(t.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            assert!(t.has_edge(v, u));
        }
        assert_eq!(t.out_neighbors(3), g.in_neighbors(3));
    }

    #[test]
    fn undirected_view_symmetric_dedup() {
        // 0<->1 reciprocal pair plus 0->2 one-way
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 2);
        let u = b.build().undirected_view();
        assert_eq!(u.out_neighbors(0), &[1, 2]);
        assert_eq!(u.out_neighbors(1), &[0]);
        assert_eq!(u.out_neighbors(2), &[0]);
        // symmetric: forward and reverse halves identical
        for n in u.nodes() {
            assert_eq!(u.out_neighbors(n), u.in_neighbors(n));
        }
    }

    #[test]
    fn undirected_view_drops_self_loops() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let u = b.build().undirected_view();
        assert_eq!(u.out_neighbors(0), &[1]);
    }

    #[test]
    fn memory_bytes_positive() {
        assert!(diamond().memory_bytes() > 0);
    }
}
