//! Checked index conversions for paper-scale graphs.
//!
//! The paper's graph is 35.1M nodes / 575M edges: node ids fit a `u32`,
//! but edge *offsets* do not fit a `u32` and only fit a `usize` on 64-bit
//! hosts. Every conversion between the three domains goes through these
//! helpers so a silent `as` truncation can never corrupt an offset — the
//! failure mode is a loud panic naming the value that overflowed.

use crate::csr::NodeId;

/// Widens a node id to an index. Infallible on every supported target
/// (`usize` is at least 32 bits), spelled as a function so call sites
/// carry no bare `as` casts.
#[inline(always)]
pub fn ix(u: NodeId) -> usize {
    u as usize
}

/// Narrows an index to a node id, panicking on overflow instead of
/// wrapping. Use wherever a position in a node-indexed array is turned
/// back into a [`NodeId`].
#[inline]
pub fn node_id(i: usize) -> NodeId {
    NodeId::try_from(i).unwrap_or_else(|_| panic!("node index {i} exceeds u32 id space"))
}

/// Widens an edge offset to the on-disk `u64` domain. Infallible on
/// 64-bit targets; checked on 32-bit ones.
#[inline]
pub fn offset_u64(i: usize) -> u64 {
    u64::try_from(i).unwrap_or_else(|_| panic!("edge offset {i} exceeds u64"))
}

/// Narrows an on-disk `u64` edge offset to an in-memory index, panicking
/// if the host cannot address it (a 575M-edge CSR on a 32-bit host).
#[inline]
pub fn offset_usize(o: u64) -> usize {
    usize::try_from(o).unwrap_or_else(|_| panic!("edge offset {o} exceeds usize on this host"))
}

/// Narrows a `u64` count (distance, sample stride, level size) to `u32`,
/// panicking on overflow. Distances on a 35M-node graph are tiny, but the
/// check costs nothing and documents the domain.
#[inline]
pub fn count_u32(c: u64) -> u32 {
    u32::try_from(c).unwrap_or_else(|_| panic!("count {c} exceeds u32"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        assert_eq!(ix(7), 7usize);
        assert_eq!(node_id(7), 7u32);
        assert_eq!(node_id(u32::MAX as usize), u32::MAX);
        assert_eq!(offset_u64(123), 123u64);
        assert_eq!(offset_usize(123), 123usize);
        assert_eq!(count_u32(9), 9u32);
    }

    #[test]
    #[should_panic(expected = "exceeds u32 id space")]
    fn node_id_overflow_panics() {
        let _ = node_id(u32::MAX as usize + 1);
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    fn count_overflow_panics() {
        let _ = count_u32(u64::MAX);
    }
}
