//! Edge-list and binary graph I/O.
//!
//! The paper released its dataset as edge lists and attribute tables; this
//! module reads and writes the same TSV shape so the synthetic datasets
//! our CLI exports can round-trip through external tooling (NetworkX,
//! SNAP, graph-tool — the ecosystems the paper's data release targeted).
//!
//! For paper-scale work the TSV path is far too slow, so graphs are also
//! stored in the [`crate::binfmt`] container: either as flat CSR arrays
//! ([`write_graph_bin`] / [`read_graph_bin`]) or in delta-gap compressed
//! form ([`write_compressed`] / [`open_compressed`]). The compressed
//! reader is zero-copy — section views point straight into the file
//! mapping, so opening a multi-gigabyte dataset touches no payload bytes
//! beyond the checksum verification pass.

use crate::binfmt::{
    bytes_of_u32s, bytes_of_u64s, u32s_from_bytes, u64s_from_bytes, BinError, BinFile,
    BinWriter, U64View,
};
use crate::builder::GraphBuilder;
use crate::cast;
use crate::compressed::CompressedCsr;
use crate::csr::{CsrGraph, NodeId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from parsing an edge list.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that is not `src<TAB>dst` (1-based line number, content).
    Malformed(usize, String),
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "io error: {e}"),
            EdgeListError::Malformed(line, content) => {
                write!(f, "malformed edge at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for EdgeListError {}

impl From<std::io::Error> for EdgeListError {
    fn from(e: std::io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Writes `g` as `src<TAB>dst` lines, one directed edge per line.
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

/// Reads a `src<TAB>dst` edge list. Blank lines and lines starting with
/// `#` are skipped; node count is inferred from the largest id seen.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, EdgeListError> {
    let mut builder = GraphBuilder::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(EdgeListError::Malformed(idx + 1, line));
        };
        let (Ok(u), Ok(v)) = (a.parse::<NodeId>(), b.parse::<NodeId>()) else {
            return Err(EdgeListError::Malformed(idx + 1, line));
        };
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

// ---------------------------------------------------------------------------
// Binary graph format.
// ---------------------------------------------------------------------------

/// Format version of standalone binary graph files.
pub const GRAPH_FORMAT_VERSION: u32 = 1;

/// Section ids used by the graph serialisations. Ids below `0x10` are
/// reserved for embedding containers (the serving snapshot keeps its own
/// sections alongside these in one file).
pub mod sec {
    /// `[node_count, edge_count]` as two `u64`s.
    pub const GRAPH_META: u32 = 0x10;
    /// Flat CSR forward offsets (`u64` array, `node_count + 1` entries).
    pub const OUT_OFFSETS: u32 = 0x11;
    /// Flat CSR forward targets (`u32` array).
    pub const OUT_TARGETS: u32 = 0x12;
    /// Flat CSR reverse offsets (`u64` array).
    pub const IN_OFFSETS: u32 = 0x13;
    /// Flat CSR reverse targets (`u32` array).
    pub const IN_TARGETS: u32 = 0x14;
    /// Compressed forward byte offsets (`u64` array).
    pub const C_OUT_OFFSETS: u32 = 0x21;
    /// Compressed forward varint stream.
    pub const C_OUT_DATA: u32 = 0x22;
    /// Compressed reverse byte offsets (`u64` array).
    pub const C_IN_OFFSETS: u32 = 0x23;
    /// Compressed reverse varint stream.
    pub const C_IN_DATA: u32 = 0x24;
}

fn meta_section(node_count: usize, edge_count: u64) -> Vec<u8> {
    bytes_of_u64s(&[cast::offset_u64(node_count), edge_count])
}

fn meta_from_bin(f: &BinFile) -> Result<(usize, u64), BinError> {
    let meta = u64s_from_bytes(&f.section(sec::GRAPH_META)?)?;
    if meta.len() != 2 {
        return Err(BinError::Malformed(format!("graph meta has {} fields", meta.len())));
    }
    Ok((cast::offset_usize(meta[0]), meta[1]))
}

/// Appends a flat CSR graph's sections (meta + four arrays) to a
/// container under construction — the hook the serving snapshot uses to
/// embed its graph next to its own sections.
pub fn graph_sections(g: &CsrGraph, w: &mut BinWriter) {
    let to_u64s = |offsets: &[usize]| {
        bytes_of_u64s(&offsets.iter().map(|&o| cast::offset_u64(o)).collect::<Vec<u64>>())
    };
    w.section(sec::GRAPH_META, meta_section(g.node_count(), cast::offset_u64(g.edge_count())));
    w.section(sec::OUT_OFFSETS, to_u64s(&g.out_offsets));
    w.section(sec::OUT_TARGETS, bytes_of_u32s(&g.out_targets));
    w.section(sec::IN_OFFSETS, to_u64s(&g.in_offsets));
    w.section(sec::IN_TARGETS, bytes_of_u32s(&g.in_targets));
}

/// Reassembles a flat CSR graph from container sections, re-validating
/// every structural invariant via [`CsrGraph::from_parts`].
pub fn graph_from_bin(f: &BinFile) -> Result<CsrGraph, BinError> {
    let (node_count, edge_count) = meta_from_bin(f)?;
    let offsets = |id: u32| -> Result<Vec<usize>, BinError> {
        Ok(u64s_from_bytes(&f.section(id)?)?.into_iter().map(cast::offset_usize).collect())
    };
    let g = CsrGraph::from_parts(
        offsets(sec::OUT_OFFSETS)?,
        u32s_from_bytes(&f.section(sec::OUT_TARGETS)?)?,
        offsets(sec::IN_OFFSETS)?,
        u32s_from_bytes(&f.section(sec::IN_TARGETS)?)?,
    )
    .map_err(BinError::Malformed)?;
    if g.node_count() != node_count || cast::offset_u64(g.edge_count()) != edge_count {
        return Err(BinError::Malformed(format!(
            "meta claims {node_count} nodes / {edge_count} edges, sections hold {} / {}",
            g.node_count(),
            g.edge_count()
        )));
    }
    Ok(g)
}

/// Writes a flat CSR graph as a standalone binary container.
pub fn write_graph_bin(g: &CsrGraph, path: &Path) -> std::io::Result<()> {
    let mut w = BinWriter::new(GRAPH_FORMAT_VERSION);
    graph_sections(g, &mut w);
    w.write_to_path(path)
}

/// Reads a flat CSR graph written by [`write_graph_bin`].
pub fn read_graph_bin(path: &Path) -> Result<CsrGraph, BinError> {
    graph_from_bin(&BinFile::open(path, GRAPH_FORMAT_VERSION)?)
}

/// Appends a compressed graph's sections to a container under
/// construction.
pub fn compressed_sections(c: &CompressedCsr, w: &mut BinWriter) {
    let (out_offsets, out_data, in_offsets, in_data) = c.parts();
    w.section(sec::GRAPH_META, meta_section(c.node_count(), c.edge_count()));
    w.section(sec::C_OUT_OFFSETS, out_offsets.as_bytes().to_vec());
    w.section(sec::C_OUT_DATA, out_data.to_vec());
    w.section(sec::C_IN_OFFSETS, in_offsets.as_bytes().to_vec());
    w.section(sec::C_IN_DATA, in_data.to_vec());
}

/// Reassembles a compressed graph from container sections. Zero-copy:
/// when `f` is mmap-backed the offset views and varint streams stay in
/// the mapping.
pub fn compressed_from_bin(f: &BinFile) -> Result<CompressedCsr, BinError> {
    let (node_count, edge_count) = meta_from_bin(f)?;
    CompressedCsr::from_parts(
        node_count,
        edge_count,
        U64View::new(f.section(sec::C_OUT_OFFSETS)?)?,
        f.section(sec::C_OUT_DATA)?,
        U64View::new(f.section(sec::C_IN_OFFSETS)?)?,
        f.section(sec::C_IN_DATA)?,
    )
}

/// Writes a compressed graph as a standalone binary container.
pub fn write_compressed(c: &CompressedCsr, path: &Path) -> std::io::Result<()> {
    let mut w = BinWriter::new(GRAPH_FORMAT_VERSION);
    compressed_sections(c, &mut w);
    w.write_to_path(path)
}

/// Opens a compressed graph written by [`write_compressed`], mmap-backed
/// on Unix.
pub fn open_compressed(path: &Path) -> Result<CompressedCsr, BinError> {
    compressed_from_bin(&BinFile::open(path, GRAPH_FORMAT_VERSION)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn round_trip() {
        let g = from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let input = "# a comment\n0\t1\n\n1\t2\n# trailing\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn whitespace_flexible() {
        let g = read_edge_list("0 1\n2   3\n".as_bytes()).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn malformed_lines_reported_with_position() {
        let err = read_edge_list("0\t1\nnot an edge\n".as_bytes()).unwrap_err();
        match err {
            EdgeListError::Malformed(line, content) => {
                assert_eq!(line, 2);
                assert!(content.contains("not an edge"));
            }
            other => panic!("wrong error: {other}"),
        }
        // too many fields is also malformed
        assert!(read_edge_list("0\t1\t2\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn duplicate_edges_deduplicated() {
        let g = read_edge_list("0\t1\n0\t1\n".as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gplus-io-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn flat_binary_round_trip() {
        let g = from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (5, 0), (0, 5)]);
        let dir = tmp_dir("flat");
        let path = dir.join("graph.bin");
        write_graph_bin(&g, &path).unwrap();
        let back = read_graph_bin(&path).unwrap();
        assert_eq!(back, g);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compressed_binary_round_trip_zero_copy() {
        let g = from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (5, 0), (0, 5)]);
        let c = CompressedCsr::from_csr(&g);
        let dir = tmp_dir("comp");
        let path = dir.join("graph.cbin");
        write_compressed(&c, &path).unwrap();
        let opened = open_compressed(&path).unwrap();
        assert_eq!(opened.node_count(), g.node_count());
        assert_eq!(opened.edge_count(), g.edge_count() as u64);
        assert_eq!(opened.to_csr(), g);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flat_binary_empty_graph() {
        let g = from_edges(0, []);
        let dir = tmp_dir("empty");
        let path = dir.join("empty.bin");
        write_graph_bin(&g, &path).unwrap();
        assert_eq!(read_graph_bin(&path).unwrap(), g);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_binary_rejected_at_open() {
        let g = from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let dir = tmp_dir("corrupt");
        let path = dir.join("graph.bin");
        write_graph_bin(&g, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, bytes).unwrap();
        let err = read_graph_bin(&path).unwrap_err();
        assert!(matches!(err, BinError::Checksum { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_meta_mismatch_rejected() {
        // hand-build a container whose meta disagrees with the arrays
        let g = from_edges(3, [(0, 1), (1, 2)]);
        let mut w = BinWriter::new(GRAPH_FORMAT_VERSION);
        let to_u64s = |offsets: &[usize]| {
            bytes_of_u64s(&offsets.iter().map(|&o| o as u64).collect::<Vec<u64>>())
        };
        w.section(sec::GRAPH_META, meta_section(99, 99));
        w.section(sec::OUT_OFFSETS, to_u64s(&g.out_offsets));
        w.section(sec::OUT_TARGETS, bytes_of_u32s(&g.out_targets));
        w.section(sec::IN_OFFSETS, to_u64s(&g.in_offsets));
        w.section(sec::IN_TARGETS, bytes_of_u32s(&g.in_targets));
        let f = BinFile::from_bytes(w.to_bytes(), GRAPH_FORMAT_VERSION).unwrap();
        assert!(matches!(graph_from_bin(&f), Err(BinError::Malformed(_))));
    }
}
