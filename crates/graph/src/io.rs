//! Edge-list I/O.
//!
//! The paper released its dataset as edge lists and attribute tables; this
//! module reads and writes the same TSV shape so the synthetic datasets
//! our CLI exports can round-trip through external tooling (NetworkX,
//! SNAP, graph-tool — the ecosystems the paper's data release targeted).

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, NodeId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors from parsing an edge list.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that is not `src<TAB>dst` (1-based line number, content).
    Malformed(usize, String),
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "io error: {e}"),
            EdgeListError::Malformed(line, content) => {
                write!(f, "malformed edge at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for EdgeListError {}

impl From<std::io::Error> for EdgeListError {
    fn from(e: std::io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Writes `g` as `src<TAB>dst` lines, one directed edge per line.
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

/// Reads a `src<TAB>dst` edge list. Blank lines and lines starting with
/// `#` are skipped; node count is inferred from the largest id seen.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, EdgeListError> {
    let mut builder = GraphBuilder::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(EdgeListError::Malformed(idx + 1, line));
        };
        let (Ok(u), Ok(v)) = (a.parse::<NodeId>(), b.parse::<NodeId>()) else {
            return Err(EdgeListError::Malformed(idx + 1, line));
        };
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn round_trip() {
        let g = from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let input = "# a comment\n0\t1\n\n1\t2\n# trailing\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn whitespace_flexible() {
        let g = read_edge_list("0 1\n2   3\n".as_bytes()).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
    }

    #[test]
    fn malformed_lines_reported_with_position() {
        let err = read_edge_list("0\t1\nnot an edge\n".as_bytes()).unwrap_err();
        match err {
            EdgeListError::Malformed(line, content) => {
                assert_eq!(line, 2);
                assert!(content.contains("not an edge"));
            }
            other => panic!("wrong error: {other}"),
        }
        // too many fields is also malformed
        assert!(read_edge_list("0\t1\t2\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn duplicate_edges_deduplicated() {
        let g = read_edge_list("0\t1\n0\t1\n".as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 1);
    }
}
