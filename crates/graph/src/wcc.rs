//! Weakly connected components via union–find.
//!
//! §3.3.4 notes that "the social graph G consists of only one WCC" because
//! the crawl was a bidirectional snowball — a property the crawler tests
//! assert. The union–find here carries union-by-size and path halving, so
//! building the WCC of a 575M-edge graph is effectively linear.

use crate::csr::{CsrGraph, NodeId};
use serde::{Deserialize, Serialize};

/// Disjoint-set forest over dense node ids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), size: vec![1; n], components: n }
    }

    /// Representative of `x`'s set, with path halving.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

/// Weakly connected components of a directed graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WccResult {
    /// Per-node component id, dense in `0..count`.
    pub component: Vec<u32>,
    /// Number of weakly connected components.
    pub count: usize,
}

impl WccResult {
    /// Size of every component, indexed by id.
    pub fn sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.count];
        for &c in &self.component {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Size of the largest component.
    pub fn giant_size(&self) -> u64 {
        self.sizes().into_iter().max().unwrap_or(0)
    }

    /// Fraction of nodes in the largest component.
    pub fn giant_fraction(&self) -> f64 {
        if self.component.is_empty() {
            0.0
        } else {
            self.giant_size() as f64 / self.component.len() as f64
        }
    }
}

/// Computes the weakly connected components of `g`.
pub fn weakly_connected_components(g: &CsrGraph) -> WccResult {
    let _span = gplus_obs::global().span("graph.wcc");
    let n = g.node_count();
    let mut uf = UnionFind::new(n);
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    // densify representative ids: roots are node ids (already dense in
    // 0..n), so a Vec remap table replaces the old per-node HashMap
    let mut remap = vec![u32::MAX; n];
    let mut component = vec![0u32; n];
    let mut count = 0u32;
    for v in 0..n as NodeId {
        let root = uf.find(v) as usize;
        if remap[root] == u32::MAX {
            remap[root] = count;
            count += 1;
        }
        component[v as usize] = remap[root];
    }
    gplus_obs::global().counter("graph.wcc.nodes_count").add(n as u64);
    WccResult { component, count: count as usize }
}

/// Computes the weakly connected components by direction-optimizing flood
/// fill over the symmetric adjacency (out ∪ in), labelling from ascending
/// unlabeled roots.
///
/// Produces the *same labelling* as [`weakly_connected_components`], not
/// just the same partition: union–find assigns dense ids by first
/// occurrence over `v = 0..n` ascending, i.e. by each component's minimum
/// member, and so does a root scan in ascending order. Compared to
/// union–find this trades pointer-chasing `find` chains for the same
/// bitmap-frontier sweep the BFS kernels use, which wins once the graph
/// stops fitting in cache.
pub fn weakly_connected_components_bfs(g: &CsrGraph, hybrid_threshold: f64) -> WccResult {
    use crate::frontier::Bitmap;
    let obs = gplus_obs::global();
    let _span = obs.span("graph.wcc.bfs");
    let n = g.node_count();
    obs.counter("graph.wcc.nodes_count").add(n as u64);
    let mut component = vec![u32::MAX; n];
    let mut frontier_bits = Bitmap::new(n);
    let mut queue: Vec<NodeId> = Vec::new();
    let mut next: Vec<NodeId> = Vec::new();
    let mut count = 0u32;
    // each undirected edge can be relaxed from both endpoints
    let switch_edges = hybrid_threshold * (2 * g.edge_count()) as f64;
    let mut labeled: usize = 0;
    for root in 0..n as NodeId {
        if component[root as usize] != u32::MAX {
            continue;
        }
        component[root as usize] = count;
        labeled += 1;
        queue.clear();
        queue.push(root);
        while !queue.is_empty() {
            let frontier_edges: usize =
                queue.iter().map(|&u| g.out_degree(u) + g.in_degree(u)).sum();
            let bottom_up = labeled < n && frontier_edges as f64 > switch_edges;
            next.clear();
            if bottom_up {
                frontier_bits.clear();
                for &u in &queue {
                    frontier_bits.set(u);
                }
                for v in 0..n as NodeId {
                    if component[v as usize] != u32::MAX {
                        continue;
                    }
                    let adjacent = g
                        .out_neighbors(v)
                        .iter()
                        .chain(g.in_neighbors(v))
                        .any(|&u| frontier_bits.get(u));
                    if adjacent {
                        component[v as usize] = count;
                        labeled += 1;
                        next.push(v);
                    }
                }
            } else {
                for i in 0..queue.len() {
                    let u = queue[i];
                    for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                        if component[v as usize] == u32::MAX {
                            component[v as usize] = count;
                            labeled += 1;
                            next.push(v);
                        }
                    }
                }
            }
            std::mem::swap(&mut queue, &mut next);
        }
        count += 1;
    }
    WccResult { component, count: count as usize }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert_eq!(uf.component_count(), 4);
        assert_eq!(uf.component_size(0), 2);
        assert_eq!(uf.component_size(3), 1);
    }

    #[test]
    fn union_by_size_keeps_sizes_consistent() {
        let mut uf = UnionFind::new(8);
        for i in 0..7 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.component_count(), 1);
        assert_eq!(uf.component_size(3), 8);
    }

    #[test]
    fn wcc_ignores_direction() {
        // 0->1<-2 is weakly one component even though not strongly
        let g = from_edges(3, [(0, 1), (2, 1)]);
        let wcc = weakly_connected_components(&g);
        assert_eq!(wcc.count, 1);
        assert_eq!(wcc.giant_fraction(), 1.0);
    }

    #[test]
    fn wcc_separate_islands() {
        let g = from_edges(6, [(0, 1), (2, 3)]);
        let wcc = weakly_connected_components(&g);
        // {0,1}, {2,3}, {4}, {5}
        assert_eq!(wcc.count, 4);
        let mut sizes = wcc.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 2, 2]);
        assert_eq!(wcc.giant_size(), 2);
    }

    #[test]
    fn wcc_empty_graph() {
        let g = from_edges(0, []);
        let wcc = weakly_connected_components(&g);
        assert_eq!(wcc.count, 0);
        assert_eq!(wcc.giant_fraction(), 0.0);
    }

    #[test]
    fn bfs_wcc_labelling_equals_union_find() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2012);
        for trial in 0..20 {
            let n = 1 + rng.random_range(0..60);
            let m = rng.random_range(0..n * 2);
            let edges: Vec<(NodeId, NodeId)> = (0..m)
                .map(|_| (rng.random_range(0..n) as NodeId, rng.random_range(0..n) as NodeId))
                .collect();
            let g = from_edges(n, edges);
            let threshold = rng.random_range(0..100) as f64 / 100.0;
            let uf = weakly_connected_components(&g);
            let bfs = weakly_connected_components_bfs(&g, threshold);
            // identical labelling, not merely the same partition
            assert_eq!(uf, bfs, "trial {trial}, threshold {threshold}");
        }
        let empty = from_edges(0, []);
        assert_eq!(
            weakly_connected_components(&empty),
            weakly_connected_components_bfs(&empty, 0.05)
        );
    }

    #[test]
    fn wcc_at_least_as_coarse_as_scc() {
        use crate::scc::kosaraju;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let n = 2 + rng.random_range(0..50);
            let m = rng.random_range(0..n * 2);
            let edges: Vec<(NodeId, NodeId)> = (0..m)
                .map(|_| (rng.random_range(0..n) as NodeId, rng.random_range(0..n) as NodeId))
                .collect();
            let g = from_edges(n, edges);
            let wcc = weakly_connected_components(&g);
            let scc = kosaraju(&g);
            assert!(wcc.count <= scc.count);
            // strongly connected implies weakly connected
            for u in g.nodes() {
                for v in g.nodes() {
                    if scc.same_component(u, v) {
                        assert_eq!(wcc.component[u as usize], wcc.component[v as usize]);
                    }
                }
            }
        }
    }
}
