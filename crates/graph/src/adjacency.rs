//! The adjacency abstraction the traversal kernels are generic over.
//!
//! PR 8 introduces a second graph representation — the delta-gap varint
//! [`crate::compressed::CompressedCsr`] — next to the flat
//! [`crate::CsrGraph`]. Rather than duplicating every kernel, BFS, the
//! batched multi-source BFS, PageRank and the clustering sorted-merge are
//! written against this trait: per-node neighbour *iterators* instead of
//! slices. For the flat CSR the iterator is `Copied<slice::Iter>`, which
//! the optimizer lowers to exactly the loops the kernels had before; for
//! the compressed CSR it is a varint decoder that yields neighbours
//! without materialising the list — no per-edge allocation either way.
//!
//! Invariants every implementation must uphold (the kernels rely on them):
//! * `out_iter(u)` / `in_iter(u)` yield neighbours sorted ascending,
//!   deduplicated;
//! * the in-adjacency is exactly the transpose of the out-adjacency;
//! * `out_degree(u)` equals `out_iter(u).count()` (same for `in_`).

use crate::csr::{CsrGraph, NodeId};

/// A frozen directed graph with forward and reverse adjacency, walkable
/// without per-edge allocation.
pub trait Adjacency: Sync {
    /// Neighbour iterator; one type serves both directions.
    type Iter<'a>: Iterator<Item = NodeId> + 'a
    where
        Self: 'a;

    /// Number of nodes.
    fn node_count(&self) -> usize;

    /// Number of directed edges.
    fn edge_count(&self) -> usize;

    /// Out-degree of `u`.
    fn out_degree(&self, u: NodeId) -> usize;

    /// In-degree of `u`.
    fn in_degree(&self, u: NodeId) -> usize;

    /// Out-neighbours of `u`, sorted ascending.
    fn out_iter(&self, u: NodeId) -> Self::Iter<'_>;

    /// In-neighbours of `u`, sorted ascending.
    fn in_iter(&self, u: NodeId) -> Self::Iter<'_>;

    /// Iterates over all node ids.
    fn node_ids(&self) -> std::ops::Range<NodeId> {
        0..crate::cast::node_id(self.node_count())
    }
}

impl Adjacency for CsrGraph {
    type Iter<'a> = std::iter::Copied<std::slice::Iter<'a, NodeId>>;

    fn node_count(&self) -> usize {
        CsrGraph::node_count(self)
    }

    fn edge_count(&self) -> usize {
        CsrGraph::edge_count(self)
    }

    fn out_degree(&self, u: NodeId) -> usize {
        CsrGraph::out_degree(self, u)
    }

    fn in_degree(&self, u: NodeId) -> usize {
        CsrGraph::in_degree(self, u)
    }

    fn out_iter(&self, u: NodeId) -> Self::Iter<'_> {
        self.out_neighbors(u).iter().copied()
    }

    fn in_iter(&self, u: NodeId) -> Self::Iter<'_> {
        self.in_neighbors(u).iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn csr_iterators_match_slices() {
        let g = from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]);
        for u in g.nodes() {
            let outs: Vec<NodeId> = Adjacency::out_iter(&g, u).collect();
            assert_eq!(outs, g.out_neighbors(u));
            let ins: Vec<NodeId> = Adjacency::in_iter(&g, u).collect();
            assert_eq!(ins, g.in_neighbors(u));
            assert_eq!(Adjacency::out_degree(&g, u), g.out_neighbors(u).len());
            assert_eq!(Adjacency::in_degree(&g, u), g.in_neighbors(u).len());
        }
        assert_eq!(Adjacency::node_count(&g), 5);
        assert_eq!(Adjacency::edge_count(&g), 5);
        assert_eq!(g.node_ids(), 0..5);
    }
}
