//! Directed social-graph substrate for the Google+ IMC'12 reproduction.
//!
//! §3 of the paper defines the object of study: "the social relations among
//! Google+ users make a directed graph G(V, E)", where an edge `(u, v)`
//! means `u` added `v` to one of her circles. This crate implements that
//! graph and every structural algorithm the paper runs on it:
//!
//! * [`GraphBuilder`] / [`CsrGraph`] — edge-list accumulation compacted into
//!   a compressed-sparse-row representation with *both* forward (out-circle)
//!   and reverse (in-circle) adjacency, mirroring the paper's bidirectional
//!   crawl.
//! * [`bfs`] — breadth-first traversal and single-source shortest paths over
//!   the directed graph or its undirected view (Figure 5 uses both); the
//!   classic top-down kernel plus a Beamer-style direction-optimizing one.
//! * [`mbfs`] — batched multi-source BFS advancing up to 64 traversals per
//!   CSR sweep with one `u64` lane word per node.
//! * [`relabel`] — locality-aware (hub-first) node permutations applied at
//!   build time, invisible in results via the inverse map.
//! * [`scc`] — strongly connected components via Kosaraju's two-DFS
//!   procedure ("we used a procedure involving two Depth First Searches",
//!   §3.3.4) and, as a cross-check/ablation, iterative Tarjan.
//! * [`wcc`] — weakly connected components by union–find.
//! * [`reciprocity`] — the per-node Relation Reciprocity of Eq. 1 and the
//!   global reciprocal-edge fraction (32% for Google+, §3.3.2).
//! * [`clustering`] — the directed clustering coefficient of §3.3.3
//!   (triangles among *outgoing* neighbours over `|OS(u)|(|OS(u)|-1)`),
//!   exact or over a node sample as the paper did (1M nodes).
//! * [`motifs`] — directed-triangle motif census over the 7 non-isomorphic
//!   classes (the triangle rows of the triad census), per-graph totals plus
//!   per-node participation, deterministic at any thread count.
//! * [`paths`] — sampled shortest-path-length distributions with the
//!   paper's adaptive `k = 2000 → 10000` schedule, plus diameter estimation.
//! * [`degree`] — degree sequences and distribution helpers for Figure 3.
//! * [`compressed`] — delta-gap varint neighbour encoding of the CSR
//!   halves (WebGraph-style); together with the hub-first [`relabel`]
//!   permutation the gap stream compresses far below 4 bytes/edge, and
//!   every traversal kernel runs over it unchanged via [`Adjacency`].
//! * [`binfmt`] — the versioned, checksummed binary container behind the
//!   mmap-able dataset/snapshot files, and [`io`] — edge-list TSV plus the
//!   binary graph format built on it.
//!
//! Beyond the paper's own toolkit, the crate ships the standard OSN
//! characterisation extensions used by the ablation analyses:
//! [`pagerank`] (ranking robustness vs Table 1's raw in-degree),
//! [`betweenness`] (sampled Brandes bridge centrality), [`kcore`]
//! (dense-nucleus structure) and [`assortativity`] (degree–degree
//! correlation).
//!
//! All algorithms are deterministic given a seeded RNG. Node ids are dense
//! `u32` indices assigned by the builder; callers keep their own mapping to
//! external identities (the synth crate maps them to user ids).
//!
//! ```
//! use gplus_graph::{GraphBuilder, reciprocity};
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 0); // reciprocated
//! b.add_edge(0, 2); // not reciprocated
//! let g = b.build();
//! let global = reciprocity::global_reciprocity(&g);
//! assert!((global - 2.0 / 3.0).abs() < 1e-12);
//! ```

pub mod adjacency;
pub mod assortativity;
pub mod betweenness;
pub mod bfs;
pub mod binfmt;
pub mod builder;
pub mod cast;
pub mod clustering;
pub mod compressed;
pub mod csr;
pub mod degree;
pub mod frontier;
pub mod io;
pub mod kcore;
pub mod mbfs;
pub mod motifs;
pub mod pagerank;
pub mod par;
pub mod paths;
pub mod reciprocity;
pub mod relabel;
pub mod scc;
pub mod wcc;

pub use adjacency::Adjacency;
pub use builder::GraphBuilder;
pub use compressed::CompressedCsr;
pub use csr::{CsrGraph, NodeId};
