//! Strongly connected components.
//!
//! §3.3.4: "We identified 9,771,696 SCCs in G. To reach this number we used
//! a procedure involving two Depth First Searches" — i.e. Kosaraju's
//! algorithm. [`kosaraju`] is the faithful implementation (iterative, so it
//! survives multi-million-node graphs without blowing the stack);
//! [`tarjan`] is the single-pass alternative used as a cross-check and in
//! the ablation bench. Both return the same labelling up to renumbering.

use crate::csr::{CsrGraph, NodeId};
use serde::{Deserialize, Serialize};

/// A component labelling: `component[v]` is the SCC id of node `v`, ids are
/// dense in `0..count`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SccResult {
    /// Per-node component id.
    pub component: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl SccResult {
    /// Size of every component, indexed by component id.
    pub fn sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.count];
        for &c in &self.component {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn giant_size(&self) -> u64 {
        self.sizes().into_iter().max().unwrap_or(0)
    }

    /// Fraction of nodes inside the largest component.
    pub fn giant_fraction(&self) -> f64 {
        if self.component.is_empty() {
            0.0
        } else {
            self.giant_size() as f64 / self.component.len() as f64
        }
    }

    /// Whether `u` and `v` are strongly connected.
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.component[u as usize] == self.component[v as usize]
    }
}

/// Reusable state shared by both of Kosaraju's passes: one explicit DFS
/// stack (pass 2 pushes `(node, 0)` and ignores the child index), the
/// finish-order buffer, and the pass-1 visited array. At paper scale these
/// are hundreds of megabytes, so allocating them once — and letting
/// repeated SCC runs (bench ablations, tests) recycle them — matters.
#[derive(Debug, Default)]
pub struct SccScratch {
    call: Vec<(NodeId, usize)>,
    finish_order: Vec<NodeId>,
    visited: Vec<bool>,
}

impl SccScratch {
    /// Creates scratch space sized for a graph of `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            call: Vec::with_capacity(n),
            finish_order: Vec::with_capacity(n),
            visited: vec![false; n],
        }
    }

    fn reset(&mut self, n: usize) {
        self.call.clear();
        self.finish_order.clear();
        self.visited.clear();
        self.visited.resize(n, false);
    }
}

/// Kosaraju's two-DFS SCC algorithm (iterative).
///
/// Pass 1: DFS on `G` recording nodes in order of completion. Pass 2: DFS on
/// the transpose in reverse completion order; each tree is one SCC. The
/// transpose is free because [`CsrGraph`] stores reverse adjacency.
pub fn kosaraju(g: &CsrGraph) -> SccResult {
    kosaraju_with_scratch(g, &mut SccScratch::new(g.node_count()))
}

/// [`kosaraju`] over caller-provided scratch; both passes share the same
/// stack allocation.
pub fn kosaraju_with_scratch(g: &CsrGraph, scratch: &mut SccScratch) -> SccResult {
    let obs = gplus_obs::global();
    let _span = obs.span("graph.scc.kosaraju");
    let n = g.node_count();
    obs.counter("graph.scc.nodes_count").add(n as u64);
    scratch.reset(n);

    // Pass 1: iterative DFS with an explicit (node, next-child-index) stack.
    for root in 0..n as NodeId {
        if scratch.visited[root as usize] {
            continue;
        }
        scratch.visited[root as usize] = true;
        scratch.call.push((root, 0));
        while let Some(&mut (u, ref mut idx)) = scratch.call.last_mut() {
            let neigh = g.out_neighbors(u);
            if *idx < neigh.len() {
                let v = neigh[*idx];
                *idx += 1;
                if !scratch.visited[v as usize] {
                    scratch.visited[v as usize] = true;
                    scratch.call.push((v, 0));
                }
            } else {
                scratch.finish_order.push(u);
                scratch.call.pop();
            }
        }
    }

    // Pass 2: DFS on the transpose in reverse finish order, reusing the
    // pass-1 stack (the child index is dead weight here — pass 2 labels on
    // push, so plain LIFO order is fine).
    let mut component = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut labeled = 0u64;
    for i in (0..scratch.finish_order.len()).rev() {
        let root = scratch.finish_order[i];
        if component[root as usize] != u32::MAX {
            continue;
        }
        component[root as usize] = count;
        labeled += 1;
        scratch.call.push((root, 0));
        while let Some((u, _)) = scratch.call.pop() {
            // transpose edges == in_neighbors of the original graph
            for &v in g.in_neighbors(u) {
                if component[v as usize] == u32::MAX {
                    component[v as usize] = count;
                    labeled += 1;
                    scratch.call.push((v, 0));
                }
            }
        }
        count += 1;
    }
    obs.counter("graph.scc.visited_count").add(labeled);

    SccResult { component, count: count as usize }
}

/// Tarjan's single-pass SCC algorithm, fully iterative.
///
/// Kept as an independent implementation for cross-validation (the test
/// suite asserts it partitions identically to [`kosaraju`]) and for the
/// ablation bench comparing the two.
pub fn tarjan(g: &CsrGraph) -> SccResult {
    let obs = gplus_obs::global();
    let _span = obs.span("graph.scc.tarjan");
    const UNSET: u32 = u32::MAX;
    let n = g.node_count();
    obs.counter("graph.scc.nodes_count").add(n as u64);
    let mut labeled = 0u64;
    let mut index = vec![UNSET; n]; // discovery index
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component = vec![UNSET; n];
    let mut scc_stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut count = 0u32;

    // explicit call stack: (node, next child position)
    let mut call: Vec<(NodeId, usize)> = Vec::new();
    for root in 0..n as NodeId {
        if index[root as usize] != UNSET {
            continue;
        }
        call.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        scc_stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (u, ref mut child)) = call.last_mut() {
            let neigh = g.out_neighbors(u);
            if *child < neigh.len() {
                let v = neigh[*child];
                *child += 1;
                if index[v as usize] == UNSET {
                    index[v as usize] = next_index;
                    lowlink[v as usize] = next_index;
                    next_index += 1;
                    scc_stack.push(v);
                    on_stack[v as usize] = true;
                    call.push((v, 0));
                } else if on_stack[v as usize] {
                    lowlink[u as usize] = lowlink[u as usize].min(index[v as usize]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent as usize] =
                        lowlink[parent as usize].min(lowlink[u as usize]);
                }
                if lowlink[u as usize] == index[u as usize] {
                    // u is the root of an SCC: pop the component off the stack
                    loop {
                        let w = scc_stack.pop().expect("scc stack underflow");
                        on_stack[w as usize] = false;
                        component[w as usize] = count;
                        labeled += 1;
                        if w == u {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }
    // parity with kosaraju: every node is labeled exactly once
    obs.counter("graph.scc.visited_count").add(labeled);

    SccResult { component, count: count as usize }
}

/// Verifies two SCC labellings describe the same partition (component ids
/// may differ). Used by tests and the ablation bench's sanity check.
pub fn same_partition(a: &SccResult, b: &SccResult) -> bool {
    if a.component.len() != b.component.len() || a.count != b.count {
        return false;
    }
    // bijective mapping a-id -> b-id
    let mut map = vec![u32::MAX; a.count];
    let mut seen = vec![false; b.count];
    for (ca, cb) in a.component.iter().zip(&b.component) {
        let slot = &mut map[*ca as usize];
        if *slot == u32::MAX {
            if seen[*cb as usize] {
                return false; // b-id already claimed by another a-id
            }
            seen[*cb as usize] = true;
            *slot = *cb;
        } else if *slot != *cb {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn single_cycle_one_component() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        for scc in [kosaraju(&g), tarjan(&g)] {
            assert_eq!(scc.count, 1);
            assert_eq!(scc.giant_size(), 4);
            assert_eq!(scc.giant_fraction(), 1.0);
        }
    }

    #[test]
    fn dag_all_singletons() {
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        for scc in [kosaraju(&g), tarjan(&g)] {
            assert_eq!(scc.count, 4);
            assert_eq!(scc.giant_size(), 1);
        }
    }

    #[test]
    fn two_cycles_bridge() {
        // cycle {0,1,2}, cycle {3,4}, one-way bridge 2->3
        let g = from_edges(5, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (2, 3)]);
        for scc in [kosaraju(&g), tarjan(&g)] {
            assert_eq!(scc.count, 2);
            let mut sizes = scc.sizes();
            sizes.sort_unstable();
            assert_eq!(sizes, vec![2, 3]);
            assert!(scc.same_component(0, 2));
            assert!(scc.same_component(3, 4));
            assert!(!scc.same_component(0, 3));
        }
    }

    #[test]
    fn isolated_nodes_are_singleton_sccs() {
        let g = from_edges(5, [(0, 1), (1, 0)]);
        let scc = kosaraju(&g);
        assert_eq!(scc.count, 4); // {0,1} plus 3 singletons
    }

    #[test]
    fn empty_graph() {
        let g = from_edges(0, []);
        let scc = kosaraju(&g);
        assert_eq!(scc.count, 0);
        assert_eq!(scc.giant_fraction(), 0.0);
    }

    #[test]
    fn self_loop_single_node_component() {
        let g = from_edges(2, [(0, 0), (0, 1)]);
        let scc = kosaraju(&g);
        assert_eq!(scc.count, 2);
    }

    #[test]
    fn kosaraju_tarjan_agree_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2012);
        for trial in 0..20 {
            let n = 2 + rng.random_range(0..60);
            let m = rng.random_range(0..n * 3);
            let edges: Vec<(NodeId, NodeId)> = (0..m)
                .map(|_| (rng.random_range(0..n) as NodeId, rng.random_range(0..n) as NodeId))
                .collect();
            let g = from_edges(n, edges);
            let a = kosaraju(&g);
            let b = tarjan(&g);
            assert!(same_partition(&a, &b), "disagreement on trial {trial}");
        }
    }

    #[test]
    fn scratch_reuse_across_graphs() {
        let small = from_edges(3, [(0, 1), (1, 0)]);
        let big = from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (2, 3), (5, 5)]);
        let mut scratch = SccScratch::new(small.node_count());
        let a = kosaraju_with_scratch(&small, &mut scratch);
        // grows across a larger graph, then shrinks back, without stale state
        let b = kosaraju_with_scratch(&big, &mut scratch);
        let a2 = kosaraju_with_scratch(&small, &mut scratch);
        assert_eq!(a, a2);
        assert_eq!(a.count, 2);
        assert_eq!(b.count, 3);
        assert_eq!(b, kosaraju(&big));
    }

    #[test]
    fn same_partition_detects_mismatch() {
        let a = SccResult { component: vec![0, 0, 1], count: 2 };
        let b = SccResult { component: vec![0, 1, 1], count: 2 };
        assert!(!same_partition(&a, &b));
        assert!(same_partition(&a, &a));
    }

    #[test]
    fn scc_members_mutually_reachable() {
        // verify the defining property on a nontrivial graph
        use crate::bfs;
        let g = from_edges(7, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3), (5, 6)]);
        let scc = kosaraju(&g);
        for u in g.nodes() {
            let reach = bfs::reachable_set(&g, u);
            for v in g.nodes() {
                if scc.same_component(u, v) {
                    assert!(reach.contains(&v), "{u} should reach {v}");
                }
            }
        }
    }
}
