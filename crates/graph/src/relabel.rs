//! Locality-aware node relabeling.
//!
//! BFS over a social graph spends most of its time chasing the adjacency
//! of a few hubs: the degree distribution is heavy-tailed (§3.3.1), so a
//! handful of nodes account for a large share of all edge endpoints. A
//! degree-descending (hub-first) permutation packs those endpoints into
//! the low end of the id space, which keeps the visited bitmap words and
//! distance-array cache lines touched by the hot part of every traversal
//! resident — the classic locality trick behind direction-optimizing BFS
//! implementations.
//!
//! A [`Relabeling`] is a bijection between the public ("old") id space and
//! the traversal-friendly ("new") one. The invariant the analysis layer
//! relies on: relabeling is *invisible* in results. Callers translate
//! sources with [`Relabeling::to_new`] before traversing and translate any
//! node-valued outputs back with [`Relabeling::to_old`]; level counts,
//! distances, component sizes and every other id-free aggregate are equal
//! by graph isomorphism.

use crate::cast;
use crate::csr::{CsrGraph, NodeId};

/// A bijective node permutation with both directions materialised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relabeling {
    old_to_new: Vec<NodeId>,
    new_to_old: Vec<NodeId>,
}

impl Relabeling {
    /// The hub-first permutation: nodes sorted by total degree
    /// (out + in) descending, ties broken by old id ascending — fully
    /// deterministic for a given graph.
    pub fn degree_descending(g: &CsrGraph) -> Self {
        let n = g.node_count();
        let mut new_to_old: Vec<NodeId> = (0..cast::node_id(n)).collect();
        new_to_old.sort_by_key(|&v| (std::cmp::Reverse(g.out_degree(v) + g.in_degree(v)), v));
        let mut old_to_new = vec![0 as NodeId; n];
        for (new, &old) in new_to_old.iter().enumerate() {
            old_to_new[cast::ix(old)] = cast::node_id(new);
        }
        let obs = gplus_obs::global();
        obs.counter("graph.relabel.runs").inc();
        obs.counter("graph.relabel.nodes_count").add(n as u64);
        Self { old_to_new, new_to_old }
    }

    /// Number of nodes covered by the permutation.
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// The relabeled id of public node `old`.
    #[inline]
    pub fn to_new(&self, old: NodeId) -> NodeId {
        self.old_to_new[cast::ix(old)]
    }

    /// The public id of relabeled node `new`.
    #[inline]
    pub fn to_old(&self, new: NodeId) -> NodeId {
        self.new_to_old[cast::ix(new)]
    }

    /// The full old→new map, indexable by public id.
    pub fn old_to_new(&self) -> &[NodeId] {
        &self.old_to_new
    }

    /// The full new→old map, indexable by relabeled id.
    pub fn new_to_old(&self) -> &[NodeId] {
        &self.new_to_old
    }

    /// Builds the permuted graph: node `to_new(v)` of the result has the
    /// (re-sorted) image of `v`'s adjacency. The result is isomorphic to
    /// `g` and upholds every [`CsrGraph`] invariant.
    pub fn apply(&self, g: &CsrGraph) -> CsrGraph {
        let n = g.node_count();
        assert_eq!(n, self.len(), "relabeling covers a different node count");
        let permute_half = |neighbors: fn(&CsrGraph, NodeId) -> &[NodeId]| {
            let mut offsets = Vec::with_capacity(n + 1);
            offsets.push(0usize);
            let mut targets: Vec<NodeId> = Vec::with_capacity(g.edge_count());
            for new_u in 0..cast::node_id(n) {
                let start = targets.len();
                targets
                    .extend(neighbors(g, self.to_old(new_u)).iter().map(|&v| self.to_new(v)));
                targets[start..].sort_unstable();
                offsets.push(targets.len());
            }
            (offsets, targets)
        };
        let (out_offsets, out_targets) = permute_half(CsrGraph::out_neighbors);
        let (in_offsets, in_targets) = permute_half(CsrGraph::in_neighbors);
        CsrGraph { out_offsets, out_targets, in_offsets, in_targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::{bfs, paths};

    fn star_plus_tail() -> CsrGraph {
        // node 3 is the hub (degree 4); 0 is mid; 4 is a pendant
        from_edges(5, [(0, 3), (1, 3), (2, 3), (3, 4), (0, 1)])
    }

    #[test]
    fn permutation_is_bijective_and_hub_first() {
        let g = star_plus_tail();
        let r = Relabeling::degree_descending(&g);
        assert_eq!(r.len(), 5);
        // hub gets id 0
        assert_eq!(r.to_new(3), 0);
        // round-trip
        for v in g.nodes() {
            assert_eq!(r.to_old(r.to_new(v)), v);
        }
        // degrees descend along new ids
        let h = r.apply(&g);
        let total = |g: &CsrGraph, v: NodeId| g.out_degree(v) + g.in_degree(v);
        for w in (0..h.node_count() as NodeId).collect::<Vec<_>>().windows(2) {
            assert!(total(&h, w[0]) >= total(&h, w[1]));
        }
    }

    #[test]
    fn apply_preserves_edges_under_the_map() {
        let g = star_plus_tail();
        let r = Relabeling::degree_descending(&g);
        let h = r.apply(&g);
        assert_eq!(h.node_count(), g.node_count());
        assert_eq!(h.edge_count(), g.edge_count());
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(g.has_edge(u, v), h.has_edge(r.to_new(u), r.to_new(v)), "({u},{v})");
            }
            // lists stay sorted and degree-equal
            let mapped = h.out_neighbors(r.to_new(u));
            assert!(mapped.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(mapped.len(), g.out_degree(u));
            assert_eq!(h.in_degree(r.to_new(u)), g.in_degree(u));
        }
    }

    #[test]
    fn traversal_aggregates_are_relabel_invariant() {
        let g = from_edges(8, [(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (4, 5), (6, 7)]);
        let r = Relabeling::degree_descending(&g);
        let h = r.apply(&g);
        for u in g.nodes() {
            assert_eq!(bfs::levels(&g, u), bfs::levels(&h, r.to_new(u)), "source {u}");
        }
        let dg = paths::exact_path_lengths(&g);
        let dh = paths::exact_path_lengths(&h);
        assert_eq!(dg, dh);
    }

    #[test]
    fn degree_ties_break_on_old_id_deterministically() {
        // two pairs of equal-degree nodes: {1,2} both total degree 2,
        // {4,5} both total degree 1, and 0 the hub — tie order matters
        let edges = [(0, 1), (0, 2), (1, 0), (2, 0), (0, 4), (0, 5)];
        let g1 = from_edges(6, edges);
        let g2 = from_edges(6, edges);
        let r1 = Relabeling::degree_descending(&g1);
        let r2 = Relabeling::degree_descending(&g2);
        assert_eq!(r1, r2, "same graph, two builds: identical permutation");
        // within every equal-degree run, old ids ascend (the stable
        // tiebreak) — no dependence on sort internals or iteration order
        let total = |v: NodeId| g1.out_degree(v) + g1.in_degree(v);
        for w in r1.new_to_old().windows(2) {
            let (a, b) = (w[0], w[1]);
            assert!(
                total(a) > total(b) || (total(a) == total(b) && a < b),
                "tie between {a} and {b} must order by old id"
            );
        }
        // and the permuted CSR is byte-identical across the two builds
        assert_eq!(r1.apply(&g1), r2.apply(&g2));
    }

    #[test]
    fn empty_graph_relabels() {
        let g = from_edges(0, []);
        let r = Relabeling::degree_descending(&g);
        assert!(r.is_empty());
        assert_eq!(r.apply(&g).node_count(), 0);
    }
}
