//! Approximate betweenness centrality (sampled Brandes).
//!
//! A third popularity notion next to in-degree (Table 1) and PageRank:
//! how often a user sits on shortest paths — the "bridge" role §3.3.4's
//! information-dissemination discussion implies. Exact Brandes is
//! `O(V·E)`; the standard remedy is to accumulate dependencies from a
//! uniform sample of source nodes and rescale, which preserves the
//! ranking of the top nodes (Brandes & Pich 2007).

use crate::csr::{CsrGraph, NodeId};
use gplus_stats::sample_indices;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Betweenness scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Betweenness {
    /// Per-node accumulated dependency, rescaled by `n / samples`.
    pub scores: Vec<f64>,
    /// Source samples used.
    pub sources: usize,
}

impl Betweenness {
    /// The `k` highest-scoring nodes, descending; ties by node id.
    pub fn top(&self, k: usize) -> Vec<(NodeId, f64)> {
        let mut ranked: Vec<(NodeId, f64)> =
            self.scores.iter().enumerate().map(|(i, &s)| (i as NodeId, s)).collect();
        ranked
            .sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores").then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }
}

/// Runs Brandes' dependency accumulation from `samples` uniformly chosen
/// sources over the directed graph. `samples >= node_count` degenerates to
/// the exact algorithm.
pub fn betweenness<R: Rng + ?Sized>(g: &CsrGraph, samples: usize, rng: &mut R) -> Betweenness {
    let n = g.node_count();
    let mut scores = vec![0.0f64; n];
    if n == 0 || samples == 0 {
        return Betweenness { scores, sources: 0 };
    }
    let sources = sample_indices(rng, n, samples);
    let actual = sources.len();

    // per-source scratch, reused
    let mut sigma = vec![0.0f64; n]; // shortest-path counts
    let mut dist = vec![-1i32; n];
    let mut delta = vec![0.0f64; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut queue: VecDeque<NodeId> = VecDeque::new();

    for &s in &sources {
        let s = s as NodeId;
        sigma.iter_mut().for_each(|x| *x = 0.0);
        dist.iter_mut().for_each(|x| *x = -1);
        delta.iter_mut().for_each(|x| *x = 0.0);
        order.clear();
        queue.clear();

        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in g.out_neighbors(u) {
                if dist[v as usize] < 0 {
                    dist[v as usize] = dist[u as usize] + 1;
                    queue.push_back(v);
                }
                if dist[v as usize] == dist[u as usize] + 1 {
                    sigma[v as usize] += sigma[u as usize];
                }
            }
        }
        // dependency accumulation in reverse BFS order
        for &w in order.iter().rev() {
            for &v in g.out_neighbors(w) {
                if dist[v as usize] == dist[w as usize] + 1 && sigma[v as usize] > 0.0 {
                    let share =
                        sigma[w as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
                    delta[w as usize] += share;
                }
            }
            if w != s {
                scores[w as usize] += delta[w as usize];
            }
        }
    }

    // rescale so the expectation matches the full-source accumulation
    let scale = n as f64 / actual.max(1) as f64;
    scores.iter_mut().for_each(|x| *x *= scale);
    Betweenness { scores, sources: actual }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exact(g: &CsrGraph) -> Betweenness {
        let mut rng = StdRng::seed_from_u64(0);
        betweenness(g, g.node_count(), &mut rng)
    }

    #[test]
    fn path_graph_middle_node_highest() {
        // 0 <-> 1 <-> 2 <-> 3 <-> 4 (bidirectional path)
        let g = from_edges(5, (0..4u32).flat_map(|i| [(i, i + 1), (i + 1, i)]));
        let b = exact(&g);
        assert!(b.scores[2] > b.scores[1]);
        assert!(b.scores[1] > b.scores[0]);
        assert_eq!(b.top(1)[0].0, 2);
    }

    #[test]
    fn path_graph_exact_values() {
        // directed path 0->1->2->3: betweenness counts interior positions:
        // node 1 on paths 0->2, 0->3 = 2; node 2 on 0->3, 1->3 = 2
        let g = from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let b = exact(&g);
        assert_eq!(b.scores[0], 0.0);
        assert!((b.scores[1] - 2.0).abs() < 1e-9);
        assert!((b.scores[2] - 2.0).abs() < 1e-9);
        assert_eq!(b.scores[3], 0.0);
    }

    #[test]
    fn star_centre_carries_everything() {
        // bidirectional star around 0 with 4 leaves: all leaf-to-leaf paths
        // (4*3 = 12) pass through the centre
        let g = from_edges(5, (1..5u32).flat_map(|i| [(0, i), (i, 0)]));
        let b = exact(&g);
        assert!((b.scores[0] - 12.0).abs() < 1e-9, "centre {}", b.scores[0]);
        for leaf in 1..5 {
            assert_eq!(b.scores[leaf], 0.0);
        }
    }

    #[test]
    fn split_shortest_paths_share_dependency() {
        // two equal-length routes 0->3: via 1 and via 2; each carries 0.5
        let g = from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let b = exact(&g);
        assert!((b.scores[1] - 0.5).abs() < 1e-9);
        assert!((b.scores[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sampling_preserves_top_node() {
        // lollipop: clique {0..4} + path 4-5-6-7; node 4/5 bridge
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in 0..5u32 {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        for (a, b) in [(4u32, 5u32), (5, 6), (6, 7)] {
            edges.push((a, b));
            edges.push((b, a));
        }
        let g = from_edges(8, edges);
        let full = exact(&g);
        let mut rng = StdRng::seed_from_u64(11);
        let approx = betweenness(&g, 6, &mut rng);
        assert_eq!(full.top(1)[0].0, approx.top(1)[0].0, "top node must survive sampling");
    }

    #[test]
    fn empty_and_zero_sample_graphs() {
        let g = from_edges(0, []);
        let mut rng = StdRng::seed_from_u64(1);
        let b = betweenness(&g, 10, &mut rng);
        assert!(b.scores.is_empty());
        let g2 = from_edges(3, [(0, 1)]);
        let b2 = betweenness(&g2, 0, &mut rng);
        assert_eq!(b2.sources, 0);
        assert!(b2.scores.iter().all(|&x| x == 0.0));
    }
}
