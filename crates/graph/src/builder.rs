//! Mutable edge-list accumulator that freezes into a [`CsrGraph`].
//!
//! The crawler discovers edges in arbitrary order, from both the in-circle
//! and out-circle lists, with duplicates whenever both endpoints expose the
//! same link (the paper's bidirectional crawl recovers "lost edges" exactly
//! this way). The builder therefore accepts duplicate edges and deduplicates
//! at freeze time.

use crate::csr::{CsrGraph, NodeId};
use crate::relabel::Relabeling;

/// Accumulates directed edges, then compacts into CSR with [`Self::build`].
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    edges: Vec<(NodeId, NodeId)>,
    max_node: Option<NodeId>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder expecting roughly `edges` edges, avoiding
    /// reallocation during bulk loads.
    pub fn with_capacity(edges: usize) -> Self {
        Self { edges: Vec::with_capacity(edges), max_node: None }
    }

    /// Adds the directed edge `u -> v` ("u has v in circles"). Duplicates
    /// and self-loops are accepted; duplicates are removed at build time,
    /// self-loops are kept in the directed graph (Google+ never produced
    /// them, but the builder is a general substrate).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.edges.push((u, v));
        let m = u.max(v);
        self.max_node = Some(self.max_node.map_or(m, |cur| cur.max(m)));
    }

    /// Ensures the graph contains at least `n` nodes even if some have no
    /// edges (isolated profiles still exist in the crawl frontier).
    pub fn ensure_nodes(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        let last = (n - 1) as NodeId;
        self.max_node = Some(self.max_node.map_or(last, |cur| cur.max(last)));
    }

    /// Number of edges accumulated so far (including duplicates).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes into an immutable [`CsrGraph`]. Neighbour lists come out
    /// sorted and deduplicated; the reverse half is built in the same pass.
    pub fn build(mut self) -> CsrGraph {
        let n = self.max_node.map_or(0, |m| m as usize + 1);

        // Sort by (src, dst) and dedup: O(E log E) once, after which both
        // CSR halves can be laid out with counting passes.
        self.edges.sort_unstable();
        self.edges.dedup();

        let mut out_offsets = vec![0usize; n + 1];
        let mut in_counts = vec![0usize; n];
        for &(u, v) in &self.edges {
            out_offsets[u as usize + 1] += 1;
            in_counts[v as usize] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<NodeId> = self.edges.iter().map(|&(_, v)| v).collect();

        let mut in_offsets = vec![0usize; n + 1];
        for i in 0..n {
            in_offsets[i + 1] = in_offsets[i] + in_counts[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_targets = vec![0 as NodeId; self.edges.len()];
        // edges are sorted by source, so each in-list is filled in ascending
        // source order and comes out sorted without a second sort.
        for &(u, v) in &self.edges {
            let c = &mut cursor[v as usize];
            in_targets[*c] = u;
            *c += 1;
        }

        CsrGraph { out_offsets, out_targets, in_offsets, in_targets }
    }

    /// Freezes into a hub-first relabeled [`CsrGraph`] plus the
    /// [`Relabeling`] that connects it to the public id space. The result
    /// graph is isomorphic to [`Self::build`]'s under the returned map;
    /// callers translate sources in and node-valued results out, and every
    /// id-free aggregate (level counts, component sizes, degrees-as-a-
    /// multiset) is unchanged.
    pub fn build_relabeled(self) -> (CsrGraph, Relabeling) {
        let g = self.build();
        let r = Relabeling::degree_descending(&g);
        let relabeled = r.apply(&g);
        (relabeled, r)
    }
}

/// Convenience: builds a graph directly from an edge list.
pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.ensure_nodes(n);
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn duplicates_removed() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.out_neighbors(0), &[1]);
    }

    #[test]
    fn ensure_nodes_creates_isolated() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_nodes(5);
        let g = b.build();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.out_degree(4), 0);
        assert_eq!(g.in_degree(4), 0);
    }

    #[test]
    fn ensure_nodes_zero_noop() {
        let mut b = GraphBuilder::new();
        b.ensure_nodes(0);
        assert_eq!(b.build().node_count(), 0);
    }

    #[test]
    fn in_lists_sorted() {
        let mut b = GraphBuilder::new();
        b.add_edge(5, 2);
        b.add_edge(1, 2);
        b.add_edge(3, 2);
        let g = b.build();
        assert_eq!(g.in_neighbors(2), &[1, 3, 5]);
    }

    #[test]
    fn from_edges_convenience() {
        let g = from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn self_loop_kept_in_directed_graph() {
        let g = from_edges(2, [(0, 0), (0, 1)]);
        assert_eq!(g.out_neighbors(0), &[0, 1]);
        assert!(g.has_edge(0, 0));
    }

    #[test]
    fn build_relabeled_is_isomorphic_to_build() {
        let edges = [(0, 3), (1, 3), (2, 3), (3, 4), (0, 1), (3, 3)];
        let mut plain = GraphBuilder::new();
        let mut hub = GraphBuilder::new();
        for &(u, v) in &edges {
            plain.add_edge(u, v);
            hub.add_edge(u, v);
        }
        let g = plain.build();
        let (h, r) = hub.build_relabeled();
        assert_eq!(h.node_count(), g.node_count());
        assert_eq!(h.edge_count(), g.edge_count());
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(g.has_edge(u, v), h.has_edge(r.to_new(u), r.to_new(v)));
            }
        }
        // node 3 is the hub and lands first
        assert_eq!(r.to_new(3), 0);
    }

    #[test]
    fn degree_sums_match_edge_count() {
        let g = from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (5, 0)]);
        let out_sum: usize = g.nodes().map(|u| g.out_degree(u)).sum();
        let in_sum: usize = g.nodes().map(|u| g.in_degree(u)).sum();
        assert_eq!(out_sum, g.edge_count());
        assert_eq!(in_sum, g.edge_count());
    }
}
