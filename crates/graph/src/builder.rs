//! Mutable edge-list accumulator that freezes into a [`CsrGraph`].
//!
//! The crawler discovers edges in arbitrary order, from both the in-circle
//! and out-circle lists, with duplicates whenever both endpoints expose the
//! same link (the paper's bidirectional crawl recovers "lost edges" exactly
//! this way). The builder therefore accepts duplicate edges and deduplicates
//! at freeze time.

use crate::cast;
use crate::csr::{CsrGraph, NodeId};
use crate::relabel::Relabeling;

/// Accumulates directed edges, then compacts into CSR with [`Self::build`].
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    edges: Vec<(NodeId, NodeId)>,
    max_node: Option<NodeId>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder expecting roughly `edges` edges, avoiding
    /// reallocation during bulk loads.
    pub fn with_capacity(edges: usize) -> Self {
        Self { edges: Vec::with_capacity(edges), max_node: None }
    }

    /// Adds the directed edge `u -> v` ("u has v in circles"). Duplicates
    /// and self-loops are accepted; duplicates are removed at build time,
    /// self-loops are kept in the directed graph (Google+ never produced
    /// them, but the builder is a general substrate).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.edges.push((u, v));
        let m = u.max(v);
        self.max_node = Some(self.max_node.map_or(m, |cur| cur.max(m)));
    }

    /// Ensures the graph contains at least `n` nodes even if some have no
    /// edges (isolated profiles still exist in the crawl frontier).
    pub fn ensure_nodes(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        let last = (n - 1) as NodeId;
        self.max_node = Some(self.max_node.map_or(last, |cur| cur.max(last)));
    }

    /// Number of edges accumulated so far (including duplicates).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes into an immutable [`CsrGraph`]. Neighbour lists come out
    /// sorted and deduplicated; the reverse half is built in the same pass.
    pub fn build(mut self) -> CsrGraph {
        let n = self.max_node.map_or(0, |m| m as usize + 1);

        // Sort by (src, dst) and dedup: O(E log E) once, after which both
        // CSR halves can be laid out with counting passes.
        self.edges.sort_unstable();
        self.edges.dedup();

        let mut out_offsets = vec![0usize; n + 1];
        let mut in_counts = vec![0usize; n];
        for &(u, v) in &self.edges {
            out_offsets[u as usize + 1] += 1;
            in_counts[v as usize] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<NodeId> = self.edges.iter().map(|&(_, v)| v).collect();

        let mut in_offsets = vec![0usize; n + 1];
        for i in 0..n {
            in_offsets[i + 1] = in_offsets[i] + in_counts[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_targets = vec![0 as NodeId; self.edges.len()];
        // edges are sorted by source, so each in-list is filled in ascending
        // source order and comes out sorted without a second sort.
        for &(u, v) in &self.edges {
            let c = &mut cursor[v as usize];
            in_targets[*c] = u;
            *c += 1;
        }

        CsrGraph { out_offsets, out_targets, in_offsets, in_targets }
    }

    /// Freezes into a hub-first relabeled [`CsrGraph`] plus the
    /// [`Relabeling`] that connects it to the public id space. The result
    /// graph is isomorphic to [`Self::build`]'s under the returned map;
    /// callers translate sources in and node-valued results out, and every
    /// id-free aggregate (level counts, component sizes, degrees-as-a-
    /// multiset) is unchanged.
    pub fn build_relabeled(self) -> (CsrGraph, Relabeling) {
        let g = self.build();
        let r = Relabeling::degree_descending(&g);
        let relabeled = r.apply(&g);
        (relabeled, r)
    }
}

/// Builds a [`CsrGraph`] from an edge *stream* without ever materialising
/// the edge list, for graphs whose `(u, v)` pairs would not fit in memory
/// alongside the CSR arrays.
///
/// `pass` is invoked exactly twice and must emit the same edge multiset
/// both times (deterministic replay — e.g. re-running a seeded generator).
/// Pass one counts per-source degrees, pass two scatters targets straight
/// into their final CSR rows; rows are then sorted and deduplicated in
/// place and the reverse half is derived from the forward half. Peak
/// footprint is the finished CSR plus one cursor array, roughly half of
/// [`GraphBuilder`]'s (which holds the raw `(u, v)` list through a global
/// sort).
///
/// The result is identical to feeding the same stream through
/// [`GraphBuilder`] with `ensure_nodes(n)`.
///
/// # Panics
/// Panics if an emitted endpoint is `>= n` or if the two passes disagree
/// on any node's degree.
pub fn build_streamed<F>(n: usize, mut pass: F) -> CsrGraph
where
    F: FnMut(&mut dyn FnMut(NodeId, NodeId)),
{
    // pass 1: per-source degree histogram (duplicates included)
    let mut out_offsets = vec![0usize; n + 1];
    pass(&mut |u, v| {
        assert!(
            cast::ix(u) < n && cast::ix(v) < n,
            "edge ({u},{v}) out of range for {n} nodes"
        );
        out_offsets[cast::ix(u) + 1] += 1;
    });
    for i in 0..n {
        out_offsets[i + 1] += out_offsets[i];
    }
    let total = out_offsets[n];

    // pass 2: scatter each target into its source's row
    let mut cursor = out_offsets.clone();
    let mut out_targets = vec![0 as NodeId; total];
    pass(&mut |u, v| {
        let c = &mut cursor[cast::ix(u)];
        assert!(
            *c < out_offsets[cast::ix(u) + 1],
            "pass 2 emitted more edges from node {u} than pass 1 counted"
        );
        out_targets[*c] = v;
        *c += 1;
    });
    for u in 0..n {
        assert_eq!(
            cursor[u],
            out_offsets[u + 1],
            "pass 2 emitted fewer edges from node {u} than pass 1 counted"
        );
    }

    // sort + dedup each row, compacting in place (the write head never
    // overtakes the row being read: earlier rows only ever shrink)
    let mut write = 0usize;
    let mut compact = vec![0usize; n + 1];
    for u in 0..n {
        let (start, end) = (out_offsets[u], out_offsets[u + 1]);
        out_targets[start..end].sort_unstable();
        let mut prev = None;
        for i in start..end {
            let v = out_targets[i];
            if prev != Some(v) {
                out_targets[write] = v;
                write += 1;
                prev = Some(v);
            }
        }
        compact[u + 1] = write;
    }
    out_targets.truncate(write);
    let out_offsets = compact;

    // reverse half from the (now canonical) forward half; filling in
    // ascending source order leaves every in-list sorted
    let mut in_offsets = vec![0usize; n + 1];
    for &v in &out_targets {
        in_offsets[cast::ix(v) + 1] += 1;
    }
    for i in 0..n {
        in_offsets[i + 1] += in_offsets[i];
    }
    let mut cursor = in_offsets.clone();
    let mut in_targets = vec![0 as NodeId; out_targets.len()];
    for u in 0..n {
        for i in out_offsets[u]..out_offsets[u + 1] {
            let c = &mut cursor[cast::ix(out_targets[i])];
            in_targets[*c] = cast::node_id(u);
            *c += 1;
        }
    }

    CsrGraph { out_offsets, out_targets, in_offsets, in_targets }
}

/// Convenience: builds a graph directly from an edge list.
pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.ensure_nodes(n);
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_builder_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn duplicates_removed() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.out_neighbors(0), &[1]);
    }

    #[test]
    fn ensure_nodes_creates_isolated() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_nodes(5);
        let g = b.build();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.out_degree(4), 0);
        assert_eq!(g.in_degree(4), 0);
    }

    #[test]
    fn ensure_nodes_zero_noop() {
        let mut b = GraphBuilder::new();
        b.ensure_nodes(0);
        assert_eq!(b.build().node_count(), 0);
    }

    #[test]
    fn in_lists_sorted() {
        let mut b = GraphBuilder::new();
        b.add_edge(5, 2);
        b.add_edge(1, 2);
        b.add_edge(3, 2);
        let g = b.build();
        assert_eq!(g.in_neighbors(2), &[1, 3, 5]);
    }

    #[test]
    fn from_edges_convenience() {
        let g = from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn self_loop_kept_in_directed_graph() {
        let g = from_edges(2, [(0, 0), (0, 1)]);
        assert_eq!(g.out_neighbors(0), &[0, 1]);
        assert!(g.has_edge(0, 0));
    }

    #[test]
    fn build_relabeled_is_isomorphic_to_build() {
        let edges = [(0, 3), (1, 3), (2, 3), (3, 4), (0, 1), (3, 3)];
        let mut plain = GraphBuilder::new();
        let mut hub = GraphBuilder::new();
        for &(u, v) in &edges {
            plain.add_edge(u, v);
            hub.add_edge(u, v);
        }
        let g = plain.build();
        let (h, r) = hub.build_relabeled();
        assert_eq!(h.node_count(), g.node_count());
        assert_eq!(h.edge_count(), g.edge_count());
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(g.has_edge(u, v), h.has_edge(r.to_new(u), r.to_new(v)));
            }
        }
        // node 3 is the hub and lands first
        assert_eq!(r.to_new(3), 0);
    }

    #[test]
    fn build_streamed_matches_batch_builder() {
        let edges =
            [(0, 3), (1, 3), (2, 3), (3, 4), (0, 1), (3, 3), (2, 3), (4, 0), (0, 3), (1, 0)];
        let streamed = build_streamed(6, |emit| {
            for &(u, v) in &edges {
                emit(u, v);
            }
        });
        assert_eq!(streamed, from_edges(6, edges));
    }

    #[test]
    fn build_streamed_empty_and_isolated() {
        let empty = build_streamed(0, |_| {});
        assert_eq!(empty.node_count(), 0);
        let isolated = build_streamed(4, |emit| emit(1, 2));
        assert_eq!(isolated.node_count(), 4);
        assert_eq!(isolated.edge_count(), 1);
        assert_eq!(isolated.out_degree(0), 0);
        assert_eq!(isolated.in_degree(3), 0);
    }

    #[test]
    fn build_streamed_matches_on_random_stream() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let n = 64;
        let edges: Vec<(NodeId, NodeId)> = {
            let mut rng = StdRng::seed_from_u64(2012);
            (0..800)
                .map(|_| (rng.random_range(0..n as NodeId), rng.random_range(0..n as NodeId)))
                .collect()
        };
        let streamed = build_streamed(n, |emit| {
            for &(u, v) in &edges {
                emit(u, v);
            }
        });
        assert_eq!(streamed, from_edges(n, edges));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn build_streamed_rejects_out_of_range() {
        let _ = build_streamed(2, |emit| emit(0, 5));
    }

    #[test]
    #[should_panic(expected = "pass 2 emitted more edges")]
    fn build_streamed_rejects_nondeterministic_replay() {
        let mut calls = 0;
        let _ = build_streamed(3, move |emit| {
            calls += 1;
            for _ in 0..calls {
                emit(0, 1);
            }
        });
    }

    #[test]
    fn degree_sums_match_edge_count() {
        let g = from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (5, 0)]);
        let out_sum: usize = g.nodes().map(|u| g.out_degree(u)).sum();
        let in_sum: usize = g.nodes().map(|u| g.in_degree(u)).sum();
        assert_eq!(out_sum, g.edge_count());
        assert_eq!(in_sum, g.edge_count());
    }
}
