//! Directed triangle motif census over the 7 non-isomorphic classes.
//!
//! The paper characterises Google+ by reciprocity (§3.3.2) and clustering
//! (§3.3.3); the natural refinement — following Schiöberg et al.'s "Evolution
//! of Directed Triangle Motifs in the Google+ OSN" — is to classify every
//! triangle by the direction pattern of its three dyads. A connected triad
//! over three nodes has three dyads, each one-way or mutual, giving seven
//! non-isomorphic triangle classes (the triangle rows of the classic 16-class
//! triad census, in their standard names):
//!
//! | idx | name | dyads | shape |
//! |-----|------|-------|-------|
//! | 0 | `030T` | 3 one-way | transitive: `a→b`, `a→c`, `b→c` |
//! | 1 | `030C` | 3 one-way | cyclic: `a→b`, `b→c`, `c→a` |
//! | 2 | `120D` | 1 mutual  | outsider points *at* the mutual dyad twice |
//! | 3 | `120U` | 1 mutual  | the mutual dyad points *at* the outsider twice |
//! | 4 | `120C` | 1 mutual  | one one-way edge each direction |
//! | 5 | `210`  | 2 mutual  | two mutual dyads plus one one-way |
//! | 6 | `300`  | 3 mutual  | fully reciprocal |
//!
//! The census returns the per-graph total of each class plus a per-node
//! triangle-participation count (how many classified triangles each node is
//! a corner of, summed over classes).
//!
//! # Algorithm
//!
//! Each geometric triangle `{a, b, c}` is counted exactly once, at the apex
//! `c = max(a, b, c)`. Under the hub-first relabeling ids ascend as degree
//! descends, so the apex is the *lowest*-degree corner and the "strictly
//! smaller neighbours" lists scanned below stay short — the same ordering
//! trick the compressed kernels lean on. For the apex we materialise the
//! merged in/out neighbour list restricted to ids `< c`, each entry carrying
//! a 2-bit *dyad code* (bit 0: smaller→larger edge, bit 1: larger→smaller);
//! then for every member `b` we stream `b`'s own coded below-list against the
//! prefix of smaller members via one sorted merge — the same sorted-merge
//! intersection discipline as [`crate::clustering`] — and classify each
//! match from the three dyad codes without touching a hash set. Self-loops
//! are structurally excluded (only strictly smaller ids enter any list) and
//! the [`Adjacency`] contract guarantees deduplicated rows.
//!
//! # Determinism
//!
//! Totals follow the [`crate::par`] fixed-order chunk discipline: apexes are
//! swept in [`NODE_CHUNK`]-sized chunks, each chunk folds sequentially, and
//! the per-chunk partials merge in chunk-index order — so the count is a
//! pure function of the graph at any `RAYON_NUM_THREADS` (u64 addition is
//! associative, but the bench digests pin the stronger schedule-free
//! property anyway). Per-node participation uses relaxed `AtomicU64`
//! increments: integer addition is commutative and associative, so the final
//! values are schedule-independent too.

use crate::adjacency::Adjacency;
use crate::binfmt::fnv1a;
use crate::cast;
use crate::csr::NodeId;
use crate::par::{chunk_count, NODE_CHUNK};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of directed-triangle motif classes.
pub const MOTIF_CLASSES: usize = 7;

/// Standard triad-census names of the 7 classes, in index order.
pub const CLASS_NAMES: [&str; MOTIF_CLASSES] =
    ["030T", "030C", "120D", "120U", "120C", "210", "300"];

/// `MIRROR[i]` is the class a class-`i` triangle becomes when every edge is
/// reversed. Only the down/up pair swaps; the other five are self-mirror.
pub const MIRROR: [usize; MOTIF_CLASSES] = [0, 1, 3, 2, 4, 5, 6];

/// Result of a full-graph census.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MotifCensus {
    /// Per-class triangle totals, indexed as [`CLASS_NAMES`].
    pub totals: [u64; MOTIF_CLASSES],
    /// Per-node participation: how many classified triangles each node is a
    /// corner of (every triangle contributes to exactly three nodes).
    pub per_node: Vec<u64>,
}

impl MotifCensus {
    /// Total triangles across all classes (== undirected triangle count).
    pub fn triangle_total(&self) -> u64 {
        self.totals.iter().sum()
    }

    /// FNV-1a digest over the totals and per-node counts, for the bench
    /// suite's cross-thread-count `--digest` comparison.
    pub fn content_digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(8 * (MOTIF_CLASSES + self.per_node.len()));
        for t in self.totals {
            bytes.extend_from_slice(&t.to_le_bytes());
        }
        for &p in &self.per_node {
            bytes.extend_from_slice(&p.to_le_bytes());
        }
        fnv1a(&bytes)
    }
}

/// Classifies one triangle `a < b < c` from its three dyad codes.
///
/// A dyad code for the pair `(x, y)` with `x < y` is `bit 0` = edge `x→y`
/// present, `bit 1` = edge `y→x` present; valid codes are 1, 2 and 3 (a
/// triangle requires every dyad connected). Exposed so the oracle reference
/// can share the class indexing while deriving the codes independently.
#[inline]
pub fn classify(c_ab: u8, c_ac: u8, c_bc: u8) -> usize {
    debug_assert!(
        (1..=3).contains(&c_ab) && (1..=3).contains(&c_ac) && (1..=3).contains(&c_bc)
    );
    let mutuals = (c_ab == 3) as usize + (c_ac == 3) as usize + (c_bc == 3) as usize;
    match mutuals {
        3 => 6, // 300
        2 => 5, // 210
        1 => {
            // Identify the outsider z of the single mutual dyad and whether
            // each one-way edge points toward z.
            let (s1_to_z, s2_to_z) = if c_ab == 3 {
                (c_ac == 1, c_bc == 1) // z = c: a→c, b→c
            } else if c_ac == 3 {
                (c_ab == 1, c_bc == 2) // z = b: a→b, c→b
            } else {
                (c_ab == 2, c_ac == 2) // z = a: b→a, c→a
            };
            match (s1_to_z, s2_to_z) {
                (true, true) => 3,   // 120U: dyad points at the outsider
                (false, false) => 2, // 120D: outsider points at the dyad
                _ => 4,              // 120C
            }
        }
        _ => {
            // all one-way: a 3-cycle iff every corner has exactly one
            // outgoing edge inside the triangle; checking two corners
            // suffices (out-degrees sum to 3)
            let out_a = (c_ab & 1) + (c_ac & 1);
            let out_b = (c_ab >> 1) + (c_bc & 1);
            if out_a == 1 && out_b == 1 {
                1 // 030C
            } else {
                0 // 030T
            }
        }
    }
}

/// Merges `in_iter(u)` and `out_iter(u)` restricted to ids strictly below
/// `u`, yielding `(neighbour, dyad code)` in ascending order. Both rows are
/// sorted, so a peek past the bound terminates that side for good.
struct CodedBelow<I: Iterator<Item = NodeId>> {
    inn: std::iter::Peekable<I>,
    out: std::iter::Peekable<I>,
    bound: NodeId,
}

fn coded_below<G: Adjacency>(g: &G, u: NodeId) -> CodedBelow<G::Iter<'_>> {
    CodedBelow { inn: g.in_iter(u).peekable(), out: g.out_iter(u).peekable(), bound: u }
}

impl<I: Iterator<Item = NodeId>> Iterator for CodedBelow<I> {
    type Item = (NodeId, u8);

    fn next(&mut self) -> Option<(NodeId, u8)> {
        // bit 0: v→u (v is smaller, so smaller→larger); bit 1: u→v
        let i = self.inn.peek().copied().filter(|&v| v < self.bound);
        let o = self.out.peek().copied().filter(|&v| v < self.bound);
        match (i, o) {
            (None, None) => None,
            (Some(a), None) => {
                self.inn.next();
                Some((a, 1))
            }
            (None, Some(a)) => {
                self.out.next();
                Some((a, 2))
            }
            (Some(ia), Some(oa)) => {
                if ia < oa {
                    self.inn.next();
                    Some((ia, 1))
                } else if oa < ia {
                    self.out.next();
                    Some((oa, 2))
                } else {
                    self.inn.next();
                    self.out.next();
                    Some((ia, 3))
                }
            }
        }
    }
}

/// Enumerates every triangle apexed at `c` (i.e. with `c` as its largest
/// id), invoking `f(a, b, c_ab, c_ac, c_bc)` with `a < b < c` and the three
/// dyad codes. `lc` is caller-owned scratch for the apex's coded below-list.
fn apex_scan<G, F>(g: &G, c: NodeId, lc: &mut Vec<(NodeId, u8)>, mut f: F)
where
    G: Adjacency,
    F: FnMut(NodeId, NodeId, u8, u8, u8),
{
    lc.clear();
    lc.extend(coded_below(g, c));
    for j in 1..lc.len() {
        let (b, c_bc) = lc[j];
        let prefix = &lc[..j];
        // one sorted merge of b's coded below-list against the smaller
        // members of c's list; k never rewinds within a b
        let mut k = 0;
        for (a, c_ab) in coded_below(g, b) {
            while k < prefix.len() && prefix[k].0 < a {
                k += 1;
            }
            if k == prefix.len() {
                break;
            }
            if prefix[k].0 == a {
                f(a, b, c_ab, prefix[k].1, c_bc);
                k += 1;
            }
        }
    }
}

/// Per-class counts of the triangles whose largest id is `c`.
///
/// The full census is the sum of `apex_census(g, c)` over all nodes; the
/// oracle uses this to spot-check large graphs apex by apex.
pub fn apex_census<G: Adjacency>(g: &G, c: NodeId) -> [u64; MOTIF_CLASSES] {
    let mut totals = [0u64; MOTIF_CLASSES];
    apex_scan(g, c, &mut Vec::new(), |_, _, ab, ac, bc| totals[classify(ab, ac, bc)] += 1);
    totals
}

/// Full-graph motif census: per-class totals plus per-node participation.
///
/// Deterministic at any thread count — see the module docs.
pub fn census<G: Adjacency>(g: &G) -> MotifCensus {
    let obs = gplus_obs::global();
    let _span = obs.span("graph.motifs.census");
    let n = g.node_count();
    obs.counter(gplus_obs::names::GRAPH_MOTIFS_RUNS).add(1);
    obs.gauge(gplus_obs::names::GRAPH_MOTIFS_CHUNKS).set(chunk_count(n) as f64);

    let per_node: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let partials: Vec<[u64; MOTIF_CLASSES]> = (0..chunk_count(n))
        .into_par_iter()
        .map_init(Vec::new, |lc, ci| {
            let mut totals = [0u64; MOTIF_CLASSES];
            let lo = ci * NODE_CHUNK;
            let hi = (lo + NODE_CHUNK).min(n);
            for c in lo..hi {
                let c = cast::node_id(c);
                apex_scan(g, c, lc, |a, b, ab, ac, bc| {
                    totals[classify(ab, ac, bc)] += 1;
                    per_node[a as usize].fetch_add(1, Ordering::Relaxed);
                    per_node[b as usize].fetch_add(1, Ordering::Relaxed);
                    per_node[c as usize].fetch_add(1, Ordering::Relaxed);
                });
            }
            totals
        })
        .collect();

    // indexed collect preserves chunk order; merge partials left to right
    let mut totals = [0u64; MOTIF_CLASSES];
    for part in partials {
        for (t, p) in totals.iter_mut().zip(part) {
            *t += p;
        }
    }
    let result = MotifCensus {
        totals,
        per_node: per_node.into_iter().map(AtomicU64::into_inner).collect(),
    };
    obs.counter(gplus_obs::names::GRAPH_MOTIFS_TRIANGLES).add(result.triangle_total());
    result
}

/// Undirected triangle count via the same apex enumeration with the
/// classifier bypassed entirely — the metamorphic law "Σ over the 7 classes
/// equals the undirected triangle count" checks the classification logic
/// against it (full independence comes from the oracle's naive twin).
pub fn undirected_triangle_count<G: Adjacency>(g: &G) -> u64 {
    let n = g.node_count();
    (0..chunk_count(n))
        .into_par_iter()
        .map_init(Vec::new, |lc, ci| {
            let mut count = 0u64;
            let lo = ci * NODE_CHUNK;
            let hi = (lo + NODE_CHUNK).min(n);
            for c in lo..hi {
                apex_scan(g, cast::node_id(c), lc, |_, _, _, _, _| count += 1);
            }
            count
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use crate::compressed::CompressedCsr;
    use crate::csr::CsrGraph;

    /// One minimal 3-node graph per class, in class-index order.
    fn class_exemplars() -> [Vec<(NodeId, NodeId)>; MOTIF_CLASSES] {
        [
            vec![(0, 1), (1, 2), (0, 2)],                         // 030T
            vec![(0, 1), (1, 2), (2, 0)],                         // 030C
            vec![(0, 1), (1, 0), (2, 0), (2, 1)],                 // 120D
            vec![(0, 1), (1, 0), (0, 2), (1, 2)],                 // 120U
            vec![(0, 1), (1, 0), (0, 2), (2, 1)],                 // 120C
            vec![(0, 1), (1, 0), (0, 2), (2, 0), (1, 2)],         // 210
            vec![(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)], // 300
        ]
    }

    #[test]
    fn each_class_exemplar_counts_once_in_its_own_class() {
        for (idx, edges) in class_exemplars().into_iter().enumerate() {
            let g = from_edges(3, edges);
            let c = census(&g);
            let mut expect = [0u64; MOTIF_CLASSES];
            expect[idx] = 1;
            assert_eq!(c.totals, expect, "class {}", CLASS_NAMES[idx]);
            assert_eq!(c.per_node, vec![1, 1, 1], "class {}", CLASS_NAMES[idx]);
        }
    }

    #[test]
    fn classify_mirror_law_exhaustive() {
        // reversing every edge swaps code bits (1<->2, 3 fixed) and must map
        // each class to MIRROR[class]; check all 27 code triples
        let rev = |c: u8| match c {
            1 => 2,
            2 => 1,
            _ => 3,
        };
        for ab in 1..=3u8 {
            for ac in 1..=3u8 {
                for bc in 1..=3u8 {
                    let fwd = classify(ab, ac, bc);
                    let back = classify(rev(ab), rev(ac), rev(bc));
                    assert_eq!(back, MIRROR[fwd], "codes ({ab},{ac},{bc})");
                }
            }
        }
    }

    #[test]
    fn transpose_census_is_the_mirror_census() {
        // mixed graph with triangles in several classes
        let g = from_edges(
            6,
            [
                (0, 1),
                (1, 2),
                (0, 2), // 030T on {0,1,2}
                (2, 3),
                (3, 2),
                (4, 2),
                (4, 3), // 120D on {2,3,4}
                (3, 4),
                (4, 5),
                (5, 3), // 030C on {3,4,5}
            ],
        );
        let fwd = census(&g);
        let back = census(&g.transpose());
        for i in 0..MOTIF_CLASSES {
            assert_eq!(back.totals[MIRROR[i]], fwd.totals[i], "class {}", CLASS_NAMES[i]);
        }
        // participation is orientation-blind
        assert_eq!(back.per_node, fwd.per_node);
    }

    #[test]
    fn empty_and_tiny_graphs_have_no_triangles() {
        let empty = from_edges(0, Vec::<(NodeId, NodeId)>::new());
        let c = census(&empty);
        assert_eq!(c.totals, [0; MOTIF_CLASSES]);
        assert!(c.per_node.is_empty());
        assert_eq!(undirected_triangle_count(&empty), 0);

        let pair = from_edges(2, [(0, 1), (1, 0)]);
        assert_eq!(census(&pair).triangle_total(), 0);
    }

    #[test]
    fn self_loops_and_duplicates_never_form_triangles() {
        // a mutual dyad plus self-loops everywhere: no third corner exists
        let g = from_edges(2, [(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert_eq!(census(&g).triangle_total(), 0);
        // duplicate edges collapse in the builder; a 030T stays one triangle
        let g2 = from_edges(3, [(0, 1), (0, 1), (1, 2), (1, 2), (0, 2), (0, 2), (2, 2)]);
        let c = census(&g2);
        assert_eq!(c.totals[0], 1);
        assert_eq!(c.triangle_total(), 1);
    }

    #[test]
    fn participation_sums_to_three_per_triangle() {
        let g = lcg_graph(64, 600, 9);
        let c = census(&g);
        assert_eq!(c.per_node.iter().sum::<u64>(), 3 * c.triangle_total());
        assert_eq!(c.triangle_total(), undirected_triangle_count(&g));
    }

    #[test]
    fn apex_census_partitions_the_full_census() {
        let g = lcg_graph(48, 400, 11);
        let full = census(&g);
        let mut summed = [0u64; MOTIF_CLASSES];
        for c in g.nodes() {
            for (t, p) in summed.iter_mut().zip(apex_census(&g, c)) {
                *t += p;
            }
        }
        assert_eq!(summed, full.totals);
    }

    #[test]
    fn compressed_adjacency_matches_flat() {
        let g = lcg_graph(96, 1200, 3);
        let flat = census(&g);
        let compressed = census(&CompressedCsr::from_csr(&g));
        assert_eq!(flat, compressed);
        assert_eq!(flat.content_digest(), compressed.content_digest());
    }

    /// Deterministic pseudo-random digraph without pulling in a RNG dep.
    fn lcg_graph(n: usize, m: usize, seed: u64) -> CsrGraph {
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as NodeId
        };
        let edges: Vec<(NodeId, NodeId)> =
            (0..m).map(|_| (next() % n as NodeId, next() % n as NodeId)).collect();
        from_edges(n, edges)
    }
}
