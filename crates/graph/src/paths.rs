//! Shortest-path-length distributions and diameter estimation.
//!
//! §3.3.5: computing all-pairs shortest paths on 35M nodes is infeasible, so
//! the paper "sampled k different users and for each one of them ...
//! computed the shortest path to all others users", growing `k` from 2000
//! to 10000 and "stopping in this value once there were no more changes in
//! the distribution". Figure 5 plots the resulting hop distribution for the
//! directed graph (mode 6, mean 5.9, diameter 19) and its undirected view
//! (mode 5, mean 4.7, diameter 13).
//!
//! [`sampled_path_lengths`] reproduces the fixed-`k` estimator;
//! [`adaptive_path_lengths`] reproduces the full adaptive schedule with a
//! KS-distance stopping rule. The diameter estimate is the maximum
//! eccentricity observed across sampled sources (a lower bound that is
//! near-exact for thousands of sources on small-world graphs, and exactly
//! what sampling-based measurement studies report).
//!
//! All estimators run on the batched direction-optimizing kernel in
//! [`crate::mbfs`]: sources are packed 64 per pass, and rayon parallelises
//! across *batches* rather than individual sources. Sources are always
//! sampled in public id space (keeping RNG streams independent of any
//! relabeling) and translated through [`TraversalOpts::source_map`] just
//! before traversal; per-lane results merge in input order, so output is
//! byte-identical to the old per-source estimator.

use crate::bfs::TraversalOpts;
use crate::cast;
use crate::csr::{CsrGraph, NodeId};
use crate::mbfs::{batch_levels_with_scratch, BatchScratch, BATCH_WIDTH};
use gplus_stats::{ks_distance, sample_indices};
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// An estimated distribution of pairwise hop distances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathLengthDistribution {
    /// `counts[d]` = number of (source, target) pairs at distance `d >= 1`.
    /// Index 0 is unused (distance-0 pairs are the sources themselves and
    /// are excluded, as in the paper's hop histogram starting at 1).
    pub counts: Vec<u64>,
    /// Number of BFS sources used.
    pub sources: usize,
    /// Largest eccentricity observed (diameter estimate).
    pub max_distance: u32,
}

impl PathLengthDistribution {
    /// Total pairs observed.
    pub fn total_pairs(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Probability mass at each distance (index = hops).
    pub fn probabilities(&self) -> Vec<f64> {
        let total = self.total_pairs().max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / total).collect()
    }

    /// Mean hop distance over reachable pairs; 0 when nothing observed.
    pub fn mean(&self) -> f64 {
        let total = self.total_pairs();
        if total == 0 {
            return 0.0;
        }
        let weighted: f64 =
            self.counts.iter().enumerate().map(|(d, &c)| d as f64 * c as f64).sum();
        weighted / total as f64
    }

    /// The most common hop distance (the paper's "mode"); 0 when empty.
    pub fn mode(&self) -> u32 {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(d, _)| cast::count_u32(cast::offset_u64(d)))
            .unwrap_or(0)
    }

    /// Expands the histogram into one `f64` hop value per pair, capped at
    /// `max_samples` (uniformly thinned), for KS-distance comparisons.
    fn flatten(&self, max_samples: usize) -> Vec<f64> {
        let total = self.total_pairs();
        if total == 0 {
            return Vec::new();
        }
        let stride = (total / cast::offset_u64(max_samples.max(1))).max(1);
        let mut out = Vec::new();
        let mut seen: u64 = 0;
        for (d, &c) in self.counts.iter().enumerate() {
            for _ in 0..c {
                if seen % stride == 0 {
                    out.push(d as f64);
                }
                seen += 1;
            }
        }
        out
    }

    fn merge(&mut self, other: &PathLengthDistribution) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (d, &c) in other.counts.iter().enumerate() {
            self.counts[d] += c;
        }
        self.sources += other.sources;
        self.max_distance = self.max_distance.max(other.max_distance);
    }
}

/// Estimates the path-length distribution from `k` uniformly sampled
/// sources (the fixed-`k` variant) with default traversal tuning.
pub fn sampled_path_lengths<R: Rng + ?Sized>(
    g: &CsrGraph,
    k: usize,
    rng: &mut R,
) -> PathLengthDistribution {
    sampled_path_lengths_opt(g, k, rng, TraversalOpts::default())
}

/// [`sampled_path_lengths`] with explicit traversal tuning. Sampling
/// happens in public id space before any relabel translation, so the RNG
/// stream — and therefore the result — is independent of `opts`.
pub fn sampled_path_lengths_opt<R: Rng + ?Sized>(
    g: &CsrGraph,
    k: usize,
    rng: &mut R,
    opts: TraversalOpts,
) -> PathLengthDistribution {
    let sources = sample_indices(rng, g.node_count(), k);
    path_lengths_from_sources_opt(g, &sources, opts)
}

/// Estimates the distribution from an explicit source list (public ids).
pub fn path_lengths_from_sources(g: &CsrGraph, sources: &[usize]) -> PathLengthDistribution {
    path_lengths_from_sources_opt(g, sources, TraversalOpts::default())
}

/// [`path_lengths_from_sources`] with explicit traversal tuning: sources
/// are translated through `opts.source_map` (when traversing a relabeled
/// graph), packed into 64-wide batches, and the batches run in parallel.
/// Per-lane merge order equals input order, so the result is identical to
/// running one BFS per source sequentially.
pub fn path_lengths_from_sources_opt(
    g: &CsrGraph,
    sources: &[usize],
    opts: TraversalOpts,
) -> PathLengthDistribution {
    let mapped: Vec<NodeId> = sources
        .iter()
        .map(|&s| match opts.source_map {
            Some(map) => map[s],
            None => cast::node_id(s),
        })
        .collect();
    let chunk_count = mapped.len().div_ceil(BATCH_WIDTH);
    let partials: Vec<PathLengthDistribution> = (0..chunk_count)
        .into_par_iter()
        .map_init(
            || BatchScratch::new(g.node_count()),
            |scratch, i| {
                let chunk = &mapped[i * BATCH_WIDTH..((i + 1) * BATCH_WIDTH).min(mapped.len())];
                let lanes = batch_levels_with_scratch(g, chunk, opts.hybrid_threshold, scratch);
                let mut acc =
                    PathLengthDistribution { counts: vec![0], sources: 0, max_distance: 0 };
                for levels in lanes {
                    // drop distance-0 (the source itself)
                    let mut counts = levels.counts;
                    if !counts.is_empty() {
                        counts[0] = 0;
                    }
                    acc.merge(&PathLengthDistribution {
                        counts,
                        sources: 1,
                        max_distance: levels.eccentricity,
                    });
                }
                acc
            },
        )
        .collect();
    let mut acc = PathLengthDistribution { counts: vec![0], sources: 0, max_distance: 0 };
    for p in &partials {
        acc.merge(p);
    }
    acc
}

/// Outcome of the paper's adaptive sampling schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveResult {
    /// Final estimated distribution.
    pub distribution: PathLengthDistribution,
    /// KS distance after each batch beyond the first.
    pub ks_trajectory: Vec<f64>,
    /// Whether the KS stopping rule fired before `k_max` was exhausted.
    pub converged_early: bool,
}

/// The paper's §3.3.5 schedule: start with `k_start` sources, add batches
/// of `k_step` until the distribution stops changing (KS distance between
/// consecutive estimates below `tol`) or `k_max` sources have been used.
///
/// # Panics
/// Panics if `k_start == 0` or `k_step == 0` or `k_max < k_start`.
pub fn adaptive_path_lengths<R: Rng + ?Sized>(
    g: &CsrGraph,
    k_start: usize,
    k_step: usize,
    k_max: usize,
    tol: f64,
    rng: &mut R,
) -> AdaptiveResult {
    adaptive_path_lengths_opt(g, k_start, k_step, k_max, tol, rng, TraversalOpts::default())
}

/// [`adaptive_path_lengths`] with explicit traversal tuning; same schedule,
/// same RNG stream, same output.
#[allow(clippy::too_many_arguments)]
pub fn adaptive_path_lengths_opt<R: Rng + ?Sized>(
    g: &CsrGraph,
    k_start: usize,
    k_step: usize,
    k_max: usize,
    tol: f64,
    rng: &mut R,
    opts: TraversalOpts,
) -> AdaptiveResult {
    assert!(k_start > 0 && k_step > 0, "batch sizes must be positive");
    assert!(k_max >= k_start, "k_max must be at least k_start");
    let all_sources = sample_indices(rng, g.node_count(), k_max);
    let mut used = k_start.min(all_sources.len());
    let mut acc = path_lengths_from_sources_opt(g, &all_sources[..used], opts);
    let mut prev_flat = acc.flatten(20_000);
    let mut ks_trajectory = Vec::new();
    let mut converged_early = false;

    while used < all_sources.len() {
        let next = (used + k_step).min(all_sources.len());
        let batch = path_lengths_from_sources_opt(g, &all_sources[used..next], opts);
        acc.merge(&batch);
        used = next;
        let flat = acc.flatten(20_000);
        if !prev_flat.is_empty() && !flat.is_empty() {
            let d = ks_distance(&prev_flat, &flat);
            ks_trajectory.push(d);
            if d < tol {
                converged_early = used < all_sources.len();
                break;
            }
        }
        prev_flat = flat;
    }
    AdaptiveResult { distribution: acc, ks_trajectory, converged_early }
}

/// Exact all-pairs path-length distribution; only for graphs small enough
/// that `n` BFS passes are acceptable. Used by tests to validate the
/// sampled estimators.
pub fn exact_path_lengths(g: &CsrGraph) -> PathLengthDistribution {
    let sources: Vec<usize> = (0..g.node_count()).collect();
    path_lengths_from_sources(g, &sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cycle(n: usize) -> CsrGraph {
        from_edges(n, (0..n as NodeId).map(|i| (i, (i + 1) % n as NodeId)))
    }

    #[test]
    fn exact_on_directed_cycle() {
        // from any node of a 5-cycle: one node at each distance 1..=4
        let d = exact_path_lengths(&cycle(5));
        assert_eq!(d.counts, vec![0, 5, 5, 5, 5]);
        assert_eq!(d.total_pairs(), 20);
        assert_eq!(d.mean(), 2.5);
        assert_eq!(d.max_distance, 4);
        assert_eq!(d.sources, 5);
    }

    #[test]
    fn mode_is_argmax() {
        let d =
            PathLengthDistribution { counts: vec![0, 3, 10, 7], sources: 1, max_distance: 3 };
        assert_eq!(d.mode(), 2);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let d = exact_path_lengths(&cycle(7));
        let s: f64 = d.probabilities().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_full_k_matches_exact() {
        let g = cycle(20);
        let mut rng = StdRng::seed_from_u64(3);
        let sampled = sampled_path_lengths(&g, 20, &mut rng);
        let exact = exact_path_lengths(&g);
        assert_eq!(sampled.counts, exact.counts);
    }

    #[test]
    fn sampled_partial_k_close_to_exact_on_symmetric_graph() {
        // vertex-transitive graph: every source sees the same level profile,
        // so any sample gives exact per-source proportions
        let g = cycle(50);
        let mut rng = StdRng::seed_from_u64(4);
        let sampled = sampled_path_lengths(&g, 5, &mut rng);
        let exact = exact_path_lengths(&g);
        let ps = sampled.probabilities();
        let pe = exact.probabilities();
        for (a, b) in ps.iter().zip(&pe) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn adaptive_converges_on_symmetric_graph() {
        let g = cycle(40);
        let mut rng = StdRng::seed_from_u64(5);
        let res = adaptive_path_lengths(&g, 4, 4, 40, 0.05, &mut rng);
        assert!(res.converged_early, "cycle distribution is identical per source");
        assert!(res.distribution.sources < 40);
        assert!(!res.ks_trajectory.is_empty());
    }

    #[test]
    fn adaptive_exhausts_kmax_without_convergence() {
        // a highly irregular graph with tiny batches and zero tolerance
        let g = from_edges(8, [(0, 1), (1, 2), (2, 3), (4, 5), (6, 7), (3, 4)]);
        let mut rng = StdRng::seed_from_u64(6);
        let res = adaptive_path_lengths(&g, 1, 1, 8, 1e-12, &mut rng);
        assert_eq!(res.distribution.sources, 8);
    }

    #[test]
    fn disconnected_pairs_excluded() {
        let g = from_edges(4, [(0, 1), (2, 3)]);
        let d = exact_path_lengths(&g);
        // reachable pairs: (0,1) and (2,3) only
        assert_eq!(d.total_pairs(), 2);
        assert_eq!(d.counts, vec![0, 2]);
    }

    #[test]
    fn undirected_view_mean_not_longer() {
        let g = cycle(9);
        let d_dir = exact_path_lengths(&g);
        let d_und = exact_path_lengths(&g.undirected_view());
        assert!(d_und.mean() <= d_dir.mean());
        assert!(d_und.max_distance <= d_dir.max_distance);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn adaptive_rejects_zero_batch() {
        let g = cycle(5);
        let mut rng = StdRng::seed_from_u64(7);
        let _ = adaptive_path_lengths(&g, 0, 1, 5, 0.1, &mut rng);
    }

    #[test]
    fn batched_estimator_matches_per_source_reference() {
        use crate::bfs;
        let g = from_edges(
            9,
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (5, 6), (6, 5), (7, 8), (4, 7)],
        );
        let sources: Vec<usize> = (0..g.node_count()).collect();
        let got = path_lengths_from_sources(&g, &sources);
        // reference: one classic BFS per source, merged by hand
        let mut want = PathLengthDistribution { counts: vec![0], sources: 0, max_distance: 0 };
        for &s in &sources {
            let levels = bfs::levels(&g, s as NodeId);
            let mut counts = levels.counts;
            counts[0] = 0;
            want.merge(&PathLengthDistribution {
                counts,
                sources: 1,
                max_distance: levels.eccentricity,
            });
        }
        assert_eq!(got, want);
    }

    #[test]
    fn relabeled_traversal_is_byte_identical() {
        use crate::relabel::Relabeling;
        let g =
            from_edges(10, [(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (4, 5), (6, 7), (8, 6)]);
        let r = Relabeling::degree_descending(&g);
        let h = r.apply(&g);
        let opts = TraversalOpts { hybrid_threshold: 0.05, source_map: Some(r.old_to_new()) };
        // identical RNG stream (same node_count), identical distribution
        let mut rng_a = StdRng::seed_from_u64(2012);
        let mut rng_b = StdRng::seed_from_u64(2012);
        let plain = sampled_path_lengths(&g, 6, &mut rng_a);
        let relabeled = sampled_path_lengths_opt(&h, 6, &mut rng_b, opts);
        assert_eq!(plain, relabeled);
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let plain = adaptive_path_lengths(&g, 2, 2, 8, 1e-12, &mut rng_a);
        let relabeled = adaptive_path_lengths_opt(&h, 2, 2, 8, 1e-12, &mut rng_b, opts);
        assert_eq!(plain, relabeled);
    }
}
