//! # gplus-obs — the workspace's observability layer
//!
//! A lock-light metrics registry plus a span-timing API, built for a
//! system whose north star is "as fast as the hardware allows": you
//! cannot optimize what you cannot see, and you must not pay for the
//! seeing.
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — atomic instruments; the
//!   histogram uses fixed log₂ buckets so recording never allocates.
//! * [`Registry`] — name → instrument map; handles are `Arc`s, so hot
//!   paths resolve once and record lock-free. [`global`] is the
//!   process-wide default every component records into unless handed an
//!   explicit registry.
//! * [`Registry::span`] — RAII wall-clock timing: drop the guard, get a
//!   `*.runs` counter bump and a `*.duration_us` histogram observation.
//! * [`MetricsSnapshot`] — the serde-exportable frozen view, with
//!   deterministic (sorted) serialisation; `gplus bench-suite` embeds one
//!   in every `BENCH_pipeline.json`.
//! * [`Registry::set_enabled`] — the no-op gate: closed, every record
//!   call is one relaxed load and a branch, which is how the bench suite
//!   demonstrates the overhead bound without a second compilation.
//!
//! ```
//! use gplus_obs::Registry;
//!
//! let reg = Registry::new();
//! let fetched = reg.counter("crawler.profiles_crawled");
//! fetched.inc();
//! reg.histogram("crawler.retry.backoff_ticks").observe(17);
//! {
//!     let _timing = reg.span("graph.scc.kosaraju");
//!     // ... work ...
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("crawler.profiles_crawled"), 1);
//! assert_eq!(snap.counter("graph.scc.kosaraju.runs"), 1);
//! ```

pub mod metrics;
pub mod names;
pub mod registry;
pub mod snapshot;

pub use metrics::{
    bucket_bounds, bucket_index, BucketCount, Counter, Gauge, Histogram, HistogramSnapshot,
    NUM_BUCKETS,
};
pub use registry::{global, Registry, Span};
pub use snapshot::MetricsSnapshot;
