//! Frozen, serialisable metric state.
//!
//! A [`MetricsSnapshot`] is the export format of the whole observability
//! layer: `BTreeMap`s keyed by metric name, so serialisation order is
//! deterministic and two snapshots of identical state are byte-identical
//! JSON — the property the bench suite's regression gate relies on when
//! diffing runs.

use crate::metrics::HistogramSnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Frozen view of one [`crate::Registry`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram views by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Every metric name in the snapshot, sorted, across all kinds.
    pub fn metric_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(String::as_str)
            .collect();
        names.sort_unstable();
        names
    }

    /// Number of distinct metric names.
    pub fn distinct_metrics(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// A counter's value, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialises")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn names_span_all_kinds_and_sort() {
        let r = Registry::new();
        r.counter("b.count").inc();
        r.gauge("a.gauge_ms").set(1.0);
        r.histogram("c.hist_us").observe(5);
        let snap = r.snapshot();
        assert_eq!(snap.metric_names(), vec!["a.gauge_ms", "b.count", "c.hist_us"]);
        assert_eq!(snap.distinct_metrics(), 3);
        assert_eq!(snap.counter("b.count"), 1);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = Registry::new();
        r.counter("x.total").add(7);
        r.gauge("x.level_ms").set(2.5);
        for v in [1u64, 10, 100, 1000] {
            r.histogram("x.sizes_bytes").observe(v);
        }
        let snap = r.snapshot();
        let back: MetricsSnapshot = serde_json::from_str(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }
}
