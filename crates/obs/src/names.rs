//! Well-known metric names shared across crates.
//!
//! Components that record into the [global registry](crate::global) from
//! more than one crate name their instruments here, so producers and the
//! tests/dashboards that read them cannot drift apart.

/// Oracle differential/invariant checks executed (one per kernel per graph).
pub const ORACLE_CHECKED: &str = "oracle.checked";

/// Oracle checks that found a disagreement with the reference.
pub const ORACLE_MISMATCH: &str = "oracle.mismatch";

/// Predicate evaluations spent shrinking failing graphs.
pub const ORACLE_SHRINK_STEPS: &str = "oracle.shrink_steps";

/// Snapshot swaps that passed integrity + semantic validation and were
/// applied to the serving epoch.
pub const SERVE_SWAP_APPLIED: &str = "serve.swap.applied_count";

/// Snapshot swaps rejected by the serve crate's `SwapGuard` (corrupt,
/// version-skewed,
/// or semantically invalid snapshot); the old epoch kept serving.
pub const SERVE_SWAP_REJECTED: &str = "serve.swap.rejected_count";

/// Queries shed for any overload reason (token admission or in-flight cap).
pub const SERVE_SHED_TOTAL: &str = "serve.shed.total_count";

/// Queries shed because the bounded in-flight admission cap was reached.
pub const SERVE_SHED_IN_FLIGHT: &str = "serve.shed.in_flight_count";

/// Expensive-class queries (shortest-path, recommend) shed by cost-weighted
/// token admission — the first tier sacrificed under graceful degradation.
pub const SERVE_SHED_EXPENSIVE: &str = "serve.shed.expensive_count";

/// Moderate-class queries (circles, reciprocity, top-k) shed by
/// cost-weighted token admission.
pub const SERVE_SHED_MODERATE: &str = "serve.shed.moderate_count";

/// Cheap-class queries (point lookups, epoch probes) shed by token
/// admission — under the intended price structure this stays near zero
/// while expensive/moderate counters climb.
pub const SERVE_SHED_CHEAP: &str = "serve.shed.cheap_count";

/// Queries whose execution ran past the configured deadline budget.
pub const SERVE_DEADLINE_EXCEEDED: &str = "serve.query.deadline_exceeded_count";

/// PageRank execution mode: 0 = legacy sequential scatter (push), 1 =
/// deterministic chunk-parallel gather (pull over reverse adjacency).
pub const GRAPH_PAGERANK_MODE: &str = "graph.pagerank.mode";

/// Number of fixed-size node chunks the gather sweep partitions the rank
/// vector into (thread-count independent; defines the f64 merge order).
pub const GRAPH_PAGERANK_CHUNKS: &str = "graph.pagerank.chunks";

/// Number of fixed-size node chunks encoded in parallel per adjacency
/// half when building a compressed CSR.
pub const GRAPH_COMPRESS_PARALLEL_CHUNKS: &str = "graph.compress.parallel_chunks";

/// Flat CSR resident footprint in bytes (offset + target arrays, both
/// halves) — set by the scale bench tier after building the graph.
pub const MEM_CSR_BYTES: &str = "mem.csr.bytes";

/// Delta-gap compressed CSR footprint in bytes (offset views + varint
/// streams, both halves) — set by `CompressedCsr::from_csr`.
pub const MEM_CSR_COMPRESSED_BYTES: &str = "mem.csr.compressed.bytes";

/// Serialized serving-snapshot payload (`snapshot.bin`) size in bytes —
/// set on every snapshot save and load.
pub const MEM_SNAPSHOT_BYTES: &str = "mem.snapshot.bytes";

/// Peak resident set size of the process in bytes (`VmHWM` from
/// `/proc/self/status`; absent on platforms without procfs).
pub const MEM_PEAK_RSS_BYTES: &str = "mem.peak_rss.bytes";

/// Full-graph directed-triangle motif censuses executed.
pub const GRAPH_MOTIFS_RUNS: &str = "graph.motifs.runs";

/// Triangles classified by the motif census, summed over the 7 classes
/// (one count per geometric triangle).
pub const GRAPH_MOTIFS_TRIANGLES: &str = "graph.motifs.triangles_count";

/// Number of fixed-size apex chunks the census sweep partitions the node
/// range into (thread-count independent; defines the merge order).
pub const GRAPH_MOTIFS_CHUNKS: &str = "graph.motifs.chunks";
