//! Well-known metric names shared across crates.
//!
//! Components that record into the [global registry](crate::global) from
//! more than one crate name their instruments here, so producers and the
//! tests/dashboards that read them cannot drift apart.

/// Oracle differential/invariant checks executed (one per kernel per graph).
pub const ORACLE_CHECKED: &str = "oracle.checked";

/// Oracle checks that found a disagreement with the reference.
pub const ORACLE_MISMATCH: &str = "oracle.mismatch";

/// Predicate evaluations spent shrinking failing graphs.
pub const ORACLE_SHRINK_STEPS: &str = "oracle.shrink_steps";
