//! The metrics registry and the span-timing API.
//!
//! A [`Registry`] maps metric names to shared atomic instruments. Lookup
//! takes a short read-lock on a per-kind `BTreeMap`; registration (first
//! use of a name) upgrades to a write-lock once. Hot paths resolve their
//! handles up front ([`Registry::counter`] returns an `Arc`) and then
//! record lock-free forever after.
//!
//! ## Naming scheme
//!
//! Names are dot-separated `component.subsystem.event` paths with a unit
//! suffix on anything that is not a plain count: `_ms`, `_us`, `_ticks`,
//! `_bytes`, `_count`. Examples: `crawler.retry.backoff_ticks`,
//! `service.fault.injected.outage`, `pipeline.stage.fig5_ms`,
//! `graph.scc.kosaraju.duration_us`. Counters, gauges and histograms live
//! in separate namespaces, but the convention keeps names globally unique
//! anyway so snapshots stay greppable.
//!
//! ## The global registry
//!
//! Components that cannot reasonably thread a handle through their API
//! (graph kernels, the analysis executor) record into [`global`].
//! Components with construction sites (`GooglePlusService`, `Crawler`)
//! default to [`global`] but accept an explicit registry, which is what
//! exact-equality tests use for isolation.

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::MetricsSnapshot;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A named collection of metric instruments.
#[derive(Debug)]
pub struct Registry {
    gate: Arc<AtomicBool>,
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty, enabled registry.
    pub fn new() -> Self {
        Self {
            gate: Arc::new(AtomicBool::new(true)),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// Whether recording is enabled.
    pub fn enabled(&self) -> bool {
        self.gate.load(Ordering::Relaxed)
    }

    /// Opens or closes the recording gate. With the gate closed every
    /// record call on every instrument of this registry — including
    /// handles resolved earlier — degrades to one relaxed load and a
    /// branch, which is the "metrics compiled out" arm of the overhead
    /// bench.
    pub fn set_enabled(&self, enabled: bool) {
        self.gate.store(enabled, Ordering::Relaxed);
    }

    fn get_or_insert<M>(
        map: &RwLock<BTreeMap<String, Arc<M>>>,
        name: &str,
        make: impl FnOnce() -> M,
    ) -> Arc<M> {
        if let Some(m) = map.read().get(name) {
            return m.clone();
        }
        map.write().entry(name.to_string()).or_insert_with(|| Arc::new(make())).clone()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Self::get_or_insert(&self.counters, name, || Counter::new(self.gate.clone()))
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Self::get_or_insert(&self.gauges, name, || Gauge::new(self.gate.clone()))
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Self::get_or_insert(&self.histograms, name, || Histogram::new(self.gate.clone()))
    }

    /// Starts a timing span. Dropping the returned guard increments
    /// `<name>.runs` and records the elapsed microseconds into
    /// `<name>.duration_us`.
    pub fn span(&self, name: &str) -> Span {
        Span {
            runs: self.counter(&format!("{name}.runs")),
            duration_us: self.histogram(&format!("{name}.duration_us")),
            start: Instant::now(),
        }
    }

    /// A frozen, serialisable view of every registered metric. Names are
    /// sorted (BTreeMap order), so two snapshots of identical state
    /// serialise byte-identically.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.read().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: self.gauges.read().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// An in-flight timing span; see [`Registry::span`].
#[must_use = "a span records on drop; binding it to _ discards the timing"]
pub struct Span {
    runs: Arc<Counter>,
    duration_us: Arc<Histogram>,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        self.runs.inc();
        self.duration_us.observe(self.start.elapsed().as_micros() as u64);
    }
}

/// The process-wide default registry.
pub fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_name() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn counters_are_exact_under_rayon_contention() {
        use rayon::prelude::*;
        let r = Registry::new();
        let c = r.counter("contended.total");
        let h = r.histogram("contended.values");
        (0..10_000u64).into_par_iter().for_each(|i| {
            c.inc();
            h.observe(i % 128);
        });
        assert_eq!(c.get(), 10_000);
        assert_eq!(h.count(), 10_000);
        let expected_sum: u64 = (0..10_000u64).map(|i| i % 128).sum();
        assert_eq!(h.sum(), expected_sum);
    }

    #[test]
    fn concurrent_first_registration_yields_one_instrument() {
        use rayon::prelude::*;
        let r = Registry::new();
        (0..1_000u64).into_par_iter().for_each(|_| r.counter("raced.total").inc());
        assert_eq!(r.counter("raced.total").get(), 1_000);
        assert_eq!(r.snapshot().counters.len(), 1);
    }

    #[test]
    fn snapshot_is_deterministic_regardless_of_registration_order() {
        let run = |names: &[&str]| {
            let r = Registry::new();
            for n in names {
                r.counter(n).add(n.len() as u64);
                r.histogram(&format!("{n}.h")).observe(n.len() as u64);
                r.gauge(&format!("{n}.g")).set(n.len() as f64);
            }
            r.snapshot()
        };
        let a = run(&["alpha", "beta", "gamma"]);
        let b = run(&["gamma", "alpha", "beta"]);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn disabled_registry_records_nothing_but_keeps_names() {
        let r = Registry::new();
        let c = r.counter("quiet.total");
        r.set_enabled(false);
        c.inc();
        r.histogram("quiet.h").observe(9);
        assert_eq!(c.get(), 0);
        let snap = r.snapshot();
        assert_eq!(snap.counters["quiet.total"], 0);
        assert_eq!(snap.histograms["quiet.h"].count, 0);
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn span_records_runs_and_duration() {
        let r = Registry::new();
        {
            let _span = r.span("work.unit");
        }
        {
            let _span = r.span("work.unit");
        }
        let snap = r.snapshot();
        assert_eq!(snap.counters["work.unit.runs"], 2);
        assert_eq!(snap.histograms["work.unit.duration_us"].count, 2);
    }
}
