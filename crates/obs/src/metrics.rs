//! The metric primitives: atomic counters, f64 gauges, and fixed-bucket
//! log₂-scale histograms.
//!
//! Every primitive shares the owning registry's *gate* — an
//! [`AtomicBool`] consulted with one relaxed load per operation. With the
//! gate closed every record call is a load-and-branch, which is how the
//! registry doubles as its own no-op implementation: the bench suite
//! measures the metrics overhead by running the identical pipeline twice,
//! once per gate position.
//!
//! All operations use [`Ordering::Relaxed`]: metrics are monotone
//! statistics, not synchronization edges. Concurrent increments never
//! lose counts (atomic RMW), but a snapshot taken mid-update may observe
//! a histogram whose `count` and `sum` straddle an in-flight observation
//! — acceptable for telemetry, and the reason snapshots are not used as
//! barriers anywhere.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets: one for zero, one per power of two up to
/// `2^63`, and a final bucket for `[2^63, u64::MAX]`.
pub const NUM_BUCKETS: usize = 65;

/// Bucket index for a value: `0` holds exactly `0`; bucket `i ≥ 1` holds
/// `[2^(i-1), 2^i - 1]`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` bounds of bucket `index`.
///
/// # Panics
/// Panics if `index >= NUM_BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index out of range");
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

/// A monotone counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
    gate: Arc<AtomicBool>,
}

impl Counter {
    pub(crate) fn new(gate: Arc<AtomicBool>) -> Self {
        Self { value: AtomicU64::new(0), gate }
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.gate.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
    gate: Arc<AtomicBool>,
}

impl Gauge {
    pub(crate) fn new(gate: Arc<AtomicBool>) -> Self {
        Self { bits: AtomicU64::new(0f64.to_bits()), gate }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if self.gate.load(Ordering::Relaxed) {
            self.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket log₂ histogram over `u64` observations.
///
/// Bucket layout is compile-time fixed (see [`bucket_index`]), so
/// recording is a shift, two atomic adds and one atomic increment — no
/// allocation, no locking, no configuration to mismatch between runs.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    gate: Arc<AtomicBool>,
}

impl Histogram {
    pub(crate) fn new(gate: Arc<AtomicBool>) -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            gate,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        if self.gate.load(Ordering::Relaxed) {
            self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (wraps on overflow, like any u64 total).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Occupancy of bucket `index`.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index].load(Ordering::Relaxed)
    }

    /// Serialisable view: count, sum, and every non-empty bucket.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = (0..NUM_BUCKETS)
            .filter_map(|i| {
                let count = self.bucket_count(i);
                (count > 0).then(|| {
                    let (lo, hi) = bucket_bounds(i);
                    BucketCount { lo, hi, count }
                })
            })
            .collect();
        HistogramSnapshot { count: self.count(), sum: self.sum(), buckets }
    }
}

/// One non-empty histogram bucket in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
    /// Observations that fell in `[lo, hi]`.
    pub count: u64,
}

/// Frozen view of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Non-empty buckets, ascending by bound.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_gate() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(true))
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // bounds and index agree on every bucket edge
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
            if i + 1 < NUM_BUCKETS {
                assert_eq!(hi + 1, bucket_bounds(i + 1).0, "buckets {i},{} abut", i + 1);
            }
        }
    }

    #[test]
    fn histogram_observations_land_in_the_right_bucket() {
        let h = Histogram::new(open_gate());
        for v in [0, 1, 2, 3, 4, 7, 8, 1000, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.sum(), 2049);
        assert_eq!(h.bucket_count(0), 1); // 0
        assert_eq!(h.bucket_count(1), 1); // 1
        assert_eq!(h.bucket_count(2), 2); // 2, 3
        assert_eq!(h.bucket_count(3), 2); // 4, 7
        assert_eq!(h.bucket_count(4), 1); // 8
        assert_eq!(h.bucket_count(10), 1); // 1000
        assert_eq!(h.bucket_count(11), 1); // 1024
    }

    #[test]
    fn closed_gate_makes_every_recorder_a_no_op() {
        let gate = Arc::new(AtomicBool::new(false));
        let c = Counter::new(gate.clone());
        let g = Gauge::new(gate.clone());
        let h = Histogram::new(gate.clone());
        c.inc();
        c.add(10);
        g.set(3.5);
        h.observe(42);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        // reopening the gate resumes recording on the same instances
        gate.store(true, Ordering::Relaxed);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn gauge_holds_last_written_value() {
        let g = Gauge::new(open_gate());
        g.set(1.25);
        g.set(-7.5);
        assert_eq!(g.get(), -7.5);
    }
}
