//! Plain-text rendering helpers shared by the experiment modules.
//!
//! Each experiment renders its result as a fixed-width text table or series
//! shaped like the paper's artifact, so the harness output can be eyeballed
//! against the PDF.

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title line.
    pub fn new(title: impl Into<String>) -> Self {
        Self { title: title.into(), header: Vec::new(), rows: Vec::new() }
    }

    /// Sets the column headers.
    pub fn header(mut self, cols: &[&str]) -> Self {
        self.header = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if the row width disagrees with the header (when set).
    pub fn row(&mut self, cells: Vec<String>) {
        if !self.header.is_empty() {
            assert_eq!(cells.len(), self.header.len(), "row width must match header width");
        }
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.header.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header, &widths));
            out.push('\n');
            let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with two decimals, paper style
/// ("67.65%").
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a large count with thousands separators ("27,556,390").
pub fn count(x: u64) -> String {
    let s = x.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a "paper vs measured" comparison cell.
pub fn compare(paper: impl std::fmt::Display, measured: impl std::fmt::Display) -> String {
    format!("paper {paper} / measured {measured}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new("Demo").header(&["Name", "Value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        assert!(s.starts_with("Demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5); // title, header, rule, two rows
        assert!(lines[1].starts_with("Name"));
        assert!(lines[2].chars().all(|c| c == '-'));
        // aligned: "Value" column starts at the same offset in all rows
        let col = lines[1].find("Value").unwrap();
        assert_eq!(lines[3].find('1'), Some(col));
        assert_eq!(lines[4].find("12345"), Some(col));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new("x").header(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn pct_and_count_formats() {
        assert_eq!(pct(0.6765), "67.65%");
        assert_eq!(pct(1.0), "100.00%");
        assert_eq!(count(27_556_390), "27,556,390");
        assert_eq!(count(999), "999");
        assert_eq!(count(1_000), "1,000");
    }

    #[test]
    fn compare_cell() {
        assert_eq!(compare("5.9", "5.7"), "paper 5.9 / measured 5.7");
    }
}
