//! The paper's published numbers, embedded for side-by-side comparison.
//!
//! Experiment renderings print "paper vs measured" rows from these
//! constants; the integration tests assert *shape* agreement against them
//! (who wins, rough factors, orderings), never exact equality.

use serde::{Deserialize, Serialize};

/// One row of Table 4 (topological comparison across OSNs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Network name.
    pub network: &'static str,
    /// Nodes.
    pub nodes: f64,
    /// Edges.
    pub edges: f64,
    /// Fraction of the network crawled.
    pub crawled: f64,
    /// Average shortest-path length.
    pub path_length: f64,
    /// Global reciprocity.
    pub reciprocity: f64,
    /// Diameter.
    pub diameter: u32,
    /// Mean in-degree (None where the paper prints "-").
    pub in_degree: Option<f64>,
    /// Mean out-degree.
    pub out_degree: Option<f64>,
}

/// Table 4 as printed in the paper.
pub const TABLE4: [Table4Row; 4] = [
    Table4Row {
        network: "Google+",
        nodes: 35.0e6,
        edges: 575.0e6,
        crawled: 0.56,
        path_length: 5.9,
        reciprocity: 0.32,
        diameter: 19,
        in_degree: Some(16.4),
        out_degree: Some(16.4),
    },
    Table4Row {
        network: "Facebook",
        nodes: 721.0e6,
        edges: 62.0e9,
        crawled: 1.00,
        path_length: 4.7,
        reciprocity: 1.00,
        diameter: 41,
        in_degree: Some(190.2),
        out_degree: Some(190.2),
    },
    Table4Row {
        network: "Twitter",
        nodes: 41.7e6,
        edges: 106.0e6,
        crawled: 1.00,
        path_length: 4.1,
        reciprocity: 0.221,
        diameter: 18,
        in_degree: Some(28.19),
        out_degree: Some(29.34),
    },
    Table4Row {
        network: "Orkut",
        nodes: 3.0e6,
        edges: 223.0e6,
        crawled: 0.11,
        path_length: 4.3,
        reciprocity: 1.00,
        diameter: 9,
        in_degree: None,
        out_degree: None,
    },
];

/// §2.2 / §3: headline dataset numbers.
pub mod dataset {
    /// Profiles crawled.
    pub const PROFILES_CRAWLED: u64 = 27_556_390;
    /// Graph nodes (crawled + seen).
    pub const GRAPH_NODES: u64 = 35_114_957;
    /// Directed edges collected.
    pub const GRAPH_EDGES: u64 = 575_141_097;
    /// Estimated coverage of registered users.
    pub const COVERAGE: f64 = 0.56;
    /// Users with >10,000 declared followers.
    pub const TRUNCATED_USERS: u64 = 915;
    /// Their declared in-edges.
    pub const TRUNCATED_DECLARED: u64 = 37_185_272;
    /// Their collected in-edges.
    pub const TRUNCATED_COLLECTED: u64 = 27_600_503;
    /// Estimated lost-edge fraction.
    pub const LOST_EDGE_FRACTION: f64 = 0.016;
    /// Located users (country identified).
    pub const LOCATED_USERS: u64 = 6_621_644;
    /// Tel-users (publish a phone number).
    pub const TEL_USERS: u64 = 72_736;
}

/// §3.3: structural findings.
pub mod structure {
    /// Power-law CCDF exponent fitted to the in-degree distribution.
    pub const ALPHA_IN: f64 = 1.3;
    /// Power-law CCDF exponent fitted to the out-degree distribution.
    pub const ALPHA_OUT: f64 = 1.2;
    /// R² of both fits.
    pub const DEGREE_FIT_R2: f64 = 0.99;
    /// Out-degree drop ("the out-degree curve drops sharply around 5000").
    pub const OUT_DEGREE_CAP: u64 = 5_000;
    /// Global reciprocity.
    pub const RECIPROCITY: f64 = 0.32;
    /// Twitter's reciprocity for comparison.
    pub const TWITTER_RECIPROCITY: f64 = 0.221;
    /// "More than 60% of the users have RR higher than 0.6".
    pub const RR_ABOVE_06_FRACTION: f64 = 0.60;
    /// "40% of all users have a CC greater than 0.2".
    pub const CC_ABOVE_02_FRACTION: f64 = 0.40;
    /// Number of SCCs found.
    pub const SCC_COUNT: u64 = 9_771_696;
    /// Size of the giant SCC.
    pub const GIANT_SCC: u64 = 25_240_000;
    /// Directed path length: mode and mean.
    pub const PATH_MODE_DIRECTED: u32 = 6;
    /// Mean directed path length.
    pub const PATH_MEAN_DIRECTED: f64 = 5.9;
    /// Undirected mode.
    pub const PATH_MODE_UNDIRECTED: u32 = 5;
    /// Mean undirected path length.
    pub const PATH_MEAN_UNDIRECTED: f64 = 4.7;
    /// Directed diameter.
    pub const DIAMETER_DIRECTED: u32 = 19;
    /// Undirected diameter.
    pub const DIAMETER_UNDIRECTED: u32 = 13;
}

/// §4: geographic findings.
pub mod geo {
    /// "Nearly 58% of the users (friends) were separated by less than a
    /// thousand miles".
    pub const FRIENDS_WITHIN_1000_MILES: f64 = 0.58;
    /// "15% of them were separated by in fact 10 miles".
    pub const FRIENDS_WITHIN_10_MILES: f64 = 0.15;
    /// Fraction of located users in the US (Table 3).
    pub const US_SHARE: f64 = 0.3138;
    /// Fraction in India.
    pub const IN_SHARE: f64 = 0.1671;
    /// §3.1: 7 of the global top-20 are IT-related.
    pub const TOP20_IT_COUNT: usize = 7;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_google_plus_first() {
        assert_eq!(TABLE4[0].network, "Google+");
        assert_eq!(TABLE4[0].diameter, 19);
        assert_eq!(TABLE4[3].in_degree, None); // Orkut prints "-"
    }

    #[test]
    fn paper_reciprocity_ordering() {
        // Facebook (100%) > Google+ (32%) > Twitter (22.1%)
        assert!(TABLE4[1].reciprocity > TABLE4[0].reciprocity);
        assert!(TABLE4[0].reciprocity > TABLE4[2].reciprocity);
    }

    #[test]
    fn lost_edge_constants_consistent() {
        let frac = (dataset::TRUNCATED_DECLARED - dataset::TRUNCATED_COLLECTED) as f64
            / dataset::GRAPH_EDGES as f64;
        assert!((frac - dataset::LOST_EDGE_FRACTION).abs() < 0.002);
    }

    #[test]
    fn path_lengths_consistent() {
        assert!(structure::PATH_MEAN_DIRECTED > structure::PATH_MEAN_UNDIRECTED);
        assert!(structure::DIAMETER_DIRECTED > structure::DIAMETER_UNDIRECTED);
    }
}
