//! Friend-recommendation locality (§6's implication, implemented).
//!
//! "When it comes to building recommender systems, it may make sense to
//! recommend domestic users and their content for those countries that
//! have high degree of self-loop such as Brazil and India. However, it may
//! be of more interest to the users to recommend foreign users and content
//! to those in Germany and United Kingdom due to their low fraction of
//! self-loops."
//!
//! We implement the standard friend-of-friend recommender (rank candidates
//! by common-neighbour count) and measure, per country, how domestic its
//! top recommendations actually are — quantifying the paper's qualitative
//! advice.

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use crate::render::TextTable;
use gplus_geo::{Country, TOP10_COUNTRIES};
use gplus_graph::NodeId;
use gplus_stats::sample_indices;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Recommender parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecommendParams {
    /// Users sampled per country.
    pub users_per_country: usize,
    /// Recommendations per user.
    pub top_k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RecommendParams {
    fn default() -> Self {
        Self { users_per_country: 200, top_k: 5, seed: 2012 }
    }
}

/// Per-country recommendation locality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecommendRow {
    /// Country.
    pub country: Country,
    /// Users actually sampled (with >= 1 recommendation produced).
    pub users: usize,
    /// Fraction of top-k recommendations that are located domestic.
    pub domestic_fraction: f64,
    /// The country's Figure-10 self-loop target for comparison.
    pub self_loop_target: f64,
}

/// The computed study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecommendResult {
    /// One row per top-10 country.
    pub rows: Vec<RecommendRow>,
}

/// Ranks friend-of-friend candidates for `u` by common-neighbour count
/// (undirected contact sets), excluding existing contacts and `u` itself.
pub fn recommend_for(data: &impl Dataset, u: NodeId, top_k: usize) -> Vec<(NodeId, u32)> {
    let g = data.graph();
    let mut contacts: Vec<NodeId> =
        g.out_neighbors(u).iter().chain(g.in_neighbors(u)).copied().collect();
    contacts.sort_unstable();
    contacts.dedup();
    let mut scores: HashMap<NodeId, u32> = HashMap::new();
    for &v in &contacts {
        for &w in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
            if w != u && contacts.binary_search(&w).is_err() {
                *scores.entry(w).or_insert(0) += 1;
            }
        }
    }
    let mut ranked: Vec<(NodeId, u32)> = scores.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(top_k);
    ranked
}

/// Measures recommendation locality over a fresh single-use context.
pub fn run(data: &impl Dataset, params: &RecommendParams) -> RecommendResult {
    run_ctx(&AnalysisCtx::new(data), params)
}

/// Measures recommendation locality per top-10 country, reusing the
/// context's cached country assignments.
pub fn run_ctx<D: Dataset>(
    ctx: &AnalysisCtx<'_, D>,
    params: &RecommendParams,
) -> RecommendResult {
    let data = ctx.data();
    let g = ctx.graph();
    // bucket located users by country
    let mut by_country: HashMap<Country, Vec<NodeId>> = HashMap::new();
    for node in g.nodes() {
        if let Some(c) = ctx.country_of(node) {
            if TOP10_COUNTRIES.contains(&c) {
                by_country.entry(c).or_default().push(node);
            }
        }
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    let rows = TOP10_COUNTRIES
        .iter()
        .map(|&country| {
            let members = by_country.get(&country).cloned().unwrap_or_default();
            let picks = sample_indices(&mut rng, members.len(), params.users_per_country);
            let mut domestic = 0u64;
            let mut total = 0u64;
            let mut users = 0usize;
            for idx in picks {
                let u = members[idx];
                let recs = recommend_for(data, u, params.top_k);
                if recs.is_empty() {
                    continue;
                }
                users += 1;
                for (candidate, _) in recs {
                    // count only geo-attributable recommendations
                    if let Some(c) = ctx.country_of(candidate) {
                        total += 1;
                        if c == country {
                            domestic += 1;
                        }
                    }
                }
            }
            RecommendRow {
                country,
                users,
                domestic_fraction: domestic as f64 / total.max(1) as f64,
                self_loop_target: gplus_synth::SynthConfig::self_loop_fraction(country),
            }
        })
        .collect();
    RecommendResult { rows }
}

/// Renders the locality table.
pub fn render(result: &RecommendResult) -> String {
    let mut t = TextTable::new("Friend-recommendation locality (FoF, common-neighbour ranked)")
        .header(&["Country", "Users", "Domestic recs", "Fig-10 self-loop"]);
    for r in &result.rows {
        t.row(vec![
            r.country.code().to_string(),
            r.users.to_string(),
            format!("{:.0}%", r.domestic_fraction * 100.0),
            format!("{:.0}%", r.self_loop_target * 100.0),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn net() -> &'static SynthNetwork {
        static NET: OnceLock<SynthNetwork> = OnceLock::new();
        NET.get_or_init(|| SynthNetwork::generate(&SynthConfig::google_plus_2011(40_000, 19)))
    }

    fn result() -> &'static RecommendResult {
        static R: OnceLock<RecommendResult> = OnceLock::new();
        R.get_or_init(|| {
            run(
                &GroundTruthDataset::new(net()),
                &RecommendParams { users_per_country: 80, top_k: 5, seed: 4 },
            )
        })
    }

    #[test]
    fn recommendations_exclude_self_and_existing_contacts() {
        let data = GroundTruthDataset::new(net());
        let g = data.graph();
        for u in [200u32, 500, 3_000] {
            for (candidate, score) in recommend_for(&data, u, 10) {
                assert_ne!(candidate, u);
                assert!(!g.has_edge(u, candidate), "{u} already follows {candidate}");
                assert!(!g.has_edge(candidate, u), "{candidate} already follows {u}");
                assert!(score >= 1);
            }
        }
    }

    #[test]
    fn scores_descend() {
        let data = GroundTruthDataset::new(net());
        let recs = recommend_for(&data, 300, 10);
        for w in recs.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn locality_tracks_figure10_split() {
        // the §6 implication: high self-loop countries get domestic
        // recommendations; GB/CA get far more foreign ones
        let r = result();
        let get =
            |c: Country| r.rows.iter().find(|x| x.country == c).expect("row").domestic_fraction;
        for inward in [Country::Us, Country::In, Country::Br] {
            assert!(
                get(inward) > get(Country::Gb),
                "{inward} ({}) should be more domestic than GB ({})",
                get(inward),
                get(Country::Gb)
            );
        }
        assert!(get(Country::Us) > 0.5, "US recs mostly domestic: {}", get(Country::Us));
    }

    #[test]
    fn render_lists_countries() {
        let s = render(result());
        assert!(s.contains("US"));
        assert!(s.contains("Domestic recs"));
    }
}
