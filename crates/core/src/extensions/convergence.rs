//! Sampling-convergence study: how much sampling do the paper's sampled
//! estimators actually need?
//!
//! §3.3.3 sampled one million nodes for the clustering CDF; §3.3.5 grew
//! the BFS source count from 2,000 to 10,000 "once there were no more
//! changes in the distribution". With ground truth available we can put
//! numbers on both choices: estimator error as a function of sample size,
//! and the KS-distance trajectory of the adaptive path schedule.

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use crate::render::TextTable;
use gplus_graph::{clustering, paths};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One sample-size point of the clustering-estimator study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CcErrorPoint {
    /// Nodes sampled.
    pub sample_size: usize,
    /// Sampled mean CC.
    pub estimate: f64,
    /// Absolute error against the exact mean.
    pub abs_error: f64,
}

/// The full study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceResult {
    /// Exact mean clustering coefficient.
    pub exact_cc: f64,
    /// Error curve across sample sizes.
    pub cc_curve: Vec<CcErrorPoint>,
    /// KS distances between successive path-length estimates under the
    /// paper's adaptive schedule.
    pub path_ks_trajectory: Vec<f64>,
    /// Sources the adaptive schedule used before stopping.
    pub path_sources_used: usize,
    /// Whether the stopping rule fired before exhausting the budget.
    pub path_converged_early: bool,
}

/// Parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceParams {
    /// Clustering sample sizes to test.
    pub cc_samples: Vec<usize>,
    /// Path schedule: start, step, max, tolerance.
    pub path_schedule: (usize, usize, usize, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for ConvergenceParams {
    fn default() -> Self {
        Self {
            cc_samples: vec![500, 2_000, 8_000, 32_000],
            path_schedule: (200, 200, 2_000, 0.01),
            seed: 2012,
        }
    }
}

/// Runs both studies over a fresh single-use context.
pub fn run(data: &impl Dataset, params: &ConvergenceParams) -> ConvergenceResult {
    run_ctx(&AnalysisCtx::new(data), params)
}

/// Runs both studies against a shared [`AnalysisCtx`]'s graph.
pub fn run_ctx<D: Dataset>(
    ctx: &AnalysisCtx<'_, D>,
    params: &ConvergenceParams,
) -> ConvergenceResult {
    let g = ctx.graph();
    let exact_cc = clustering::average_cc(g).unwrap_or(0.0);
    let cc_curve = params
        .cc_samples
        .iter()
        .map(|&sample_size| {
            let mut rng = StdRng::seed_from_u64(params.seed);
            let cc = clustering::sampled_cc(g, sample_size.min(g.node_count()), &mut rng);
            let estimate =
                if cc.is_empty() { 0.0 } else { cc.iter().sum::<f64>() / cc.len() as f64 };
            CcErrorPoint { sample_size, estimate, abs_error: (estimate - exact_cc).abs() }
        })
        .collect();

    let (k_start, k_step, k_max, tol) = params.path_schedule;
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x70617468);
    let adaptive = paths::adaptive_path_lengths(g, k_start, k_step, k_max, tol, &mut rng);

    ConvergenceResult {
        exact_cc,
        cc_curve,
        path_ks_trajectory: adaptive.ks_trajectory.clone(),
        path_sources_used: adaptive.distribution.sources,
        path_converged_early: adaptive.converged_early,
    }
}

/// Renders both studies.
pub fn render(result: &ConvergenceResult) -> String {
    let mut t = TextTable::new(format!(
        "Clustering estimator vs sample size (exact mean CC = {:.4})",
        result.exact_cc
    ))
    .header(&["Sample", "Estimate", "Abs error"]);
    for p in &result.cc_curve {
        t.row(vec![
            p.sample_size.to_string(),
            format!("{:.4}", p.estimate),
            format!("{:.4}", p.abs_error),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\nAdaptive path schedule: {} sources used, converged early = {}, KS trajectory: {}\n",
        result.path_sources_used,
        result.path_converged_early,
        result
            .path_ks_trajectory
            .iter()
            .map(|d| format!("{d:.4}"))
            .collect::<Vec<_>>()
            .join(" → ")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn result() -> &'static ConvergenceResult {
        static R: OnceLock<ConvergenceResult> = OnceLock::new();
        R.get_or_init(|| {
            let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(15_000, 29));
            run(
                &GroundTruthDataset::new(&net),
                &ConvergenceParams {
                    cc_samples: vec![300, 1_500, 6_000, 15_000],
                    path_schedule: (100, 100, 1_000, 0.02),
                    seed: 7,
                },
            )
        })
    }

    #[test]
    fn cc_error_shrinks_with_sample_size() {
        let r = result();
        let first = r.cc_curve.first().unwrap();
        let last = r.cc_curve.last().unwrap();
        assert!(
            last.abs_error <= first.abs_error,
            "error should shrink: {} -> {}",
            first.abs_error,
            last.abs_error
        );
        // a full-population sample is exact
        assert!(last.abs_error < 1e-9, "full sample error {}", last.abs_error);
    }

    #[test]
    fn paper_scale_sample_is_adequate() {
        // the paper's 1M of 35M ≈ 3%; our 1,500 of 15,000 = 10% sample
        // already estimates the mean CC to within 10% relative error
        let r = result();
        let ten_pct = r.cc_curve.iter().find(|p| p.sample_size == 1_500).unwrap();
        assert!(
            ten_pct.abs_error < r.exact_cc * 0.10 + 0.01,
            "10% sample error {} vs exact {}",
            ten_pct.abs_error,
            r.exact_cc
        );
    }

    #[test]
    fn path_schedule_stops_with_decreasing_ks() {
        let r = result();
        assert!(!r.path_ks_trajectory.is_empty());
        assert!(r.path_sources_used >= 100);
        // the last recorded distance is the smallest or near it
        let last = *r.path_ks_trajectory.last().unwrap();
        let max = r.path_ks_trajectory.iter().cloned().fold(0.0f64, f64::max);
        assert!(last <= max);
    }

    #[test]
    fn render_has_both_studies() {
        let s = render(result());
        assert!(s.contains("Clustering estimator"));
        assert!(s.contains("Adaptive path schedule"));
    }
}
