//! Ranking robustness: is Table 1's "top users by in-degree" stable under
//! a different popularity measure?
//!
//! The paper ranks by raw in-degree. This extension recomputes the top
//! list with PageRank and sampled-Brandes betweenness and reports the
//! overlaps — if the measures pick essentially the same people, the
//! paper's Table 1 methodology is robust to the choice.

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use crate::render::TextTable;
use gplus_graph::betweenness::betweenness;
use gplus_graph::pagerank::{pagerank, PageRankParams};
use gplus_stats::jaccard_index;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Comparison of the two top-k lists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankingResult {
    /// k used.
    pub k: usize,
    /// Top-k by in-degree (node ids).
    pub by_in_degree: Vec<u32>,
    /// Top-k by PageRank (node ids).
    pub by_pagerank: Vec<u32>,
    /// Top-k by sampled betweenness (node ids).
    pub by_betweenness: Vec<u32>,
    /// Set-Jaccard overlap of the in-degree and PageRank lists.
    pub overlap: f64,
    /// Set-Jaccard overlap of the in-degree and betweenness lists.
    pub overlap_betweenness: f64,
    /// Spearman-style agreement: fraction of common members whose relative
    /// order agrees between the two rankings.
    pub order_agreement: f64,
}

/// Computes both rankings and their agreement over a fresh context.
pub fn run(data: &impl Dataset, k: usize) -> RankingResult {
    run_ctx(&AnalysisCtx::new(data), k)
}

/// Computes both rankings from a shared [`AnalysisCtx`], reusing its
/// cached in-degree ranking.
pub fn run_ctx<D: Dataset>(ctx: &AnalysisCtx<'_, D>, k: usize) -> RankingResult {
    let g = ctx.graph();
    let by_in_degree: Vec<u32> = ctx.top_by_in_degree(k).into_iter().map(|(n, _)| n).collect();
    let pr = pagerank(g, &PageRankParams::default());
    let by_pagerank: Vec<u32> = pr.top(k).into_iter().map(|(n, _)| n).collect();
    let mut rng = StdRng::seed_from_u64(2012);
    let bt = betweenness(g, 300.min(g.node_count()), &mut rng);
    let by_betweenness: Vec<u32> = bt.top(k).into_iter().map(|(n, _)| n).collect();

    let overlap = jaccard_index(&by_in_degree, &by_pagerank);
    let overlap_betweenness = jaccard_index(&by_in_degree, &by_betweenness);

    // order agreement over the intersection: count concordant pairs
    let common: Vec<u32> =
        by_in_degree.iter().copied().filter(|n| by_pagerank.contains(n)).collect();
    let pos = |list: &[u32], x: u32| list.iter().position(|&y| y == x).expect("member");
    let mut concordant = 0usize;
    let mut pairs = 0usize;
    for i in 0..common.len() {
        for j in (i + 1)..common.len() {
            pairs += 1;
            let a = pos(&by_in_degree, common[i]) < pos(&by_in_degree, common[j]);
            let b = pos(&by_pagerank, common[i]) < pos(&by_pagerank, common[j]);
            if a == b {
                concordant += 1;
            }
        }
    }
    let order_agreement = if pairs == 0 { 1.0 } else { concordant as f64 / pairs as f64 };

    RankingResult {
        k,
        by_in_degree,
        by_pagerank,
        by_betweenness,
        overlap,
        overlap_betweenness,
        order_agreement,
    }
}

/// Renders the side-by-side comparison.
pub fn render(result: &RankingResult, data: &impl Dataset) -> String {
    let mut t = TextTable::new("Ranking robustness: in-degree vs PageRank vs betweenness")
        .header(&["Rank", "By in-degree", "By PageRank", "By betweenness"]);
    for i in 0..result.k {
        let name = |node: Option<&u32>| {
            node.and_then(|&n| data.display_name(n)).unwrap_or_else(|| "-".into())
        };
        t.row(vec![
            (i + 1).to_string(),
            name(result.by_in_degree.get(i)),
            name(result.by_pagerank.get(i)),
            name(result.by_betweenness.get(i)),
        ]);
    }
    format!(
        "{}PageRank overlap {:.2} (order agreement {:.2}); betweenness overlap {:.2}\n",
        t.render(),
        result.overlap,
        result.order_agreement,
        result.overlap_betweenness
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn net() -> &'static SynthNetwork {
        static NET: OnceLock<SynthNetwork> = OnceLock::new();
        NET.get_or_init(|| SynthNetwork::generate(&SynthConfig::google_plus_2011(15_000, 17)))
    }

    #[test]
    fn rankings_substantially_agree() {
        let data = GroundTruthDataset::new(net());
        let r = run(&data, 20);
        assert_eq!(r.by_in_degree.len(), 20);
        assert_eq!(r.by_pagerank.len(), 20);
        // the celebrity core dominates either way
        assert!(r.overlap > 0.5, "overlap {}", r.overlap);
        assert!(r.order_agreement > 0.6, "order agreement {}", r.order_agreement);
        assert_eq!(r.by_betweenness.len(), 20);
        // betweenness ranks *bridges*, not sinks: celebrities collect
        // followers but forward few shortest paths, so the overlap with the
        // in-degree list is much weaker than PageRank's — itself a finding.
        assert!(
            r.overlap_betweenness < r.overlap,
            "betweenness ({}) should diverge more than PageRank ({})",
            r.overlap_betweenness,
            r.overlap
        );
        // the bridge nodes are still well-connected: every betweenness
        // top-20 member has total degree far above the population mean
        let g = data.graph();
        let mean_deg = g.edge_count() as f64 / g.node_count() as f64;
        for &node in &r.by_betweenness {
            let total = (g.in_degree(node) + g.out_degree(node)) as f64;
            assert!(
                total > mean_deg * 2.0,
                "bridge {node} has degree {total} vs mean {mean_deg}"
            );
        }
    }

    #[test]
    fn larry_page_tops_both() {
        let data = GroundTruthDataset::new(net());
        let r = run(&data, 5);
        assert_eq!(r.by_in_degree[0], 0);
        assert_eq!(r.by_pagerank[0], 0);
    }

    #[test]
    fn render_two_columns() {
        let data = GroundTruthDataset::new(net());
        let r = run(&data, 5);
        let s = render(&r, &data);
        assert!(s.contains("Larry Page"));
        assert!(s.contains("overlap"));
    }
}
