//! Growth-phase analysis (the paper's §7 future work).
//!
//! Runs the temporal model of [`gplus_synth::growth`] over a network,
//! measuring each snapshot and fitting the densification exponent
//! (Leskovec et al. \[28\], cited by the paper as the likely explanation of
//! its longer-than-Facebook path lengths: "Google+ is a new platform and
//! it should get denser in the future").

use crate::render::TextTable;
use gplus_synth::growth::{densification_exponent, GrowthModel, SnapshotStats};
use gplus_synth::SynthNetwork;
use serde::{Deserialize, Serialize};

/// Growth-analysis parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrowthParams {
    /// Fraction of users joining during the invitation-only phase.
    pub invite_fraction: f64,
    /// Snapshot fractions to measure.
    pub fractions: Vec<f64>,
    /// BFS sources per snapshot for path statistics.
    pub path_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GrowthParams {
    fn default() -> Self {
        Self {
            invite_fraction: 0.4,
            fractions: vec![0.2, 0.4, 0.6, 0.8, 1.0],
            path_samples: 150,
            seed: 2012,
        }
    }
}

/// The measured trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrowthResult {
    /// Per-snapshot measurements.
    pub series: Vec<SnapshotStats>,
    /// Fitted densification exponent `a` in `E ∝ N^a`.
    pub densification: Option<f64>,
}

/// Runs the growth analysis on a generated network.
pub fn run(network: &SynthNetwork, params: &GrowthParams) -> GrowthResult {
    let model = GrowthModel::new(network, params.invite_fraction, params.seed);
    let series =
        model.snapshot_series(network, &params.fractions, params.path_samples, params.seed);
    let densification = densification_exponent(&series);
    GrowthResult { series, densification }
}

/// Renders the trajectory.
pub fn render(result: &GrowthResult) -> String {
    let mut t = TextTable::new("Growth study (§7 future work): snapshots over adoption")
        .header(&["Fraction", "Nodes", "Edges", "Mean degree", "Mean path", "Diameter"]);
    for s in &result.series {
        t.row(vec![
            format!("{:.0}%", s.fraction * 100.0),
            s.nodes.to_string(),
            s.edges.to_string(),
            format!("{:.2}", s.mean_degree),
            format!("{:.2}", s.mean_path),
            s.diameter.to_string(),
        ]);
    }
    format!(
        "{}densification exponent a = {} (Leskovec et al.: 1 < a < 2)\n",
        t.render(),
        result.densification.map(|a| format!("{a:.2}")).unwrap_or_else(|| "n/a".into())
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_synth::SynthConfig;
    use std::sync::OnceLock;

    fn result() -> &'static GrowthResult {
        static R: OnceLock<GrowthResult> = OnceLock::new();
        R.get_or_init(|| {
            let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(12_000, 16));
            run(&net, &GrowthParams { path_samples: 80, ..Default::default() })
        })
    }

    #[test]
    fn densification_in_leskovec_band() {
        let r = result();
        let a = r.densification.expect("fit exists");
        assert!(a > 1.0 && a < 2.2, "densification exponent {a}");
        // degree grows monotonically across snapshots
        for w in r.series.windows(2) {
            assert!(w[1].mean_degree > w[0].mean_degree);
        }
    }

    #[test]
    fn paths_shrink_as_network_matures() {
        // the paper's §6 hypothesis: young network -> longer paths
        let r = result();
        let early = &r.series[0];
        let late = r.series.last().unwrap();
        assert!(
            early.mean_path > late.mean_path,
            "early {} vs late {}",
            early.mean_path,
            late.mean_path
        );
    }

    #[test]
    fn render_has_all_rows() {
        let s = render(result());
        assert!(s.contains("20%"));
        assert!(s.contains("100%"));
        assert!(s.contains("densification exponent"));
    }
}
