//! Information-cascade simulation.
//!
//! §3.3.4: "SCCs have an important role in directed social networks ...
//! Graphs with large SCCs are amenable to quick information dissemination"
//! and §3.3.1: "hubs play a central role in information propagation".
//! This extension tests both claims on the synthetic graph with the
//! standard independent-cascade (IC) model: a post spreads from a seed
//! along *reversed* follow edges (followers see what the followed posts)
//! with a fixed per-edge activation probability.

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use crate::render::TextTable;
use gplus_graph::NodeId;
use gplus_stats::{sample_indices, Summary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Cascade-simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CascadeParams {
    /// Per-edge activation probability.
    pub activation: f64,
    /// Cascades per seed group.
    pub runs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CascadeParams {
    fn default() -> Self {
        Self { activation: 0.05, runs: 50, seed: 2012 }
    }
}

/// Spread statistics for one seed group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CascadeGroup {
    /// Group label.
    pub label: String,
    /// Mean cascade size (activated users, including the seed).
    pub mean_size: f64,
    /// Largest observed cascade.
    pub max_size: u64,
    /// Mean number of hops the cascade travelled.
    pub mean_depth: f64,
}

/// The computed study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CascadeResult {
    /// Celebrity-seeded vs random-seeded groups.
    pub groups: Vec<CascadeGroup>,
}

/// Runs one IC cascade from `seed_node`; returns (size, depth).
fn cascade(data: &impl Dataset, seed_node: NodeId, p: f64, rng: &mut StdRng) -> (u64, u32) {
    let g = data.graph();
    let mut active = vec![false; g.node_count()];
    active[seed_node as usize] = true;
    let mut frontier = vec![seed_node];
    let mut size = 1u64;
    let mut depth = 0u32;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            // reversed follow edges: u's followers (in-neighbours) see the post
            for &v in g.in_neighbors(u) {
                if !active[v as usize] && rng.random_bool(p) {
                    active[v as usize] = true;
                    next.push(v);
                    size += 1;
                }
            }
        }
        if next.is_empty() {
            break;
        }
        depth += 1;
        frontier = next;
    }
    (size, depth)
}

/// Compares hub-seeded and random-seeded cascades over a fresh context.
pub fn run(data: &impl Dataset, params: &CascadeParams) -> CascadeResult {
    run_ctx(&AnalysisCtx::new(data), params)
}

/// Compares cascades seeded at the top-20 in-degree hubs against cascades
/// from uniformly random seeds, reusing the context's in-degree ranking.
pub fn run_ctx<D: Dataset>(ctx: &AnalysisCtx<'_, D>, params: &CascadeParams) -> CascadeResult {
    let data = ctx.data();
    let g = ctx.graph();
    let mut rng = StdRng::seed_from_u64(params.seed);

    let hubs: Vec<NodeId> = ctx.top_by_in_degree(20).into_iter().map(|(n, _)| n).collect();
    let randoms: Vec<NodeId> =
        sample_indices(&mut rng, g.node_count(), 20).into_iter().map(|i| i as NodeId).collect();

    let mut measure = |label: &str, seeds: &[NodeId]| {
        let mut sizes = Summary::new();
        let mut depths = Summary::new();
        let mut max_size = 0u64;
        for run_no in 0..params.runs {
            let seed_node = seeds[run_no % seeds.len()];
            let (size, depth) = cascade(data, seed_node, params.activation, &mut rng);
            sizes.add(size as f64);
            depths.add(depth as f64);
            max_size = max_size.max(size);
        }
        CascadeGroup {
            label: label.to_string(),
            mean_size: sizes.mean(),
            max_size,
            mean_depth: depths.mean(),
        }
    };

    CascadeResult {
        groups: vec![measure("top-20 hubs", &hubs), measure("random users", &randoms)],
    }
}

/// Renders the comparison.
pub fn render(result: &CascadeResult) -> String {
    let mut t = TextTable::new("Independent-cascade spread (reversed follow edges)").header(&[
        "Seed group",
        "Mean size",
        "Max size",
        "Mean depth",
    ]);
    for g in &result.groups {
        t.row(vec![
            g.label.clone(),
            format!("{:.1}", g.mean_size),
            g.max_size.to_string(),
            format!("{:.1}", g.mean_depth),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn result() -> &'static CascadeResult {
        static R: OnceLock<CascadeResult> = OnceLock::new();
        R.get_or_init(|| {
            let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(20_000, 23));
            run(
                &GroundTruthDataset::new(&net),
                &CascadeParams { activation: 0.05, runs: 40, seed: 5 },
            )
        })
    }

    #[test]
    fn hubs_spread_further_than_random_seeds() {
        // §3.3.1's claim, quantified
        let r = result();
        let hubs = &r.groups[0];
        let random = &r.groups[1];
        assert!(
            hubs.mean_size > random.mean_size * 3.0,
            "hubs {} vs random {}",
            hubs.mean_size,
            random.mean_size
        );
    }

    #[test]
    fn cascades_terminate_and_stay_bounded() {
        let r = result();
        for g in &r.groups {
            assert!(g.mean_size >= 1.0);
            assert!(g.max_size <= 20_000);
            assert!(g.mean_depth < 50.0);
        }
    }

    #[test]
    fn zero_activation_never_spreads() {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(2_000, 24));
        let r = run(
            &GroundTruthDataset::new(&net),
            &CascadeParams { activation: 0.0, runs: 10, seed: 1 },
        );
        for g in &r.groups {
            assert_eq!(g.mean_size, 1.0, "{}: only the seed activates", g.label);
            assert_eq!(g.mean_depth, 0.0);
        }
    }

    #[test]
    fn render_shows_groups() {
        let s = render(result());
        assert!(s.contains("top-20 hubs"));
        assert!(s.contains("random users"));
    }
}
