//! Extension analyses beyond the paper's published artifacts.
//!
//! * [`growth`] — the paper's §7 future work: growth-phase snapshots,
//!   densification exponent, diameter trend.
//! * [`rankings`] — robustness of Table 1's in-degree ranking against
//!   PageRank, with rank-overlap measures.
//! * [`structure`] — the standard OSN characterisation extras (degree
//!   assortativity, k-core decomposition, degree Gini) for the Google+,
//!   Twitter-like and Facebook-like presets.
//! * [`recommend`] — §6's recommender implication: friend-of-friend
//!   recommendations and their per-country domestic fraction.
//! * [`cascade`] — §3.3's information-dissemination claims: independent
//!   cascades from hubs vs random seeds.
//! * [`convergence`] — how much sampling the paper's sampled estimators
//!   (1M-node clustering, adaptive path schedule) actually need.

pub mod cascade;
pub mod convergence;
pub mod growth;
pub mod rankings;
pub mod recommend;
pub mod structure;
