//! Structural extras: assortativity, k-core structure and degree
//! concentration, across the three network presets.
//!
//! The characterisation papers this work builds on (Mislove et al. \[32\])
//! report these for the classic OSNs; computing them across our presets
//! shows the generator reproduces the *differences between regimes*, not
//! just the Google+ point.

use crate::render::TextTable;
use gplus_graph::assortativity::undirected_assortativity;
use gplus_graph::degree::in_degrees;
use gplus_graph::kcore::core_decomposition;
use gplus_graph::CsrGraph;
use gplus_stats::gini;
use serde::{Deserialize, Serialize};

/// One network's structural extras.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructureRow {
    /// Label ("google_plus", "twitter_like", ...).
    pub label: String,
    /// Undirected degree assortativity (None when undefined).
    pub assortativity: Option<f64>,
    /// Graph degeneracy (maximum coreness).
    pub degeneracy: u32,
    /// Fraction of nodes in the 5-core or deeper.
    pub core5_fraction: f64,
    /// Gini coefficient of the in-degree distribution.
    pub degree_gini: f64,
}

/// Computes the extras for one graph.
pub fn measure(label: &str, g: &CsrGraph) -> StructureRow {
    let core = core_decomposition(g);
    let n = g.node_count().max(1);
    let in_deg: Vec<f64> = in_degrees(g).into_iter().map(|d| d as f64).collect();
    StructureRow {
        label: label.to_string(),
        assortativity: undirected_assortativity(g),
        degeneracy: core.degeneracy,
        core5_fraction: core.core_size(5) as f64 / n as f64,
        degree_gini: gini(&in_deg),
    }
}

/// Renders a set of rows.
pub fn render(rows: &[StructureRow]) -> String {
    let mut t = TextTable::new("Structural extras across presets").header(&[
        "Network",
        "Assortativity",
        "Degeneracy",
        ">=5-core",
        "Degree Gini",
    ]);
    for r in rows {
        t.row(vec![
            r.label.clone(),
            r.assortativity.map(|a| format!("{a:+.3}")).unwrap_or_else(|| "n/a".into()),
            r.degeneracy.to_string(),
            format!("{:.1}%", r.core5_fraction * 100.0),
            format!("{:.3}", r.degree_gini),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn rows() -> &'static Vec<StructureRow> {
        static R: OnceLock<Vec<StructureRow>> = OnceLock::new();
        R.get_or_init(|| {
            let g = SynthNetwork::generate(&SynthConfig::google_plus_2011(12_000, 18));
            let t = SynthNetwork::generate(&SynthConfig::twitter_like(12_000, 18));
            let f = SynthNetwork::generate(&SynthConfig::facebook_like(12_000, 18));
            vec![
                measure("google_plus", &g.graph),
                measure("twitter_like", &t.graph),
                measure("facebook_like", &f.graph),
            ]
        })
    }

    #[test]
    fn all_presets_have_deep_cores() {
        for r in rows().iter() {
            assert!(r.degeneracy >= 4, "{}: degeneracy {}", r.label, r.degeneracy);
            assert!(r.core5_fraction > 0.02, "{}: 5-core {}", r.label, r.core5_fraction);
        }
    }

    #[test]
    fn degree_concentration_ordering() {
        // the celebrity-heavy twitter-like regime concentrates in-degree
        // harder than the flat facebook-like regime
        let find = |label: &str| rows().iter().find(|r| r.label == label).unwrap();
        let tw = find("twitter_like").degree_gini;
        let fb = find("facebook_like").degree_gini;
        let gp = find("google_plus").degree_gini;
        assert!(tw > fb, "twitter gini {tw} vs facebook {fb}");
        assert!(gp > 0.4, "Google+ degree inequality should be substantial: {gp}");
    }

    #[test]
    fn assortativity_defined_for_all() {
        for r in rows().iter() {
            let a = r.assortativity.expect("heterogeneous degrees");
            assert!((-1.0..=1.0).contains(&a), "{}: {a}", r.label);
        }
    }

    #[test]
    fn render_lists_presets() {
        let s = render(rows());
        for l in ["google_plus", "twitter_like", "facebook_like"] {
            assert!(s.contains(l));
        }
    }
}
