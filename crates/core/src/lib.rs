//! The measurement-study analysis library — the paper's primary
//! contribution, as a reusable crate.
//!
//! Every table and figure of *New Kid on the Block: Exploring the Google+
//! Social Graph* (IMC 2012) is implemented as an experiment module under
//! [`experiments`]: a typed `run` function, a serialisable result, a text
//! rendering shaped like the paper's artifact, and the paper's published
//! numbers embedded for side-by-side comparison ([`paper`]).
//!
//! Analyses run over anything implementing [`Dataset`] — the ground-truth
//! synthetic network directly ([`dataset::GroundTruthDataset`]) or the
//! output of an actual simulated crawl ([`dataset::CrawlDataset`]), which
//! is the faithful reproduction path: generate → serve → crawl → analyse.
//! [`pipeline::Reproduction`] wires that end to end. [`extensions`] goes
//! beyond the published artifacts: the §7 growth study, ranking-robustness
//! checks, and the standard OSN structural extras.
//!
//! ```
//! use gplus_core::dataset::GroundTruthDataset;
//! use gplus_core::experiments::table2;
//! use gplus_synth::{SynthConfig, SynthNetwork};
//!
//! let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(2_000, 1));
//! let data = GroundTruthDataset::new(&net);
//! let result = table2::run(&data);
//! assert_eq!(result.rows.len(), 17);
//! println!("{}", table2::render(&result));
//! ```

pub mod benchreport;
pub mod context;
pub mod dataset;
pub mod experiments;
pub mod extensions;
pub mod paper;
pub mod pipeline;
pub mod registry;
pub mod render;

pub use benchreport::{compare as bench_compare, BenchConfig, BenchGate, BenchReport};
pub use context::{AnalysisCtx, CtxOptions, TraversalView};
pub use dataset::{CrawlDataset, Dataset, GroundTruthDataset};
pub use pipeline::{
    Reproduction, ReproductionConfig, ReproductionReport, StageTiming, StageTimings,
};
pub use registry::{ArtifactKind, ExperimentInfo, ALL_EXPERIMENTS};
