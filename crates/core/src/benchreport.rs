//! Machine-readable bench-suite output and the CI regression gate.
//!
//! `gplus bench-suite` runs the full pipeline (generate → crawl → analyse)
//! at a fixed scale and writes a [`BenchReport`]: coarse phase timings, the
//! per-stage analysis profile, a full [`MetricsSnapshot`], and the
//! metrics-overhead measurement (the same analysis run with the registry
//! gate closed). `gplus bench-check` compares a fresh report against the
//! checked-in `BENCH_baseline.json` with [`compare`].
//!
//! ## Why the gate is share-based
//!
//! Absolute wall-clock differs across machines (the committed baseline and
//! an arbitrary CI runner do not share hardware), so the gate compares each
//! stage's *share* of its group's total time instead of its milliseconds.
//! A stage that regresses relative to its siblings — an accidentally
//! quadratic loop, a lost memoization — shifts its share no matter how fast
//! the machine is, while a uniformly slower machine shifts nothing.
//! Stages below [`BenchGate::min_share`] are skipped: their timings are
//! dominated by timer noise, not work.
//!
//! Memory gauges (`mem.*`) are the exception: byte footprints at a fixed
//! scale and seed are machine-independent, so any `mem.*` gauge the
//! baseline records is compared *absolutely* — it must be present in the
//! current run and within [`BenchGate::max_gauge_growth`] relative growth.
//! Baselines without memory gauges (the pre-scale-tier ones) gate nothing
//! extra, so the check is data-driven and needs no per-tier gate config.

use crate::pipeline::StageTiming;
use gplus_obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};

/// Schema tag written into every report, bumped on layout changes.
pub const BENCH_SCHEMA: &str = "gplus-bench/1";

/// Scale and environment of one bench run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchConfig {
    /// Users generated.
    pub n_users: usize,
    /// Generation seed.
    pub seed: u64,
    /// Rayon worker threads during the run.
    pub threads: usize,
}

/// Everything one `gplus bench-suite` run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema tag ([`BENCH_SCHEMA`]).
    pub schema: String,
    /// Git commit the binary was built from (or "unknown").
    pub git_sha: String,
    /// `rustc --version` of the toolchain.
    pub toolchain: String,
    /// Free-form provenance: machine class, or a note that the numbers
    /// are provisional.
    pub host: String,
    /// Run scale.
    pub config: BenchConfig,
    /// Coarse end-to-end phases: generate, crawl, dataset, analyse.
    pub phases: Vec<StageTiming>,
    /// The 14 analysis stages, report order.
    pub stages: Vec<StageTiming>,
    /// Analysis wall-clock with metrics recording enabled.
    pub analyse_wall_ms: f64,
    /// Analysis wall-clock with the registry gate closed (every record
    /// call degrades to one relaxed load + branch).
    pub analyse_wall_ms_metrics_off: f64,
    /// `analyse_wall_ms / analyse_wall_ms_metrics_off` — the acceptance
    /// bound is 1.05.
    pub metrics_overhead_ratio: f64,
    /// Full snapshot of the global registry at the end of the run.
    pub metrics: MetricsSnapshot,
    /// Per-kernel thread-scaling measurements (scale tier only; absent
    /// from older reports and the standard tier, hence the serde default).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub speedups: Vec<KernelSpeedup>,
}

/// Wall-clock for one kernel at 1 thread vs the run's pool, recorded so
/// the parallel-speedup trajectory is visible across PRs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSpeedup {
    /// Kernel name (`pagerank`, `compress`, …).
    pub kernel: String,
    /// Wall-clock milliseconds in a 1-thread pool.
    pub wall_ms_1t: f64,
    /// Wall-clock milliseconds in the run's sized pool.
    pub wall_ms_nt: f64,
    /// Threads in the run's pool.
    pub threads: usize,
    /// `wall_ms_1t / wall_ms_nt` (1.0 = no parallel benefit).
    pub speedup: f64,
}

impl BenchReport {
    /// Pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench report serialises")
    }

    /// Parses a report, surfacing schema mismatches as errors.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let report: BenchReport =
            serde_json::from_str(json).map_err(|e| format!("malformed bench report: {e}"))?;
        if report.schema != BENCH_SCHEMA {
            return Err(format!(
                "bench report schema {:?} does not match expected {BENCH_SCHEMA:?}",
                report.schema
            ));
        }
        Ok(report)
    }
}

/// Regression-gate thresholds; [`BenchGate::default`] is what CI runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchGate {
    /// Maximum relative growth of a stage's time share (0.30 = +30%).
    pub threshold: f64,
    /// Stages whose baseline share is below this are noise-skipped.
    pub min_share: f64,
    /// Maximum accepted `metrics_overhead_ratio`.
    pub max_overhead_ratio: f64,
    /// Maximum relative growth of any `mem.*` gauge the baseline records
    /// (0.25 = +25%). Byte footprints at a fixed scale are
    /// machine-independent, so these compare absolutely, unlike timings.
    pub max_gauge_growth: f64,
    /// Minimum distinct metric names a healthy run must export.
    pub min_metrics: usize,
    /// Counter names every run must register (present in the snapshot even
    /// at 0) — the kernel-choice counters proving the optimized traversal
    /// paths were compiled in and wired up.
    pub required_counters: &'static [&'static str],
}

impl Default for BenchGate {
    fn default() -> Self {
        Self {
            threshold: 0.30,
            min_share: 0.02,
            max_overhead_ratio: 1.05,
            max_gauge_growth: 0.25,
            min_metrics: 20,
            required_counters: &[
                "graph.bfs.batch.runs",
                "graph.bfs.top_down_levels",
                "graph.bfs.bottom_up_levels",
                "graph.relabel.runs",
                "serve.snapshot.build.runs",
                "serve.query.count",
                "serve.workload.queries",
                // robustness counters: prove the overload-shedding and
                // guarded-swap paths were compiled in and wired up (they
                // sit at 0 in a healthy bench run)
                "serve.shed.total_count",
                "serve.swap.rejected_count",
                // the motif census stage: runs counter plus its headline
                // triangle tally, proving the kernel executed in-pipeline
                "graph.motifs.runs",
                "graph.motifs.triangles_count",
            ],
        }
    }
}

/// Each entry's share of the group's summed time; empty when the total
/// is not positive (nothing meaningful to compare).
fn shares(group: &[StageTiming]) -> Vec<(&str, f64)> {
    let total: f64 = group.iter().map(|s| s.millis.max(0.0)).sum();
    if total <= 0.0 {
        return Vec::new();
    }
    group.iter().map(|s| (s.id.as_str(), s.millis.max(0.0) / total)).collect()
}

fn gate_group(
    label: &str,
    baseline: &[StageTiming],
    current: &[StageTiming],
    gate: &BenchGate,
    failures: &mut Vec<String>,
) {
    let base_shares = shares(baseline);
    let cur_shares = shares(current);
    for (id, base_share) in &base_shares {
        let Some((_, cur_share)) = cur_shares.iter().find(|(c, _)| c == id) else {
            failures.push(format!("{label} {id:?} present in baseline but missing from run"));
            continue;
        };
        if *base_share < gate.min_share {
            continue;
        }
        // absolute guard (+1pp) keeps borderline stages from flapping on
        // timer noise even when the relative threshold trips
        if *cur_share > base_share * (1.0 + gate.threshold) && *cur_share > base_share + 0.01 {
            failures.push(format!(
                "{label} {id:?} time share regressed: {:.1}% of {label} time vs {:.1}% in \
                 baseline (>{:.0}% relative growth)",
                cur_share * 100.0,
                base_share * 100.0,
                gate.threshold * 100.0
            ));
        }
    }
}

/// Compares a fresh bench run against the checked-in baseline. Returns the
/// list of gate failures; empty means the run passes.
pub fn compare(baseline: &BenchReport, current: &BenchReport, gate: &BenchGate) -> Vec<String> {
    let mut failures = Vec::new();
    // Time shares only compare like with like: a run at a different
    // thread count legitimately shifts work between serial phases
    // (generate) and parallel ones (kernels, snapshot-build), so the
    // share gate would fire on the parallelism delta, not a regression.
    // Machine-independent gates (metrics floor, overhead ratio, required
    // counters, mem.* gauges) still apply below.
    if baseline.config.threads == current.config.threads {
        gate_group("phase", &baseline.phases, &current.phases, gate, &mut failures);
        gate_group("stage", &baseline.stages, &current.stages, gate, &mut failures);
    }
    let metric_count = current.metrics.distinct_metrics();
    if metric_count < gate.min_metrics {
        failures.push(format!(
            "run exported {metric_count} distinct metrics, below the {} floor",
            gate.min_metrics
        ));
    }
    // spelled as a negated <= so a NaN ratio (zero-duration run) fails too
    if !(current.metrics_overhead_ratio <= gate.max_overhead_ratio) {
        failures.push(format!(
            "metrics overhead ratio {:.3} exceeds the {:.2} bound",
            current.metrics_overhead_ratio, gate.max_overhead_ratio
        ));
    }
    for name in gate.required_counters {
        // presence, not value: `MetricsSnapshot::counter` returns 0 for
        // absent names, which is exactly the case this check must catch
        if !current.metrics.counters.contains_key(*name) {
            failures.push(format!("run is missing required kernel counter {name:?}"));
        }
    }
    for (name, base_val) in
        baseline.metrics.gauges.iter().filter(|(n, _)| n.starts_with("mem."))
    {
        let Some(cur_val) = current.metrics.gauges.get(name) else {
            failures.push(format!(
                "memory gauge {name:?} present in baseline but missing from run"
            ));
            continue;
        };
        // negated <= so a NaN gauge fails instead of sliding through
        if *base_val > 0.0 && !(*cur_val <= base_val * (1.0 + gate.max_gauge_growth)) {
            failures.push(format!(
                "memory gauge {name:?} regressed: {cur_val:.0} bytes vs {base_val:.0} in \
                 baseline (>{:.0}% growth)",
                gate.max_gauge_growth * 100.0
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(id: &str, millis: f64) -> StageTiming {
        StageTiming { id: id.to_string(), millis }
    }

    fn report(stages: Vec<StageTiming>) -> BenchReport {
        let metrics = {
            let r = gplus_obs::Registry::new();
            for i in 0..25 {
                r.counter(&format!("m{i}.count")).inc();
            }
            for name in BenchGate::default().required_counters {
                let _ = r.counter(name);
            }
            r.snapshot()
        };
        BenchReport {
            schema: BENCH_SCHEMA.to_string(),
            git_sha: "deadbeef".to_string(),
            toolchain: "rustc test".to_string(),
            host: "test".to_string(),
            config: BenchConfig { n_users: 1000, seed: 2012, threads: 4 },
            phases: vec![stage("generate", 100.0), stage("analyse", 300.0)],
            stages,
            analyse_wall_ms: 300.0,
            analyse_wall_ms_metrics_off: 295.0,
            metrics_overhead_ratio: 300.0 / 295.0,
            metrics,
            speedups: Vec::new(),
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(vec![stage("fig5", 200.0), stage("table1", 50.0)]);
        assert_eq!(compare(&r, &r, &BenchGate::default()), Vec::<String>::new());
    }

    #[test]
    fn uniform_slowdown_passes() {
        // twice as slow everywhere = slower machine, same shares
        let base = report(vec![stage("fig5", 200.0), stage("table1", 50.0)]);
        let mut cur = report(vec![stage("fig5", 400.0), stage("table1", 100.0)]);
        cur.phases = vec![stage("generate", 200.0), stage("analyse", 600.0)];
        assert!(compare(&base, &cur, &BenchGate::default()).is_empty());
    }

    #[test]
    fn share_regression_fails() {
        let base = report(vec![stage("fig5", 100.0), stage("table1", 100.0)]);
        let cur = report(vec![stage("fig5", 500.0), stage("table1", 100.0)]);
        let failures = compare(&base, &cur, &BenchGate::default());
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("fig5"));
    }

    #[test]
    fn tiny_stage_noise_is_skipped() {
        // table1 is 0.5% of baseline time: tripling it is timer noise
        let base = report(vec![stage("fig5", 199.0), stage("table1", 1.0)]);
        let cur = report(vec![stage("fig5", 199.0), stage("table1", 3.0)]);
        assert!(compare(&base, &cur, &BenchGate::default()).is_empty());
    }

    #[test]
    fn missing_stage_fails() {
        let base = report(vec![stage("fig5", 100.0), stage("table1", 100.0)]);
        let cur = report(vec![stage("fig5", 100.0)]);
        let failures = compare(&base, &cur, &BenchGate::default());
        assert!(failures.iter().any(|f| f.contains("missing")), "{failures:?}");
    }

    #[test]
    fn overhead_ratio_gate() {
        let base = report(vec![stage("fig5", 100.0)]);
        let mut cur = base.clone();
        cur.metrics_overhead_ratio = 1.2;
        let failures = compare(&base, &cur, &BenchGate::default());
        assert!(failures.iter().any(|f| f.contains("overhead")), "{failures:?}");
        cur.metrics_overhead_ratio = f64::NAN;
        assert!(!compare(&base, &cur, &BenchGate::default()).is_empty());
    }

    #[test]
    fn metric_floor_gate() {
        let base = report(vec![stage("fig5", 100.0)]);
        let mut cur = base.clone();
        cur.metrics = MetricsSnapshot::default();
        let failures = compare(&base, &cur, &BenchGate::default());
        assert!(failures.iter().any(|f| f.contains("distinct metrics")), "{failures:?}");
    }

    #[test]
    fn required_counter_gate() {
        let base = report(vec![stage("fig5", 100.0)]);
        // registered at 0 passes (presence is the contract, not activity)
        assert!(compare(&base, &base, &BenchGate::default()).is_empty());
        let mut cur = base.clone();
        cur.metrics.counters.remove("graph.bfs.batch.runs");
        let failures = compare(&base, &cur, &BenchGate::default());
        assert!(failures.iter().any(|f| f.contains("graph.bfs.batch.runs")), "{failures:?}");
    }

    #[test]
    fn memory_gauge_gate_is_driven_by_the_baseline() {
        let base = report(vec![stage("fig5", 100.0)]);
        let cur = base.clone();
        // no mem.* gauges in the baseline: nothing extra is gated
        assert!(compare(&base, &cur, &BenchGate::default()).is_empty());

        let mut base = base;
        base.metrics.gauges.insert("mem.csr.bytes".to_string(), 1000.0);
        base.metrics.gauges.insert("mem.peak_rss.bytes".to_string(), 50_000.0);
        // gauge recorded in the baseline but absent from the run fails
        let failures = compare(&base, &cur, &BenchGate::default());
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures.iter().all(|f| f.contains("missing from run")), "{failures:?}");

        // within the growth bound passes
        let mut cur = cur;
        cur.metrics.gauges.insert("mem.csr.bytes".to_string(), 1200.0);
        cur.metrics.gauges.insert("mem.peak_rss.bytes".to_string(), 50_000.0);
        assert!(compare(&base, &cur, &BenchGate::default()).is_empty());

        // beyond the bound fails, and the failure names the gauge
        cur.metrics.gauges.insert("mem.csr.bytes".to_string(), 1300.0);
        let failures = compare(&base, &cur, &BenchGate::default());
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("mem.csr.bytes"), "{failures:?}");

        // a NaN gauge can never pass the bound
        cur.metrics.gauges.insert("mem.csr.bytes".to_string(), f64::NAN);
        assert!(!compare(&base, &cur, &BenchGate::default()).is_empty());

        // non-memory gauges are not gated absolutely
        let mut base2 = report(vec![stage("fig5", 100.0)]);
        base2.metrics.gauges.insert("serve.inflight".to_string(), 3.0);
        let cur2 = report(vec![stage("fig5", 100.0)]);
        assert!(compare(&base2, &cur2, &BenchGate::default()).is_empty());
    }

    #[test]
    fn thread_count_mismatch_skips_time_shares_only() {
        // a gross share regression that WOULD fail at equal thread counts
        let base = report(vec![stage("fig5", 100.0), stage("table1", 100.0)]);
        let cur = report(vec![stage("fig5", 500.0), stage("table1", 100.0)]);
        assert!(!compare(&base, &cur, &BenchGate::default()).is_empty());
        // same reports at differing thread counts: share gate is skipped
        let mut cur = cur;
        cur.config.threads = 1;
        assert!(compare(&base, &cur, &BenchGate::default()).is_empty());
        // but machine-independent gates still apply
        cur.metrics.counters.remove("graph.bfs.batch.runs");
        let failures = compare(&base, &cur, &BenchGate::default());
        assert!(failures.iter().any(|f| f.contains("graph.bfs.batch.runs")), "{failures:?}");
    }

    #[test]
    fn speedups_field_defaults_for_old_reports() {
        // a pre-speedups baseline JSON (no `speedups` key) must still parse
        let r = report(vec![stage("fig5", 100.0)]);
        let json = r.to_json();
        assert!(!json.contains("speedups"), "empty speedups are not serialised");
        let back = BenchReport::from_json(&json).unwrap();
        assert!(back.speedups.is_empty());

        let mut with = r.clone();
        with.speedups.push(KernelSpeedup {
            kernel: "pagerank".to_string(),
            wall_ms_1t: 1000.0,
            wall_ms_nt: 300.0,
            threads: 4,
            speedup: 1000.0 / 300.0,
        });
        let back = BenchReport::from_json(&with.to_json()).unwrap();
        assert_eq!(back, with);
    }

    #[test]
    fn json_round_trip_and_schema_check() {
        let r = report(vec![stage("fig5", 100.0)]);
        let back = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        let mut wrong = r.clone();
        wrong.schema = "gplus-bench/0".to_string();
        assert!(BenchReport::from_json(&wrong.to_json()).is_err());
        assert!(BenchReport::from_json("{not json").is_err());
    }
}
