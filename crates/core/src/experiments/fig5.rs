//! Figure 5: estimated path-length distribution, directed and undirected.
//!
//! §3.3.5: sampled BFS sources growing from k = 2000 to 10000 until the
//! distribution stabilised. Directed: mode 6, mean 5.9, diameter 19.
//! Undirected: mode 5, mean 4.7, diameter 13.

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use crate::paper::structure;
use gplus_graph::paths::{adaptive_path_lengths_opt, AdaptiveResult};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Sampling-schedule parameters (defaults are the paper's §3.3.5 schedule).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig5Params {
    /// Initial number of BFS sources (paper: 2000).
    pub k_start: usize,
    /// Batch growth per round (paper grew in steps up to 10000).
    pub k_step: usize,
    /// Maximum sources (paper: 10000).
    pub k_max: usize,
    /// KS-distance tolerance for "no more changes in the distribution".
    pub tol: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig5Params {
    fn default() -> Self {
        Self { k_start: 2_000, k_step: 2_000, k_max: 10_000, tol: 0.01, seed: 2012 }
    }
}

/// Both estimated distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// Directed-graph estimate.
    pub directed: AdaptiveResult,
    /// Undirected-view estimate.
    pub undirected: AdaptiveResult,
}

impl Fig5Result {
    /// (mode, mean, diameter-estimate) of the directed distribution.
    pub fn directed_summary(&self) -> (u32, f64, u32) {
        let d = &self.directed.distribution;
        (d.mode(), d.mean(), d.max_distance)
    }

    /// (mode, mean, diameter-estimate) of the undirected distribution.
    pub fn undirected_summary(&self) -> (u32, f64, u32) {
        let d = &self.undirected.distribution;
        (d.mode(), d.mean(), d.max_distance)
    }
}

/// Runs the paper's adaptive estimator over a fresh single-use context.
pub fn run(data: &impl Dataset, params: &Fig5Params) -> Fig5Result {
    run_ctx(&AnalysisCtx::new(data), params)
}

/// Runs the paper's adaptive estimator on both graph views, reusing the
/// context's cached (and possibly relabeled) traversal views. Sources are
/// sampled in public id space, so the result is byte-identical whatever
/// the traversal tuning.
pub fn run_ctx<D: Dataset>(ctx: &AnalysisCtx<'_, D>, params: &Fig5Params) -> Fig5Result {
    let view = ctx.traversal_view();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let directed = adaptive_path_lengths_opt(
        view.graph,
        params.k_start,
        params.k_step,
        params.k_max,
        params.tol,
        &mut rng,
        view.opts(),
    );
    let view = ctx.undirected_traversal_view();
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xdead);
    let undirected = adaptive_path_lengths_opt(
        view.graph,
        params.k_start,
        params.k_step,
        params.k_max,
        params.tol,
        &mut rng,
        view.opts(),
    );
    Fig5Result { directed, undirected }
}

/// Renders both histograms.
pub fn render(result: &Fig5Result) -> String {
    let mut out = String::from(
        "Figure 5: Estimated path length distribution\nhops  P(directed)  P(undirected)\n",
    );
    let pd = result.directed.distribution.probabilities();
    let pu = result.undirected.distribution.probabilities();
    let max = pd.len().max(pu.len());
    for h in 1..max {
        let a = pd.get(h).copied().unwrap_or(0.0);
        let b = pu.get(h).copied().unwrap_or(0.0);
        out.push_str(&format!("{h:>4}  {a:>11.4}  {b:>13.4}\n"));
    }
    let (dm, dmean, ddiam) = result.directed_summary();
    let (um, umean, udiam) = result.undirected_summary();
    out.push_str(&format!(
        "directed:   mode {dm}, mean {dmean:.2}, diameter {ddiam} (paper: {}, {}, {})\n",
        structure::PATH_MODE_DIRECTED,
        structure::PATH_MEAN_DIRECTED,
        structure::DIAMETER_DIRECTED
    ));
    out.push_str(&format!(
        "undirected: mode {um}, mean {umean:.2}, diameter {udiam} (paper: {}, {}, {})\n",
        structure::PATH_MODE_UNDIRECTED,
        structure::PATH_MEAN_UNDIRECTED,
        structure::DIAMETER_UNDIRECTED
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn result() -> &'static Fig5Result {
        static R: OnceLock<Fig5Result> = OnceLock::new();
        R.get_or_init(|| {
            let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(30_000, 10));
            let params =
                Fig5Params { k_start: 100, k_step: 100, k_max: 500, tol: 0.02, seed: 3 };
            run(&GroundTruthDataset::new(&net), &params)
        })
    }

    #[test]
    fn directed_longer_than_undirected() {
        let r = result();
        let (_, dmean, ddiam) = r.directed_summary();
        let (_, umean, udiam) = r.undirected_summary();
        assert!(dmean > umean, "directed {dmean} should exceed undirected {umean}");
        assert!(ddiam >= udiam);
    }

    #[test]
    fn small_world_scale() {
        let r = result();
        let (mode, mean, diam) = r.directed_summary();
        assert!((2..=9).contains(&mode), "mode {mode}");
        assert!(mean > 2.0 && mean < 9.0, "mean {mean}");
        assert!(diam < 40, "diameter {diam}");
    }

    #[test]
    fn distribution_is_unimodal_around_mode() {
        let r = result();
        let p = r.directed.distribution.probabilities();
        let mode = r.directed.distribution.mode() as usize;
        // rises to the mode, falls after
        assert!(p[mode] >= p[mode.saturating_sub(1)]);
        if mode + 1 < p.len() {
            assert!(p[mode] >= p[mode + 1]);
        }
    }

    #[test]
    fn render_reports_both_views() {
        let s = render(result());
        assert!(s.contains("directed:"));
        assert!(s.contains("undirected:"));
        assert!(s.contains("paper: 6, 5.9, 19"));
    }
}
