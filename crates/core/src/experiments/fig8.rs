//! Figure 8: CCDF of fields shared per top-10 country.
//!
//! §4.3: computed over geo-located users (so name + places lived are
//! always present, minimum 2 fields). "Indonesia and Mexico share more
//! information than other more popular countries like United States and
//! United Kingdom. Germany is the most conservative."

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use gplus_geo::{Country, TOP10_COUNTRIES};
use gplus_stats::Ccdf;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-country openness distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Result {
    /// CCDF of fields shared per country (countries without located users
    /// are absent).
    pub by_country: Vec<(Country, Ccdf)>,
}

impl Fig8Result {
    /// A country's curve.
    pub fn ccdf(&self, c: Country) -> Option<&Ccdf> {
        self.by_country.iter().find(|(x, _)| *x == c).map(|(_, c)| c)
    }

    /// Mean fields shared per country — a scalar openness ranking.
    pub fn mean_fields(&self, c: Country) -> Option<f64> {
        self.ccdf(c).map(|ccdf| {
            // mean of a non-negative integer variable = Σ_{x>=1} P(X>=x)
            (1..=17u64).map(|x| ccdf.eval(x)).sum()
        })
    }
}

/// Builds the per-country distributions over a fresh single-use context.
pub fn run(data: &impl Dataset) -> Fig8Result {
    run_ctx(&AnalysisCtx::new(data))
}

/// Builds the per-country distributions from a shared [`AnalysisCtx`],
/// reusing its cached country assignments.
pub fn run_ctx<D: Dataset>(ctx: &AnalysisCtx<'_, D>) -> Fig8Result {
    let data = ctx.data();
    let g = ctx.graph();
    let mut counts: HashMap<Country, Vec<u64>> = HashMap::new();
    for node in g.nodes() {
        let Some(country) = ctx.country_of(node) else { continue };
        if !TOP10_COUNTRIES.contains(&country) {
            continue;
        }
        if let Some(fields) = data.fields_shared(node) {
            counts.entry(country).or_default().push(fields as u64);
        }
    }
    let by_country = TOP10_COUNTRIES
        .iter()
        .filter_map(|&c| counts.get(&c).map(|v| (c, Ccdf::from_counts(v))))
        .collect();
    Fig8Result { by_country }
}

/// Renders the curves at each field count.
pub fn render(result: &Fig8Result) -> String {
    let mut out = String::from("Figure 8: CCDF of # fields shared per country\nfields");
    for (c, _) in &result.by_country {
        out.push_str(&format!("  {:>6}", c.code()));
    }
    out.push('\n');
    for x in 2..=14u64 {
        out.push_str(&format!("{x:>6}"));
        for (_, ccdf) in &result.by_country {
            out.push_str(&format!("  {:>6.3}", ccdf.eval(x)));
        }
        out.push('\n');
    }
    out.push_str("mean  ");
    for (c, _) in &result.by_country {
        out.push_str(&format!("  {:>6.2}", result.mean_fields(*c).unwrap_or(0.0)));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn result() -> &'static Fig8Result {
        static R: OnceLock<Fig8Result> = OnceLock::new();
        R.get_or_init(|| {
            let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(120_000, 13));
            run(&GroundTruthDataset::new(&net))
        })
    }

    #[test]
    fn all_top10_present() {
        assert_eq!(result().by_country.len(), 10);
    }

    #[test]
    fn located_users_share_at_least_two_fields() {
        // name (mandatory) + places lived (required for geo attribution)
        for (c, ccdf) in &result().by_country {
            assert_eq!(ccdf.eval(2), 1.0, "{c}: everyone shares >= 2 fields");
        }
    }

    #[test]
    fn germany_most_conservative() {
        let r = result();
        let de = r.mean_fields(Country::De).unwrap();
        for &c in &TOP10_COUNTRIES {
            if c != Country::De {
                let other = r.mean_fields(c).unwrap();
                assert!(de < other, "DE ({de:.2}) should trail {c} ({other:.2})");
            }
        }
        // the paper's specific cut: DE is the only country with under 30%
        // of users sharing more than 10 fields — we require DE lowest there
        let de_10 = r.ccdf(Country::De).unwrap().eval(11);
        for &c in &TOP10_COUNTRIES {
            if c != Country::De {
                assert!(de_10 <= r.ccdf(c).unwrap().eval(11) + 0.02, "{c}");
            }
        }
    }

    #[test]
    fn indonesia_mexico_more_open_than_us_gb() {
        let r = result();
        let m = |c| r.mean_fields(c).unwrap();
        assert!(m(Country::Id) > m(Country::Gb), "ID vs GB");
        assert!(m(Country::Mx) > m(Country::Gb), "MX vs GB");
        assert!(m(Country::Id) > m(Country::In), "ID vs IN");
    }

    #[test]
    fn render_matrix_shape() {
        let s = render(result());
        assert!(s.contains("fields"));
        assert!(s.contains("mean"));
        assert!(s.lines().count() > 14);
    }
}
