//! Table 3: information shared by all users vs tel-users.
//!
//! §3.2 compares the gender, relationship, and location mixes of the whole
//! population with the 72,736 "tel-users" who publish a phone number,
//! finding tel-users strikingly more male (86% vs 68%), more single
//! (57% vs 43%), and far more Indian (31.9% vs 16.7%).

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use crate::render::{count, pct, TextTable};
use gplus_geo::Country;
use gplus_profiles::{calibration, Gender, RelationshipStatus};
use serde::{Deserialize, Serialize};

/// A labelled pair of fractions (all users, tel-users).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharePair {
    /// Row label (Table-3 style).
    pub label: String,
    /// Fraction among all users exposing the block's field.
    pub all: f64,
    /// Fraction among tel-users exposing the block's field.
    pub tel: f64,
    /// The paper's fractions, where the row exists in Table 3.
    pub paper: Option<(f64, f64)>,
}

/// The computed table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Result {
    /// Total users with known profiles.
    pub total_all: u64,
    /// Total tel-users.
    pub total_tel: u64,
    /// Gender block (denominator: users exposing gender).
    pub gender: Vec<SharePair>,
    /// Relationship block.
    pub relationship: Vec<SharePair>,
    /// Location block: the paper's five named countries plus "Other".
    pub location: Vec<SharePair>,
}

/// Runs the comparison over a fresh single-use context.
pub fn run(data: &impl Dataset) -> Table3Result {
    run_ctx(&AnalysisCtx::new(data))
}

/// Runs the comparison from a shared [`AnalysisCtx`], using its cached
/// known-profile list and country assignments.
pub fn run_ctx<D: Dataset>(ctx: &AnalysisCtx<'_, D>) -> Table3Result {
    let data = ctx.data();
    let mut total_all = 0u64;
    let mut total_tel = 0u64;

    let mut gender_all = [0u64; 3];
    let mut gender_tel = [0u64; 3];
    let mut rel_all = [0u64; 9];
    let mut rel_tel = [0u64; 9];
    // US, IN, BR, GB, CA, Other
    const LOC_COUNTRIES: [Country; 5] =
        [Country::Us, Country::In, Country::Br, Country::Gb, Country::Ca];
    let mut loc_all = [0u64; 6];
    let mut loc_tel = [0u64; 6];

    for &node in ctx.known_profiles() {
        let Some(tel) = data.is_tel_user(node) else { continue };
        total_all += 1;
        if tel {
            total_tel += 1;
        }
        if let Some(gender) = data.gender(node) {
            let i = Gender::ALL.iter().position(|&x| x == gender).expect("known gender");
            gender_all[i] += 1;
            if tel {
                gender_tel[i] += 1;
            }
        }
        if let Some(rel) = data.relationship(node) {
            let i =
                RelationshipStatus::ALL.iter().position(|&x| x == rel).expect("known status");
            rel_all[i] += 1;
            if tel {
                rel_tel[i] += 1;
            }
        }
        if let Some(country) = ctx.country_of(node) {
            let i = LOC_COUNTRIES.iter().position(|&c| c == country).unwrap_or(5);
            loc_all[i] += 1;
            if tel {
                loc_tel[i] += 1;
            }
        }
    }

    let fractions = |counts: &[u64]| {
        let sum: u64 = counts.iter().sum();
        counts.iter().map(|&c| c as f64 / sum.max(1) as f64).collect::<Vec<f64>>()
    };
    let ga = fractions(&gender_all);
    let gt = fractions(&gender_tel);
    let gender = Gender::ALL
        .iter()
        .enumerate()
        .map(|(i, g)| SharePair {
            label: g.label().to_string(),
            all: ga[i],
            tel: gt[i],
            paper: Some((calibration::GENDER_ALL[i].1, calibration::GENDER_TEL[i].1)),
        })
        .collect();

    let ra = fractions(&rel_all);
    let rt = fractions(&rel_tel);
    let relationship = RelationshipStatus::ALL
        .iter()
        .enumerate()
        .map(|(i, r)| SharePair {
            label: r.label().to_string(),
            all: ra[i],
            tel: rt[i],
            paper: Some((
                calibration::RELATIONSHIP_ALL[i].1,
                calibration::RELATIONSHIP_TEL[i].1,
            )),
        })
        .collect();

    let la = fractions(&loc_all);
    let lt = fractions(&loc_tel);
    // Table 3's location rows, with the paper's printed percentages
    let paper_loc: [(f64, f64); 6] = [
        (0.3138, 0.0892),
        (0.1671, 0.3190),
        (0.0576, 0.0472),
        (0.0335, 0.0219),
        (0.0230, 0.0152),
        (0.4050, 0.5077),
    ];
    let location = LOC_COUNTRIES
        .iter()
        .map(|c| c.name().to_string())
        .chain(std::iter::once("Other".to_string()))
        .enumerate()
        .map(|(i, label)| SharePair {
            label,
            all: la[i],
            tel: lt[i],
            paper: Some(paper_loc[i]),
        })
        .collect();

    Table3Result { total_all, total_tel, gender, relationship, location }
}

/// Renders the table, paper-style.
pub fn render(result: &Table3Result) -> String {
    let mut t = TextTable::new(format!(
        "Table 3: Information shared by all users ({}) and tel-users ({})",
        count(result.total_all),
        count(result.total_tel)
    ))
    .header(&["Row", "All users", "Tel-users", "Paper (all / tel)"]);
    let block = |name: &str, rows: &[SharePair], t: &mut TextTable| {
        t.row(vec![format!("[{name}]"), String::new(), String::new(), String::new()]);
        for r in rows {
            let paper = r
                .paper
                .map(|(a, b)| format!("{} / {}", pct(a), pct(b)))
                .unwrap_or_else(|| "-".into());
            t.row(vec![format!("  {}", r.label), pct(r.all), pct(r.tel), paper]);
        }
    };
    block("Gender", &result.gender, &mut t);
    block("Relationship", &result.relationship, &mut t);
    block("Location", &result.location, &mut t);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn result() -> &'static Table3Result {
        static R: OnceLock<Table3Result> = OnceLock::new();
        R.get_or_init(|| {
            // tel-users are 0.26% of the population; a large n keeps the
            // tel-side fractions stable
            let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(150_000, 4));
            run(&GroundTruthDataset::new(&net))
        })
    }

    #[test]
    fn blocks_sum_to_one() {
        let r = result();
        for block in [&r.gender, &r.relationship, &r.location] {
            let sum_all: f64 = block.iter().map(|x| x.all).sum();
            let sum_tel: f64 = block.iter().map(|x| x.tel).sum();
            assert!((sum_all - 1.0).abs() < 1e-9);
            assert!((sum_tel - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn tel_users_more_male() {
        let r = result();
        let male = &r.gender[0];
        assert_eq!(male.label, "Male");
        assert!(male.tel > male.all + 0.05, "tel male {} vs all male {}", male.tel, male.all);
    }

    #[test]
    fn tel_users_more_single_less_partnered() {
        let r = result();
        let single = &r.relationship[0];
        let in_rel = &r.relationship[2];
        assert!(single.tel > single.all, "single: tel {} all {}", single.tel, single.all);
        assert!(in_rel.tel < in_rel.all, "in-rel: tel {} all {}", in_rel.tel, in_rel.all);
    }

    #[test]
    fn india_overrepresented_among_tel_users() {
        let r = result();
        let india = r.location.iter().find(|x| x.label == "India").unwrap();
        let us = r.location.iter().find(|x| x.label == "United States").unwrap();
        assert!(india.tel > india.all * 1.4, "IN tel {} vs all {}", india.tel, india.all);
        assert!(us.tel < us.all, "US tel {} vs all {}", us.tel, us.all);
        // the paper's headline inversion: India tops the tel-user ranking
        assert!(india.tel > us.tel);
    }

    #[test]
    fn tel_rate_order_of_magnitude() {
        let r = result();
        let rate = r.total_tel as f64 / r.total_all as f64;
        assert!(rate > 0.0005 && rate < 0.02, "tel rate {rate} (paper 0.26%)");
    }

    #[test]
    fn render_contains_blocks() {
        let s = render(result());
        for needle in ["[Gender]", "[Relationship]", "[Location]", "India", "Single"] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
