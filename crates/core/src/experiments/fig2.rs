//! Figure 2: CCDF of the number of profile fields shared, tel-users vs all
//! users.
//!
//! "tel-users generally share more information in their profiles than
//! other Google+ users ... 10% of all Google+ users share more than six
//! fields, while 66% of the tel-users do the same." (§3.2)
//! The count excludes the Home/Work contact fields themselves.

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use gplus_stats::Ccdf;
use serde::{Deserialize, Serialize};

/// The two CCDFs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Result {
    /// CCDF over all users.
    pub all_users: Ccdf,
    /// CCDF over tel-users.
    pub tel_users: Option<Ccdf>,
    /// Fraction of all users sharing more than six fields (paper: ~10%).
    pub all_above_six: f64,
    /// Fraction of tel-users sharing more than six fields (paper: ~66%).
    pub tel_above_six: f64,
}

/// Builds both distributions over a fresh single-use context.
pub fn run(data: &impl Dataset) -> Fig2Result {
    run_ctx(&AnalysisCtx::new(data))
}

/// Builds both distributions from a shared [`AnalysisCtx`], iterating its
/// cached known-profile list.
pub fn run_ctx<D: Dataset>(ctx: &AnalysisCtx<'_, D>) -> Fig2Result {
    let data = ctx.data();
    let mut all = Vec::new();
    let mut tel = Vec::new();
    for &node in ctx.known_profiles() {
        let Some(fields) = data.fields_shared_excl_contact(node) else { continue };
        all.push(fields as u64);
        if data.is_tel_user(node) == Some(true) {
            tel.push(fields as u64);
        }
    }
    let all_users = Ccdf::from_counts(&all);
    let tel_users = (!tel.is_empty()).then(|| Ccdf::from_counts(&tel));
    Fig2Result {
        all_above_six: all_users.eval(7),
        tel_above_six: tel_users.as_ref().map(|c| c.eval(7)).unwrap_or(0.0),
        all_users,
        tel_users,
    }
}

/// Renders both series as `x  ccdf_all  ccdf_tel` rows.
pub fn render(result: &Fig2Result) -> String {
    let mut out = String::from(
        "Figure 2: CCDF of # fields available in profile (excl. contact fields)\n\
         fields  P(X>=x) all  P(X>=x) tel\n",
    );
    for x in 1..=15u64 {
        let tel = result.tel_users.as_ref().map(|c| c.eval(x)).unwrap_or(0.0);
        out.push_str(&format!("{:>6}  {:>11.4}  {:>11.4}\n", x, result.all_users.eval(x), tel));
    }
    out.push_str(&format!(
        "share > 6 fields: all {:.1}% (paper ~10%), tel {:.1}% (paper ~66%)\n",
        result.all_above_six * 100.0,
        result.tel_above_six * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn result() -> &'static Fig2Result {
        static R: OnceLock<Fig2Result> = OnceLock::new();
        R.get_or_init(|| {
            let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(150_000, 7));
            run(&GroundTruthDataset::new(&net))
        })
    }

    #[test]
    fn tel_curve_dominates_all_curve() {
        let r = result();
        let tel = r.tel_users.as_ref().expect("tel-users exist at 150k scale");
        // stochastic dominance at every x in the plotted range
        for x in 2..=12u64 {
            assert!(
                tel.eval(x) >= r.all_users.eval(x) - 0.02,
                "x={x}: tel {} < all {}",
                tel.eval(x),
                r.all_users.eval(x)
            );
        }
    }

    #[test]
    fn above_six_gap_matches_paper_shape() {
        let r = result();
        assert!(r.all_above_six < 0.35, "all >6 fields: {}", r.all_above_six);
        assert!(r.tel_above_six > 0.40, "tel >6 fields: {}", r.tel_above_six);
        assert!(r.tel_above_six > r.all_above_six * 2.0, "gap should be large");
    }

    #[test]
    fn everyone_shares_at_least_name() {
        let r = result();
        assert_eq!(r.all_users.eval(1), 1.0);
    }

    #[test]
    fn render_has_summary() {
        let s = render(result());
        assert!(s.contains("paper ~66%"));
        assert!(s.lines().count() > 15);
    }
}
