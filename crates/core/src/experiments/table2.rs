//! Table 2: public attributes available in Google+.
//!
//! "In Table 2, we show the number and fraction of users that have made
//! each type of information available." (§3.1)

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use crate::render::{count, pct, TextTable};
use gplus_profiles::calibration::TABLE2_AVAILABILITY;
use gplus_profiles::{Attribute, ALL_ATTRIBUTES};
use serde::{Deserialize, Serialize};

/// One attribute row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// The attribute.
    pub attribute: Attribute,
    /// Users sharing it publicly.
    pub available: u64,
    /// Fraction of users with known profiles.
    pub fraction: f64,
    /// The paper's fraction for the same row.
    pub paper_fraction: f64,
}

/// The computed table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Result {
    /// Rows in Table-2 order.
    pub rows: Vec<Table2Row>,
    /// Users with known profiles (the denominator).
    pub population: u64,
}

/// Counts attribute availability over all known profiles, via a fresh
/// single-use context.
pub fn run(data: &impl Dataset) -> Table2Result {
    run_ctx(&AnalysisCtx::new(data))
}

/// Counts attribute availability from a shared [`AnalysisCtx`], iterating
/// its cached known-profile node list.
pub fn run_ctx<D: Dataset>(ctx: &AnalysisCtx<'_, D>) -> Table2Result {
    let data = ctx.data();
    let mut counts = [0u64; 17];
    let population = ctx.known_profile_count() as u64;
    for &node in ctx.known_profiles() {
        // reconstruct per-attribute sharing from the dataset's accessors:
        // fields_shared tells us how many, but Table 2 needs which — the
        // dataset exposes the full public attribute view through the
        // semantic accessors plus the counts; we recover the rest from the
        // mask-equivalent accessors below.
        if let Some(n) = attribute_flags(data, node) {
            for (i, &set) in n.iter().enumerate() {
                if set {
                    counts[i] += 1;
                }
            }
        }
    }
    let rows = ALL_ATTRIBUTES
        .iter()
        .enumerate()
        .map(|(i, &attribute)| Table2Row {
            attribute,
            available: counts[i],
            fraction: counts[i] as f64 / population.max(1) as f64,
            paper_fraction: TABLE2_AVAILABILITY[i],
        })
        .collect();
    Table2Result { rows, population }
}

/// Per-attribute public flags for one node. The [`Dataset`] trait exposes
/// semantic accessors rather than a raw mask (a crawl sees pages, not
/// masks); this helper projects them back onto Table-2 rows. Attributes
/// without a dedicated accessor are grouped under the "other shared
/// fields" reconstruction: the dataset's `fields_shared` count pins their
/// total, and the page's attribute list (when available through
/// `public_attribute_list`) pins the identity.
fn attribute_flags(data: &impl Dataset, node: u32) -> Option<[bool; 17]> {
    let list = data.public_attribute_list(node)?;
    let mut flags = [false; 17];
    for a in list {
        flags[a as u8 as usize] = true;
    }
    Some(flags)
}

/// Renders the table, paper-style.
pub fn render(result: &Table2Result) -> String {
    let mut t = TextTable::new(format!(
        "Table 2: Public attributes available (population {})",
        count(result.population)
    ))
    .header(&["Attribute", "Available", "%", "Paper %"]);
    for row in &result.rows {
        t.row(vec![
            row.attribute.label().to_string(),
            count(row.available),
            pct(row.fraction),
            pct(row.paper_fraction),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_synth::{SynthConfig, SynthNetwork};

    fn result() -> Table2Result {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(20_000, 3));
        run(&GroundTruthDataset::new(&net))
    }

    #[test]
    fn seventeen_rows_name_universal() {
        let r = result();
        assert_eq!(r.rows.len(), 17);
        assert_eq!(r.rows[0].attribute, Attribute::Name);
        assert_eq!(r.rows[0].fraction, 1.0);
        assert_eq!(r.population, 20_000);
    }

    #[test]
    fn fractions_track_paper_order_of_magnitude() {
        for row in result().rows {
            assert!(
                (row.fraction - row.paper_fraction).abs() < row.paper_fraction * 0.35 + 0.01,
                "{:?}: measured {} vs paper {}",
                row.attribute,
                row.fraction,
                row.paper_fraction
            );
        }
    }

    #[test]
    fn contact_fields_rarest() {
        let r = result();
        let work = r.rows.iter().find(|x| x.attribute == Attribute::WorkContact).unwrap();
        let gender = r.rows.iter().find(|x| x.attribute == Attribute::Gender).unwrap();
        assert!(work.fraction < 0.02);
        assert!(gender.fraction > 0.85);
    }

    #[test]
    fn render_has_all_labels() {
        let s = render(&result());
        for a in ALL_ATTRIBUTES {
            assert!(s.contains(a.label()), "missing {}", a.label());
        }
    }
}
