//! Figure 6: top-10 countries with Google+ users.
//!
//! "More than 30% of the users who share their location information are
//! identified as living in the US. ... Google+ is relatively popular in
//! India and Brazil." (§4)

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use crate::render::{count, pct, TextTable};
use gplus_geo::Country;
use serde::{Deserialize, Serialize};

/// One bar of the figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountryShare {
    /// Country.
    pub country: Country,
    /// Located users in that country.
    pub users: u64,
    /// Fraction of all located users.
    pub fraction: f64,
}

/// The computed figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Countries by descending share (all countries, not just ten).
    pub shares: Vec<CountryShare>,
    /// Total located users (the paper's 6,621,644).
    pub located_users: u64,
}

impl Fig6Result {
    /// The top-`k` rows.
    pub fn top(&self, k: usize) -> &[CountryShare] {
        &self.shares[..k.min(self.shares.len())]
    }

    /// The per-country user counts, for downstream penetration analysis.
    pub fn counts(&self) -> Vec<(Country, u64)> {
        self.shares.iter().map(|s| (s.country, s.users)).collect()
    }
}

/// Attributes located users to countries over a fresh single-use context.
pub fn run(data: &impl Dataset) -> Fig6Result {
    run_ctx(&AnalysisCtx::new(data))
}

/// Builds the figure from a shared [`AnalysisCtx`], reusing its cached
/// per-country user counts (already sorted by descending count).
pub fn run_ctx<D: Dataset>(ctx: &AnalysisCtx<'_, D>) -> Fig6Result {
    let (counts, located) = ctx.country_counts();
    let shares = counts
        .iter()
        .map(|&(country, users)| CountryShare {
            country,
            users,
            fraction: users as f64 / located.max(1) as f64,
        })
        .collect();
    Fig6Result { shares, located_users: located }
}

/// Renders the top-10 bars.
pub fn render(result: &Fig6Result) -> String {
    let mut t = TextTable::new(format!(
        "Figure 6: Top 10 countries with Google+ users (located users: {})",
        count(result.located_users)
    ))
    .header(&["Country", "Users", "Fraction"]);
    for s in result.top(11) {
        if s.country == Country::Other {
            continue; // the figure plots named countries only
        }
        t.row(vec![s.country.code().to_string(), count(s.users), pct(s.fraction)]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn result() -> &'static Fig6Result {
        static R: OnceLock<Fig6Result> = OnceLock::new();
        R.get_or_init(|| {
            let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(60_000, 11));
            run(&GroundTruthDataset::new(&net))
        })
    }

    #[test]
    fn us_india_brazil_lead_named_countries() {
        let r = result();
        let named: Vec<Country> = r
            .shares
            .iter()
            .filter(|s| s.country != Country::Other)
            .map(|s| s.country)
            .collect();
        assert_eq!(&named[..3], &[Country::Us, Country::In, Country::Br]);
    }

    #[test]
    fn shares_match_paper_fractions() {
        let r = result();
        let us = r.shares.iter().find(|s| s.country == Country::Us).unwrap();
        let india = r.shares.iter().find(|s| s.country == Country::In).unwrap();
        assert!((us.fraction - 0.3138).abs() < 0.03, "US {}", us.fraction);
        assert!((india.fraction - 0.1671).abs() < 0.03, "IN {}", india.fraction);
    }

    #[test]
    fn located_is_roughly_a_quarter_of_population() {
        // Table 2: places lived shared by 26.75%, of which ~90% geocode
        let r = result();
        let frac = r.located_users as f64 / 60_000.0;
        assert!(frac > 0.15 && frac < 0.35, "located fraction {frac}");
    }

    #[test]
    fn fractions_sum_to_one() {
        let total: f64 = result().shares.iter().map(|s| s.fraction).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_top10_without_other() {
        let s = render(result());
        assert!(s.contains("US"));
        assert!(!s.contains("??"));
    }
}
