//! Figure 4: reciprocity CDF (a), clustering-coefficient CDF (b), and SCC
//! size CCDF (c).
//!
//! §3.3.2: "More than 60% of the users have RR higher than 0.6" and global
//! reciprocity is 32% (Twitter: 22.1%). §3.3.3: CC computed over a random
//! sample of one million nodes; "40% of all users have a CC greater than
//! 0.2". §3.3.4: 9,771,696 SCCs with one giant component of 25.24M nodes.

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use crate::paper::structure;
use gplus_graph::{clustering, reciprocity};
use gplus_stats::{Ccdf, Cdf};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Parameters for the three panels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig4Params {
    /// Node sample size for the clustering CDF (the paper's 1M).
    pub cc_sample: usize,
    /// RNG seed for the sample.
    pub seed: u64,
}

impl Default for Fig4Params {
    fn default() -> Self {
        Self { cc_sample: 1_000_000, seed: 2012 }
    }
}

/// All three panels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Panel (a): CDF of per-node relation reciprocity.
    pub rr_cdf: Cdf,
    /// Global edge reciprocity (paper: 32%).
    pub global_reciprocity: f64,
    /// Fraction of users with RR > 0.6 (paper: > 60%).
    pub rr_above_06: f64,
    /// Panel (b): CDF of sampled clustering coefficients.
    pub cc_cdf: Option<Cdf>,
    /// Fraction of sampled users with CC > 0.2 (paper: 40%).
    pub cc_above_02: f64,
    /// Panel (c): CCDF of SCC sizes.
    pub scc_sizes: Ccdf,
    /// Number of SCCs.
    pub scc_count: u64,
    /// Giant SCC fraction of all nodes.
    pub giant_scc_fraction: f64,
}

/// Computes all three panels over a fresh single-use context.
pub fn run(data: &impl Dataset, params: &Fig4Params) -> Fig4Result {
    run_ctx(&AnalysisCtx::new(data), params)
}

/// Computes all three panels from a shared [`AnalysisCtx`], reusing its
/// cached SCC partition and global reciprocity.
pub fn run_ctx<D: Dataset>(ctx: &AnalysisCtx<'_, D>, params: &Fig4Params) -> Fig4Result {
    let g = ctx.graph();
    let rr = reciprocity::relation_reciprocity_all(g);
    let rr_cdf = Cdf::new(&rr);
    let rr_above_06 = rr_cdf.ccdf(0.6);

    let mut rng = StdRng::seed_from_u64(params.seed);
    let cc = clustering::sampled_cc(g, params.cc_sample.min(g.node_count()), &mut rng);
    let cc_cdf = (!cc.is_empty()).then(|| Cdf::new(&cc));
    let cc_above_02 = cc_cdf.as_ref().map(|c| c.ccdf(0.2)).unwrap_or(0.0);

    let s = ctx.scc();
    let sizes = s.sizes();
    Fig4Result {
        rr_cdf,
        global_reciprocity: ctx.global_reciprocity(),
        rr_above_06,
        cc_cdf,
        cc_above_02,
        scc_sizes: Ccdf::from_counts(&sizes),
        scc_count: s.count as u64,
        giant_scc_fraction: s.giant_fraction(),
    }
}

/// Renders all three panels.
pub fn render(result: &Fig4Result) -> String {
    let mut out = String::from("Figure 4(a): CDF of relation reciprocity\nRR    CDF\n");
    for i in 0..=10 {
        let x = i as f64 / 10.0;
        out.push_str(&format!("{x:.1}  {:.4}\n", result.rr_cdf.eval(x)));
    }
    out.push_str(&format!(
        "global reciprocity {:.1}% (paper {:.0}%); RR>0.6: {:.1}% of users (paper >{:.0}%)\n\n",
        result.global_reciprocity * 100.0,
        structure::RECIPROCITY * 100.0,
        result.rr_above_06 * 100.0,
        structure::RR_ABOVE_06_FRACTION * 100.0
    ));
    out.push_str("Figure 4(b): CDF of clustering coefficient\nCC    CDF\n");
    if let Some(cdf) = &result.cc_cdf {
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            out.push_str(&format!("{x:.1}  {:.4}\n", cdf.eval(x)));
        }
    }
    out.push_str(&format!(
        "CC>0.2: {:.1}% of sampled users (paper {:.0}%)\n\n",
        result.cc_above_02 * 100.0,
        structure::CC_ABOVE_02_FRACTION * 100.0
    ));
    out.push_str("Figure 4(c): CCDF of SCC sizes\nsize  P(S>=size)\n");
    let mut x = 1u64;
    while x <= result.scc_sizes.max_value() {
        out.push_str(&format!("{:>8}  {:.2e}\n", x, result.scc_sizes.eval(x)));
        x *= 10;
    }
    out.push_str(&format!(
        "SCCs: {} ; giant fraction {:.2} (paper: 9.77M SCCs, giant ≈ 0.72)\n",
        result.scc_count, result.giant_scc_fraction
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn result() -> &'static Fig4Result {
        static R: OnceLock<Fig4Result> = OnceLock::new();
        R.get_or_init(|| {
            let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(30_000, 9));
            run(&GroundTruthDataset::new(&net), &Fig4Params { cc_sample: 10_000, seed: 1 })
        })
    }

    #[test]
    fn global_reciprocity_in_band() {
        let r = result();
        assert!(
            r.global_reciprocity > 0.22 && r.global_reciprocity < 0.45,
            "reciprocity {}",
            r.global_reciprocity
        );
    }

    #[test]
    fn rr_distribution_top_heavy() {
        // the paper's Figure 4(a) shape: a large mass of ordinary users
        // with high RR; we require a substantial fraction above 0.6
        let r = result();
        assert!(r.rr_above_06 > 0.35, "RR>0.6 fraction {} should be large", r.rr_above_06);
        // and a visible low-RR mass (collectors/celebrities)
        assert!(r.rr_cdf.eval(0.2) > 0.05, "some users must have low RR");
    }

    #[test]
    fn clustering_higher_than_random_graph() {
        let r = result();
        // an Erdős–Rényi graph of this density has CC ≈ d/n ≈ 5e-4;
        // the paper's Figure 4(b) needs substantial clustering mass
        assert!(
            r.cc_above_02 > 0.15,
            "CC>0.2 fraction {} should be far above random",
            r.cc_above_02
        );
    }

    #[test]
    fn scc_structure_giant_plus_dust() {
        let r = result();
        assert!(r.scc_count > 1_000, "many SCCs expected, got {}", r.scc_count);
        assert!(r.giant_scc_fraction > 0.45 && r.giant_scc_fraction < 0.95);
        // almost all components are tiny (paper: "almost all of them are
        // small ... only one with more than 100 nodes")
        assert!(r.scc_sizes.eval(100) < 0.01);
    }

    #[test]
    fn render_has_three_panels() {
        let s = render(result());
        assert!(s.contains("Figure 4(a)"));
        assert!(s.contains("Figure 4(b)"));
        assert!(s.contains("Figure 4(c)"));
    }
}
