//! Figure 3: in- and out-degree CCDFs with power-law fits.
//!
//! "We obtained α = 1.3 (with R² = 0.99) for in-degree and α = 1.2 (with
//! R² = 0.99) for out-degree. ... the out-degree curve drops sharply
//! around 5000." (§3.3.1)

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use crate::paper::structure;
use gplus_stats::{Ccdf, PowerLawFit};
use serde::{Deserialize, Serialize};

/// Fit parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig3Params {
    /// Lower cut-off of the regression (the paper fit the full support;
    /// a small x_min avoids the low-degree curvature at small scale).
    pub fit_x_min: u64,
}

impl Default for Fig3Params {
    fn default() -> Self {
        Self { fit_x_min: 5 }
    }
}

/// Both CCDFs plus fitted exponents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// In-degree CCDF.
    pub in_ccdf: Ccdf,
    /// Out-degree CCDF.
    pub out_ccdf: Ccdf,
    /// Power-law fit of the in-degree CCDF.
    pub in_fit: PowerLawFit,
    /// Power-law fit of the out-degree CCDF.
    pub out_fit: PowerLawFit,
}

/// Builds the distributions and fits over a fresh single-use context.
pub fn run(data: &impl Dataset, params: &Fig3Params) -> Fig3Result {
    run_ctx(&AnalysisCtx::new(data), params)
}

/// Builds the distributions and fits from a shared [`AnalysisCtx`],
/// reusing its cached degree CCDFs.
pub fn run_ctx<D: Dataset>(ctx: &AnalysisCtx<'_, D>, params: &Fig3Params) -> Fig3Result {
    let in_ccdf = ctx.in_degree_ccdf().clone();
    let out_ccdf = ctx.out_degree_ccdf().clone();
    let in_fit = PowerLawFit::from_ccdf_with_xmin(&in_ccdf, params.fit_x_min);
    let out_fit = PowerLawFit::from_ccdf_with_xmin(&out_ccdf, params.fit_x_min);
    Fig3Result { in_ccdf, out_ccdf, in_fit, out_fit }
}

/// Renders decade points of both curves and the fits.
pub fn render(result: &Fig3Result) -> String {
    let mut out =
        String::from("Figure 3: Degree distributions (CCDF)\ndegree  P(in>=x)  P(out>=x)\n");
    let mut x = 1u64;
    let max = result.in_ccdf.max_value().max(result.out_ccdf.max_value());
    while x <= max {
        out.push_str(&format!(
            "{:>6}  {:>9.2e}  {:>9.2e}\n",
            x,
            result.in_ccdf.eval(x),
            result.out_ccdf.eval(x)
        ));
        x *= 2;
    }
    out.push_str(&format!(
        "alpha_in  = {:.2} (R² {:.3}; paper {} with R² {})\n",
        result.in_fit.alpha,
        result.in_fit.r_squared,
        structure::ALPHA_IN,
        structure::DEGREE_FIT_R2
    ));
    out.push_str(&format!(
        "alpha_out = {:.2} (R² {:.3}; paper {} with R² {})\n",
        result.out_fit.alpha,
        result.out_fit.r_squared,
        structure::ALPHA_OUT,
        structure::DEGREE_FIT_R2
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn result() -> &'static Fig3Result {
        static R: OnceLock<Fig3Result> = OnceLock::new();
        R.get_or_init(|| {
            let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(40_000, 8));
            run(&GroundTruthDataset::new(&net), &Fig3Params::default())
        })
    }

    #[test]
    fn exponents_near_paper() {
        let r = result();
        assert!(
            (r.in_fit.alpha - structure::ALPHA_IN).abs() < 0.5,
            "alpha_in {} vs paper {}",
            r.in_fit.alpha,
            structure::ALPHA_IN
        );
        assert!(
            (r.out_fit.alpha - structure::ALPHA_OUT).abs() < 0.6,
            "alpha_out {} vs paper {}",
            r.out_fit.alpha,
            structure::ALPHA_OUT
        );
    }

    #[test]
    fn fits_reasonably_good() {
        let r = result();
        assert!(r.in_fit.r_squared > 0.85, "R² in {}", r.in_fit.r_squared);
        assert!(r.out_fit.r_squared > 0.85, "R² out {}", r.out_fit.r_squared);
    }

    #[test]
    fn heavy_tails_present() {
        let r = result();
        // hubs far above the mean exist on both sides
        assert!(r.in_ccdf.max_value() > 500);
        assert!(r.out_ccdf.max_value() > 100);
    }

    #[test]
    fn render_prints_fits() {
        let s = render(result());
        assert!(s.contains("alpha_in"));
        assert!(s.contains("paper 1.3"));
    }
}
