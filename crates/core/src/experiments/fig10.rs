//! Figure 10: link distribution across the top countries.
//!
//! §4.5: a graph of countries where each directed edge's weight is "the
//! proportion of outgoing links from one country to another"; self-loops
//! are friendships within the country. "only 30% of the links are
//! self-loops in United Kingdom and 33% in Canada. These two countries
//! ... have a large number of out-going edges to the US"; countries with
//! self-loops > 0.50 are ID, IN, BR, IT — and the US.

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use crate::render::TextTable;
use gplus_geo::{Country, TOP10_COUNTRIES};
use serde::{Deserialize, Serialize};

/// The country-to-country proportion matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Result {
    /// `matrix[i][j]` = fraction of country `i`'s located outgoing links
    /// that land in country `j`, where `i`,`j` index [`TOP10_COUNTRIES`];
    /// column 10 aggregates every other located destination.
    pub matrix: Vec<Vec<f64>>,
    /// Located outgoing links counted per source country.
    pub out_links: Vec<u64>,
}

impl Fig10Result {
    /// Index of a top-10 country.
    fn idx(c: Country) -> Option<usize> {
        TOP10_COUNTRIES.iter().position(|&x| x == c)
    }

    /// The self-loop fraction of a top-10 country.
    pub fn self_loop(&self, c: Country) -> Option<f64> {
        let i = Self::idx(c)?;
        Some(self.matrix[i][i])
    }

    /// The proportion of `from`'s links going to `to`.
    pub fn weight(&self, from: Country, to: Country) -> Option<f64> {
        let i = Self::idx(from)?;
        let j = Self::idx(to)?;
        Some(self.matrix[i][j])
    }
}

/// Builds the matrix over a fresh single-use context.
pub fn run(data: &impl Dataset) -> Fig10Result {
    run_ctx(&AnalysisCtx::new(data))
}

/// Builds the matrix over edges whose endpoints are both geo-located,
/// reusing the context's cached country assignments.
pub fn run_ctx<D: Dataset>(ctx: &AnalysisCtx<'_, D>) -> Fig10Result {
    let g = ctx.graph();
    // per-node top-10 index (or 10 = other located, None = unlocated)
    let country_idx: Vec<Option<usize>> = ctx
        .countries()
        .iter()
        .map(|c| c.map(|c| Fig10Result::idx(c).unwrap_or(TOP10_COUNTRIES.len())))
        .collect();

    let mut counts = vec![vec![0u64; TOP10_COUNTRIES.len() + 1]; TOP10_COUNTRIES.len()];
    let mut out_links = vec![0u64; TOP10_COUNTRIES.len()];
    for (u, v) in g.edges() {
        let Some(i) = country_idx[u as usize] else { continue };
        if i >= TOP10_COUNTRIES.len() {
            continue; // source outside the figure's ten countries
        }
        let Some(j) = country_idx[v as usize] else { continue };
        counts[i][j] += 1;
        out_links[i] += 1;
    }
    let matrix = counts
        .iter()
        .enumerate()
        .map(|(i, row)| row.iter().map(|&c| c as f64 / out_links[i].max(1) as f64).collect())
        .collect();
    Fig10Result { matrix, out_links }
}

/// Renders the matrix (rows = source country).
pub fn render(result: &Fig10Result) -> String {
    let mut header: Vec<&str> = TOP10_COUNTRIES.iter().map(|c| c.code()).collect();
    header.insert(0, "from\\to");
    header.push("rest");
    let mut t =
        TextTable::new("Figure 10: Link distribution across the top countries").header(&header);
    for (i, c) in TOP10_COUNTRIES.iter().enumerate() {
        let mut row = vec![c.code().to_string()];
        for j in 0..=TOP10_COUNTRIES.len() {
            row.push(format!("{:.2}", result.matrix[i][j]));
        }
        t.row(row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn result() -> &'static Fig10Result {
        static R: OnceLock<Fig10Result> = OnceLock::new();
        R.get_or_init(|| {
            let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(100_000, 15));
            run(&GroundTruthDataset::new(&net))
        })
    }

    #[test]
    fn rows_sum_to_one() {
        let r = result();
        for (i, row) in r.matrix.iter().enumerate() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
            assert!(r.out_links[i] > 0, "row {i} has no links");
        }
    }

    #[test]
    fn inward_countries_high_self_loops() {
        // §4.5's > 0.50 group (with generous tolerance on sampled location
        // attrition: unlocated targets are excluded, which shifts mass)
        let r = result();
        for c in [Country::Us, Country::In, Country::Br, Country::Id] {
            let s = r.self_loop(c).unwrap();
            assert!(s > 0.5, "{c}: self-loop {s}");
        }
    }

    #[test]
    fn uk_canada_outward_looking() {
        let r = result();
        let gb = r.self_loop(Country::Gb).unwrap();
        let ca = r.self_loop(Country::Ca).unwrap();
        let us = r.self_loop(Country::Us).unwrap();
        // conditioning on located endpoints drops the (unlocated) global
        // celebrities' US-bound mass, so the measured self-loops sit above
        // the Figure-10 ground truth; the *ordering* is the finding
        assert!(gb < 0.55, "GB self-loop {gb} (paper 0.30)");
        assert!(ca < 0.60, "CA self-loop {ca} (paper 0.33)");
        assert!(gb < us - 0.2 && ca < us - 0.2, "GB/CA far below US ({us})");
        // their dominant foreign destination is the US
        let gb_us = r.weight(Country::Gb, Country::Us).unwrap();
        let ca_us = r.weight(Country::Ca, Country::Us).unwrap();
        assert!(gb_us > 0.15, "GB->US {gb_us}");
        assert!(ca_us > 0.15, "CA->US {ca_us}");
        for other in [Country::In, Country::Br, Country::De] {
            assert!(
                gb_us > r.weight(Country::Gb, other).unwrap(),
                "GB should send most cross-links to US, not {other}"
            );
        }
    }

    #[test]
    fn us_dominant_influx() {
        // "US has an important role ... dominant influx of edges from most
        // countries to the US"
        let r = result();
        let mut dominant = 0;
        for &from in &TOP10_COUNTRIES {
            if from == Country::Us {
                continue;
            }
            let to_us = r.weight(from, Country::Us).unwrap();
            let max_other = TOP10_COUNTRIES
                .iter()
                .filter(|&&to| to != from && to != Country::Us)
                .map(|&to| r.weight(from, to).unwrap())
                .fold(0.0f64, f64::max);
            if to_us >= max_other {
                dominant += 1;
            }
        }
        assert!(dominant >= 7, "US should dominate influx for most countries: {dominant}/9");
    }

    #[test]
    fn render_prints_matrix() {
        let s = render(result());
        assert!(s.contains("from\\to"));
        assert!(s.contains("rest"));
    }
}
