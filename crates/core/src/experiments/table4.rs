//! Table 4: comparison of topological characteristics across OSNs.
//!
//! The Google+ row is *measured* from the dataset; the Facebook, Twitter
//! and Orkut rows are the literature values the paper itself cites
//! ([26, 3, 39, 32]), embedded in [`crate::paper::TABLE4`]. The synth
//! crate's `twitter_like` / `facebook_like` presets let the benches also
//! regenerate comparison rows from simulation.

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use crate::paper::{Table4Row, TABLE4};
use crate::render::TextTable;
use gplus_graph::paths;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Measurement parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table4Params {
    /// BFS sources for the path-length estimate.
    pub path_samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Coverage figure to report (1.0 for ground truth; a crawl supplies
    /// its own estimate).
    pub crawled_fraction: f64,
}

impl Default for Table4Params {
    fn default() -> Self {
        Self { path_samples: 400, seed: 2012, crawled_fraction: 1.0 }
    }
}

/// The measured Google+ row plus context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Result {
    /// Nodes in the measured graph.
    pub nodes: u64,
    /// Edges in the measured graph.
    pub edges: u64,
    /// Reported coverage.
    pub crawled: f64,
    /// Mean sampled shortest-path length (directed).
    pub path_length: f64,
    /// Global reciprocity.
    pub reciprocity: f64,
    /// Diameter estimate (max sampled eccentricity).
    pub diameter: u32,
    /// Mean degree (in = out = |E|/|V|).
    pub mean_degree: f64,
    /// Giant-SCC fraction (not a Table-4 column, but reported alongside).
    pub giant_scc_fraction: f64,
}

/// Measures the Google+ row of Table 4 over a fresh single-use context.
pub fn run(data: &impl Dataset, params: &Table4Params) -> Table4Result {
    run_ctx(&AnalysisCtx::new(data), params)
}

/// Measures the Google+ row from a shared [`AnalysisCtx`], reusing its
/// cached SCC partition and global reciprocity.
pub fn run_ctx<D: Dataset>(ctx: &AnalysisCtx<'_, D>, params: &Table4Params) -> Table4Result {
    let g = ctx.graph();
    let view = ctx.traversal_view();
    let mut rng = StdRng::seed_from_u64(params.seed);
    let dist =
        paths::sampled_path_lengths_opt(view.graph, params.path_samples, &mut rng, view.opts());
    Table4Result {
        nodes: g.node_count() as u64,
        edges: g.edge_count() as u64,
        crawled: params.crawled_fraction,
        path_length: dist.mean(),
        reciprocity: ctx.global_reciprocity(),
        diameter: dist.max_distance,
        mean_degree: gplus_graph::degree::mean_degree(g),
        giant_scc_fraction: ctx.scc().giant_fraction(),
    }
}

/// Renders the full table: the measured Google+ row first, then the
/// literature rows.
pub fn render(result: &Table4Result) -> String {
    let mut t = TextTable::new("Table 4: Topological characteristics across OSNs").header(&[
        "Network",
        "Nodes",
        "Edges",
        "% Crawled",
        "Path length",
        "Reciprocity",
        "Diameter",
        "Mean degree",
    ]);
    t.row(vec![
        "Google+ (measured)".into(),
        human(result.nodes as f64),
        human(result.edges as f64),
        format!("{:.0}%", result.crawled * 100.0),
        format!("{:.1}", result.path_length),
        format!("{:.0}%", result.reciprocity * 100.0),
        result.diameter.to_string(),
        format!("{:.1}", result.mean_degree),
    ]);
    for row in paper_rows() {
        t.row(vec![
            format!("{} (paper)", row.network),
            human(row.nodes),
            human(row.edges),
            format!("{:.0}%", row.crawled * 100.0),
            format!("{:.1}", row.path_length),
            format!("{:.0}%", row.reciprocity * 100.0),
            row.diameter.to_string(),
            row.in_degree.map(|d| format!("{d:.1}")).unwrap_or_else(|| "-".into()),
        ]);
    }
    format!("{}giant SCC fraction: {:.2}\n", t.render(), result.giant_scc_fraction)
}

/// The paper's four rows.
pub fn paper_rows() -> &'static [Table4Row] {
    &TABLE4
}

fn human(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.1}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.1}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}k", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn result() -> &'static Table4Result {
        static R: OnceLock<Table4Result> = OnceLock::new();
        R.get_or_init(|| {
            let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(25_000, 5));
            run(&GroundTruthDataset::new(&net), &Table4Params::default())
        })
    }

    #[test]
    fn reciprocity_between_twitter_and_facebook() {
        // the paper's qualitative Table-4 finding
        let r = result();
        assert!(r.reciprocity > 0.221, "should exceed Twitter's 22.1%: {}", r.reciprocity);
        assert!(r.reciprocity < 1.0, "should sit below Facebook's 100%");
    }

    #[test]
    fn small_world_row() {
        let r = result();
        assert!(r.path_length > 2.0 && r.path_length < 9.0, "path {}", r.path_length);
        assert!(r.diameter >= r.path_length as u32);
        assert!(r.mean_degree > 5.0 && r.mean_degree < 30.0, "degree {}", r.mean_degree);
        assert!(r.giant_scc_fraction > 0.45 && r.giant_scc_fraction < 0.95);
    }

    #[test]
    fn render_includes_all_networks() {
        let s = render(result());
        for n in ["Google+ (measured)", "Facebook (paper)", "Twitter (paper)", "Orkut (paper)"]
        {
            assert!(s.contains(n), "missing {n}");
        }
        assert!(s.contains("giant SCC"));
    }

    #[test]
    fn human_format() {
        assert_eq!(human(575_141_097.0), "575.1M");
        assert_eq!(human(62.0e9), "62.0G");
        assert_eq!(human(950.0), "950");
        assert_eq!(human(3_500.0), "3.5k");
    }
}
