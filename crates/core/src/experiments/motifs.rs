//! Motif census extension: the seven directed-triangle classes over the
//! analysed graph.
//!
//! The paper characterises Google+'s structure through reciprocity
//! (§3.3.2: 32% of edges are reciprocal) and clustering (§3.3.3); the
//! triangle *classes* refine both at once — a triangle of three mutual
//! dyads (`300`) is the signature of a tight friend group, while a
//! one-way cycle (`030C`) or fan (`030T`) is the celebrity-follower
//! pattern the paper attributes to Twitter-like behaviour. This stage
//! runs [`gplus_graph::motifs::census`] and reports per-class totals and
//! shares.
//!
//! Every reported quantity is invariant under node relabeling (the class
//! totals are a sum over unordered node triples, and the participation
//! aggregates are order-blind), so the stage may census the hub-first
//! [`TraversalView`](crate::context::TraversalView) graph — faster, the
//! low-degree apexes the kernel scans come last — and still produce
//! byte-identical output with `--no-relabel`.

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use gplus_graph::motifs::{self, CLASS_NAMES};
use serde::{Deserialize, Serialize};

/// The censused triangle-class profile of one graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MotifsResult {
    /// Triangle count per class, indexed like
    /// [`gplus_graph::motifs::CLASS_NAMES`].
    pub totals: Vec<u64>,
    /// Sum of the class totals — the undirected triangle count.
    pub triangle_total: u64,
    /// Each class's share of all triangles (empty-graph convention: all
    /// zero when there are no triangles).
    pub shares: Vec<f64>,
    /// Nodes sitting in at least one triangle.
    pub nodes_in_triangles: u64,
    /// The largest per-node triangle participation count.
    pub max_participation: u64,
}

/// Runs the census over a fresh single-use context.
pub fn run(data: &impl Dataset) -> MotifsResult {
    run_ctx(&AnalysisCtx::new(data))
}

/// Runs the census from a shared [`AnalysisCtx`].
pub fn run_ctx<D: Dataset>(ctx: &AnalysisCtx<'_, D>) -> MotifsResult {
    let census = motifs::census(ctx.traversal_view().graph);
    let triangle_total = census.triangle_total();
    let shares = census
        .totals
        .iter()
        .map(|&t| if triangle_total == 0 { 0.0 } else { t as f64 / triangle_total as f64 })
        .collect();
    MotifsResult {
        totals: census.totals.to_vec(),
        triangle_total,
        shares,
        nodes_in_triangles: census.per_node.iter().filter(|&&p| p > 0).count() as u64,
        max_participation: census.per_node.iter().copied().max().unwrap_or(0),
    }
}

/// Renders the class table.
pub fn render(result: &MotifsResult) -> String {
    let mut t = crate::render::TextTable::new("Motif census: directed-triangle classes")
        .header(&["Class", "Triangles", "Share"]);
    for (class, name) in CLASS_NAMES.iter().enumerate() {
        t.row(vec![
            (*name).to_string(),
            result.totals[class].to_string(),
            format!("{:.1}%", result.shares[class] * 100.0),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "triangles: {} ; nodes in triangles: {} ; max participation: {}\n",
        result.triangle_total, result.nodes_in_triangles, result.max_participation
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CtxOptions;
    use crate::dataset::GroundTruthDataset;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn result() -> &'static MotifsResult {
        static R: OnceLock<MotifsResult> = OnceLock::new();
        R.get_or_init(|| {
            let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(30_000, 9));
            run(&GroundTruthDataset::new(&net))
        })
    }

    #[test]
    fn synthetic_network_is_triangle_rich_and_reciprocal() {
        let r = result();
        assert!(r.triangle_total > 1_000, "triangles: {}", r.triangle_total);
        assert_eq!(r.totals.iter().sum::<u64>(), r.triangle_total);
        let share_sum: f64 = r.shares.iter().sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to {share_sum}");
        // a ~32%-reciprocal friend graph closes many fully-mutual
        // triangles; a pure broadcast graph would have none
        assert!(r.shares[motifs::MOTIF_CLASSES - 1] > 0.05, "300 share: {}", r.shares[6]);
        assert!(r.nodes_in_triangles > 0);
        assert!(r.max_participation > 0);
    }

    #[test]
    fn result_is_relabel_invariant() {
        let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(8_000, 17));
        let data = GroundTruthDataset::new(&net);
        let relabeled = run_ctx(&AnalysisCtx::new(&data));
        let plain = run_ctx(&AnalysisCtx::with_options(
            &data,
            CtxOptions { relabel: false, ..CtxOptions::default() },
        ));
        assert_eq!(relabeled, plain);
    }

    #[test]
    fn render_names_every_class() {
        let s = render(result());
        for name in CLASS_NAMES {
            assert!(s.contains(name), "missing class {name}");
        }
        assert!(s.contains("Motif census"));
    }

    #[test]
    fn serialises_and_round_trips() {
        let json = serde_json::to_string(result()).unwrap();
        let back: MotifsResult = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, result());
    }
}
