//! Table 1: the top-20 users ranked by in-degree.
//!
//! "Table 1 shows the top 20 users based on their in-degrees (i.e., how
//! many circles these users are added to by others). ... In fact 7 out of
//! the 20 users are IT related, which is uncommon in other social
//! networks." (§3.1)

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use crate::render::{count, TextTable};
use gplus_profiles::Occupation;
use serde::{Deserialize, Serialize};

/// One ranked user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// 1-based rank.
    pub rank: usize,
    /// Node id in the dataset.
    pub node: u32,
    /// Display name (pseudonym when the profile is unknown).
    pub name: String,
    /// Occupation, if shared.
    pub occupation: Option<Occupation>,
    /// In-degree.
    pub in_degree: u64,
}

/// The computed table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Result {
    /// Ranked rows, best first.
    pub rows: Vec<Table1Row>,
    /// Number of top-20 users whose occupation is IT (the paper's 7/20).
    pub it_count: usize,
}

/// Computes the top-`k` ranking (the paper uses k = 20) over a fresh
/// single-use context. Prefer [`run_ctx`] when running several experiments
/// over the same dataset.
pub fn run(data: &impl Dataset, k: usize) -> Table1Result {
    run_ctx(&AnalysisCtx::new(data), k)
}

/// Computes the ranking from a shared [`AnalysisCtx`].
pub fn run_ctx<D: Dataset>(ctx: &AnalysisCtx<'_, D>, k: usize) -> Table1Result {
    let data = ctx.data();
    let ranked = ctx.top_by_in_degree(k);
    let rows: Vec<Table1Row> = ranked
        .into_iter()
        .enumerate()
        .map(|(i, (node, in_degree))| Table1Row {
            rank: i + 1,
            node,
            name: data.display_name(node).unwrap_or_else(|| format!("<uncrawled node {node}>")),
            occupation: data.occupation(node),
            in_degree,
        })
        .collect();
    let it_count =
        rows.iter().filter(|r| r.occupation == Some(Occupation::InformationTechnology)).count();
    Table1Result { rows, it_count }
}

/// Renders the table, paper-style.
pub fn render(result: &Table1Result) -> String {
    let mut t = TextTable::new("Table 1: Top users ranked by in-degree").header(&[
        "Rank",
        "Name",
        "About",
        "In-degree",
    ]);
    for row in &result.rows {
        t.row(vec![
            row.rank.to_string(),
            row.name.clone(),
            row.occupation.map(|o| o.label().to_string()).unwrap_or_else(|| "-".into()),
            count(row.in_degree),
        ]);
    }
    format!(
        "{}\nIT-related in top {}: {} (paper: 7 of 20)\n",
        t.render(),
        result.rows.len(),
        result.it_count
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_synth::{SynthConfig, SynthNetwork};

    fn net() -> SynthNetwork {
        SynthNetwork::generate(&SynthConfig::google_plus_2011(8_000, 1))
    }

    #[test]
    fn rows_sorted_and_ranked() {
        let net = net();
        let result = run(&GroundTruthDataset::new(&net), 20);
        assert_eq!(result.rows.len(), 20);
        for (i, row) in result.rows.iter().enumerate() {
            assert_eq!(row.rank, i + 1);
        }
        for w in result.rows.windows(2) {
            assert!(w[0].in_degree >= w[1].in_degree);
        }
    }

    #[test]
    fn larry_page_tops_and_it_dominates() {
        let net = net();
        let result = run(&GroundTruthDataset::new(&net), 20);
        assert_eq!(result.rows[0].name, "Larry Page");
        // the paper's signature finding: an unusually IT-heavy top list
        assert!(
            (5..=10).contains(&result.it_count),
            "IT count {} should be near the paper's 7",
            result.it_count
        );
    }

    #[test]
    fn render_contains_names_and_summary() {
        let net = net();
        let s = render(&run(&GroundTruthDataset::new(&net), 20));
        assert!(s.contains("Larry Page"));
        assert!(s.contains("paper: 7 of 20"));
    }

    #[test]
    fn k_truncates() {
        let net = net();
        let result = run(&GroundTruthDataset::new(&net), 5);
        assert_eq!(result.rows.len(), 5);
    }
}
