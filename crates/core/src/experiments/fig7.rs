//! Figure 7: GDP per capita vs Google+ penetration (a) and Internet
//! penetration (b) for twenty countries.
//!
//! §4.1's findings: IPR is roughly linear in GDP per capita; GPR is not —
//! "The top country in Google+ adoption now becomes India"; Japan, Russia
//! and China show a large IPR/GPR gap (domestic networks / blocking).

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use crate::experiments::fig6;
use crate::render::TextTable;
use gplus_geo::penetration::{penetration_points, PenetrationPoint};
use gplus_geo::Country;
use gplus_stats::LinearRegression;
use serde::{Deserialize, Serialize};

/// Both panels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// One point per focus country (GDP, GPR, IPR).
    pub points: Vec<PenetrationPoint>,
    /// Linear fit of IPR on GDP per capita (panel b's visible trend).
    pub ipr_gdp_fit: LinearRegression,
    /// Linear fit of GPR on GDP per capita (should be much weaker).
    pub gpr_gdp_fit: LinearRegression,
}

impl Fig7Result {
    /// Countries ranked by GPR, best first.
    pub fn gpr_ranking(&self) -> Vec<Country> {
        let mut pts = self.points.clone();
        pts.sort_by(|a, b| b.gpr.partial_cmp(&a.gpr).expect("finite rates"));
        pts.into_iter().map(|p| p.country).collect()
    }

    /// The point for one country.
    pub fn point(&self, c: Country) -> Option<&PenetrationPoint> {
        self.points.iter().find(|p| p.country == c)
    }
}

/// Computes both panels over a fresh single-use context.
pub fn run(data: &impl Dataset) -> Fig7Result {
    run_ctx(&AnalysisCtx::new(data))
}

/// Computes both panels from a shared [`AnalysisCtx`], reusing its cached
/// located-user counts.
pub fn run_ctx<D: Dataset>(ctx: &AnalysisCtx<'_, D>) -> Fig7Result {
    let counts = fig6::run_ctx(ctx).counts();
    let points = penetration_points(&counts);
    let ipr_pts: Vec<(f64, f64)> = points.iter().map(|p| (p.gdp_per_capita, p.ipr)).collect();
    let gpr_pts: Vec<(f64, f64)> = points.iter().map(|p| (p.gdp_per_capita, p.gpr)).collect();
    Fig7Result {
        ipr_gdp_fit: LinearRegression::fit(&ipr_pts),
        gpr_gdp_fit: LinearRegression::fit(&gpr_pts),
        points,
    }
}

/// Renders both panels as a table.
pub fn render(result: &Fig7Result) -> String {
    let mut t = TextTable::new("Figure 7: GDP per capita vs Google+ / Internet penetration")
        .header(&["Country", "GDP pc (PPP)", "GPR", "IPR"]);
    let mut pts = result.points.clone();
    pts.sort_by(|a, b| b.gpr.partial_cmp(&a.gpr).expect("finite"));
    for p in &pts {
        t.row(vec![
            p.country.code().to_string(),
            format!("{:.0}", p.gdp_per_capita),
            format!("{:.3}%", p.gpr * 100.0),
            format!("{:.1}%", p.ipr * 100.0),
        ]);
    }
    format!(
        "{}IPR~GDP R² = {:.2} (visible linear trend); GPR~GDP R² = {:.2} (no trend)\n",
        t.render(),
        result.ipr_gdp_fit.r_squared,
        result.gpr_gdp_fit.r_squared
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn result() -> &'static Fig7Result {
        static R: OnceLock<Fig7Result> = OnceLock::new();
        R.get_or_init(|| {
            let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(120_000, 12));
            run(&GroundTruthDataset::new(&net))
        })
    }

    #[test]
    fn twenty_focus_countries() {
        assert_eq!(result().points.len(), 20);
    }

    #[test]
    fn india_tops_gpr_ranking() {
        let ranking = result().gpr_ranking();
        assert_eq!(ranking[0], Country::In, "paper: 'The top country ... becomes India'");
        // and the US stays in the top five despite lower relative adoption
        let us_rank = ranking.iter().position(|&c| c == Country::Us).unwrap();
        assert!(us_rank < 5, "US rank {us_rank}");
    }

    #[test]
    fn japan_russia_china_gap() {
        // §4.1: "certain countries showed a large gap between the Internet
        // and Google+ penetration rate such as Japan, Russia, and China"
        let r = result();
        for c in [Country::Jp, Country::Ru, Country::Cn] {
            let p = r.point(c).unwrap();
            let brazil = r.point(Country::Br).unwrap();
            // normalized gap: their GPR/IPR ratio far below Brazil's
            let ratio = p.gpr / p.ipr;
            let ratio_br = brazil.gpr / brazil.ipr;
            assert!(ratio < ratio_br / 2.0, "{c}: GPR/IPR {ratio} vs BR {ratio_br}");
        }
    }

    #[test]
    fn ipr_linear_in_gdp_gpr_not() {
        let r = result();
        assert!(
            r.ipr_gdp_fit.r_squared > 0.5,
            "IPR~GDP should trend linearly, R² {}",
            r.ipr_gdp_fit.r_squared
        );
        assert!(
            r.gpr_gdp_fit.r_squared < r.ipr_gdp_fit.r_squared / 2.0,
            "GPR~GDP should be much weaker: {} vs {}",
            r.gpr_gdp_fit.r_squared,
            r.ipr_gdp_fit.r_squared
        );
    }

    #[test]
    fn poor_countries_equal_footing() {
        // "Countries with lower GDP per capita like Brazil, Mexico, and
        // Thailand have equal footing ... with United Kingdom, Australia,
        // and Canada"
        let r = result();
        let gpr = |c: Country| r.point(c).unwrap().gpr;
        let poor = (gpr(Country::Br) + gpr(Country::Mx) + gpr(Country::Th)) / 3.0;
        let rich = (gpr(Country::Gb) + gpr(Country::Au) + gpr(Country::Ca)) / 3.0;
        let ratio = poor / rich;
        assert!((0.4..=2.5).contains(&ratio), "poor/rich GPR ratio {ratio}");
    }

    #[test]
    fn render_has_both_fits() {
        let s = render(result());
        assert!(s.contains("IPR~GDP"));
        assert!(s.contains("GPR~GDP"));
    }
}
