//! One module per table and figure of the paper's evaluation.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — top-20 users by in-degree |
//! | [`table2`] | Table 2 — public attribute availability |
//! | [`table3`] | Table 3 — all users vs tel-users |
//! | [`table4`] | Table 4 — cross-network topology comparison |
//! | [`table5`] | Table 5 — per-country top-user occupations + Jaccard |
//! | [`fig2`] | Figure 2 — CCDF of fields shared, tel vs all |
//! | [`fig3`] | Figure 3 — degree CCDFs and power-law fits |
//! | [`fig4`] | Figure 4 — reciprocity CDF, clustering CDF, SCC CCDF |
//! | [`fig5`] | Figure 5 — sampled path-length distribution |
//! | [`fig6`] | Figure 6 — top-10 countries |
//! | [`fig7`] | Figure 7 — GDP vs Google+/Internet penetration |
//! | [`fig8`] | Figure 8 — per-country profile openness |
//! | [`fig9`] | Figure 9 — path miles |
//! | [`fig10`] | Figure 10 — country-to-country link matrix |
//! | [`motifs`] | Extension — directed-triangle motif class census |
//!
//! Every module follows the same contract: `run(dataset, ..) -> XxxResult`
//! (serialisable), `render(&XxxResult) -> String` shaped like the paper's
//! artifact, and paper-reference constants re-exported from
//! [`crate::paper`] where applicable.

pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod motifs;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
