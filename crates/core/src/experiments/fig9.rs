//! Figure 9: the "path mile" — physical distance between users.
//!
//! §4.4 compares three pair sets among geo-located users: socially
//! connected pairs (~60M), reciprocally connected pairs (~13M), and random
//! unlinked pairs (20M). "Nearly 58% of the users (friends) were separated
//! by less than a thousand miles and 15% of them were separated by in fact
//! 10 miles. ... users with symmetric links (reciprocal) live closer."
//! Panel (b): average path miles per top-10 country, with std deviation.

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use crate::paper::geo as paper_geo;
use crate::render::TextTable;
use gplus_geo::{haversine_miles, Country, TOP10_COUNTRIES};
use gplus_graph::reciprocity;
use gplus_stats::{Cdf, Summary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Sampling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig9Params {
    /// Maximum pairs per set (the paper used 60M/13M/20M; defaults scale
    /// to laptop runs).
    pub max_pairs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig9Params {
    fn default() -> Self {
        Self { max_pairs: 200_000, seed: 2012 }
    }
}

/// Distances of the three pair sets plus per-country means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Result {
    /// CDF of distances between linked pairs.
    pub friends: Cdf,
    /// CDF of distances between reciprocal pairs.
    pub reciprocal: Option<Cdf>,
    /// CDF of distances between random located pairs.
    pub random: Cdf,
    /// Fraction of friend pairs within 1,000 miles (paper: ~58%).
    pub friends_within_1000: f64,
    /// Fraction of friend pairs within 10 miles (paper: ~15%).
    pub friends_within_10: f64,
    /// Panel (b): per-country (mean, std) of friend-pair miles, source side.
    pub by_country: Vec<(Country, f64, f64)>,
}

/// Samples the three pair sets over a fresh single-use context.
pub fn run(data: &impl Dataset, params: &Fig9Params) -> Fig9Result {
    run_ctx(&AnalysisCtx::new(data), params)
}

/// Samples the three pair sets and computes distances, reusing the
/// context's cached coordinates and country assignments.
pub fn run_ctx<D: Dataset>(ctx: &AnalysisCtx<'_, D>, params: &Fig9Params) -> Fig9Result {
    let g = ctx.graph();
    let mut rng = StdRng::seed_from_u64(params.seed);

    // located nodes and their coordinates
    let located: Vec<(u32, gplus_geo::LatLon)> = ctx
        .locations()
        .iter()
        .enumerate()
        .filter_map(|(n, loc)| loc.map(|l| (n as u32, l)))
        .collect();
    assert!(located.len() >= 2, "need at least two located users");
    let coord = |node: u32| ctx.location_of(node);

    // friends: every directed edge with both endpoints located, thinned to
    // the pair budget
    let mut friend_miles = Vec::new();
    let mut per_country: Vec<Summary> = vec![Summary::new(); TOP10_COUNTRIES.len()];
    let total_edges = g.edge_count().max(1);
    let keep_prob = (params.max_pairs as f64 / total_edges as f64).min(1.0);
    for (u, v) in g.edges() {
        if keep_prob < 1.0 && !rng.random_bool(keep_prob) {
            continue;
        }
        let (Some(a), Some(b)) = (coord(u), coord(v)) else { continue };
        let miles = haversine_miles(a, b);
        friend_miles.push(miles);
        if let Some(cu) = ctx.country_of(u) {
            if let Some(i) = TOP10_COUNTRIES.iter().position(|&c| c == cu) {
                per_country[i].add(miles);
            }
        }
    }
    assert!(!friend_miles.is_empty(), "no located friend pairs sampled");

    // reciprocal pairs
    let mut recip_miles = Vec::new();
    for (u, v) in reciprocity::reciprocal_pairs(g) {
        if recip_miles.len() >= params.max_pairs {
            break;
        }
        let (Some(a), Some(b)) = (coord(u), coord(v)) else { continue };
        recip_miles.push(haversine_miles(a, b));
    }

    // random located pairs, rejecting linked ones
    let mut random_miles = Vec::with_capacity(params.max_pairs.min(located.len() * 4));
    while random_miles.len() < params.max_pairs.min(located.len().pow(2) / 4) {
        let (u, a) = located[rng.random_range(0..located.len())];
        let (v, b) = located[rng.random_range(0..located.len())];
        if u == v || g.has_edge(u, v) || g.has_edge(v, u) {
            continue;
        }
        random_miles.push(haversine_miles(a, b));
        if random_miles.len() >= 1_000 && random_miles.len() >= friend_miles.len() {
            break;
        }
    }

    let friends = Cdf::new(&friend_miles);
    Fig9Result {
        friends_within_1000: friends.eval(1_000.0),
        friends_within_10: friends.eval(10.0),
        friends,
        reciprocal: (!recip_miles.is_empty()).then(|| Cdf::new(&recip_miles)),
        random: Cdf::new(&random_miles),
        by_country: TOP10_COUNTRIES
            .iter()
            .zip(per_country)
            .filter(|(_, s)| s.count() > 0)
            .map(|(&c, s)| (c, s.mean(), s.std_dev()))
            .collect(),
    }
}

/// Renders both panels.
pub fn render(result: &Fig9Result) -> String {
    let mut out =
        String::from("Figure 9(a): Path-mile CDF\nmiles     friends  reciprocal  random\n");
    for miles in [10.0, 100.0, 500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0, 12_000.0] {
        let recip = result.reciprocal.as_ref().map(|c| c.eval(miles)).unwrap_or(f64::NAN);
        out.push_str(&format!(
            "{:>7.0}  {:>8.3}  {:>10.3}  {:>6.3}\n",
            miles,
            result.friends.eval(miles),
            recip,
            result.random.eval(miles)
        ));
    }
    out.push_str(&format!(
        "friends < 1000 mi: {:.1}% (paper ~{:.0}%); < 10 mi: {:.1}% (paper ~{:.0}%)\n\n",
        result.friends_within_1000 * 100.0,
        paper_geo::FRIENDS_WITHIN_1000_MILES * 100.0,
        result.friends_within_10 * 100.0,
        paper_geo::FRIENDS_WITHIN_10_MILES * 100.0
    ));
    let mut t = TextTable::new("Figure 9(b): Average path mile per country").header(&[
        "Country",
        "Mean miles",
        "Std dev",
    ]);
    for (c, mean, std) in &result.by_country {
        t.row(vec![c.code().to_string(), format!("{mean:.0}"), format!("{std:.0}")]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn result() -> &'static Fig9Result {
        static R: OnceLock<Fig9Result> = OnceLock::new();
        R.get_or_init(|| {
            let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(60_000, 14));
            run(&GroundTruthDataset::new(&net), &Fig9Params { max_pairs: 60_000, seed: 4 })
        })
    }

    #[test]
    fn friends_closer_than_random() {
        let r = result();
        // CDF dominance at the paper's reference distances
        for miles in [10.0, 100.0, 1_000.0, 3_000.0] {
            assert!(
                r.friends.eval(miles) > r.random.eval(miles),
                "at {miles} mi: friends {} vs random {}",
                r.friends.eval(miles),
                r.random.eval(miles)
            );
        }
    }

    #[test]
    fn reciprocal_pairs_closest() {
        let r = result();
        let recip = r.reciprocal.as_ref().expect("reciprocal pairs exist");
        assert!(
            recip.eval(1_000.0) > r.friends.eval(1_000.0),
            "reciprocal {} vs friends {} within 1000 mi",
            recip.eval(1_000.0),
            r.friends.eval(1_000.0)
        );
    }

    #[test]
    fn headline_fractions_in_band() {
        let r = result();
        assert!(
            (0.40..=0.85).contains(&r.friends_within_1000),
            "friends within 1000 mi: {} (paper 0.58)",
            r.friends_within_1000
        );
        assert!(
            (0.05..=0.40).contains(&r.friends_within_10),
            "friends within 10 mi: {} (paper 0.15)",
            r.friends_within_10
        );
    }

    #[test]
    fn per_country_means_no_size_pattern() {
        // §4.4: "there is no specific pattern relating the size of the
        // country and its average path mile" — small countries still show
        // large averages because many links leave the country. We assert
        // every country's mean is at least hundreds of miles.
        let r = result();
        assert!(r.by_country.len() >= 8);
        for (c, mean, _) in &r.by_country {
            assert!(*mean > 100.0, "{c}: mean {mean}");
        }
    }

    #[test]
    fn render_shows_both_panels() {
        let s = render(result());
        assert!(s.contains("Figure 9(a)"));
        assert!(s.contains("Figure 9(b)"));
        assert!(s.contains("paper ~58%"));
    }
}
