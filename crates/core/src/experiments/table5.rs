//! Table 5: occupation-job titles of the top users per country.
//!
//! For each top-10 country, the ten most-connected *geo-located* users'
//! occupation codes, plus the (set) Jaccard index of each country's code
//! set against the US's — "The top users in Canada have a very similar
//! profile to that of the United States ... In contrast, Brazil, Italy,
//! and Spain show a different set of celebrities and professions." (§4.2)

use crate::context::AnalysisCtx;
use crate::dataset::Dataset;
use crate::render::TextTable;
use gplus_geo::{Country, TOP10_COUNTRIES};
use gplus_profiles::Occupation;
use gplus_stats::jaccard_index;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One country row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// The country.
    pub country: Country,
    /// Occupation codes of the top-10 located users, rank order.
    pub occupations: Vec<Occupation>,
    /// Set-Jaccard similarity to the US row.
    pub jaccard_vs_us: f64,
    /// The paper's printed Jaccard for this country.
    pub paper_jaccard: f64,
}

/// The computed table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Result {
    /// One row per top-10 country, paper order.
    pub rows: Vec<Table5Row>,
}

/// The paper's Jaccard column.
fn paper_jaccard(c: Country) -> f64 {
    match c {
        Country::Us => 1.00,
        Country::In => 0.57,
        Country::Br => 0.18,
        Country::Gb => 0.57,
        Country::Ca => 0.83,
        Country::De => 0.22,
        Country::Id => 0.30,
        Country::Mx => 0.33,
        Country::It => 0.29,
        Country::Es => 0.25,
        _ => f64::NAN,
    }
}

/// Computes the per-country top-10 occupation lists and Jaccard indices.
///
/// Users qualify for a country's ranking when their profile exposes a
/// geocodable location there *and* a public occupation (the paper tags
/// every listed top user with a job title, so its ranking is implicitly
/// over users whose occupation is determinable). Ranking over located
/// users is also why the US list differs from the global Table 1.
pub fn run(data: &impl Dataset) -> Table5Result {
    run_ctx(&AnalysisCtx::new(data))
}

/// Computes the table from a shared [`AnalysisCtx`], using its cached
/// country assignments and in-degree vector.
pub fn run_ctx<D: Dataset>(ctx: &AnalysisCtx<'_, D>) -> Table5Result {
    let data = ctx.data();
    let g = ctx.graph();
    let in_degrees = ctx.in_degrees();
    // bucket located users (with a public occupation) by country
    let mut by_country: HashMap<Country, Vec<(u32, usize)>> = HashMap::new();
    for node in g.nodes() {
        if data.occupation(node).is_none() {
            continue;
        }
        if let Some(country) = ctx.country_of(node) {
            by_country
                .entry(country)
                .or_default()
                .push((node, in_degrees[node as usize] as usize));
        }
    }
    let top_occupations = |country: Country| -> Vec<Occupation> {
        let mut members = by_country.get(&country).cloned().unwrap_or_default();
        members.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        members.into_iter().take(10).filter_map(|(node, _)| data.occupation(node)).collect()
    };

    let us_codes = top_occupations(Country::Us);
    let rows = TOP10_COUNTRIES
        .iter()
        .map(|&country| {
            let occupations = top_occupations(country);
            Table5Row {
                country,
                jaccard_vs_us: jaccard_index(&us_codes, &occupations),
                occupations,
                paper_jaccard: paper_jaccard(country),
            }
        })
        .collect();
    Table5Result { rows }
}

/// Renders the table, paper-style (two-letter codes).
pub fn render(result: &Table5Result) -> String {
    let mut t = TextTable::new("Table 5: Occupation-Job Title of the top users").header(&[
        "Country",
        "Profession codes of the top-10 users",
        "Jaccard",
        "Paper",
    ]);
    for row in &result.rows {
        let codes: Vec<&str> = row.occupations.iter().map(|o| o.code()).collect();
        t.row(vec![
            row.country.name().to_string(),
            codes.join(" "),
            format!("{:.2}", row.jaccard_vs_us),
            format!("{:.2}", row.paper_jaccard),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_profiles::calibration::top_user_occupations;
    use gplus_synth::{SynthConfig, SynthNetwork};
    use std::sync::OnceLock;

    fn result() -> &'static Table5Result {
        static R: OnceLock<Table5Result> = OnceLock::new();
        R.get_or_init(|| {
            let net = SynthNetwork::generate(&SynthConfig::google_plus_2011(40_000, 6));
            run(&GroundTruthDataset::new(&net))
        })
    }

    #[test]
    fn ten_rows_us_first_jaccard_one() {
        let r = result();
        assert_eq!(r.rows.len(), 10);
        assert_eq!(r.rows[0].country, Country::Us);
        assert!((r.rows[0].jaccard_vs_us - 1.0).abs() < 1e-9);
    }

    #[test]
    fn recovered_occupations_match_seeded_lists() {
        // the per-country celebrity seeding should surface Table 5's exact
        // code sequences for most ranks
        let r = result();
        for row in &r.rows {
            let expected = top_user_occupations(row.country).unwrap();
            assert!(row.occupations.len() >= 8, "{}: too few located top users", row.country);
            // multiset intersection: rank order can wobble at small scale,
            // but the code mix itself should be recovered
            let mut remaining = expected.to_vec();
            let matches = row
                .occupations
                .iter()
                .filter(|o| {
                    if let Some(i) = remaining.iter().position(|e| e == *o) {
                        remaining.remove(i);
                        true
                    } else {
                        false
                    }
                })
                .count();
            assert!(
                matches >= 7,
                "{}: only {matches} of {} occupations match Table 5's mix",
                row.country,
                row.occupations.len()
            );
        }
    }

    #[test]
    fn jaccard_shape_matches_paper() {
        let r = result();
        let j = |c: Country| r.rows.iter().find(|x| x.country == c).unwrap().jaccard_vs_us;
        // Canada closest to the US; Brazil and Germany far
        assert!(
            j(Country::Ca) > j(Country::Br),
            "CA {} vs BR {}",
            j(Country::Ca),
            j(Country::Br)
        );
        assert!(
            j(Country::Ca) > j(Country::De),
            "CA {} vs DE {}",
            j(Country::Ca),
            j(Country::De)
        );
        assert!(j(Country::Br) < 0.45, "BR should be dissimilar, got {}", j(Country::Br));
        // measured values stay within a band of the paper's column
        for row in &r.rows {
            assert!(
                (row.jaccard_vs_us - row.paper_jaccard).abs() < 0.35,
                "{}: measured {} vs paper {}",
                row.country,
                row.jaccard_vs_us,
                row.paper_jaccard
            );
        }
    }

    #[test]
    fn render_prints_codes() {
        let s = render(result());
        assert!(s.contains("United States"));
        assert!(s.contains("IT"));
        assert!(s.contains("Jaccard"));
    }
}
