//! Registry of every experiment the crate implements.
//!
//! One row per paper artifact (plus the extensions), with the paper
//! section it reproduces — the machine-readable version of DESIGN.md's
//! per-experiment index. The CLI's `list` command and the report header
//! render from here.

use serde::{Deserialize, Serialize};

/// What kind of artifact an experiment reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArtifactKind {
    /// A numbered table of the paper.
    Table,
    /// A numbered figure of the paper.
    Figure,
    /// A methodology element of §2.
    Methodology,
    /// An extension beyond the published artifacts.
    Extension,
}

/// One registry row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentInfo {
    /// Stable identifier ("table1", "fig4", "growth", ...).
    pub id: &'static str,
    /// Artifact kind.
    pub kind: ArtifactKind,
    /// Paper section the artifact appears in.
    pub section: &'static str,
    /// Human title.
    pub title: &'static str,
    /// One-line description of what is measured.
    pub description: &'static str,
}

/// All experiments, paper order first, extensions last.
pub const ALL_EXPERIMENTS: [ExperimentInfo; 22] = [
    ExperimentInfo {
        id: "table1",
        kind: ArtifactKind::Table,
        section: "3.1",
        title: "Top 20 users ranked by in-degree",
        description: "celebrity ranking with occupation mix (7/20 IT)",
    },
    ExperimentInfo {
        id: "table2",
        kind: ArtifactKind::Table,
        section: "3.1",
        title: "Public attributes available",
        description: "fraction of users sharing each of 17 profile fields",
    },
    ExperimentInfo {
        id: "table3",
        kind: ArtifactKind::Table,
        section: "3.2",
        title: "Information shared by all users and tel-users",
        description: "gender / relationship / location mix of phone-sharing users",
    },
    ExperimentInfo {
        id: "table4",
        kind: ArtifactKind::Table,
        section: "3.3.5",
        title: "Topological comparison across OSNs",
        description: "nodes, edges, path length, reciprocity, diameter, degrees",
    },
    ExperimentInfo {
        id: "table5",
        kind: ArtifactKind::Table,
        section: "4.2",
        title: "Occupation of top users per country",
        description: "per-country top-10 occupation codes + Jaccard vs US",
    },
    ExperimentInfo {
        id: "fig2",
        kind: ArtifactKind::Figure,
        section: "3.2",
        title: "Fields shared: tel-users vs all",
        description: "CCDF of profile fields shared, excluding contact fields",
    },
    ExperimentInfo {
        id: "fig3",
        kind: ArtifactKind::Figure,
        section: "3.3.1",
        title: "Degree distributions",
        description: "in/out-degree CCDFs with power-law fits (1.3 / 1.2)",
    },
    ExperimentInfo {
        id: "fig4",
        kind: ArtifactKind::Figure,
        section: "3.3.2-4",
        title: "Reciprocity, clustering, SCC sizes",
        description: "RR CDF, sampled CC CDF, SCC size CCDF",
    },
    ExperimentInfo {
        id: "fig5",
        kind: ArtifactKind::Figure,
        section: "3.3.5",
        title: "Path length distribution",
        description: "adaptive sampled BFS, directed + undirected views",
    },
    ExperimentInfo {
        id: "fig6",
        kind: ArtifactKind::Figure,
        section: "4",
        title: "Top 10 countries",
        description: "located-user shares per country",
    },
    ExperimentInfo {
        id: "fig7",
        kind: ArtifactKind::Figure,
        section: "4.1",
        title: "GDP vs penetration",
        description: "Google+ penetration (Eq. 2) and Internet penetration vs GDP pc",
    },
    ExperimentInfo {
        id: "fig8",
        kind: ArtifactKind::Figure,
        section: "4.3",
        title: "Openness by country",
        description: "CCDF of fields shared per top-10 country",
    },
    ExperimentInfo {
        id: "fig9",
        kind: ArtifactKind::Figure,
        section: "4.4",
        title: "Path miles",
        description: "physical distance CDFs: friends / reciprocal / random",
    },
    ExperimentInfo {
        id: "fig10",
        kind: ArtifactKind::Figure,
        section: "4.5",
        title: "Country link matrix",
        description: "proportion of outgoing links between top-10 countries",
    },
    ExperimentInfo {
        id: "lost_edges",
        kind: ArtifactKind::Methodology,
        section: "2.2",
        title: "Lost-edge estimate",
        description: "edges hidden by the 10,000-entry circle-list cap",
    },
    ExperimentInfo {
        id: "bias",
        kind: ArtifactKind::Methodology,
        section: "2.2",
        title: "BFS sampling bias",
        description: "degree bias of budget-limited BFS vs MHRW",
    },
    ExperimentInfo {
        id: "growth",
        kind: ArtifactKind::Extension,
        section: "7",
        title: "Growth study",
        description: "adoption-phase snapshots, densification, diameter trend",
    },
    ExperimentInfo {
        id: "rankings",
        kind: ArtifactKind::Extension,
        section: "3.1",
        title: "Ranking robustness",
        description: "in-degree vs PageRank top lists",
    },
    ExperimentInfo {
        id: "structure",
        kind: ArtifactKind::Extension,
        section: "5",
        title: "Structural extras",
        description: "assortativity, k-cores, degree Gini across presets",
    },
    ExperimentInfo {
        id: "recommend",
        kind: ArtifactKind::Extension,
        section: "6",
        title: "Recommendation locality",
        description: "FoF recommender domestic fraction per country",
    },
    ExperimentInfo {
        id: "cascade",
        kind: ArtifactKind::Extension,
        section: "3.3",
        title: "Information cascades",
        description: "independent-cascade spread from hubs vs random seeds",
    },
    ExperimentInfo {
        id: "motifs",
        kind: ArtifactKind::Extension,
        section: "3.3",
        title: "Directed-triangle motif census",
        description: "the 7 triangle classes refining reciprocity and clustering",
    },
];

/// The analysis stages [`crate::pipeline::Reproduction`] executes, in
/// report order — the labels the executor stamps on
/// [`crate::pipeline::StageTimings`] entries. Every id resolves in
/// [`ALL_EXPERIMENTS`].
pub const STAGE_IDS: [&str; 15] = [
    "table1", "table2", "table3", "table4", "table5", "fig2", "fig3", "fig4", "fig5", "fig6",
    "fig7", "fig8", "fig9", "fig10", "motifs",
];

/// Looks up an experiment by id.
pub fn find(id: &str) -> Option<&'static ExperimentInfo> {
    ALL_EXPERIMENTS.iter().find(|e| e.id == id)
}

/// Renders the registry as a text table.
pub fn render_index() -> String {
    let mut t = crate::render::TextTable::new("Experiment registry")
        .header(&["Id", "Kind", "Section", "Title"]);
    for e in &ALL_EXPERIMENTS {
        t.row(vec![
            e.id.to_string(),
            format!("{:?}", e.kind),
            format!("§{}", e.section),
            e.title.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_unique_and_findable() {
        let mut ids: Vec<&str> = ALL_EXPERIMENTS.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL_EXPERIMENTS.len());
        for e in &ALL_EXPERIMENTS {
            assert_eq!(find(e.id), Some(e));
        }
        assert_eq!(find("nope"), None);
    }

    #[test]
    fn covers_all_paper_artifacts() {
        let tables = ALL_EXPERIMENTS.iter().filter(|e| e.kind == ArtifactKind::Table).count();
        let figures = ALL_EXPERIMENTS.iter().filter(|e| e.kind == ArtifactKind::Figure).count();
        assert_eq!(tables, 5, "the paper has five tables");
        assert_eq!(figures, 9, "the paper has nine result figures (2-10)");
    }

    #[test]
    fn stage_ids_resolve_in_registry_order() {
        // every pipeline stage is registered; the paper artifacts come
        // first in the registry's paper order, extensions ride at the end
        let registry_ids: Vec<&str> = ALL_EXPERIMENTS
            .iter()
            .filter(|e| matches!(e.kind, ArtifactKind::Table | ArtifactKind::Figure))
            .map(|e| e.id)
            .collect();
        assert_eq!(STAGE_IDS[..registry_ids.len()].to_vec(), registry_ids);
        for (i, id) in STAGE_IDS.iter().enumerate() {
            let info = find(id).unwrap_or_else(|| panic!("unregistered stage {id}"));
            if i >= registry_ids.len() {
                assert_eq!(info.kind, ArtifactKind::Extension, "trailing stage {id}");
            }
        }
    }

    #[test]
    fn index_renders() {
        let s = render_index();
        assert!(s.contains("table1"));
        assert!(s.contains("fig10"));
        assert!(s.contains("growth"));
    }
}
