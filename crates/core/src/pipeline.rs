//! End-to-end reproduction pipeline: generate → serve → crawl → analyse.
//!
//! [`Reproduction::run`] performs the whole study on a synthetic
//! population: it generates the network, stands up the simulated service,
//! runs the paper's bidirectional BFS crawl (§2.2), then executes every
//! table and figure over the *crawled* dataset — the faithful path.
//! [`Reproduction::run_ground_truth`] skips the crawl and analyses the
//! ground truth directly (faster; useful when the crawl itself is not
//! under study).

use crate::dataset::{CrawlDataset, Dataset, GroundTruthDataset};
use crate::experiments::*;
use gplus_crawler::{lost_edges, Crawler, CrawlerConfig, CrawlStats, LostEdgeEstimate};
use gplus_service::{GooglePlusService, ServiceConfig};
use gplus_synth::{SynthConfig, SynthNetwork};
use serde::{Deserialize, Serialize};

/// Configuration of a full reproduction run.
#[derive(Debug, Clone)]
pub struct ReproductionConfig {
    /// Synthetic-network configuration.
    pub synth: SynthConfig,
    /// Simulated-service configuration.
    pub service: ServiceConfig,
    /// Crawler configuration.
    pub crawler: CrawlerConfig,
    /// Figure 3 fit parameters.
    pub fig3: fig3::Fig3Params,
    /// Figure 4 sampling parameters.
    pub fig4: fig4::Fig4Params,
    /// Figure 5 sampling schedule.
    pub fig5: fig5::Fig5Params,
    /// Figure 9 pair budgets.
    pub fig9: fig9::Fig9Params,
    /// Table 4 measurement parameters.
    pub table4: table4::Table4Params,
}

impl ReproductionConfig {
    /// Full-fidelity defaults at the given scale.
    pub fn new(n_users: usize, seed: u64) -> Self {
        Self {
            synth: SynthConfig::google_plus_2011(n_users, seed),
            service: ServiceConfig::default(),
            crawler: CrawlerConfig::default(),
            fig3: fig3::Fig3Params::default(),
            fig4: fig4::Fig4Params::default(),
            fig5: fig5::Fig5Params::default(),
            fig9: fig9::Fig9Params::default(),
            table4: table4::Table4Params::default(),
        }
    }

    /// Reduced sampling budgets for quick runs and CI.
    pub fn quick(n_users: usize, seed: u64) -> Self {
        let mut cfg = Self::new(n_users, seed);
        cfg.fig4.cc_sample = 20_000;
        cfg.fig5 =
            fig5::Fig5Params { k_start: 200, k_step: 200, k_max: 1_000, tol: 0.02, seed };
        cfg.fig9.max_pairs = 50_000;
        cfg.table4.path_samples = 200;
        cfg
    }
}

/// Every computed artifact of one reproduction run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReproductionReport {
    /// Users generated.
    pub n_users: usize,
    /// Whether the analyses ran over a crawl (true) or ground truth.
    pub crawled: bool,
    /// Crawl statistics, when a crawl ran.
    pub crawl_stats: Option<CrawlStats>,
    /// §2.2 lost-edge estimate, when a crawl ran.
    pub lost_edges: Option<LostEdgeEstimate>,
    /// Table 1.
    pub table1: table1::Table1Result,
    /// Table 2.
    pub table2: table2::Table2Result,
    /// Table 3.
    pub table3: table3::Table3Result,
    /// Table 4 (measured Google+ row).
    pub table4: table4::Table4Result,
    /// Table 5.
    pub table5: table5::Table5Result,
    /// Figure 2.
    pub fig2: fig2::Fig2Result,
    /// Figure 3.
    pub fig3: fig3::Fig3Result,
    /// Figure 4.
    pub fig4: fig4::Fig4Result,
    /// Figure 5.
    pub fig5: fig5::Fig5Result,
    /// Figure 6.
    pub fig6: fig6::Fig6Result,
    /// Figure 7.
    pub fig7: fig7::Fig7Result,
    /// Figure 8.
    pub fig8: fig8::Fig8Result,
    /// Figure 9.
    pub fig9: fig9::Fig9Result,
    /// Figure 10.
    pub fig10: fig10::Fig10Result,
}

impl ReproductionReport {
    /// Renders every artifact, paper-ordered.
    pub fn render_all(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "=== Reproduction over {} users ({} analyses) ===\n\n",
            self.n_users,
            if self.crawled { "crawled" } else { "ground-truth" }
        ));
        if let Some(stats) = &self.crawl_stats {
            out.push_str(&format!(
                "crawl: {} profiles, {} users discovered, {} raw edges, {} retries\n",
                stats.profiles_crawled, stats.users_discovered, stats.raw_edges, stats.retries
            ));
        }
        if let Some(est) = &self.lost_edges {
            out.push_str(&format!(
                "lost edges: {} truncated users, {:.2}% lost (paper: 915 users, 1.6%)\n\n",
                est.truncated_users,
                est.lost_fraction * 100.0
            ));
        }
        out.push_str(&table1::render(&self.table1));
        out.push('\n');
        out.push_str(&table2::render(&self.table2));
        out.push('\n');
        out.push_str(&table3::render(&self.table3));
        out.push('\n');
        out.push_str(&table4::render(&self.table4));
        out.push('\n');
        out.push_str(&table5::render(&self.table5));
        out.push('\n');
        out.push_str(&fig2::render(&self.fig2));
        out.push('\n');
        out.push_str(&fig3::render(&self.fig3));
        out.push('\n');
        out.push_str(&fig4::render(&self.fig4));
        out.push('\n');
        out.push_str(&fig5::render(&self.fig5));
        out.push('\n');
        out.push_str(&fig6::render(&self.fig6));
        out.push('\n');
        out.push_str(&fig7::render(&self.fig7));
        out.push('\n');
        out.push_str(&fig8::render(&self.fig8));
        out.push('\n');
        out.push_str(&fig9::render(&self.fig9));
        out.push('\n');
        out.push_str(&fig10::render(&self.fig10));
        out
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }
}

/// The pipeline driver.
pub struct Reproduction;

impl Reproduction {
    /// Full path: generate → serve → crawl → analyse the crawled data.
    pub fn run(config: &ReproductionConfig) -> ReproductionReport {
        let network = SynthNetwork::generate(&config.synth);
        let n_users = network.node_count();
        let service = GooglePlusService::new(network, config.service.clone());
        let crawler = Crawler::new(config.crawler.clone());
        let result = crawler.run(&service);
        let estimate =
            lost_edges::estimate(&result, config.service.circle_list_limit as u64);
        let data = CrawlDataset::new(&result);
        let mut report = Self::analyse(&data, config);
        report.n_users = n_users;
        report.crawled = true;
        report.crawl_stats = Some(result.stats.clone());
        report.lost_edges = Some(estimate);
        report
    }

    /// Fast path: analyse ground truth directly (no service, no crawl).
    pub fn run_ground_truth(config: &ReproductionConfig) -> ReproductionReport {
        let network = SynthNetwork::generate(&config.synth);
        let data = GroundTruthDataset::new(&network);
        let mut report = Self::analyse(&data, config);
        report.n_users = network.node_count();
        report
    }

    fn analyse(data: &impl Dataset, config: &ReproductionConfig) -> ReproductionReport {
        ReproductionReport {
            n_users: 0,
            crawled: false,
            crawl_stats: None,
            lost_edges: None,
            table1: table1::run(data, 20),
            table2: table2::run(data),
            table3: table3::run(data),
            table4: table4::run(data, &config.table4),
            table5: table5::run(data),
            fig2: fig2::run(data),
            fig3: fig3::run(data, &config.fig3),
            fig4: fig4::run(data, &config.fig4),
            fig5: fig5::run(data, &config.fig5),
            fig6: fig6::run(data),
            fig7: fig7::run(data),
            fig8: fig8::run(data),
            fig9: fig9::run(data, &config.fig9),
            fig10: fig10::run(data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_pipeline_produces_full_report() {
        let report =
            Reproduction::run_ground_truth(&ReproductionConfig::quick(15_000, 2012));
        assert_eq!(report.n_users, 15_000);
        assert!(!report.crawled);
        assert!(report.crawl_stats.is_none());
        assert_eq!(report.table1.rows.len(), 20);
        assert_eq!(report.table2.rows.len(), 17);
        let text = report.render_all();
        for needle in ["Table 1", "Table 5", "Figure 4(c)", "Figure 10"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn crawled_pipeline_produces_crawl_artifacts() {
        let mut cfg = ReproductionConfig::quick(8_000, 7);
        cfg.service.failure_rate = 0.01;
        let report = Reproduction::run(&cfg);
        assert!(report.crawled);
        let stats = report.crawl_stats.as_ref().unwrap();
        assert!(stats.profiles_crawled > 7_000);
        assert!(report.lost_edges.is_some());
        // the crawled analyses still recover the headline structure
        assert_eq!(report.table1.rows[0].name, "Larry Page");
        assert!(report.table4.reciprocity > 0.2);
    }

    #[test]
    fn report_serialises_to_json() {
        let report = Reproduction::run_ground_truth(&ReproductionConfig::quick(5_000, 3));
        let json = report.to_json();
        assert!(json.contains("\"table1\""));
        assert!(json.contains("\"fig10\""));
        // round-trips
        let back: ReproductionReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_users, report.n_users);
    }
}
