//! End-to-end reproduction pipeline: generate → serve → crawl → analyse.
//!
//! [`Reproduction::run`] performs the whole study on a synthetic
//! population: it generates the network, stands up the simulated service,
//! runs the paper's bidirectional BFS crawl (§2.2), then executes every
//! table and figure over the *crawled* dataset — the faithful path.
//! [`Reproduction::run_ground_truth`] skips the crawl and analyses the
//! ground truth directly (faster; useful when the crawl itself is not
//! under study).
//!
//! # Execution model and determinism
//!
//! [`Reproduction::analyse`] fans the analysis stages out across threads
//! with rayon, all sharing one [`AnalysisCtx`]. Each stage is internally
//! sequential and seeds its own RNG from the config, so no stage observes
//! another's scheduling — the assembled report is byte-identical to
//! [`Reproduction::analyse_sequential`]'s regardless of thread count or
//! interleaving. Wall-clock per stage is recorded in [`StageTimings`],
//! which is deliberately *excluded* from [`ReproductionReport::to_json`]
//! (timings are nondeterministic); use
//! [`ReproductionReport::to_json_with_timings`] to export them.

use crate::context::{AnalysisCtx, CtxOptions};
use crate::dataset::{CrawlDataset, Dataset, GroundTruthDataset};
use crate::experiments::*;
use crate::registry::STAGE_IDS;
use gplus_crawler::{lost_edges, CrawlStats, Crawler, CrawlerConfig, LostEdgeEstimate};
use gplus_service::{GooglePlusService, ServiceConfig};
use gplus_synth::{SynthConfig, SynthNetwork};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Configuration of a full reproduction run.
#[derive(Debug, Clone)]
pub struct ReproductionConfig {
    /// Synthetic-network configuration.
    pub synth: SynthConfig,
    /// Simulated-service configuration.
    pub service: ServiceConfig,
    /// Crawler configuration.
    pub crawler: CrawlerConfig,
    /// Figure 3 fit parameters.
    pub fig3: fig3::Fig3Params,
    /// Figure 4 sampling parameters.
    pub fig4: fig4::Fig4Params,
    /// Figure 5 sampling schedule.
    pub fig5: fig5::Fig5Params,
    /// Figure 9 pair budgets.
    pub fig9: fig9::Fig9Params,
    /// Table 4 measurement parameters.
    pub table4: table4::Table4Params,
    /// Traversal tuning (relabeling, hybrid switch threshold).
    pub traversal: CtxOptions,
    /// Cross-check the dataset's graph against the `gplus-oracle`
    /// reference kernels and metamorphic invariants before analysing
    /// (`--verify` on the CLI). Panics on any disagreement: a verified
    /// run must not silently produce numbers an unsound kernel computed.
    pub verify: bool,
}

impl ReproductionConfig {
    /// Full-fidelity defaults at the given scale.
    pub fn new(n_users: usize, seed: u64) -> Self {
        Self {
            synth: SynthConfig::google_plus_2011(n_users, seed),
            service: ServiceConfig::default(),
            crawler: CrawlerConfig::default(),
            fig3: fig3::Fig3Params::default(),
            fig4: fig4::Fig4Params::default(),
            fig5: fig5::Fig5Params::default(),
            fig9: fig9::Fig9Params::default(),
            table4: table4::Table4Params::default(),
            traversal: CtxOptions::default(),
            verify: false,
        }
    }

    /// Reduced sampling budgets for quick runs and CI.
    pub fn quick(n_users: usize, seed: u64) -> Self {
        let mut cfg = Self::new(n_users, seed);
        cfg.fig4.cc_sample = 20_000;
        cfg.fig5 =
            fig5::Fig5Params { k_start: 200, k_step: 200, k_max: 1_000, tol: 0.02, seed };
        cfg.fig9.max_pairs = 50_000;
        cfg.table4.path_samples = 200;
        cfg
    }
}

/// Wall-clock of one analysis stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage id, from [`crate::registry::STAGE_IDS`].
    pub id: String,
    /// Stage wall-clock in milliseconds.
    pub millis: f64,
}

/// Wall-clock profile of one [`Reproduction::analyse`] invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Whether the stages ran on the rayon executor (false: sequential).
    pub parallel: bool,
    /// Worker threads available to the executor.
    pub threads: usize,
    /// End-to-end analysis wall-clock in milliseconds.
    pub wall_ms: f64,
    /// Per-stage wall-clock, report order.
    pub stages: Vec<StageTiming>,
}

impl StageTimings {
    /// Summed per-stage wall-clock — the sequential-equivalent cost; its
    /// ratio to `wall_ms` is the executor's effective speedup.
    pub fn stage_total_ms(&self) -> f64 {
        self.stages.iter().map(|s| s.millis).sum()
    }
}

/// Every computed artifact of one reproduction run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReproductionReport {
    /// Users generated.
    pub n_users: usize,
    /// Whether the analyses ran over a crawl (true) or ground truth.
    pub crawled: bool,
    /// Crawl statistics, when a crawl ran.
    pub crawl_stats: Option<CrawlStats>,
    /// §2.2 lost-edge estimate, when a crawl ran.
    pub lost_edges: Option<LostEdgeEstimate>,
    /// Table 1.
    pub table1: table1::Table1Result,
    /// Table 2.
    pub table2: table2::Table2Result,
    /// Table 3.
    pub table3: table3::Table3Result,
    /// Table 4 (measured Google+ row).
    pub table4: table4::Table4Result,
    /// Table 5.
    pub table5: table5::Table5Result,
    /// Figure 2.
    pub fig2: fig2::Fig2Result,
    /// Figure 3.
    pub fig3: fig3::Fig3Result,
    /// Figure 4.
    pub fig4: fig4::Fig4Result,
    /// Figure 5.
    pub fig5: fig5::Fig5Result,
    /// Figure 6.
    pub fig6: fig6::Fig6Result,
    /// Figure 7.
    pub fig7: fig7::Fig7Result,
    /// Figure 8.
    pub fig8: fig8::Fig8Result,
    /// Figure 9.
    pub fig9: fig9::Fig9Result,
    /// Figure 10.
    pub fig10: fig10::Fig10Result,
    /// Motif census extension.
    pub motifs: motifs::MotifsResult,
    /// Wall-clock profile of the analysis stages. Skipped by serde so
    /// [`ReproductionReport::to_json`] stays canonical (timings vary run
    /// to run); exported via [`ReproductionReport::to_json_with_timings`].
    #[serde(skip)]
    pub timings: Option<StageTimings>,
}

impl ReproductionReport {
    /// Renders every artifact, paper-ordered.
    pub fn render_all(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "=== Reproduction over {} users ({} analyses) ===\n\n",
            self.n_users,
            if self.crawled { "crawled" } else { "ground-truth" }
        ));
        if let Some(stats) = &self.crawl_stats {
            out.push_str(&format!(
                "crawl: {} profiles, {} users discovered, {} raw edges, {} retries\n",
                stats.profiles_crawled, stats.users_discovered, stats.raw_edges, stats.retries
            ));
        }
        if let Some(est) = &self.lost_edges {
            out.push_str(&format!(
                "lost edges: {} truncated users, {:.2}% lost (paper: 915 users, 1.6%)\n\n",
                est.truncated_users,
                est.lost_fraction * 100.0
            ));
        }
        out.push_str(&table1::render(&self.table1));
        out.push('\n');
        out.push_str(&table2::render(&self.table2));
        out.push('\n');
        out.push_str(&table3::render(&self.table3));
        out.push('\n');
        out.push_str(&table4::render(&self.table4));
        out.push('\n');
        out.push_str(&table5::render(&self.table5));
        out.push('\n');
        out.push_str(&fig2::render(&self.fig2));
        out.push('\n');
        out.push_str(&fig3::render(&self.fig3));
        out.push('\n');
        out.push_str(&fig4::render(&self.fig4));
        out.push('\n');
        out.push_str(&fig5::render(&self.fig5));
        out.push('\n');
        out.push_str(&fig6::render(&self.fig6));
        out.push('\n');
        out.push_str(&fig7::render(&self.fig7));
        out.push('\n');
        out.push_str(&fig8::render(&self.fig8));
        out.push('\n');
        out.push_str(&fig9::render(&self.fig9));
        out.push('\n');
        out.push_str(&fig10::render(&self.fig10));
        out.push('\n');
        out.push_str(&motifs::render(&self.motifs));
        if let Some(t) = &self.timings {
            out.push('\n');
            out.push_str(&format!(
                "=== Stage timings ({}, {} threads) ===\n",
                if t.parallel { "parallel" } else { "sequential" },
                t.threads
            ));
            for s in &t.stages {
                out.push_str(&format!("{:<8} {:>9.1} ms\n", s.id, s.millis));
            }
            out.push_str(&format!(
                "total {:.1} ms wall ({:.1} ms summed, {:.2}x)\n",
                t.wall_ms,
                t.stage_total_ms(),
                t.stage_total_ms() / t.wall_ms.max(f64::EPSILON)
            ));
        }
        out
    }

    /// Serialises to pretty JSON. Deterministic for a given config: stage
    /// timings are excluded (see [`ReproductionReport::timings`]).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    /// Serialises to pretty JSON with a `stage_timings` section appended —
    /// the observable form written to report files by the CLI.
    pub fn to_json_with_timings(&self) -> String {
        let mut value = serde_json::to_value(self).expect("report serialises");
        if let Some(t) = &self.timings {
            value["stage_timings"] = serde_json::to_value(t).expect("timings serialise");
        }
        serde_json::to_string_pretty(&value).expect("report serialises")
    }
}

/// The pipeline driver.
pub struct Reproduction;

impl Reproduction {
    /// Full path: generate → serve → crawl → analyse the crawled data.
    pub fn run(config: &ReproductionConfig) -> ReproductionReport {
        let network = SynthNetwork::generate(&config.synth);
        let n_users = network.node_count();
        let service = GooglePlusService::new(network, config.service.clone());
        let crawler = Crawler::new(config.crawler.clone());
        let result = crawler.run(&service);
        let estimate = lost_edges::estimate(&result, config.service.circle_list_limit as u64);
        let data = CrawlDataset::new(&result);
        let mut report = Self::analyse(&data, config);
        report.n_users = n_users;
        report.crawled = true;
        report.crawl_stats = Some(result.stats.clone());
        report.lost_edges = Some(estimate);
        report
    }

    /// Fast path: analyse ground truth directly (no service, no crawl).
    pub fn run_ground_truth(config: &ReproductionConfig) -> ReproductionReport {
        let network = SynthNetwork::generate(&config.synth);
        let data = GroundTruthDataset::new(&network);
        let mut report = Self::analyse(&data, config);
        report.n_users = network.node_count();
        report
    }

    /// Executes every analysis stage over one shared [`AnalysisCtx`],
    /// fanned out on the rayon thread pool.
    ///
    /// Heavier stages are spawned first so they overlap the long tail of
    /// cheap ones. Each stage is internally sequential with its own
    /// config-seeded RNG, and the report is assembled in fixed order, so
    /// the output is byte-identical to [`Reproduction::analyse_sequential`]
    /// whatever the scheduling.
    pub fn analyse<D: Dataset>(data: &D, config: &ReproductionConfig) -> ReproductionReport {
        let wall = Instant::now();
        if config.verify {
            Self::verify_dataset(data, config);
        }
        let ctx = &AnalysisCtx::with_options(data, config.traversal);
        let mut t1 = None;
        let mut t2 = None;
        let mut t3 = None;
        let mut t4 = None;
        let mut t5 = None;
        let mut f2 = None;
        let mut f3 = None;
        let mut f4 = None;
        let mut f5 = None;
        let mut f6 = None;
        let mut f7 = None;
        let mut f8 = None;
        let mut f9 = None;
        let mut f10 = None;
        let mut mo = None;
        rayon::scope(|s| {
            // the census walks the whole graph: spawn with the heavy stages
            s.spawn(|_| mo = Some(timed(|| motifs::run_ctx(ctx))));
            s.spawn(|_| f5 = Some(timed(|| fig5::run_ctx(ctx, &config.fig5))));
            s.spawn(|_| f4 = Some(timed(|| fig4::run_ctx(ctx, &config.fig4))));
            s.spawn(|_| f9 = Some(timed(|| fig9::run_ctx(ctx, &config.fig9))));
            s.spawn(|_| t4 = Some(timed(|| table4::run_ctx(ctx, &config.table4))));
            s.spawn(|_| f10 = Some(timed(|| fig10::run_ctx(ctx))));
            s.spawn(|_| t1 = Some(timed(|| table1::run_ctx(ctx, 20))));
            s.spawn(|_| t2 = Some(timed(|| table2::run_ctx(ctx))));
            s.spawn(|_| t3 = Some(timed(|| table3::run_ctx(ctx))));
            s.spawn(|_| t5 = Some(timed(|| table5::run_ctx(ctx))));
            s.spawn(|_| f2 = Some(timed(|| fig2::run_ctx(ctx))));
            s.spawn(|_| f3 = Some(timed(|| fig3::run_ctx(ctx, &config.fig3))));
            s.spawn(|_| f6 = Some(timed(|| fig6::run_ctx(ctx))));
            s.spawn(|_| f7 = Some(timed(|| fig7::run_ctx(ctx))));
            s.spawn(|_| f8 = Some(timed(|| fig8::run_ctx(ctx))));
        });
        Self::assemble(
            true,
            rayon::current_num_threads(),
            wall,
            t1.expect("stage ran"),
            t2.expect("stage ran"),
            t3.expect("stage ran"),
            t4.expect("stage ran"),
            t5.expect("stage ran"),
            f2.expect("stage ran"),
            f3.expect("stage ran"),
            f4.expect("stage ran"),
            f5.expect("stage ran"),
            f6.expect("stage ran"),
            f7.expect("stage ran"),
            f8.expect("stage ran"),
            f9.expect("stage ran"),
            f10.expect("stage ran"),
            mo.expect("stage ran"),
        )
    }

    /// Executes every analysis stage on the calling thread, report order —
    /// the executor's reference implementation for determinism checks and
    /// speedup baselines.
    pub fn analyse_sequential<D: Dataset>(
        data: &D,
        config: &ReproductionConfig,
    ) -> ReproductionReport {
        let wall = Instant::now();
        if config.verify {
            Self::verify_dataset(data, config);
        }
        let ctx = &AnalysisCtx::with_options(data, config.traversal);
        Self::assemble(
            false,
            1,
            wall,
            timed(|| table1::run_ctx(ctx, 20)),
            timed(|| table2::run_ctx(ctx)),
            timed(|| table3::run_ctx(ctx)),
            timed(|| table4::run_ctx(ctx, &config.table4)),
            timed(|| table5::run_ctx(ctx)),
            timed(|| fig2::run_ctx(ctx)),
            timed(|| fig3::run_ctx(ctx, &config.fig3)),
            timed(|| fig4::run_ctx(ctx, &config.fig4)),
            timed(|| fig5::run_ctx(ctx, &config.fig5)),
            timed(|| fig6::run_ctx(ctx)),
            timed(|| fig7::run_ctx(ctx)),
            timed(|| fig8::run_ctx(ctx)),
            timed(|| fig9::run_ctx(ctx, &config.fig9)),
            timed(|| fig10::run_ctx(ctx)),
            timed(|| motifs::run_ctx(ctx)),
        )
    }

    /// Cross-checks the dataset's graph against the oracle: metamorphic
    /// invariants plus the quick differential budget. Runs on a dedicated
    /// large-stack thread (the reference Tarjan is recursive) and panics
    /// with every disagreement if any kernel and its reference diverge —
    /// an analysed report must never be built on an unsound kernel.
    fn verify_dataset<D: Dataset>(data: &D, config: &ReproductionConfig) {
        let g = data.graph();
        let diff = gplus_oracle::DiffConfig::quick(config.synth.seed);
        let problems: Vec<String> = std::thread::scope(|s| {
            std::thread::Builder::new()
                .name("pipeline-verify".into())
                .stack_size(256 << 20)
                .spawn_scoped(s, || {
                    let mut problems = gplus_oracle::invariants::check_graph(g, diff.seed);
                    problems.extend(
                        gplus_oracle::run_all(g, &diff)
                            .into_iter()
                            .map(|m| format!("{}: {}", m.kernel, m.detail)),
                    );
                    problems
                })
                .expect("verify thread spawns")
                .join()
                .expect("verify thread completes")
        });
        assert!(
            problems.is_empty(),
            "--verify found {} kernel/oracle disagreement(s):\n{}",
            problems.len(),
            problems.join("\n")
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        parallel: bool,
        threads: usize,
        wall: Instant,
        table1: (table1::Table1Result, f64),
        table2: (table2::Table2Result, f64),
        table3: (table3::Table3Result, f64),
        table4: (table4::Table4Result, f64),
        table5: (table5::Table5Result, f64),
        fig2: (fig2::Fig2Result, f64),
        fig3: (fig3::Fig3Result, f64),
        fig4: (fig4::Fig4Result, f64),
        fig5: (fig5::Fig5Result, f64),
        fig6: (fig6::Fig6Result, f64),
        fig7: (fig7::Fig7Result, f64),
        fig8: (fig8::Fig8Result, f64),
        fig9: (fig9::Fig9Result, f64),
        fig10: (fig10::Fig10Result, f64),
        motifs: (motifs::MotifsResult, f64),
    ) -> ReproductionReport {
        let stage_ms = [
            table1.1, table2.1, table3.1, table4.1, table5.1, fig2.1, fig3.1, fig4.1, fig5.1,
            fig6.1, fig7.1, fig8.1, fig9.1, fig10.1, motifs.1,
        ];
        let stages: Vec<StageTiming> = STAGE_IDS
            .iter()
            .zip(stage_ms)
            .map(|(&id, millis)| StageTiming { id: id.to_string(), millis })
            .collect();
        let wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;
        let obs = gplus_obs::global();
        for stage in &stages {
            obs.gauge(&format!("pipeline.stage.{}_ms", stage.id)).set(stage.millis);
        }
        obs.counter("pipeline.analyse.runs").inc();
        obs.gauge("pipeline.analyse.wall_ms").set(wall_ms);
        ReproductionReport {
            n_users: 0,
            crawled: false,
            crawl_stats: None,
            lost_edges: None,
            table1: table1.0,
            table2: table2.0,
            table3: table3.0,
            table4: table4.0,
            table5: table5.0,
            fig2: fig2.0,
            fig3: fig3.0,
            fig4: fig4.0,
            fig5: fig5.0,
            fig6: fig6.0,
            fig7: fig7.0,
            fig8: fig8.0,
            fig9: fig9.0,
            fig10: fig10.0,
            motifs: motifs.0,
            timings: Some(StageTimings { parallel, threads, wall_ms, stages }),
        }
    }
}

/// Runs a stage and pairs its result with its wall-clock in milliseconds.
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_pipeline_produces_full_report() {
        let report = Reproduction::run_ground_truth(&ReproductionConfig::quick(15_000, 2012));
        assert_eq!(report.n_users, 15_000);
        assert!(!report.crawled);
        assert!(report.crawl_stats.is_none());
        assert_eq!(report.table1.rows.len(), 20);
        assert_eq!(report.table2.rows.len(), 17);
        let text = report.render_all();
        for needle in ["Table 1", "Table 5", "Figure 4(c)", "Figure 10", "Motif census"] {
            assert!(text.contains(needle), "missing {needle}");
        }
        assert_eq!(report.motifs.totals.iter().sum::<u64>(), report.motifs.triangle_total);
    }

    #[test]
    fn crawled_pipeline_produces_crawl_artifacts() {
        let mut cfg = ReproductionConfig::quick(8_000, 7);
        cfg.service.failure_rate = 0.01;
        let report = Reproduction::run(&cfg);
        assert!(report.crawled);
        let stats = report.crawl_stats.as_ref().unwrap();
        assert!(stats.profiles_crawled > 7_000);
        assert!(report.lost_edges.is_some());
        // the crawled analyses still recover the headline structure
        assert_eq!(report.table1.rows[0].name, "Larry Page");
        assert!(report.table4.reciprocity > 0.2);
    }

    #[test]
    fn report_serialises_to_json() {
        let report = Reproduction::run_ground_truth(&ReproductionConfig::quick(5_000, 3));
        let json = report.to_json();
        assert!(json.contains("\"table1\""));
        assert!(json.contains("\"fig10\""));
        assert!(json.contains("\"motifs\""));
        // timings are runtime profile, not report content
        assert!(!json.contains("stage_timings"));
        // round-trips
        let back: ReproductionReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_users, report.n_users);
        assert!(back.timings.is_none(), "timings must not survive the round-trip");
    }

    #[test]
    fn parallel_executor_matches_sequential_byte_for_byte() {
        let config = ReproductionConfig::quick(6_000, 11);
        let network = SynthNetwork::generate(&config.synth);
        let data = GroundTruthDataset::new(&network);
        let par = Reproduction::analyse(&data, &config);
        let seq = Reproduction::analyse_sequential(&data, &config);
        assert_eq!(par.to_json(), seq.to_json());
        // and a second parallel run reproduces itself
        let par2 = Reproduction::analyse(&data, &config);
        assert_eq!(par.to_json(), par2.to_json());
    }

    #[test]
    fn verified_run_matches_unverified_and_passes_the_oracle() {
        let mut config = ReproductionConfig::quick(2_000, 17);
        config.verify = true;
        let network = SynthNetwork::generate(&config.synth);
        let data = GroundTruthDataset::new(&network);
        let verified = Reproduction::analyse(&data, &config);
        config.verify = false;
        let plain = Reproduction::analyse(&data, &config);
        // verification is a pre-flight check, never a perturbation
        assert_eq!(verified.to_json(), plain.to_json());
    }

    #[test]
    fn stage_timings_cover_every_stage() {
        let config = ReproductionConfig::quick(5_000, 13);
        let network = SynthNetwork::generate(&config.synth);
        let data = GroundTruthDataset::new(&network);
        let report = Reproduction::analyse(&data, &config);
        let timings = report.timings.as_ref().expect("executor records timings");
        assert!(timings.parallel);
        assert!(timings.threads >= 1);
        let ids: Vec<&str> = timings.stages.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids, crate::registry::STAGE_IDS.to_vec());
        for stage in &timings.stages {
            assert!(stage.millis >= 0.0);
        }
        assert!(timings.wall_ms > 0.0);
        // with timings exported, the JSON grows a stage_timings section
        let json = report.to_json_with_timings();
        assert!(json.contains("\"stage_timings\""));
        assert!(json.contains("\"wall_ms\""));
        // render surfaces the profile too
        assert!(report.render_all().contains("Stage timings"));
    }
}
