//! The dataset abstraction the experiments run over.
//!
//! The paper's analyses consume (a) the social graph and (b) the *public*
//! profile data of each user. Both the ground-truth synthetic network and
//! a crawl result can provide that view; experiments are written once
//! against [`Dataset`].

use gplus_crawler::CrawlResult;
use gplus_geo::{Country, LatLon};
use gplus_graph::{CsrGraph, NodeId};
use gplus_profiles::{Attribute, Gender, Occupation, RelationshipStatus};
use gplus_synth::SynthNetwork;

/// Read-only view of a crawled (or ground-truth) Google+ dataset.
///
/// All profile accessors return `None` when the user's profile is unknown
/// (never crawled) or the user withheld the field — exactly the distinction
/// the paper's per-field population counts (Table 2's "Available" column)
/// rest on. Use [`Dataset::profile_known`] to separate the two.
pub trait Dataset: Sync {
    /// The social graph. Node ids index this dataset's own id space.
    fn graph(&self) -> &CsrGraph;

    /// Whether this node's profile page was observed at all.
    fn profile_known(&self, node: NodeId) -> bool;

    /// Display name, if the profile is known (names are always public).
    fn display_name(&self, node: NodeId) -> Option<String>;

    /// Publicly shared gender.
    fn gender(&self, node: NodeId) -> Option<Gender>;

    /// Publicly shared relationship status.
    fn relationship(&self, node: NodeId) -> Option<RelationshipStatus>;

    /// Publicly shared occupation.
    fn occupation(&self, node: NodeId) -> Option<Occupation>;

    /// Country resolved from a shared, geocodable "places lived" field.
    fn country(&self, node: NodeId) -> Option<Country>;

    /// Coordinates under the same conditions as [`Dataset::country`].
    fn location(&self, node: NodeId) -> Option<LatLon>;

    /// Total public fields (Figure 8's count).
    fn fields_shared(&self, node: NodeId) -> Option<u32>;

    /// Public fields excluding work/home contact (Figure 2's count).
    fn fields_shared_excl_contact(&self, node: NodeId) -> Option<u32>;

    /// Whether the user publishes a phone number (§3.2's tel-users).
    fn is_tel_user(&self, node: NodeId) -> Option<bool>;

    /// The full list of publicly shared attributes (Table 2's rows), in
    /// Table-2 order; `None` when the profile is unknown.
    fn public_attribute_list(&self, node: NodeId) -> Option<Vec<Attribute>>;

    /// Number of nodes with known profiles (the paper's "27,556,390
    /// profile pages" as opposed to the graph's 35.1M nodes).
    fn known_profile_count(&self) -> usize {
        self.graph().nodes().filter(|&n| self.profile_known(n)).count()
    }
}

/// Direct view of a synthetic network's ground truth public profiles —
/// what a lossless, complete crawl would have collected.
pub struct GroundTruthDataset<'a> {
    network: &'a SynthNetwork,
}

impl<'a> GroundTruthDataset<'a> {
    /// Wraps a network.
    pub fn new(network: &'a SynthNetwork) -> Self {
        Self { network }
    }

    /// The underlying network.
    pub fn network(&self) -> &SynthNetwork {
        self.network
    }
}

impl Dataset for GroundTruthDataset<'_> {
    fn graph(&self) -> &CsrGraph {
        &self.network.graph
    }

    fn profile_known(&self, _node: NodeId) -> bool {
        true
    }

    fn display_name(&self, node: NodeId) -> Option<String> {
        Some(self.network.population.profile(node).display_name())
    }

    fn gender(&self, node: NodeId) -> Option<Gender> {
        self.network.population.profile(node).public_gender()
    }

    fn relationship(&self, node: NodeId) -> Option<RelationshipStatus> {
        self.network.population.profile(node).public_relationship()
    }

    fn occupation(&self, node: NodeId) -> Option<Occupation> {
        self.network.population.profile(node).public_occupation()
    }

    fn country(&self, node: NodeId) -> Option<Country> {
        self.network.population.profile(node).public_country()
    }

    fn location(&self, node: NodeId) -> Option<LatLon> {
        self.network.population.profile(node).public_location()
    }

    fn fields_shared(&self, node: NodeId) -> Option<u32> {
        Some(self.network.population.profile(node).fields_shared())
    }

    fn fields_shared_excl_contact(&self, node: NodeId) -> Option<u32> {
        Some(self.network.population.profile(node).fields_shared_excl_contact())
    }

    fn is_tel_user(&self, node: NodeId) -> Option<bool> {
        Some(self.network.population.profile(node).is_tel_user())
    }

    fn public_attribute_list(&self, node: NodeId) -> Option<Vec<Attribute>> {
        Some(self.network.population.profile(node).public_attributes())
    }

    fn known_profile_count(&self) -> usize {
        self.network.node_count()
    }
}

/// View over an actual crawl: profile data exists only for crawled users;
/// seen-but-uncrawled nodes contribute graph structure only — the paper's
/// own situation (27.5M profiles, 35.1M graph nodes).
pub struct CrawlDataset<'a> {
    result: &'a CrawlResult,
}

impl<'a> CrawlDataset<'a> {
    /// Wraps a crawl result.
    pub fn new(result: &'a CrawlResult) -> Self {
        Self { result }
    }

    /// The underlying crawl.
    pub fn result(&self) -> &CrawlResult {
        self.result
    }
}

impl Dataset for CrawlDataset<'_> {
    fn graph(&self) -> &CsrGraph {
        &self.result.graph
    }

    fn profile_known(&self, node: NodeId) -> bool {
        self.result.pages.contains_key(&node)
    }

    fn display_name(&self, node: NodeId) -> Option<String> {
        self.result.pages.get(&node).map(|p| p.display_name.clone())
    }

    fn gender(&self, node: NodeId) -> Option<Gender> {
        self.result.pages.get(&node).and_then(|p| p.gender)
    }

    fn relationship(&self, node: NodeId) -> Option<RelationshipStatus> {
        self.result.pages.get(&node).and_then(|p| p.relationship)
    }

    fn occupation(&self, node: NodeId) -> Option<Occupation> {
        self.result.pages.get(&node).and_then(|p| p.occupation)
    }

    fn country(&self, node: NodeId) -> Option<Country> {
        self.result.pages.get(&node).and_then(|p| p.country)
    }

    fn location(&self, node: NodeId) -> Option<LatLon> {
        self.result.pages.get(&node).and_then(|p| p.location)
    }

    fn fields_shared(&self, node: NodeId) -> Option<u32> {
        self.result.pages.get(&node).map(|p| p.fields_shared() as u32)
    }

    fn fields_shared_excl_contact(&self, node: NodeId) -> Option<u32> {
        self.result.pages.get(&node).map(|p| p.fields_shared_excl_contact() as u32)
    }

    fn is_tel_user(&self, node: NodeId) -> Option<bool> {
        self.result.pages.get(&node).map(|p| p.is_tel_user())
    }

    fn public_attribute_list(&self, node: NodeId) -> Option<Vec<Attribute>> {
        self.result.pages.get(&node).map(|p| p.public_attributes.clone())
    }

    fn known_profile_count(&self) -> usize {
        self.result.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_crawler::Crawler;
    use gplus_service::{GooglePlusService, ServiceConfig};
    use gplus_synth::SynthConfig;

    fn network() -> SynthNetwork {
        SynthNetwork::generate(&SynthConfig::google_plus_2011(1_000, 42))
    }

    #[test]
    fn ground_truth_exposes_public_view_only() {
        let net = network();
        let data = GroundTruthDataset::new(&net);
        assert_eq!(data.known_profile_count(), 1_000);
        // node 0 is Larry Page, who withholds location
        assert_eq!(data.display_name(0), Some("Larry Page".to_string()));
        assert_eq!(data.country(0), None);
        // a country celebrity shares location
        assert!(data.country(20).is_some());
        // private (non-shared) fields come back None even though ground
        // truth knows them
        let hidden = net
            .graph
            .nodes()
            .find(|&n| !net.population.profile(n).shares(gplus_profiles::Attribute::Gender))
            .expect("someone hides gender");
        assert_eq!(data.gender(hidden), None);
    }

    #[test]
    fn crawl_dataset_matches_ground_truth_where_crawled() {
        let net = network();
        let svc = GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.0,
                private_list_fraction: 0.0,
                ..Default::default()
            },
        );
        let result = Crawler::paper_setup().run(&svc);
        let data = CrawlDataset::new(&result);
        let truth = GroundTruthDataset::new(svc.ground_truth());
        assert!(data.known_profile_count() > 900);
        for node in result.graph.nodes().take(200) {
            if !data.profile_known(node) {
                continue;
            }
            let user = result.user_of(node) as u32;
            assert_eq!(data.gender(node), truth.gender(user));
            assert_eq!(data.country(node), truth.country(user));
            assert_eq!(data.fields_shared(node), truth.fields_shared(user));
        }
    }

    #[test]
    fn uncrawled_nodes_have_no_profile() {
        let net = network();
        let svc = GooglePlusService::new(
            net,
            ServiceConfig {
                failure_rate: 0.0,
                private_list_fraction: 0.0,
                ..Default::default()
            },
        );
        let crawler = Crawler::new(gplus_crawler::CrawlerConfig {
            max_profiles: Some(50),
            ..Default::default()
        });
        let result = crawler.run(&svc);
        let data = CrawlDataset::new(&result);
        let unknown = result
            .graph
            .nodes()
            .find(|&n| !data.profile_known(n))
            .expect("budgeted crawl leaves uncrawled nodes");
        assert_eq!(data.display_name(unknown), None);
        assert_eq!(data.is_tel_user(unknown), None);
    }
}
