//! Shared, lazily-memoized analysis context.
//!
//! Every experiment in [`crate::experiments`] used to re-derive the same
//! expensive intermediates from the raw [`Dataset`]: degree vectors and
//! their CCDFs, the undirected view of the graph, per-node country
//! assignments, the known-profile node list, the SCC partition, global
//! reciprocity. [`AnalysisCtx`] computes each of them at most once —
//! thread-safely, via [`OnceLock`] — so the whole analysis suite can fan
//! out across cores while sharing one set of intermediates.
//!
//! Each accessor is a pure function of the wrapped dataset, so memoization
//! never changes a result: an experiment run against a fresh context is
//! byte-identical to one run against a warm context, which is what the
//! parallel executor's determinism contract rests on.

use crate::dataset::Dataset;
use gplus_geo::{Country, LatLon};
use gplus_graph::bfs::{TraversalOpts, DEFAULT_HYBRID_THRESHOLD};
use gplus_graph::relabel::Relabeling;
use gplus_graph::scc::SccResult;
use gplus_graph::{reciprocity, scc, CsrGraph, NodeId};
use gplus_stats::Ccdf;
use std::sync::OnceLock;

/// Traversal tuning for one analysis run, settable from the CLI
/// (`--hybrid-threshold`, `--no-relabel`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtxOptions {
    /// Apply the hub-first locality relabeling before path traversals.
    pub relabel: bool,
    /// Frontier-edge fraction at which BFS levels flip to bottom-up.
    pub hybrid_threshold: f64,
}

impl Default for CtxOptions {
    fn default() -> Self {
        Self { relabel: true, hybrid_threshold: DEFAULT_HYBRID_THRESHOLD }
    }
}

/// A graph prepared for traversal-heavy kernels: possibly relabeled for
/// locality, always carrying the [`TraversalOpts`] that make results
/// byte-identical to traversing the public-id graph directly.
#[derive(Debug, Clone, Copy)]
pub struct TraversalView<'g> {
    /// The graph to traverse (relabeled when the run enables it).
    pub graph: &'g CsrGraph,
    /// The id permutation, `None` when relabeling is disabled.
    pub relabeling: Option<&'g Relabeling>,
    /// The run's direction-switch threshold.
    pub hybrid_threshold: f64,
}

impl<'g> TraversalView<'g> {
    /// The tuning bundle the path estimators take.
    pub fn opts(&self) -> TraversalOpts<'g> {
        TraversalOpts {
            hybrid_threshold: self.hybrid_threshold,
            source_map: self.relabeling.map(|r| r.old_to_new()),
        }
    }
}

/// Counters the bench gate requires in every snapshot; registered (at 0)
/// when a context is constructed so they are present even in runs where a
/// kernel path never fires (e.g. `--no-relabel`).
const KERNEL_COUNTERS: &[&str] = &[
    "graph.bfs.batch.runs",
    "graph.bfs.top_down_levels",
    "graph.bfs.bottom_up_levels",
    "graph.relabel.runs",
    gplus_obs::names::GRAPH_MOTIFS_RUNS,
    gplus_obs::names::GRAPH_MOTIFS_TRIANGLES,
];

/// Thread-safe memoization cache over a [`Dataset`].
///
/// Cheap to construct (nothing is computed up front); expensive
/// intermediates materialize on first use and are shared by every
/// subsequent consumer, across threads.
pub struct AnalysisCtx<'a, D: Dataset> {
    data: &'a D,
    opts: CtxOptions,
    in_degrees: OnceLock<Vec<u64>>,
    out_degrees: OnceLock<Vec<u64>>,
    in_ccdf: OnceLock<Ccdf>,
    out_ccdf: OnceLock<Ccdf>,
    undirected: OnceLock<CsrGraph>,
    relabeled: OnceLock<Option<(CsrGraph, Relabeling)>>,
    undirected_relabeled: OnceLock<Option<(CsrGraph, Relabeling)>>,
    countries: OnceLock<Vec<Option<Country>>>,
    locations: OnceLock<Vec<Option<LatLon>>>,
    known_profiles: OnceLock<Vec<NodeId>>,
    country_counts: OnceLock<(Vec<(Country, u64)>, u64)>,
    scc: OnceLock<SccResult>,
    global_reciprocity: OnceLock<f64>,
}

impl<'a, D: Dataset> AnalysisCtx<'a, D> {
    /// Wraps a dataset with default traversal tuning.
    pub fn new(data: &'a D) -> Self {
        Self::with_options(data, CtxOptions::default())
    }

    /// Wraps a dataset with explicit traversal tuning. Nothing is computed
    /// until first use.
    pub fn with_options(data: &'a D, opts: CtxOptions) -> Self {
        let obs = gplus_obs::global();
        for name in KERNEL_COUNTERS {
            let _ = obs.counter(name);
        }
        Self {
            data,
            opts,
            in_degrees: OnceLock::new(),
            out_degrees: OnceLock::new(),
            in_ccdf: OnceLock::new(),
            out_ccdf: OnceLock::new(),
            undirected: OnceLock::new(),
            relabeled: OnceLock::new(),
            undirected_relabeled: OnceLock::new(),
            countries: OnceLock::new(),
            locations: OnceLock::new(),
            known_profiles: OnceLock::new(),
            country_counts: OnceLock::new(),
            scc: OnceLock::new(),
            global_reciprocity: OnceLock::new(),
        }
    }

    /// The run's traversal tuning.
    pub fn options(&self) -> CtxOptions {
        self.opts
    }

    /// The wrapped dataset, for per-node profile accessors.
    pub fn data(&self) -> &'a D {
        self.data
    }

    /// Memoizes through `cell`, counting cache hits and misses into the
    /// global registry (`pipeline.ctx.hit_count` / `pipeline.ctx.miss_count`).
    /// Under a concurrent first use, every racing thread counts a miss even
    /// though only one runs `init` — the counters measure how often callers
    /// found a warm cache, not how many initializations ran.
    fn memo<'s, T>(&self, cell: &'s OnceLock<T>, init: impl FnOnce() -> T) -> &'s T {
        let obs = gplus_obs::global();
        if let Some(v) = cell.get() {
            obs.counter("pipeline.ctx.hit_count").inc();
            return v;
        }
        obs.counter("pipeline.ctx.miss_count").inc();
        cell.get_or_init(init)
    }

    /// The social graph.
    pub fn graph(&self) -> &'a CsrGraph {
        self.data.graph()
    }

    /// In-degree of every node, indexed by node id.
    pub fn in_degrees(&self) -> &[u64] {
        self.memo(&self.in_degrees, || gplus_graph::degree::in_degrees(self.graph())).as_slice()
    }

    /// Out-degree of every node, indexed by node id.
    pub fn out_degrees(&self) -> &[u64] {
        self.memo(&self.out_degrees, || gplus_graph::degree::out_degrees(self.graph()))
            .as_slice()
    }

    /// CCDF of the in-degree sequence (Figure 3's left curve).
    pub fn in_degree_ccdf(&self) -> &Ccdf {
        self.memo(&self.in_ccdf, || Ccdf::from_counts(self.in_degrees()))
    }

    /// CCDF of the out-degree sequence (Figure 3's right curve).
    pub fn out_degree_ccdf(&self) -> &Ccdf {
        self.memo(&self.out_ccdf, || Ccdf::from_counts(self.out_degrees()))
    }

    /// The `k` nodes with largest in-degree, descending, ties broken by
    /// node id ascending — Table 1's ranking, computed from the cached
    /// degree vector with the same ordering contract as
    /// [`gplus_graph::degree::top_by_in_degree`].
    pub fn top_by_in_degree(&self, k: usize) -> Vec<(NodeId, u64)> {
        let mut ranked: Vec<(NodeId, u64)> =
            self.in_degrees().iter().enumerate().map(|(n, &d)| (n as NodeId, d)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// The undirected view of the graph (Figure 5's second panel).
    pub fn undirected_view(&self) -> &CsrGraph {
        self.memo(&self.undirected, || self.graph().undirected_view())
    }

    fn relabeled_pair<'s>(
        &'s self,
        cell: &'s OnceLock<Option<(CsrGraph, Relabeling)>>,
        base: impl FnOnce() -> &'s CsrGraph,
    ) -> Option<&'s (CsrGraph, Relabeling)> {
        let relabel = self.opts.relabel;
        self.memo(cell, || {
            if !relabel {
                return None;
            }
            let g = base();
            let r = Relabeling::degree_descending(g);
            let relabeled = r.apply(g);
            Some((relabeled, r))
        })
        .as_ref()
    }

    /// The directed graph prepared for path traversals: hub-first relabeled
    /// when the run enables it, public-id otherwise. Feeding
    /// [`TraversalView::opts`] into the `_opt` path estimators keeps every
    /// result byte-identical either way.
    pub fn traversal_view(&self) -> TraversalView<'_> {
        match self.relabeled_pair(&self.relabeled, || self.graph()) {
            Some((g, r)) => TraversalView {
                graph: g,
                relabeling: Some(r),
                hybrid_threshold: self.opts.hybrid_threshold,
            },
            None => TraversalView {
                graph: self.graph(),
                relabeling: None,
                hybrid_threshold: self.opts.hybrid_threshold,
            },
        }
    }

    /// [`AnalysisCtx::traversal_view`] over the undirected view.
    pub fn undirected_traversal_view(&self) -> TraversalView<'_> {
        match self.relabeled_pair(&self.undirected_relabeled, || self.undirected_view()) {
            Some((g, r)) => TraversalView {
                graph: g,
                relabeling: Some(r),
                hybrid_threshold: self.opts.hybrid_threshold,
            },
            None => TraversalView {
                graph: self.undirected_view(),
                relabeling: None,
                hybrid_threshold: self.opts.hybrid_threshold,
            },
        }
    }

    /// Per-node country assignment, indexed by node id. `None` for nodes
    /// whose profile is unknown or withholds a geocodable location.
    pub fn countries(&self) -> &[Option<Country>] {
        self.memo(&self.countries, || {
            self.graph().nodes().map(|n| self.data.country(n)).collect::<Vec<_>>()
        })
        .as_slice()
    }

    /// A single node's country, from the cached assignment.
    pub fn country_of(&self, node: NodeId) -> Option<Country> {
        self.countries()[node as usize]
    }

    /// Per-node coordinates, indexed by node id, under the same conditions
    /// as [`AnalysisCtx::countries`].
    pub fn locations(&self) -> &[Option<LatLon>] {
        self.memo(&self.locations, || {
            self.graph().nodes().map(|n| self.data.location(n)).collect::<Vec<_>>()
        })
        .as_slice()
    }

    /// A single node's coordinates, from the cached assignment.
    pub fn location_of(&self, node: NodeId) -> Option<LatLon> {
        self.locations()[node as usize]
    }

    /// Node ids with known profiles, ascending — the paper's 27.5M crawled
    /// pages as opposed to the graph's 35.1M nodes.
    pub fn known_profiles(&self) -> &[NodeId] {
        self.memo(&self.known_profiles, || {
            self.graph().nodes().filter(|&n| self.data.profile_known(n)).collect::<Vec<_>>()
        })
        .as_slice()
    }

    /// Number of nodes with known profiles.
    pub fn known_profile_count(&self) -> usize {
        self.known_profiles().len()
    }

    /// Located users per country, descending by count (ties by country),
    /// plus the total located-user count — Figure 6's raw tally, shared
    /// with Figure 7's penetration analysis.
    pub fn country_counts(&self) -> (&[(Country, u64)], u64) {
        let (counts, located) = self.memo(&self.country_counts, || {
            let mut counts: std::collections::HashMap<Country, u64> =
                std::collections::HashMap::new();
            let mut located = 0u64;
            for c in self.countries().iter().flatten() {
                *counts.entry(*c).or_insert(0) += 1;
                located += 1;
            }
            let mut counts: Vec<(Country, u64)> = counts.into_iter().collect();
            counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            (counts, located)
        });
        (counts.as_slice(), *located)
    }

    /// The SCC partition (Figure 4(c), Table 4), via the paper's two-DFS
    /// Kosaraju scheme.
    pub fn scc(&self) -> &SccResult {
        self.memo(&self.scc, || scc::kosaraju(self.graph()))
    }

    /// Global edge reciprocity (Figure 4(a), Table 4).
    pub fn global_reciprocity(&self) -> f64 {
        *self.memo(&self.global_reciprocity, || reciprocity::global_reciprocity(self.graph()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroundTruthDataset;
    use gplus_graph::degree;
    use gplus_synth::{SynthConfig, SynthNetwork};

    fn net() -> SynthNetwork {
        SynthNetwork::generate(&SynthConfig::google_plus_2011(3_000, 42))
    }

    #[test]
    fn memoized_values_equal_direct_recomputation() {
        let net = net();
        let data = GroundTruthDataset::new(&net);
        let ctx = AnalysisCtx::new(&data);
        let g = data.graph();
        assert_eq!(ctx.in_degrees(), degree::in_degrees(g).as_slice());
        assert_eq!(ctx.out_degrees(), degree::out_degrees(g).as_slice());
        assert_eq!(ctx.in_degree_ccdf(), &degree::in_degree_ccdf(g));
        assert_eq!(ctx.out_degree_ccdf(), &degree::out_degree_ccdf(g));
        assert_eq!(ctx.top_by_in_degree(20), degree::top_by_in_degree(g, 20));
        assert_eq!(ctx.undirected_view(), &g.undirected_view());
        assert_eq!(ctx.scc(), &scc::kosaraju(g));
        assert_eq!(ctx.global_reciprocity(), reciprocity::global_reciprocity(g));
        for n in g.nodes() {
            assert_eq!(ctx.country_of(n), data.country(n));
            assert_eq!(ctx.location_of(n), data.location(n));
        }
        assert_eq!(ctx.known_profile_count(), data.known_profile_count());
    }

    #[test]
    fn accessors_return_the_same_allocation() {
        let net = net();
        let data = GroundTruthDataset::new(&net);
        let ctx = AnalysisCtx::new(&data);
        assert!(std::ptr::eq(ctx.in_degrees(), ctx.in_degrees()));
        assert!(std::ptr::eq(ctx.undirected_view(), ctx.undirected_view()));
        assert!(std::ptr::eq(ctx.countries(), ctx.countries()));
        assert!(std::ptr::eq(ctx.known_profiles(), ctx.known_profiles()));
    }

    #[test]
    fn country_counts_cover_all_located_users() {
        let net = net();
        let data = GroundTruthDataset::new(&net);
        let ctx = AnalysisCtx::new(&data);
        let (counts, located) = ctx.country_counts();
        let sum: u64 = counts.iter().map(|(_, n)| n).sum();
        assert_eq!(sum, located);
        let direct = data.graph().nodes().filter(|&n| data.country(n).is_some()).count();
        assert_eq!(located as usize, direct);
        for w in counts.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn traversal_view_respects_options() {
        let net = net();
        let data = GroundTruthDataset::new(&net);

        let relabeled = AnalysisCtx::new(&data);
        let view = relabeled.traversal_view();
        assert!(view.relabeling.is_some());
        assert!(view.opts().source_map.is_some());
        assert_eq!(view.graph.edge_count(), data.graph().edge_count());
        // views are memoized: same allocation on the second call
        assert!(std::ptr::eq(view.graph, relabeled.traversal_view().graph));
        let uview = relabeled.undirected_traversal_view();
        assert_eq!(uview.graph.edge_count(), relabeled.undirected_view().edge_count());

        let plain = AnalysisCtx::with_options(
            &data,
            CtxOptions { relabel: false, hybrid_threshold: 0.2 },
        );
        let view = plain.traversal_view();
        assert!(view.relabeling.is_none());
        assert!(std::ptr::eq(view.graph, data.graph()));
        assert_eq!(view.hybrid_threshold, 0.2);
        assert!(view.opts().source_map.is_none());
    }

    #[test]
    fn relabeled_traversal_gives_identical_path_distributions() {
        use gplus_graph::paths;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let net = net();
        let data = GroundTruthDataset::new(&net);
        let relabeled = AnalysisCtx::new(&data);
        let plain = AnalysisCtx::with_options(
            &data,
            CtxOptions { relabel: false, ..CtxOptions::default() },
        );
        let mut rng_a = StdRng::seed_from_u64(2012);
        let mut rng_b = StdRng::seed_from_u64(2012);
        let va = relabeled.traversal_view();
        let vb = plain.traversal_view();
        let a = paths::sampled_path_lengths_opt(va.graph, 40, &mut rng_a, va.opts());
        let b = paths::sampled_path_lengths_opt(vb.graph, 40, &mut rng_b, vb.opts());
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_first_use_is_safe_and_consistent() {
        let net = net();
        let data = GroundTruthDataset::new(&net);
        let ctx = AnalysisCtx::new(&data);
        let views: Vec<&CsrGraph> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(|| ctx.undirected_view())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for v in &views {
            assert!(std::ptr::eq(*v, views[0]), "all threads see one allocation");
        }
    }
}
