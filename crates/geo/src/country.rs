//! The paper's focus countries and their circa-2011 statistics.
//!
//! Figure 7 plots twenty countries; Figure 6 and Table 5 use the top ten by
//! Google+ population. The embedded numbers are public historical
//! statistics (late-2011 population, Internet users per
//! internetworldstats.com — the paper's own source — and IMF GDP per capita
//! at purchasing-power parity). They are approximate to the precision such
//! compilations carry; the analyses only need relative rankings.

use crate::distance::LatLon;
use serde::{Deserialize, Serialize};

/// A country in the study: the 20 Figure-7 focus countries plus the
/// explicit "Other" bucket the paper's Table 3 uses (40.50% of located
/// users fall outside the top five).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Country {
    /// United States
    Us,
    /// India
    In,
    /// Brazil
    Br,
    /// United Kingdom
    Gb,
    /// Canada
    Ca,
    /// Germany
    De,
    /// Indonesia
    Id,
    /// Mexico
    Mx,
    /// Italy
    It,
    /// Spain
    Es,
    /// Russia
    Ru,
    /// France
    Fr,
    /// Vietnam
    Vn,
    /// China
    Cn,
    /// Thailand
    Th,
    /// Japan
    Jp,
    /// Taiwan
    Tw,
    /// Argentina
    Ar,
    /// Australia
    Au,
    /// Iran
    Ir,
    /// Everywhere else (aggregated)
    Other,
}

/// Static per-country facts, all circa late 2011.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CountryStats {
    /// Total population.
    pub population: u64,
    /// Internet users (internetworldstats.com-style estimate).
    pub internet_users: u64,
    /// GDP per capita at purchasing-power parity, USD.
    pub gdp_per_capita_ppp: f64,
}

/// The twenty countries of Figure 7, in the paper's Figure 6 order for the
/// first ten (descending Google+ population).
pub const FOCUS_COUNTRIES: [Country; 20] = [
    Country::Us,
    Country::In,
    Country::Br,
    Country::Gb,
    Country::Ca,
    Country::De,
    Country::Id,
    Country::Mx,
    Country::It,
    Country::Es,
    Country::Ru,
    Country::Fr,
    Country::Vn,
    Country::Cn,
    Country::Th,
    Country::Jp,
    Country::Tw,
    Country::Ar,
    Country::Au,
    Country::Ir,
];

/// The top-10 countries of Figure 6 / Table 5 / Figures 8–10, in rank order.
pub const TOP10_COUNTRIES: [Country; 10] = [
    Country::Us,
    Country::In,
    Country::Br,
    Country::Gb,
    Country::Ca,
    Country::De,
    Country::Id,
    Country::Mx,
    Country::It,
    Country::Es,
];

impl Country {
    /// ISO-3166 alpha-2 code (upper case); `"??"` for [`Country::Other`].
    pub fn code(self) -> &'static str {
        match self {
            Country::Us => "US",
            Country::In => "IN",
            Country::Br => "BR",
            Country::Gb => "GB",
            Country::Ca => "CA",
            Country::De => "DE",
            Country::Id => "ID",
            Country::Mx => "MX",
            Country::It => "IT",
            Country::Es => "ES",
            Country::Ru => "RU",
            Country::Fr => "FR",
            Country::Vn => "VN",
            Country::Cn => "CN",
            Country::Th => "TH",
            Country::Jp => "JP",
            Country::Tw => "TW",
            Country::Ar => "AR",
            Country::Au => "AU",
            Country::Ir => "IR",
            Country::Other => "??",
        }
    }

    /// English name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            Country::Us => "United States",
            Country::In => "India",
            Country::Br => "Brazil",
            Country::Gb => "United Kingdom",
            Country::Ca => "Canada",
            Country::De => "Germany",
            Country::Id => "Indonesia",
            Country::Mx => "Mexico",
            Country::It => "Italy",
            Country::Es => "Spain",
            Country::Ru => "Russia",
            Country::Fr => "France",
            Country::Vn => "Vietnam",
            Country::Cn => "China",
            Country::Th => "Thailand",
            Country::Jp => "Japan",
            Country::Tw => "Taiwan",
            Country::Ar => "Argentina",
            Country::Au => "Australia",
            Country::Ir => "Iran",
            Country::Other => "Other",
        }
    }

    /// Parses an ISO alpha-2 code (case-insensitive). Unknown codes map to
    /// `None`; callers deciding to bucket them use [`Country::Other`]
    /// explicitly.
    pub fn from_code(code: &str) -> Option<Country> {
        let up = code.to_ascii_uppercase();
        FOCUS_COUNTRIES.into_iter().find(|c| c.code() == up).or(if up == "??" {
            Some(Country::Other)
        } else {
            None
        })
    }

    /// Geographic centroid (approximate).
    pub fn centroid(self) -> LatLon {
        let (lat, lon) = match self {
            Country::Us => (39.8, -98.6),
            Country::In => (22.0, 79.0),
            Country::Br => (-10.8, -52.9),
            Country::Gb => (54.0, -2.5),
            Country::Ca => (56.1, -106.3),
            Country::De => (51.2, 10.4),
            Country::Id => (-2.5, 118.0),
            Country::Mx => (23.6, -102.5),
            Country::It => (42.8, 12.5),
            Country::Es => (40.2, -3.7),
            Country::Ru => (61.5, 105.3),
            Country::Fr => (46.6, 2.2),
            Country::Vn => (14.1, 108.3),
            Country::Cn => (35.9, 104.2),
            Country::Th => (15.9, 100.9),
            Country::Jp => (36.2, 138.3),
            Country::Tw => (23.7, 121.0),
            Country::Ar => (-38.4, -63.6),
            Country::Au => (-25.3, 133.8),
            Country::Ir => (32.4, 53.7),
            Country::Other => (30.0, 0.0),
        };
        LatLon::new(lat, lon)
    }

    /// Circa-2011 statistics. [`Country::Other`] carries the rest-of-world
    /// aggregate so totals remain meaningful; it is excluded from Figure 7.
    pub fn stats(self) -> CountryStats {
        let (population, internet_users, gdp) = match self {
            Country::Us => (312_000_000, 245_200_000, 49_800.0),
            Country::In => (1_210_000_000, 121_000_000, 3_700.0),
            Country::Br => (196_700_000, 81_800_000, 11_900.0),
            Country::Gb => (62_700_000, 52_700_000, 36_600.0),
            Country::Ca => (34_500_000, 28_500_000, 41_100.0),
            Country::De => (81_800_000, 67_400_000, 38_400.0),
            Country::Id => (242_300_000, 39_600_000, 4_700.0),
            Country::Mx => (114_800_000, 42_000_000, 14_800.0),
            Country::It => (60_800_000, 35_800_000, 30_100.0),
            Country::Es => (46_200_000, 30_600_000, 30_600.0),
            Country::Ru => (142_900_000, 61_500_000, 17_000.0),
            Country::Fr => (65_300_000, 50_300_000, 35_600.0),
            Country::Vn => (87_800_000, 30_900_000, 3_400.0),
            Country::Cn => (1_344_000_000, 513_100_000, 8_400.0),
            Country::Th => (66_700_000, 18_300_000, 9_700.0),
            Country::Jp => (127_800_000, 101_200_000, 34_300.0),
            Country::Tw => (23_200_000, 16_100_000, 38_200.0),
            Country::Ar => (41_000_000, 27_600_000, 17_700.0),
            Country::Au => (22_300_000, 19_900_000, 40_200.0),
            Country::Ir => (74_800_000, 36_500_000, 13_100.0),
            // rest of world, very roughly: 7.0B total minus the above
            Country::Other => (2_600_000_000, 700_000_000, 10_000.0),
        };
        CountryStats { population, internet_users, gdp_per_capita_ppp: gdp }
    }

    /// Whether the country's dominant first language is English — §4.5 ties
    /// self-loop fractions to the language barrier ("the countries that
    /// exhibit self-loop edges greater than 0.50 are those that do not have
    /// English as their first languages ... Indonesia, India, Brazil,
    /// Italy", with the US as the noted exception).
    pub fn english_first_language(self) -> bool {
        matches!(self, Country::Us | Country::Gb | Country::Ca | Country::Au)
    }

    /// All 21 variants including `Other`.
    pub fn all() -> impl Iterator<Item = Country> {
        FOCUS_COUNTRIES.into_iter().chain(std::iter::once(Country::Other))
    }
}

impl std::fmt::Display for Country {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for c in FOCUS_COUNTRIES {
            assert_eq!(Country::from_code(c.code()), Some(c));
            assert_eq!(Country::from_code(&c.code().to_lowercase()), Some(c));
        }
        assert_eq!(Country::from_code("??"), Some(Country::Other));
        assert_eq!(Country::from_code("ZZ"), None);
    }

    #[test]
    fn top10_is_prefix_of_focus() {
        assert_eq!(&FOCUS_COUNTRIES[..10], &TOP10_COUNTRIES[..]);
    }

    #[test]
    fn stats_internally_consistent() {
        for c in Country::all() {
            let s = c.stats();
            assert!(s.internet_users <= s.population, "{c}: more users than people");
            assert!(s.population > 0);
            assert!(s.gdp_per_capita_ppp > 0.0);
        }
    }

    #[test]
    fn internet_penetration_ordering_matches_paper() {
        // Figure 7(b): "The top five countries of Internet penetration are
        // United Kingdom, Germany, Canada, Japan, and Australia" among the
        // focus set; India has the lowest.
        let ipr = |c: Country| {
            let s = c.stats();
            s.internet_users as f64 / s.population as f64
        };
        for high in [Country::Gb, Country::De, Country::Ca, Country::Jp, Country::Au] {
            for low in [Country::In, Country::Id, Country::Vn, Country::Cn] {
                assert!(ipr(high) > ipr(low), "{high} should exceed {low}");
            }
        }
    }

    #[test]
    fn gdp_ipr_roughly_monotone() {
        // Figure 7(b)'s "linear relationship": the four wealthiest focus
        // countries all out-penetrate the four poorest.
        let mut by_gdp: Vec<Country> = FOCUS_COUNTRIES.to_vec();
        by_gdp.sort_by(|a, b| {
            b.stats().gdp_per_capita_ppp.partial_cmp(&a.stats().gdp_per_capita_ppp).unwrap()
        });
        let ipr = |c: Country| {
            let s = c.stats();
            s.internet_users as f64 / s.population as f64
        };
        for &rich in &by_gdp[..4] {
            for &poor in &by_gdp[16..] {
                assert!(ipr(rich) > ipr(poor));
            }
        }
    }

    #[test]
    fn english_flag() {
        assert!(Country::Us.english_first_language());
        assert!(Country::Gb.english_first_language());
        assert!(!Country::Br.english_first_language());
        assert!(!Country::In.english_first_language()); // first language
    }

    #[test]
    fn centroids_in_valid_range() {
        for c in Country::all() {
            let p = c.centroid();
            assert!(p.lat.abs() <= 90.0);
            assert!(p.lon.abs() <= 180.0);
        }
    }

    #[test]
    fn display_is_code() {
        assert_eq!(Country::Us.to_string(), "US");
        assert_eq!(Country::Other.to_string(), "??");
    }

    #[test]
    fn all_yields_21() {
        assert_eq!(Country::all().count(), 21);
    }
}
