//! Great-circle geometry.
//!
//! §4.4 computes the "path mile" — the physical distance between pairs of
//! users — for ~60M linked pairs, ~13M reciprocal pairs and 20M random
//! pairs. Distances on the sphere are computed with the haversine formula
//! in statute miles, the unit of Figures 9(a) and 9(b).

use serde::{Deserialize, Serialize};

/// Mean Earth radius in statute miles.
pub const EARTH_RADIUS_MILES: f64 = 3_958.8;

/// A point on the Earth in decimal degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatLon {
    /// Latitude, degrees in `[-90, 90]`.
    pub lat: f64,
    /// Longitude, degrees in `[-180, 180]`.
    pub lon: f64,
}

impl LatLon {
    /// Creates a coordinate.
    ///
    /// # Panics
    /// Panics if the latitude is outside `[-90, 90]` or the longitude
    /// outside `[-180, 180]`, or either is non-finite.
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!(lat.is_finite() && (-90.0..=90.0).contains(&lat), "invalid latitude {lat}");
        assert!(lon.is_finite() && (-180.0..=180.0).contains(&lon), "invalid longitude {lon}");
        Self { lat, lon }
    }

    /// Distance to `other` in statute miles.
    pub fn distance_miles(self, other: LatLon) -> f64 {
        haversine_miles(self, other)
    }
}

/// Haversine great-circle distance in statute miles.
pub fn haversine_miles(a: LatLon, b: LatLon) -> f64 {
    let lat1 = a.lat.to_radians();
    let lat2 = b.lat.to_radians();
    let dlat = (b.lat - a.lat).to_radians();
    let dlon = (b.lon - a.lon).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    // clamp guards the asin domain against floating-point drift on
    // antipodal points
    2.0 * EARTH_RADIUS_MILES * h.sqrt().min(1.0).asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nyc() -> LatLon {
        LatLon::new(40.7128, -74.0060)
    }
    fn london() -> LatLon {
        LatLon::new(51.5074, -0.1278)
    }
    fn sydney() -> LatLon {
        LatLon::new(-33.8688, 151.2093)
    }

    #[test]
    fn zero_distance_to_self() {
        assert_eq!(haversine_miles(nyc(), nyc()), 0.0);
    }

    #[test]
    fn symmetric() {
        assert!(
            (haversine_miles(nyc(), london()) - haversine_miles(london(), nyc())).abs() < 1e-9
        );
    }

    #[test]
    fn known_distances() {
        // NYC–London ≈ 3,461 mi; NYC–Sydney ≈ 9,934 mi (great-circle)
        let d1 = haversine_miles(nyc(), london());
        assert!((d1 - 3461.0).abs() < 40.0, "NYC-London got {d1}");
        let d2 = haversine_miles(nyc(), sydney());
        assert!((d2 - 9934.0).abs() < 100.0, "NYC-Sydney got {d2}");
    }

    #[test]
    fn triangle_inequality() {
        let ab = haversine_miles(nyc(), london());
        let bc = haversine_miles(london(), sydney());
        let ac = haversine_miles(nyc(), sydney());
        assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let a = LatLon::new(0.0, 0.0);
        let b = LatLon::new(0.0, 180.0);
        let d = haversine_miles(a, b);
        let half = std::f64::consts::PI * EARTH_RADIUS_MILES;
        assert!((d - half).abs() < 1.0);
    }

    #[test]
    fn poles() {
        let n = LatLon::new(90.0, 0.0);
        let s = LatLon::new(-90.0, 77.0); // longitude irrelevant at poles
        let d = haversine_miles(n, s);
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_MILES).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid latitude")]
    fn rejects_bad_latitude() {
        let _ = LatLon::new(91.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid longitude")]
    fn rejects_bad_longitude() {
        let _ = LatLon::new(0.0, 200.0);
    }
}
