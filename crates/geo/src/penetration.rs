//! Penetration-rate calculations for Figure 7.
//!
//! Eq. 2 of the paper:
//!
//! ```text
//! GPR(C) = number of users in our dataset living in C / Internet population of C
//! ```
//!
//! The paper stresses that GPR "is meaningful only for the relative ranking
//! of different countries" because the dataset is a sample and only ~27% of
//! users expose a location. The IPR (Internet penetration rate) is the
//! standard `internet users / population` ratio used for Figure 7(b).

use crate::country::Country;

/// Google+ Penetration Rate per Eq. 2, as a fraction of the country's
/// Internet population.
///
/// `users_living_in_c` is the count of dataset users whose last "places
/// lived" entry resolves to the country.
pub fn gplus_penetration_rate(country: Country, users_living_in_c: u64) -> f64 {
    let internet = country.stats().internet_users;
    if internet == 0 {
        0.0
    } else {
        users_living_in_c as f64 / internet as f64
    }
}

/// Internet Penetration Rate: Internet users / population.
pub fn internet_penetration_rate(country: Country) -> f64 {
    let s = country.stats();
    if s.population == 0 {
        0.0
    } else {
        s.internet_users as f64 / s.population as f64
    }
}

/// One row of Figure 7: a country with its GDP per capita and both rates.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PenetrationPoint {
    /// Country.
    pub country: Country,
    /// GDP per capita (PPP), USD — the X axis of both panels.
    pub gdp_per_capita: f64,
    /// Google+ penetration (Eq. 2) — the Y axis of panel (a).
    pub gpr: f64,
    /// Internet penetration — the Y axis of panel (b).
    pub ipr: f64,
}

/// Builds the Figure-7 point set from per-country user counts.
pub fn penetration_points(user_counts: &[(Country, u64)]) -> Vec<PenetrationPoint> {
    user_counts
        .iter()
        .filter(|(c, _)| *c != Country::Other)
        .map(|&(c, n)| PenetrationPoint {
            country: c,
            gdp_per_capita: c.stats().gdp_per_capita_ppp,
            gpr: gplus_penetration_rate(c, n),
            ipr: internet_penetration_rate(c),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_definition() {
        let internet = Country::Br.stats().internet_users;
        let gpr = gplus_penetration_rate(Country::Br, internet / 100);
        assert!((gpr - 0.01).abs() < 1e-6);
    }

    #[test]
    fn gpr_zero_users() {
        assert_eq!(gplus_penetration_rate(Country::Jp, 0), 0.0);
    }

    #[test]
    fn ipr_matches_stats() {
        let s = Country::Gb.stats();
        let expected = s.internet_users as f64 / s.population as f64;
        assert_eq!(internet_penetration_rate(Country::Gb), expected);
        assert!(expected > 0.8, "UK IPR in 2011 exceeded 80%");
    }

    #[test]
    fn india_gpr_can_top_ranking_despite_low_ipr() {
        // §4.1: "The top country in Google+ adoption now becomes India" —
        // with the paper's own located-user counts (Table 3), India's GPR
        // outranks the US despite India's far lower IPR.
        let us_users = 2_078_000; // ≈ 31.38% of 6.62M located users
        let in_users = 1_106_000; // ≈ 16.71%
        let gpr_us = gplus_penetration_rate(Country::Us, us_users);
        let gpr_in = gplus_penetration_rate(Country::In, in_users);
        assert!(gpr_in > gpr_us, "IN {gpr_in} should exceed US {gpr_us}");
        assert!(
            internet_penetration_rate(Country::In) < internet_penetration_rate(Country::Us)
        );
    }

    #[test]
    fn points_exclude_other() {
        let pts = penetration_points(&[(Country::Us, 100), (Country::Other, 100)]);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].country, Country::Us);
        assert!(pts[0].gdp_per_capita > 0.0);
    }
}
