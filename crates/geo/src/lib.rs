//! Geography substrate for the Google+ IMC'12 reproduction.
//!
//! Section 4 of the paper turns the "places lived" profile field into
//! country-level and distance-level analyses: the top-10 country ranking
//! (Figure 6), Google+ penetration rate vs. GDP per capita (Figure 7, via
//! Eq. 2 and internetworldstats.com data), "path miles" between linked
//! users (Figure 9, haversine over profile coordinates), and the
//! country-to-country link matrix (Figure 10).
//!
//! This crate provides the facts and geometry those analyses need:
//!
//! * [`Country`] — the paper's 20 focus countries plus an explicit
//!   [`Country::Other`] bucket, with circa-2011 population, Internet-user
//!   counts and GDP per capita (PPP) embedded as static data (these are
//!   public historical statistics, not crawl data; see DESIGN.md).
//! * [`LatLon`] / [`haversine_miles`] — great-circle distance in miles, the
//!   paper's unit for "path miles".
//! * [`gazetteer`] — a small city database used by the profile generator to
//!   place users at realistic coordinates inside their country, standing in
//!   for Google's geocoding of the free-text "places lived" field.
//! * [`penetration`] — Google+ Penetration Rate (Eq. 2) and Internet
//!   Penetration Rate calculations.

pub mod country;
pub mod distance;
pub mod gazetteer;
pub mod geocode;
pub mod penetration;

pub use country::{Country, CountryStats, FOCUS_COUNTRIES, TOP10_COUNTRIES};
pub use distance::{haversine_miles, LatLon};
pub use gazetteer::{cities_of, City};
pub use geocode::{format_place, geocode, Geocoded};
pub use penetration::{gplus_penetration_rate, internet_penetration_rate};
