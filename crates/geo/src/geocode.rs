//! Free-text geocoding over the gazetteer.
//!
//! §3.1: the "places lived" field is free text — "a user can write the
//! name of any place she lived and the Google+ system automatically tries
//! to mark the place on the map". This module is our stand-in for that
//! resolver: it normalises messy user input (case, punctuation,
//! diacritic-less spellings, common aliases like "NYC") and matches it
//! against the [`crate::gazetteer`], optionally disambiguating with a
//! country hint ("Paris, France").
//!
//! The profile generator emits realistic text variants of each user's home
//! city; the geocoder resolves ~90% of them (the paper located 6.62M of
//! the 7.37M users sharing the field — an ~90% hit rate).

use crate::country::Country;
use crate::gazetteer::{cities_of, City};
use std::collections::HashMap;
use std::sync::OnceLock;

/// A successful geocode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geocoded {
    /// Resolved country.
    pub country: Country,
    /// Resolved city (a gazetteer entry).
    pub city: &'static City,
    /// Index of the city within its country's gazetteer list.
    pub city_index: usize,
}

/// Normalises free text for matching: lower-case, common Latin
/// diacritics folded to ASCII, alphanumeric words only, single spaces.
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut last_space = true;
    for c in text.chars() {
        let c = fold_diacritic(c.to_lowercase().next().unwrap_or(c));
        if c.is_alphanumeric() {
            out.push(c);
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    out.trim_end().to_string()
}

/// Folds the Latin diacritics that appear in our gazetteer's languages.
fn fold_diacritic(c: char) -> char {
    match c {
        'á' | 'à' | 'â' | 'ã' | 'ä' | 'å' => 'a',
        'é' | 'è' | 'ê' | 'ë' => 'e',
        'í' | 'ì' | 'î' | 'ï' => 'i',
        'ó' | 'ò' | 'ô' | 'õ' | 'ö' => 'o',
        'ú' | 'ù' | 'û' | 'ü' => 'u',
        'ç' => 'c',
        'ñ' => 'n',
        'ß' => 's',
        other => other,
    }
}

/// Common alias → canonical city name (normalised forms).
fn resolve_alias(norm: &str) -> Option<&'static str> {
    Some(match norm {
        "nyc" | "new york city" | "big apple" => "new york",
        "la" | "los angles" => "los angeles",
        "sf" | "san fran" | "frisco" => "san francisco",
        "bombay" => "mumbai",
        "bengaluru" => "bangalore",
        "calcutta" => "kolkata",
        "new delhi" => "delhi",
        "sampa" => "sao paulo",
        "rio" => "rio de janeiro",
        "bh" | "belo horizonte mg" => "belo horizonte",
        "london uk" | "london england" => "london",
        "muenchen" | "munchen" => "munich",
        "koeln" | "koln" => "cologne",
        "frankfurt am main" => "frankfurt",
        "cdmx" | "ciudad de mexico" | "mexico df" | "df" => "mexico city",
        "roma" => "rome",
        "milano" => "milan",
        "napoli" => "naples",
        "torino" => "turin",
        "moskva" => "moscow",
        "st petersburg" | "sankt peterburg" | "saint petersburg russia" => "saint petersburg",
        "hcmc" | "saigon" | "ho chi minh" => "ho chi minh city",
        "peking" => "beijing",
        "krung thep" => "bangkok",
        "tokio" => "tokyo",
        "taipei city" => "taipei",
        "buenos aires argentina" => "buenos aires",
        "sydney australia" => "sydney",
        _ => return None,
    })
}

/// Prebuilt lookup structures (the geocoder runs once per generated
/// profile, so per-call normalisation of the whole gazetteer would
/// dominate population generation).
struct GeoIndex {
    /// normalised city name -> (country, city index); global ambiguity
    /// resolved to the most populous entry at build time.
    cities: HashMap<String, (Country, usize)>,
    /// (normalised country name or code, country), longest names first so
    /// suffix stripping prefers "united states" over a shorter collision.
    country_suffixes: Vec<(String, Country)>,
}

fn index() -> &'static GeoIndex {
    static INDEX: OnceLock<GeoIndex> = OnceLock::new();
    INDEX.get_or_init(|| {
        let mut cities: HashMap<String, (Country, usize, f64)> = HashMap::new();
        for country in Country::all() {
            for (idx, city) in cities_of(country).iter().enumerate() {
                let key = normalize(city.name);
                match cities.get(&key) {
                    Some(&(_, _, w)) if w >= city.weight => {}
                    _ => {
                        cities.insert(key, (country, idx, city.weight));
                    }
                }
            }
        }
        let mut country_suffixes = Vec::new();
        for c in Country::all() {
            if c == Country::Other {
                continue;
            }
            country_suffixes.push((normalize(c.name()), c));
            country_suffixes.push((format!(" {}", c.code().to_ascii_lowercase()), c));
        }
        country_suffixes.sort_by(|a, b| b.0.len().cmp(&a.0.len()));
        GeoIndex {
            cities: cities.into_iter().map(|(k, (c, i, _))| (k, (c, i))).collect(),
            country_suffixes,
        }
    })
}

/// Parses a trailing country mention out of "city, country"-shaped text.
/// Accepts country names and alpha-2 codes.
fn country_hint(norm: &str) -> Option<(Country, String)> {
    for (suffix, c) in &index().country_suffixes {
        if let Some(prefix) = norm.strip_suffix(suffix.as_str()) {
            let city = prefix.trim_end().to_string();
            if !city.is_empty() {
                return Some((*c, city));
            }
        }
    }
    None
}

/// Geocodes free text. Resolution order:
/// 1. normalise and strip a trailing country mention if present;
/// 2. resolve aliases;
/// 3. exact city-name match (within the hinted country, or globally —
///    ambiguous global names resolve to the most populous match, like real
///    geocoders do).
///
/// Returns `None` when nothing matches — the paper's unlocatable ~10%.
pub fn geocode(text: &str) -> Option<Geocoded> {
    let norm = normalize(text);
    if norm.is_empty() {
        return None;
    }
    let (hint, city_text) = match country_hint(&norm) {
        Some((c, rest)) => (Some(c), rest),
        None => (None, norm),
    };
    let canonical = resolve_alias(&city_text).map(str::to_string).unwrap_or(city_text);

    match hint {
        // with a country hint, match only inside that country
        Some(country) => cities_of(country)
            .iter()
            .enumerate()
            .find(|(_, city)| normalize(city.name) == canonical)
            .map(|(idx, city)| Geocoded { country, city, city_index: idx }),
        // globally: the prebuilt index already resolved ambiguity by
        // population
        None => index().cities.get(&canonical).map(|&(country, idx)| Geocoded {
            country,
            city: &cities_of(country)[idx],
            city_index: idx,
        }),
    }
}

/// Renders a user's place as free text in one of several real-world
/// styles, selected by `style` (callers hash something stable into it).
/// Style 7 produces deliberately unresolvable junk, approximating the
/// paper's ~10% geocoding-failure mass together with styles the resolver
/// cannot handle.
pub fn format_place(city: &City, country: Country, style: u8) -> String {
    match style % 8 {
        0 => city.name.to_string(),
        1 => format!("{}, {}", city.name, country.name()),
        2 => city.name.to_ascii_lowercase(),
        3 => format!("{} {}", city.name.to_ascii_uppercase(), country.code()),
        4 => format!("  {} , {} ", city.name, country.name()),
        5 => format!("{}, {}", city.name, country.code()),
        6 => city.name.replace(' ', "-"),
        _ => format!("somewhere near {}", &city.name[..city.name.len().min(3)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_strips_noise() {
        assert_eq!(normalize("  New   York!!  "), "new york");
        assert_eq!(normalize("São-Paulo"), "sao paulo");
        assert_eq!(normalize("LONDON"), "london");
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn exact_names_resolve() {
        let g = geocode("New York").expect("resolves");
        assert_eq!(g.country, Country::Us);
        assert_eq!(g.city.name, "New York");
        let g = geocode("jakarta").expect("resolves");
        assert_eq!(g.country, Country::Id);
    }

    #[test]
    fn aliases_resolve() {
        assert_eq!(geocode("NYC").unwrap().city.name, "New York");
        assert_eq!(geocode("Bombay").unwrap().city.name, "Mumbai");
        assert_eq!(geocode("saigon").unwrap().city.name, "Ho Chi Minh City");
        assert_eq!(geocode("CDMX").unwrap().city.name, "Mexico City");
        assert_eq!(geocode("Milano").unwrap().country, Country::It);
    }

    #[test]
    fn country_suffix_disambiguates() {
        let g = geocode("London, United Kingdom").unwrap();
        assert_eq!(g.country, Country::Gb);
        let g2 = geocode("Berlin DE").unwrap();
        assert_eq!(g2.country, Country::De);
        assert_eq!(g2.city.name, "Berlin");
    }

    #[test]
    fn junk_fails() {
        assert!(geocode("").is_none());
        assert!(geocode("!!!").is_none());
        assert!(geocode("atlantis").is_none());
        assert!(geocode("somewhere near Tok").is_none());
    }

    #[test]
    fn all_formats_except_junk_round_trip() {
        for country in Country::all() {
            if country == Country::Other {
                continue;
            }
            for (idx, city) in cities_of(country).iter().enumerate() {
                for style in 0..7u8 {
                    let text = format_place(city, country, style);
                    let resolved = geocode(&text);
                    // style 6 ("City-Name") resolves for single-word names
                    // only; everything else must resolve
                    if style == 6 && city.name.contains(' ') {
                        continue;
                    }
                    let Some(g) = resolved else {
                        panic!("style {style} of {:?} failed: {text:?}", city.name)
                    };
                    // global ambiguity may pick another country's same-named
                    // city only when no hint is present; our gazetteer has
                    // unique names, so the round trip must be exact
                    assert_eq!(g.city.name, city.name, "style {style}: {text:?}");
                    assert_eq!(g.country, country, "style {style}: {text:?}");
                    assert_eq!(g.city_index, idx);
                }
            }
        }
    }

    #[test]
    fn junk_style_never_resolves() {
        for country in [Country::Us, Country::In, Country::Jp] {
            for city in cities_of(country) {
                let text = format_place(city, country, 7);
                assert!(geocode(&text).is_none(), "junk resolved: {text:?}");
            }
        }
    }

    #[test]
    fn city_names_globally_unique_in_gazetteer() {
        // the round-trip guarantee above rests on this
        let mut names = Vec::new();
        for c in Country::all() {
            for city in cities_of(c) {
                names.push(normalize(city.name));
            }
        }
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate city name across countries");
    }
}
