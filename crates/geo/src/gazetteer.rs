//! A compact city gazetteer.
//!
//! In the real system, Google geocoded the free-text "places lived" field
//! ("the Google+ system automatically tries to mark the place on the map",
//! §3.1). Our substitute is a static gazetteer of major cities per focus
//! country with approximate coordinates and population weights; the profile
//! generator samples a home city from it, which is what gives the path-mile
//! analysis (Figure 9) realistic intra-country distance structure.

use crate::country::Country;
use crate::distance::LatLon;

/// One gazetteer entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct City {
    /// City name.
    pub name: &'static str,
    /// Coordinates.
    pub location: LatLon,
    /// Relative sampling weight (roughly metro population, millions).
    pub weight: f64,
}

const fn city(name: &'static str, lat: f64, lon: f64, weight: f64) -> City {
    City { name, location: LatLon { lat, lon }, weight }
}

macro_rules! cities {
    ($($name:literal @ $lat:literal, $lon:literal, $w:literal);* $(;)?) => {{
        const LIST: &[City] = &[$(city($name, $lat, $lon, $w)),*];
        LIST
    }};
}

/// The cities of a country, each with coordinates and a sampling weight.
/// Every country has at least three entries so intra-country distances are
/// non-degenerate.
pub fn cities_of(country: Country) -> &'static [City] {
    match country {
        Country::Us => cities![
            "New York" @ 40.71, -74.01, 19.0;
            "Los Angeles" @ 34.05, -118.24, 13.0;
            "Chicago" @ 41.88, -87.63, 9.5;
            "Houston" @ 29.76, -95.37, 6.1;
            "San Francisco" @ 37.77, -122.42, 4.5;
            "Seattle" @ 47.61, -122.33, 3.5;
            "Miami" @ 25.76, -80.19, 5.7;
            "Boston" @ 42.36, -71.06, 4.6;
        ],
        Country::In => cities![
            "Mumbai" @ 19.08, 72.88, 20.7;
            "Delhi" @ 28.61, 77.21, 21.7;
            "Bangalore" @ 12.97, 77.59, 8.5;
            "Hyderabad" @ 17.39, 78.49, 7.7;
            "Chennai" @ 13.08, 80.27, 8.7;
            "Kolkata" @ 22.57, 88.36, 14.1;
        ],
        Country::Br => cities![
            "Sao Paulo" @ -23.55, -46.63, 19.9;
            "Rio de Janeiro" @ -22.91, -43.17, 12.0;
            "Belo Horizonte" @ -19.92, -43.94, 5.4;
            "Brasilia" @ -15.79, -47.88, 3.7;
            "Porto Alegre" @ -30.03, -51.23, 4.0;
            "Recife" @ -8.05, -34.88, 3.7;
        ],
        Country::Gb => cities![
            "London" @ 51.51, -0.13, 13.6;
            "Manchester" @ 53.48, -2.24, 2.6;
            "Birmingham" @ 52.49, -1.89, 2.4;
            "Glasgow" @ 55.86, -4.25, 1.2;
            "Leeds" @ 53.80, -1.55, 0.8;
        ],
        Country::Ca => cities![
            "Toronto" @ 43.65, -79.38, 5.9;
            "Montreal" @ 45.50, -73.57, 3.9;
            "Vancouver" @ 49.28, -123.12, 2.4;
            "Calgary" @ 51.05, -114.07, 1.2;
            "Ottawa" @ 45.42, -75.70, 1.2;
        ],
        Country::De => cities![
            "Berlin" @ 52.52, 13.41, 4.4;
            "Hamburg" @ 53.55, 9.99, 3.1;
            "Munich" @ 48.14, 11.58, 2.6;
            "Cologne" @ 50.94, 6.96, 2.0;
            "Frankfurt" @ 50.11, 8.68, 2.3;
        ],
        Country::Id => cities![
            "Jakarta" @ -6.21, 106.85, 28.0;
            "Surabaya" @ -7.25, 112.75, 5.6;
            "Bandung" @ -6.92, 107.61, 6.9;
            "Medan" @ 3.59, 98.67, 4.1;
            "Makassar" @ -5.15, 119.43, 1.4;
        ],
        Country::Mx => cities![
            "Mexico City" @ 19.43, -99.13, 20.4;
            "Guadalajara" @ 20.66, -103.35, 4.4;
            "Monterrey" @ 25.69, -100.32, 4.1;
            "Puebla" @ 19.04, -98.21, 2.7;
            "Tijuana" @ 32.51, -117.04, 1.8;
        ],
        Country::It => cities![
            "Rome" @ 41.90, 12.50, 4.3;
            "Milan" @ 45.46, 9.19, 5.2;
            "Naples" @ 40.85, 14.27, 3.1;
            "Turin" @ 45.07, 7.69, 1.7;
            "Palermo" @ 38.12, 13.36, 1.2;
        ],
        Country::Es => cities![
            "Madrid" @ 40.42, -3.70, 6.5;
            "Barcelona" @ 41.39, 2.17, 5.4;
            "Valencia" @ 39.47, -0.38, 1.7;
            "Seville" @ 37.39, -5.99, 1.5;
            "Bilbao" @ 43.26, -2.93, 1.0;
        ],
        Country::Ru => cities![
            "Moscow" @ 55.76, 37.62, 11.9;
            "Saint Petersburg" @ 59.93, 30.34, 5.0;
            "Novosibirsk" @ 55.03, 82.92, 1.5;
            "Yekaterinburg" @ 56.84, 60.61, 1.4;
            "Vladivostok" @ 43.12, 131.89, 0.6;
        ],
        Country::Fr => cities![
            "Paris" @ 48.86, 2.35, 12.2;
            "Lyon" @ 45.76, 4.84, 2.2;
            "Marseille" @ 43.30, 5.37, 1.7;
            "Toulouse" @ 43.60, 1.44, 1.3;
            "Lille" @ 50.63, 3.06, 1.2;
        ],
        Country::Vn => cities![
            "Ho Chi Minh City" @ 10.82, 106.63, 7.4;
            "Hanoi" @ 21.03, 105.85, 6.6;
            "Da Nang" @ 16.05, 108.21, 1.0;
            "Can Tho" @ 10.05, 105.75, 1.2;
        ],
        Country::Cn => cities![
            "Shanghai" @ 31.23, 121.47, 23.0;
            "Beijing" @ 39.90, 116.41, 19.6;
            "Guangzhou" @ 23.13, 113.26, 12.7;
            "Shenzhen" @ 22.54, 114.06, 10.4;
            "Chengdu" @ 30.57, 104.07, 7.7;
        ],
        Country::Th => cities![
            "Bangkok" @ 13.76, 100.50, 14.6;
            "Chiang Mai" @ 18.79, 98.98, 1.0;
            "Khon Kaen" @ 16.43, 102.84, 0.4;
            "Hat Yai" @ 7.01, 100.47, 0.8;
        ],
        Country::Jp => cities![
            "Tokyo" @ 35.68, 139.69, 37.2;
            "Osaka" @ 34.69, 135.50, 19.3;
            "Nagoya" @ 35.18, 136.91, 9.1;
            "Sapporo" @ 43.06, 141.35, 2.6;
            "Fukuoka" @ 33.59, 130.40, 5.5;
        ],
        Country::Tw => cities![
            "Taipei" @ 25.03, 121.57, 7.0;
            "Kaohsiung" @ 22.63, 120.30, 2.8;
            "Taichung" @ 24.15, 120.67, 2.7;
            "Tainan" @ 22.99, 120.21, 1.9;
        ],
        Country::Ar => cities![
            "Buenos Aires" @ -34.60, -58.38, 13.6;
            "Cordoba" @ -31.42, -64.18, 1.5;
            "Rosario" @ -32.94, -60.65, 1.3;
            "Mendoza" @ -32.89, -68.84, 1.0;
        ],
        Country::Au => cities![
            "Sydney" @ -33.87, 151.21, 4.6;
            "Melbourne" @ -37.81, 144.96, 4.1;
            "Brisbane" @ -27.47, 153.03, 2.1;
            "Perth" @ -31.95, 115.86, 1.7;
            "Adelaide" @ -34.93, 138.60, 1.2;
        ],
        Country::Ir => cities![
            "Tehran" @ 35.69, 51.39, 12.2;
            "Mashhad" @ 36.26, 59.62, 2.8;
            "Isfahan" @ 32.65, 51.67, 1.8;
            "Shiraz" @ 29.59, 52.58, 1.5;
        ],
        // rest-of-world placeholder cities spanning the remaining regions
        Country::Other => cities![
            "Lagos" @ 6.52, 3.38, 13.0;
            "Cairo" @ 30.04, 31.24, 18.4;
            "Istanbul" @ 41.01, 28.98, 13.5;
            "Karachi" @ 24.86, 67.01, 16.6;
            "Manila" @ 14.60, 120.98, 12.9;
            "Seoul" @ 37.57, 126.98, 25.6;
            "Lima" @ -12.05, -77.04, 9.8;
            "Nairobi" @ -1.29, 36.82, 3.4;
            "Warsaw" @ 52.23, 21.01, 3.1;
            "Amsterdam" @ 52.37, 4.90, 2.4;
        ],
    }
}

/// Sum of the sampling weights of a country's cities.
pub fn total_weight(country: Country) -> f64 {
    cities_of(country).iter().map(|c| c.weight).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::haversine_miles;

    #[test]
    fn every_country_has_cities() {
        for c in Country::all() {
            let cities = cities_of(c);
            assert!(cities.len() >= 3, "{c} needs >= 3 cities, has {}", cities.len());
            assert!(total_weight(c) > 0.0);
        }
    }

    #[test]
    fn coordinates_valid_and_weights_positive() {
        for c in Country::all() {
            for city in cities_of(c) {
                assert!(city.location.lat.abs() <= 90.0, "{}", city.name);
                assert!(city.location.lon.abs() <= 180.0, "{}", city.name);
                assert!(city.weight > 0.0, "{}", city.name);
            }
        }
    }

    #[test]
    fn cities_near_their_country_centroid() {
        // sanity: every city within 3,500 miles of its country centroid
        // (Russia/US/Canada are wide; anything beyond this is a typo)
        for c in Country::all() {
            if c == Country::Other {
                continue;
            }
            for city in cities_of(c) {
                let d = haversine_miles(city.location, c.centroid());
                assert!(d < 3_500.0, "{} is {d} miles from {c} centroid", city.name);
            }
        }
    }

    #[test]
    fn city_names_unique_within_country() {
        for c in Country::all() {
            let mut names: Vec<_> = cities_of(c).iter().map(|x| x.name).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), cities_of(c).len(), "duplicate city in {c}");
        }
    }

    #[test]
    fn intra_country_distances_smaller_than_intercontinental() {
        // median intra-US city distance must be well below US->India
        let us = cities_of(Country::Us);
        let mut intra = Vec::new();
        for i in 0..us.len() {
            for j in (i + 1)..us.len() {
                intra.push(haversine_miles(us[i].location, us[j].location));
            }
        }
        intra.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = intra[intra.len() / 2];
        let inter = haversine_miles(us[0].location, cities_of(Country::In)[0].location);
        assert!(median < inter / 2.0, "median {median} vs inter {inter}");
    }
}
