//! Regression pins for the sorted-merge iterators shared by the
//! clustering, reciprocity and motif kernels.
//!
//! The motif census reuses the sorted-merge intersection discipline of
//! `clustering::closed_pairs` and the two-row merge of the reciprocity
//! kernel. An audit of those iterators (this PR) found both correct on
//! self-loops and row boundaries — these tests pin that behaviour with
//! hand-computed values and the naive reference twins, so a future "fix"
//! that re-introduces a self-loop or off-the-end bug fails here with a
//! named shape instead of deep inside a fuzz sweep.

use gplus_graph::builder::from_edges;
use gplus_graph::{clustering, motifs, reciprocity, CsrGraph};
use gplus_oracle::reference::{self, EdgeSet};

fn agree_on(g: &CsrGraph) {
    let es = EdgeSet::from_graph(g);
    for u in g.nodes() {
        assert_eq!(
            clustering::clustering_coefficient(g, u),
            reference::clustering_coefficient(&es, g, u),
            "clustering of node {u}"
        );
        assert_eq!(
            reciprocity::relation_reciprocity(g, u),
            reference::relation_reciprocity(&es, g, u),
            "reciprocity of node {u}"
        );
    }
    assert_eq!(reciprocity::global_reciprocity(g), reference::global_reciprocity(&es, g));
    assert_eq!(reciprocity::reciprocal_pair_count(g), reference::reciprocal_pair_count(&es, g));
    assert_eq!(motifs::census(g), reference::motif_census(&es, g));
}

#[test]
fn self_loops_on_every_triangle_corner() {
    // the classic trap: a self-loop sits first in its own sorted row, so a
    // merge that forgets to skip the apex counts phantom triangles
    let g = from_edges(3, [(0, 0), (1, 1), (2, 2), (0, 1), (1, 2), (0, 2)]);
    agree_on(&g);
    // hand values: one 030T triangle; CC(0) = 1 closed of 2 ordered pairs
    assert_eq!(motifs::census(&g).totals[0], 1);
    assert_eq!(clustering::clustering_coefficient(&g, 0), Some(0.5));
}

#[test]
fn self_loop_is_its_own_reverse_for_global_reciprocity_only() {
    let g = from_edges(2, [(0, 0), (0, 1)]);
    agree_on(&g);
    // the loop edge reciprocates itself: 1 of 2 edges
    assert_eq!(reciprocity::global_reciprocity(&g), 0.5);
    // but a loop is never a reciprocal *pair* (u < v required)
    assert_eq!(reciprocity::reciprocal_pair_count(&g), 0);
}

#[test]
fn triangles_touching_both_id_boundaries() {
    // triangle on {0, 1, n-1}: the smallest ids and the largest id, so the
    // below-bound merges run with an empty prefix on one side and a full
    // cutoff on the other
    let g = from_edges(6, [(0, 1), (1, 0), (5, 0), (5, 1), (2, 3)]);
    agree_on(&g);
    let census = motifs::census(&g);
    assert_eq!(census.totals[2], 1, "one 120D triangle at the id extremes");
    assert_eq!(census.per_node, vec![1, 1, 0, 0, 0, 1]);
}

#[test]
fn rows_that_end_exactly_at_the_merge_bound() {
    // node 3's neighbours are {2, 4, 5}: the strictly-below-3 scan must
    // stop after 2 without touching 4 and 5, and node 4's row {3, 5}
    // contributes only 3. One triangle {2, 3, 4} (030C) plus the mutual
    // pair {3, 5} dangling above.
    let g = from_edges(6, [(2, 3), (3, 4), (4, 2), (3, 5), (5, 3), (4, 5)]);
    agree_on(&g);
    let census = motifs::census(&g);
    assert_eq!(census.totals[1], 1, "one cyclic triangle");
    assert_eq!(census.triangle_total(), 2, "plus the {{3,4,5}} 120C triangle");
}

#[test]
fn dense_mutual_block_with_a_hanging_tail() {
    // mutual clique {0,1,2} plus one-way chain into 3 and a self-loop on 3:
    // exercises merges where in- and out-rows are identical, then disjoint
    let g = from_edges(4, [(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1), (2, 3), (3, 3)]);
    agree_on(&g);
    let census = motifs::census(&g);
    assert_eq!(census.totals[6], 1, "one 300 triangle");
    assert_eq!(census.triangle_total(), 1);
}
