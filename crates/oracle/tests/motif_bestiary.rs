//! Motif census over the adversarial bestiary, pinned against
//! hand-computed class counts.
//!
//! The differential sweep already runs the census against its naive
//! reference on every adversarial shape; these tests additionally pin the
//! *absolute* counts a human can derive on paper — a clique of `k` nodes
//! holds exactly `C(k, 3)` fully-reciprocal (`300`) triangles, stars and
//! self-loop chains hold none — so a bug shared by kernel and reference
//! (e.g. in the builder) cannot slip through.

use gplus_graph::motifs::{self, MOTIF_CLASSES};
use gplus_graph::CsrGraph;
use gplus_synth::adversarial::adversarial_graphs;

fn shape(shapes: &[(String, CsrGraph)], name: &str) -> CsrGraph {
    shapes.iter().find(|(n, _)| n == name).unwrap_or_else(|| panic!("{name} present")).1.clone()
}

/// `C(k, 3)`.
fn choose3(k: u64) -> u64 {
    k * (k - 1) * (k - 2) / 6
}

#[test]
fn clique_holds_exactly_choose3_fully_reciprocal_triangles() {
    for max_nodes in [10usize, 40, 96] {
        let shapes = adversarial_graphs(max_nodes, 2012);
        let clique = shape(&shapes, "adv-clique");
        let k = clique.node_count() as u64;
        assert_eq!(k as usize, max_nodes.min(24), "clique size is capped at 24");
        let census = motifs::census(&clique);
        let mut expect = [0u64; MOTIF_CLASSES];
        expect[MOTIF_CLASSES - 1] = choose3(k);
        assert_eq!(census.totals, expect, "k = {k}");
        // every node sits in C(k-1, 2) of those triangles
        let per = (k - 1) * (k - 2) / 2;
        assert!(census.per_node.iter().all(|&p| p == per));
        assert_eq!(motifs::undirected_triangle_count(&clique), choose3(k));
    }
}

#[test]
fn stars_chains_and_degenerate_shapes_hold_no_triangles() {
    let shapes = adversarial_graphs(40, 2012);
    for name in [
        "adv-empty",
        "adv-single-node",
        "adv-single-self-loop",
        "adv-two-cycle",
        "adv-out-star",
        "adv-in-star",
        "adv-self-loop-chain",
    ] {
        let g = shape(&shapes, name);
        let census = motifs::census(&g);
        assert_eq!(census.totals, [0u64; MOTIF_CLASSES], "{name}");
        assert!(census.per_node.iter().all(|&p| p == 0), "{name}");
        assert_eq!(motifs::undirected_triangle_count(&g), 0, "{name}");
    }
}

#[test]
fn dust_census_agrees_with_the_naive_reference() {
    // the one random shape: no hand count, so compare implementations and
    // check conservation instead
    let shapes = adversarial_graphs(96, 2012);
    let dust = shape(&shapes, "adv-dust");
    let census = motifs::census(&dust);
    let es = gplus_oracle::reference::EdgeSet::from_graph(&dust);
    assert_eq!(census, gplus_oracle::reference::motif_census(&es, &dust));
    assert_eq!(census.per_node.iter().sum::<u64>(), 3 * census.triangle_total());
}

#[test]
fn self_loops_and_duplicate_edges_cannot_fake_a_triangle() {
    use gplus_graph::builder::from_edges;
    use gplus_graph::NodeId;
    // self-loops on every corner of a genuine 300 triangle change nothing
    let decorated =
        from_edges(3, [(0, 0), (1, 1), (2, 2), (0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)]);
    let plain = from_edges(3, [(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)]);
    assert_eq!(motifs::census(&decorated), motifs::census(&plain));
    // duplicate submissions of the same edge collapse in the builder
    let duplicated: Vec<(NodeId, NodeId)> =
        [(0, 1), (1, 2), (0, 2)].iter().flat_map(|&e| [e, e, e]).collect();
    let census = motifs::census(&from_edges(3, duplicated));
    assert_eq!(census.totals[0], 1, "one 030T triangle");
    assert_eq!(census.triangle_total(), 1);
}
