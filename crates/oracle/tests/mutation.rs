//! Mutation smoke tests: prove the differential runner can actually fail.
//!
//! Compiled only with `--features oracle-mutation`, which plants a BFS
//! whose level counter is off by one past depth 1 and a motif census with
//! the `120D`/`120U` class labels swapped. The oracle must flag both,
//! shrink the witnesses, and write small self-contained reproducers.

#![cfg(feature = "oracle-mutation")]

use gplus_graph::bfs;
use gplus_graph::{CsrGraph, NodeId};
use gplus_oracle::differential::{check_levels_kernel, check_motifs_kernel, DiffConfig};
use gplus_oracle::mutation::{off_by_one_levels, swapped_motif_labels_census};
use gplus_oracle::sweep::{self, Preset, Reproducer, REPRO_SCHEMA};
use gplus_synth::SynthNetwork;

fn synth_graph() -> CsrGraph {
    SynthNetwork::generate(&Preset::GooglePlus.config(1_500, 2012)).graph
}

fn mutant(g: &CsrGraph, s: NodeId) -> (bfs::BfsLevels, Option<Vec<u32>>) {
    (off_by_one_levels(g, s), None)
}

#[test]
fn the_differential_runner_flags_the_off_by_one_bfs() {
    let g = synth_graph();
    let cfg = DiffConfig::quick(7);
    // the genuine kernel sails through the same harness...
    assert!(
        check_levels_kernel(&g, &cfg, "bfs-classic", |g, s| (bfs::levels(g, s), None))
            .is_none(),
        "control: the real kernel must pass"
    );
    // ...and the mutant is caught
    let m = check_levels_kernel(&g, &cfg, "bfs-mutant", mutant)
        .expect("a synth graph has 2-hop paths, so the mutant must be flagged");
    assert_eq!(m.kernel, "bfs-mutant");
    assert_ne!(m.expected, m.actual);
}

#[test]
fn the_flagged_mutant_shrinks_to_a_small_reproducer() {
    let g = synth_graph();
    let cfg = DiffConfig::quick(7);
    let edges = g.edge_list();
    let dir =
        std::env::temp_dir().join(format!("gplus-oracle-mutation-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (repro, path) =
        sweep::shrink_and_report(&dir, "gplus", 7, "bfs-mutant", g.node_count(), &edges, |g| {
            check_levels_kernel(g, &cfg, "bfs-mutant", mutant)
        })
        .expect("reproducer written");

    // the minimal off-by-one witness is a 2-hop path reachable from a
    // sampled source; anything near that size is a useful reproducer
    assert!(
        repro.edges.len() <= 50,
        "shrunken witness must be small, got {} edges",
        repro.edges.len()
    );
    assert!(repro.nodes <= 50);
    assert!(repro.shrink_steps > 0);
    assert_eq!(repro.kernel, "bfs-mutant");
    assert_eq!(repro.schema, REPRO_SCHEMA);
    assert_ne!(repro.expected, repro.actual);

    // the reproducer file is self-contained: parse it back and replay the
    // failure from nothing but its own edge list
    let back: Reproducer =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("file exists"))
            .expect("reproducer parses");
    assert_eq!(back.edges, repro.edges);
    let replayed = gplus_graph::builder::from_edges(back.nodes, back.edges.iter().copied());
    assert!(
        check_levels_kernel(&replayed, &cfg, "bfs-mutant", mutant).is_some(),
        "replaying the reproducer must still trip the mutant"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn the_differential_runner_flags_the_swapped_motif_labels() {
    let g = synth_graph();
    // full budgets: 1,500 nodes must land in the full-census compare tier
    let cfg = DiffConfig::new(7);
    assert!(
        check_motifs_kernel(&g, &cfg, "motifs", gplus_graph::motifs::census).is_none(),
        "control: the real census must pass"
    );
    let m = check_motifs_kernel(&g, &cfg, "motifs-mutant", swapped_motif_labels_census)
        .expect("an asymmetric social graph has 120D != 120U, so the swap must be flagged");
    assert_eq!(m.kernel, "motifs-mutant");
    assert!(m.detail.contains("per-class triangle totals"));
    assert_ne!(m.expected, m.actual);
}

#[test]
fn the_flagged_motif_mutant_shrinks_to_a_small_reproducer() {
    let g = synth_graph();
    let cfg = DiffConfig::new(7);
    let edges = g.edge_list();
    let dir = std::env::temp_dir()
        .join(format!("gplus-oracle-mutation-motifs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (repro, path) = sweep::shrink_and_report(
        &dir,
        "gplus",
        7,
        "motifs-mutant",
        g.node_count(),
        &edges,
        |g| check_motifs_kernel(g, &cfg, "motifs-mutant", swapped_motif_labels_census),
    )
    .expect("reproducer written");

    // the minimal label-swap witness is one 120D (or 120U) triangle: a
    // mutual dyad plus two one-way edges
    assert!(
        repro.edges.len() <= 50,
        "shrunken witness must be small, got {} edges",
        repro.edges.len()
    );
    assert!(repro.nodes <= 50);
    assert!(repro.shrink_steps > 0);
    assert_eq!(repro.kernel, "motifs-mutant");
    assert_eq!(repro.schema, REPRO_SCHEMA);
    assert_ne!(repro.expected, repro.actual);

    let back: Reproducer =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("file exists"))
            .expect("reproducer parses");
    assert_eq!(back.edges, repro.edges);
    let replayed = gplus_graph::builder::from_edges(back.nodes, back.edges.iter().copied());
    assert!(
        check_motifs_kernel(&replayed, &cfg, "motifs-mutant", swapped_motif_labels_census)
            .is_some(),
        "replaying the reproducer must still trip the mutant"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
