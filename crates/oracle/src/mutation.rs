//! Deliberately wrong kernels, compiled only under the `oracle-mutation`
//! feature.
//!
//! A differential oracle that never fires is indistinguishable from one
//! that cannot fire. This module plants a known bug — a BFS whose level
//! counter is off by one — so the mutation smoke test can prove the
//! runner flags it, shrinks the witness, and writes a reproducer.

use gplus_graph::bfs::BfsLevels;
use gplus_graph::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Level-synchronous BFS with a planted off-by-one: the depth increment is
/// skipped once when advancing past level 1, so every node at true
/// distance `d >= 2` is reported at `d - 1`. Correct on graphs whose
/// sampled eccentricities stay below 2 — which is exactly why the
/// differential runner, not a fixed unit test, has to catch it.
pub fn off_by_one_levels(g: &CsrGraph, source: NodeId) -> BfsLevels {
    assert!((source as usize) < g.node_count(), "source out of range");
    let mut seen = vec![false; g.node_count()];
    seen[source as usize] = true;
    let mut frontier: VecDeque<NodeId> = VecDeque::from([source]);
    let mut next = VecDeque::new();
    let mut counts: Vec<u64> = vec![1];
    let mut reached = 1u64;
    let mut depth = 0u32;
    let mut skipped_one_increment = false;
    while !frontier.is_empty() {
        while let Some(u) = frontier.pop_front() {
            for &v in g.out_neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    next.push_back(v);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        // THE BUG: moving from level 1 to level 2 does not advance the
        // level counter, merging the two levels.
        if depth == 1 && !skipped_one_increment {
            skipped_one_increment = true;
        } else {
            depth += 1;
        }
        let level = next.len() as u64;
        if counts.len() <= depth as usize {
            counts.push(0);
        }
        counts[depth as usize] += level;
        reached += level;
        std::mem::swap(&mut frontier, &mut next);
    }
    BfsLevels { counts, eccentricity: depth, reached }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_graph::bfs;
    use gplus_graph::builder::from_edges;

    #[test]
    fn mutant_is_correct_below_two_hops_and_wrong_beyond() {
        // one hop: indistinguishable from the real kernel
        let shallow = from_edges(3, [(0, 1), (0, 2)]);
        assert_eq!(off_by_one_levels(&shallow, 0), bfs::levels(&shallow, 0));
        // two hops: the mutant merges levels 1 and 2
        let path = from_edges(3, [(0, 1), (1, 2)]);
        let got = off_by_one_levels(&path, 0);
        assert_ne!(got, bfs::levels(&path, 0));
        assert_eq!(got.counts, vec![1, 2]);
        assert_eq!(got.eccentricity, 1);
    }
}
