//! Deliberately wrong kernels, compiled only under the `oracle-mutation`
//! feature.
//!
//! A differential oracle that never fires is indistinguishable from one
//! that cannot fire. This module plants known bugs — a BFS whose level
//! counter is off by one, and a motif census with two class labels
//! swapped — so the mutation smoke tests can prove the runner flags
//! them, shrinks the witnesses, and writes reproducers.

use gplus_graph::bfs::BfsLevels;
use gplus_graph::motifs::{self, MotifCensus};
use gplus_graph::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Level-synchronous BFS with a planted off-by-one: the depth increment is
/// skipped once when advancing past level 1, so every node at true
/// distance `d >= 2` is reported at `d - 1`. Correct on graphs whose
/// sampled eccentricities stay below 2 — which is exactly why the
/// differential runner, not a fixed unit test, has to catch it.
pub fn off_by_one_levels(g: &CsrGraph, source: NodeId) -> BfsLevels {
    assert!((source as usize) < g.node_count(), "source out of range");
    let mut seen = vec![false; g.node_count()];
    seen[source as usize] = true;
    let mut frontier: VecDeque<NodeId> = VecDeque::from([source]);
    let mut next = VecDeque::new();
    let mut counts: Vec<u64> = vec![1];
    let mut reached = 1u64;
    let mut depth = 0u32;
    let mut skipped_one_increment = false;
    while !frontier.is_empty() {
        while let Some(u) = frontier.pop_front() {
            for &v in g.out_neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    next.push_back(v);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        // THE BUG: moving from level 1 to level 2 does not advance the
        // level counter, merging the two levels.
        if depth == 1 && !skipped_one_increment {
            skipped_one_increment = true;
        } else {
            depth += 1;
        }
        let level = next.len() as u64;
        if counts.len() <= depth as usize {
            counts.push(0);
        }
        counts[depth as usize] += level;
        reached += level;
        std::mem::swap(&mut frontier, &mut next);
    }
    BfsLevels { counts, eccentricity: depth, reached }
}

/// Motif census with a planted label swap: the `120D` and `120U` class
/// totals are exchanged. Correct on any graph where the two counts happen
/// to coincide — fully reciprocal cliques, mutual-free graphs, anything
/// edge-transitive — so a fixed unit test on a symmetric shape cannot see
/// it; the differential sweep against the isomorphism-classifying
/// reference has to.
pub fn swapped_motif_labels_census(g: &CsrGraph) -> MotifCensus {
    let mut census = motifs::census(g);
    // THE BUG: "outsider points at the dyad" reported as "dyad points at
    // the outsider" and vice versa.
    census.totals.swap(2, 3);
    census
}

#[cfg(test)]
mod tests {
    use super::*;
    use gplus_graph::bfs;
    use gplus_graph::builder::from_edges;

    #[test]
    fn mutant_is_correct_below_two_hops_and_wrong_beyond() {
        // one hop: indistinguishable from the real kernel
        let shallow = from_edges(3, [(0, 1), (0, 2)]);
        assert_eq!(off_by_one_levels(&shallow, 0), bfs::levels(&shallow, 0));
        // two hops: the mutant merges levels 1 and 2
        let path = from_edges(3, [(0, 1), (1, 2)]);
        let got = off_by_one_levels(&path, 0);
        assert_ne!(got, bfs::levels(&path, 0));
        assert_eq!(got.counts, vec![1, 2]);
        assert_eq!(got.eccentricity, 1);
    }

    #[test]
    fn motif_mutant_is_correct_on_symmetric_shapes_and_wrong_on_a_fan() {
        // a fully reciprocal triangle has 120D == 120U == 0: the swap is
        // invisible, which is why a symmetric fixture cannot catch it
        let clique = from_edges(3, [(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)]);
        assert_eq!(swapped_motif_labels_census(&clique), motifs::census(&clique));
        // a 120D fan (outsider 2 points at the mutual dyad {0,1}) lands in
        // the wrong class under the mutant
        let fan = from_edges(3, [(0, 1), (1, 0), (2, 0), (2, 1)]);
        let honest = motifs::census(&fan);
        let mutant = swapped_motif_labels_census(&fan);
        assert_eq!(honest.totals[2], 1);
        assert_eq!(mutant.totals[3], 1);
        assert_ne!(honest, mutant);
        // participation is class-blind, so the mutant leaves it intact
        assert_eq!(honest.per_node, mutant.per_node);
    }
}
